/** @file Integration tests: full encode/decode with all presets. */

#include "edgepcc/core/video_codec.h"

#include <gtest/gtest.h>

#include "edgepcc/dataset/catalogue.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"

namespace edgepcc {
namespace {

/** Small but realistic synthetic video shared by the tests. */
class VideoCodecTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        VideoSpec spec;
        spec.name = "test-human";
        spec.seed = 777;
        spec.target_points = 15000;
        spec.num_frames = 4;
        video_ = new SyntheticHumanVideo(spec);
        for (int f = 0; f < 4; ++f)
            frames_.push_back(video_->frame(f));
    }

    static void
    TearDownTestSuite()
    {
        delete video_;
        video_ = nullptr;
        frames_.clear();
    }

    static SyntheticHumanVideo *video_;
    static std::vector<VoxelCloud> frames_;
};

SyntheticHumanVideo *VideoCodecTest::video_ = nullptr;
std::vector<VoxelCloud> VideoCodecTest::frames_;

TEST_F(VideoCodecTest, AllPresetsRoundtripWithReasonableQuality)
{
    for (const CodecConfig &config : allPaperConfigs()) {
        VideoEncoder encoder(config);
        VideoDecoder decoder;
        for (std::size_t f = 0; f < 3; ++f) {
            auto encoded = encoder.encode(frames_[f]);
            ASSERT_TRUE(encoded.hasValue())
                << config.name << " frame " << f << ": "
                << encoded.status().toString();
            auto decoded = decoder.decode(encoded->bitstream);
            ASSERT_TRUE(decoded.hasValue())
                << config.name << " frame " << f << ": "
                << decoded.status().toString();
            EXPECT_EQ(decoded->type, encoded->stats.type);

            const AttrQuality attr =
                attributePsnr(frames_[f], decoded->cloud);
            EXPECT_GT(attr.psnr, 30.0)
                << config.name << " frame " << f;
            const GeometryQuality geom =
                geometryPsnrD1(frames_[f], decoded->cloud);
            EXPECT_GT(geom.psnr, 55.0)
                << config.name << " frame " << f;
            // Compression must beat raw clearly even at this
            // small (sparse) test scale; the paper-scale ratios
            // are covered by the fig8c bench.
            EXPECT_GT(encoded->stats.compressionRatio(), 2.0)
                << config.name << " frame " << f;
        }
    }
}

TEST_F(VideoCodecTest, GopPatternIsIpp)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    std::vector<Frame::Type> types;
    for (int f = 0; f < 6; ++f) {
        auto encoded = encoder.encode(frames_[f % 4]);
        ASSERT_TRUE(encoded.hasValue());
        types.push_back(encoded->stats.type);
    }
    EXPECT_EQ(types[0], Frame::Type::kIntra);
    EXPECT_EQ(types[1], Frame::Type::kPredicted);
    EXPECT_EQ(types[2], Frame::Type::kPredicted);
    EXPECT_EQ(types[3], Frame::Type::kIntra);
    EXPECT_EQ(types[4], Frame::Type::kPredicted);
    EXPECT_EQ(types[5], Frame::Type::kPredicted);
}

TEST_F(VideoCodecTest, IntraOnlyNeverEmitsPredicted)
{
    VideoEncoder encoder(makeIntraOnlyConfig());
    for (int f = 0; f < 4; ++f) {
        auto encoded = encoder.encode(frames_[f]);
        ASSERT_TRUE(encoded.hasValue());
        EXPECT_EQ(encoded->stats.type, Frame::Type::kIntra);
    }
}

TEST_F(VideoCodecTest, ResetRestartsGop)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    ASSERT_TRUE(encoder.encode(frames_[0]).hasValue());
    auto second = encoder.encode(frames_[1]);
    ASSERT_TRUE(second.hasValue());
    EXPECT_EQ(second->stats.type, Frame::Type::kPredicted);
    encoder.reset();
    auto after_reset = encoder.encode(frames_[2]);
    ASSERT_TRUE(after_reset.hasValue());
    EXPECT_EQ(after_reset->stats.type, Frame::Type::kIntra);
}

TEST_F(VideoCodecTest, DecoderRejectsPredictedWithoutReference)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    ASSERT_TRUE(encoder.encode(frames_[0]).hasValue());
    auto p_frame = encoder.encode(frames_[1]);
    ASSERT_TRUE(p_frame.hasValue());
    VideoDecoder fresh_decoder;
    const auto decoded = fresh_decoder.decode(p_frame->bitstream);
    EXPECT_FALSE(decoded.hasValue());
}

TEST_F(VideoCodecTest, StatsAccounting)
{
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frames_[0]);
    ASSERT_TRUE(encoded.hasValue());
    const FrameStats &stats = encoded->stats;
    EXPECT_EQ(stats.num_input_points, frames_[0].size());
    EXPECT_EQ(stats.raw_bytes, frames_[0].size() * 15);
    EXPECT_EQ(stats.total_bytes, encoded->bitstream.size());
    EXPECT_GT(stats.geometry_bytes, 0u);
    EXPECT_GT(stats.attr_bytes, 0u);
    EXPECT_LE(stats.geometry_bytes + stats.attr_bytes,
              stats.total_bytes);
}

TEST_F(VideoCodecTest, ProfilesContainGeometryAndAttrStages)
{
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frames_[0]);
    ASSERT_TRUE(encoded.hasValue());
    bool has_geom = false, has_attr = false;
    for (const auto &stage : encoded->profile.stages) {
        has_geom |= stage.name.rfind("geom.", 0) == 0;
        has_attr |= stage.name.rfind("attr.", 0) == 0;
    }
    EXPECT_TRUE(has_geom);
    EXPECT_TRUE(has_attr);
}

TEST_F(VideoCodecTest, V1QualityAtLeastV2)
{
    double v1_psnr = 0.0, v2_psnr = 0.0;
    double v1_bytes = 0.0, v2_bytes = 0.0;
    for (const bool v2 : {false, true}) {
        VideoEncoder encoder(v2 ? makeIntraInterV2Config()
                                : makeIntraInterV1Config());
        VideoDecoder decoder;
        double psnr_sum = 0.0, bytes = 0.0;
        for (int f = 0; f < 3; ++f) {
            auto encoded = encoder.encode(frames_[f]);
            ASSERT_TRUE(encoded.hasValue());
            auto decoded = decoder.decode(encoded->bitstream);
            ASSERT_TRUE(decoded.hasValue());
            psnr_sum +=
                attributePsnr(frames_[f], decoded->cloud).psnr;
            bytes += static_cast<double>(
                encoded->stats.total_bytes);
        }
        if (v2) {
            v2_psnr = psnr_sum;
            v2_bytes = bytes;
        } else {
            v1_psnr = psnr_sum;
            v1_bytes = bytes;
        }
    }
    // The paper's knob: V2 compresses harder at lower quality.
    EXPECT_LE(v2_bytes, v1_bytes);
    EXPECT_GE(v1_psnr, v2_psnr - 1e-6);
}

TEST_F(VideoCodecTest, Tmc13GeometryIsLossless)
{
    VideoEncoder encoder(makeTmc13LikeConfig());
    VideoDecoder decoder;
    auto encoded = encoder.encode(frames_[0]);
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decoder.decode(encoded->bitstream);
    ASSERT_TRUE(decoded.hasValue());
    const GeometryQuality geom =
        geometryPsnrD1(frames_[0], decoded->cloud);
    EXPECT_EQ(geom.mse, 0.0);
}

TEST_F(VideoCodecTest, MacroBlockWithLossyGeometryRejected)
{
    CodecConfig config = makeCwipcLikeConfig();
    config.geometry.builder =
        GeometryConfig::Builder::kParallelMorton;
    config.geometry.tight_bbox = true;
    VideoEncoder encoder(config);
    const auto encoded = encoder.encode(frames_[0]);
    EXPECT_FALSE(encoded.hasValue());
    EXPECT_EQ(encoded.status().code(),
              StatusCode::kInvalidArgument);
}

TEST_F(VideoCodecTest, EmptyCloudRejected)
{
    VideoEncoder encoder(makeIntraOnlyConfig());
    VoxelCloud empty(10);
    EXPECT_FALSE(encoder.encode(empty).hasValue());
}

TEST_F(VideoCodecTest, GarbageBitstreamRejected)
{
    VideoDecoder decoder;
    const std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
    EXPECT_FALSE(decoder.decode(junk).hasValue());
}

TEST_F(VideoCodecTest, DecoderMatchesEncoderReference)
{
    // Multi-GOP stream: decoded P frames must stay well aligned
    // with the originals (no drift from reference mismatch).
    VideoEncoder encoder(makeIntraInterV2Config());
    VideoDecoder decoder;
    for (int f = 0; f < 4; ++f) {
        auto encoded = encoder.encode(frames_[f]);
        ASSERT_TRUE(encoded.hasValue());
        auto decoded = decoder.decode(encoded->bitstream);
        ASSERT_TRUE(decoded.hasValue());
        const AttrQuality attr =
            attributePsnr(frames_[f], decoded->cloud);
        EXPECT_GT(attr.psnr, 28.0) << "frame " << f;
    }
}

}  // namespace
}  // namespace edgepcc
