/**
 * @file
 * Overload-robustness tests: LoadSpec parsing and factor math, the
 * deadline ladder state machine, per-rung codec derivation, input
 * coarsening, and the session-level acceptance scenarios — the
 * pinned burst2x ladder walk, admission-control queue drops, the
 * per-stage watchdog, injected allocation failures, and clean-path
 * neutrality (wire bytes untouched when the ladder never engages).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/overload_controller.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

std::vector<VoxelCloud>
testVideo(int num_frames, std::uint64_t seed = 91,
          std::size_t points = 6000)
{
    VideoSpec spec;
    spec.name = "overload-test";
    spec.seed = seed;
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

/** Max modelled clean encode seconds over `frames` — the ladder
 *  tests derive their deadline from this so the walk is pinned to
 *  the device model, not to magic milliseconds. */
double
maxCleanEncodeSeconds(const std::vector<VoxelCloud> &frames,
                      const CodecConfig &codec)
{
    VideoEncoder encoder(codec);
    const EdgeDeviceModel model(DeviceSpec::jetsonXavier15W());
    double worst = 0.0;
    for (const VoxelCloud &frame : frames) {
        auto encoded = encoder.encode(frame);
        EXPECT_TRUE(encoded.hasValue());
        worst = std::max(
            worst, model.evaluate(encoded->profile).modelSeconds());
    }
    return worst;
}

std::string
rungTrace(const OverloadStats &stats)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < stats.ladder.size(); ++i) {
        if (i != 0)
            out << ' ';
        out << static_cast<int>(stats.ladder[i].rung);
        if (stats.ladder[i].deadline_missed)
            out << '!';
    }
    return out.str();
}

// -----------------------------------------------------------------
// LoadSpec
// -----------------------------------------------------------------

TEST(LoadSpecTest, PresetsParse)
{
    auto none = LoadSpec::parse("none");
    ASSERT_TRUE(none.hasValue());
    EXPECT_TRUE(none->isIdle());
    EXPECT_TRUE(LoadSpec::parse("").hasValue());

    auto burst = LoadSpec::parse("burst2x");
    ASSERT_TRUE(burst.hasValue());
    EXPECT_FALSE(burst->isIdle());
    EXPECT_EQ(burst->burst_start, 8u);
    EXPECT_EQ(burst->burst_frames, 12u);
    EXPECT_DOUBLE_EQ(burst->burst_slowdown, 2.0);

    auto stall = LoadSpec::parse("stall-geometry");
    ASSERT_TRUE(stall.hasValue());
    EXPECT_EQ(stall->stall_stage, "geom.");
    EXPECT_DOUBLE_EQ(stall->stall_factor, 6.0);
}

TEST(LoadSpecTest, KeyValueParse)
{
    auto spec = LoadSpec::parse(
        "slowdown=1.5,burst-start=4,burst-frames=8,"
        "burst-slowdown=3,stall-stage=attr.,stall-factor=2,"
        "alloc-fail=5,alloc-fail=9,jitter=0.1,seed=7");
    ASSERT_TRUE(spec.hasValue());
    EXPECT_DOUBLE_EQ(spec->slowdown, 1.5);
    EXPECT_EQ(spec->burst_start, 4u);
    EXPECT_EQ(spec->burst_frames, 8u);
    EXPECT_DOUBLE_EQ(spec->burst_slowdown, 3.0);
    EXPECT_EQ(spec->stall_stage, "attr.");
    EXPECT_DOUBLE_EQ(spec->stall_factor, 2.0);
    EXPECT_TRUE(spec->allocFailsAt(5));
    EXPECT_TRUE(spec->allocFailsAt(9));
    EXPECT_FALSE(spec->allocFailsAt(6));
    EXPECT_DOUBLE_EQ(spec->jitter, 0.1);
    EXPECT_EQ(spec->seed, 7u);
}

TEST(LoadSpecTest, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(LoadSpec::parse("slowdown").hasValue());
    EXPECT_FALSE(LoadSpec::parse("slowdown=abc").hasValue());
    EXPECT_FALSE(LoadSpec::parse("no-such-key=1").hasValue());
    EXPECT_FALSE(LoadSpec::parse("slowdown=0").hasValue());
    EXPECT_FALSE(LoadSpec::parse("slowdown=-2").hasValue());
    EXPECT_FALSE(LoadSpec::parse("jitter=1").hasValue());
    EXPECT_FALSE(LoadSpec::parse("stall-stage=").hasValue());
}

TEST(LoadSpecTest, FactorAppliesBurstAndStallPrefix)
{
    LoadSpec spec = LoadSpec::stallGeometry();
    // Outside the burst: baseline only.
    EXPECT_DOUBLE_EQ(spec.factorFor(0, "geom.build"), 1.0);
    // In the burst: 2x everywhere, 12x on geometry stages.
    EXPECT_TRUE(spec.inBurst(8));
    EXPECT_TRUE(spec.inBurst(19));
    EXPECT_FALSE(spec.inBurst(20));
    EXPECT_DOUBLE_EQ(spec.factorFor(10, "attr.segment"), 2.0);
    EXPECT_DOUBLE_EQ(spec.factorFor(10, "geom.build"), 12.0);
    EXPECT_DOUBLE_EQ(spec.factorFor(10, "geom.morton"), 12.0);
}

TEST(LoadSpecTest, JitterIsSeededAndBounded)
{
    LoadSpec spec;
    EXPECT_DOUBLE_EQ(spec.jitterFor(3), 1.0);  // jitter == 0

    spec.jitter = 0.2;
    spec.seed = 42;
    for (std::uint32_t f = 0; f < 64; ++f) {
        const double j = spec.jitterFor(f);
        EXPECT_GE(j, 0.8);
        EXPECT_LE(j, 1.2);
        // Order-independent: same (seed, frame) -> same draw.
        EXPECT_DOUBLE_EQ(j, spec.jitterFor(f));
    }
    LoadSpec other = spec;
    other.seed = 43;
    EXPECT_NE(spec.jitterFor(0), other.jitterFor(0));
}

// -----------------------------------------------------------------
// OverloadController state machine
// -----------------------------------------------------------------

TEST(OverloadControllerTest, MissDescendsHeadroomClimbs)
{
    OverloadConfig config;
    config.enabled = true;
    config.deadline_s = 0.100;
    OverloadController ladder(config);
    EXPECT_EQ(ladder.rung(), OverloadRung::kFull);
    EXPECT_DOUBLE_EQ(ladder.budgetSeconds(), 0.100);

    // One miss: one rung down, immediately.
    EXPECT_EQ(ladder.onFrame(0.150), OverloadEvent::kDeadlineMiss);
    EXPECT_EQ(ladder.rung(), OverloadRung::kNoEntropy);

    // On-time frames with headroom: the EWMA must first decay
    // below recover_headroom, then recover_after_clean consecutive
    // clean frames climb exactly one rung.
    int frames_until_recovery = 0;
    while (ladder.rung() == OverloadRung::kNoEntropy) {
        EXPECT_LT(frames_until_recovery, 32);
        const OverloadEvent event = ladder.onFrame(0.010);
        ++frames_until_recovery;
        if (event == OverloadEvent::kRecovered)
            break;
        EXPECT_EQ(event, OverloadEvent::kNone);
    }
    EXPECT_EQ(ladder.rung(), OverloadRung::kFull);
    EXPECT_GE(frames_until_recovery, config.recover_after_clean);
}

TEST(OverloadControllerTest, ClampsAtSkipRung)
{
    OverloadConfig config;
    config.enabled = true;
    config.deadline_s = 0.010;
    OverloadController ladder(config);
    for (int i = 0; i < 10; ++i)
        ladder.onFrame(1.0);  // hopeless: always over budget
    EXPECT_EQ(ladder.rung(), OverloadRung::kSkip);
}

TEST(OverloadControllerTest, StallDescendsEvenWhenFrameFits)
{
    OverloadConfig config;
    config.enabled = true;
    config.deadline_s = 0.100;
    OverloadController ladder(config);
    // 50 ms total fits the 100 ms budget, but the watchdog already
    // decided one stage blew its soft timeout.
    EXPECT_EQ(ladder.onStall(0.050), OverloadEvent::kStageStall);
    EXPECT_EQ(ladder.rung(), OverloadRung::kNoEntropy);
}

TEST(OverloadControllerTest, ConfigForRungIsCumulative)
{
    CodecConfig base = makeIntraInterV1Config();
    base.geometry.entropy_coding = true;
    base.geometry.contextual_entropy = true;
    base.segment.quant_step = 4;
    base.gop_size = 3;

    OverloadConfig config;
    config.coarse_quant_multiplier = 4;

    const CodecConfig r0 = OverloadController::configForRung(
        base, OverloadRung::kFull, config);
    EXPECT_TRUE(r0.geometry.entropy_coding);
    EXPECT_EQ(r0.segment.quant_step, 4u);
    EXPECT_EQ(r0.gop_size, 3);

    const CodecConfig r1 = OverloadController::configForRung(
        base, OverloadRung::kNoEntropy, config);
    EXPECT_FALSE(r1.geometry.entropy_coding);
    EXPECT_FALSE(r1.geometry.contextual_entropy);
    EXPECT_EQ(r1.segment.quant_step, 4u);

    const CodecConfig r3 = OverloadController::configForRung(
        base, OverloadRung::kCoarseAttr, config);
    EXPECT_FALSE(r3.geometry.entropy_coding);
    EXPECT_EQ(r3.segment.quant_step, 16u);
    EXPECT_DOUBLE_EQ(r3.raht.qstep, base.raht.qstep * 4.0);
    EXPECT_EQ(r3.gop_size, 3);

    const CodecConfig r4 = OverloadController::configForRung(
        base, OverloadRung::kInterOnly, config);
    EXPECT_GT(r4.gop_size, 1 << 10);

    // Intra-only codecs have no GOP to stretch.
    const CodecConfig intra = OverloadController::configForRung(
        makeIntraOnlyConfig(), OverloadRung::kInterOnly, config);
    EXPECT_EQ(intra.gop_size, makeIntraOnlyConfig().gop_size);
}

// -----------------------------------------------------------------
// coarsenCloud
// -----------------------------------------------------------------

TEST(CoarsenCloudTest, DropsBitsAndMergesFirstWins)
{
    VoxelCloud cloud(10);
    cloud.add(4, 8, 12, 10, 20, 30);
    cloud.add(5, 9, 13, 99, 99, 99);  // collapses onto the first
    cloud.add(40, 80, 120, 1, 2, 3);

    const VoxelCloud coarse = coarsenCloud(cloud, 2);
    EXPECT_EQ(coarse.gridBits(), 8);
    ASSERT_EQ(coarse.size(), 2u);
    EXPECT_EQ(coarse.x()[0], 1);
    EXPECT_EQ(coarse.y()[0], 2);
    EXPECT_EQ(coarse.z()[0], 3);
    // First-wins: the first voxel's color survives the merge.
    EXPECT_EQ(coarse.r()[0], 10);
    EXPECT_EQ(coarse.x()[1], 10);
}

TEST(CoarsenCloudTest, ZeroBitsIsIdentityAndClampsAtOneBit)
{
    const std::vector<VoxelCloud> frames = testVideo(1);
    const VoxelCloud &cloud = frames[0];
    const VoxelCloud same = coarsenCloud(cloud, 0);
    EXPECT_EQ(same.size(), cloud.size());
    EXPECT_EQ(same.gridBits(), cloud.gridBits());

    // Absurd drop is clamped so at least one grid bit survives.
    const VoxelCloud tiny = coarsenCloud(cloud, 99);
    EXPECT_EQ(tiny.gridBits(), 1);
    EXPECT_GE(tiny.size(), 1u);
}

// -----------------------------------------------------------------
// Session-level acceptance scenarios
// -----------------------------------------------------------------

/** Common overload session setup: clean channel, fixed GOP, roomy
 *  admission queue — each test overrides what it exercises. */
SessionConfig
overloadSession(double deadline_s, const LoadSpec &load)
{
    SessionConfig session;
    session.adaptive_gop = false;
    session.overload.enabled = true;
    session.overload.deadline_s = deadline_s;
    session.overload.target_fps = 30.0;
    session.overload.queue_capacity = 64;
    session.overload.load = load;
    return session;
}

/**
 * ISSUE-5 acceptance: the pinned ladder walk. A 2x per-stage
 * slowdown burst (frames 8..19) against a deadline 1.8x the worst
 * clean modelled latency: the clean stream uses ~55% of the budget
 * (inside the 60% recovery headroom, so full recovery is possible)
 * while the 2x burst overruns it. The first burst frame misses, the
 * ladder descends until the coarse rungs fit, and hysteresis climbs
 * back to full quality after the burst — never more than 2
 * consecutive misses.
 */
TEST(OverloadLadderTest, Burst2xWalksDeclaredOrderAndRecovers)
{
    const std::vector<VoxelCloud> frames = testVideo(30);
    const CodecConfig codec = makeIntraOnlyConfig();
    const double clean_s = maxCleanEncodeSeconds(frames, codec);
    ASSERT_GT(clean_s, 0.0);

    SessionConfig session =
        overloadSession(1.8 * clean_s, LoadSpec::burst2x());
    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    // One ladder record per input frame, in order.
    ASSERT_EQ(overload.ladder.size(), frames.size());
    for (std::size_t i = 0; i < overload.ladder.size(); ++i)
        EXPECT_EQ(overload.ladder[i].frame_id, i);

    // The exact deterministic walk (rung per frame, '!' = missed
    // deadline). Pre-burst at full quality, descent at the burst
    // head, coarse rungs riding out the burst, hysteretic climb
    // back to full afterwards.
    EXPECT_EQ(rungTrace(overload),
              "0 0 0 0 0 0 0 0 0! 1! 2 2 2 2 2 2 1! 2 2 2 2 2 2 "
              "1 1 1 0 0 0 0");

    // Acceptance bounds (redundant with the pin, but these are the
    // contract if the synthetic content ever shifts the trace).
    EXPECT_LE(overload.max_consecutive_misses, 2u);
    EXPECT_EQ(overload.queue_drops, 0u);
    EXPECT_EQ(overload.frames_skipped, 0u);
    EXPECT_EQ(overload.ladder.back().rung, OverloadRung::kFull);
    EXPECT_FALSE(overload.ladder.back().deadline_missed);
    EXPECT_GT(overload.rung_transitions, 0u);
    // Rungs engage in declared order: geometry coarsening was
    // reached, deeper rungs were never needed.
    EXPECT_GT(overload.rung_occupancy[static_cast<int>(
                  OverloadRung::kCoarseGeometry)],
              0u);
    EXPECT_EQ(overload.rung_occupancy[static_cast<int>(
                  OverloadRung::kInterOnly)],
              0u);
    EXPECT_EQ(overload.rung_occupancy[static_cast<int>(
                  OverloadRung::kSkip)],
              0u);

    // Every frame still reaches the viewer on the clean channel.
    ASSERT_EQ(report->frames.size(), frames.size());
    for (const SessionFrame &frame : report->frames)
        EXPECT_EQ(frame.outcome, FrameOutcome::kOk);

    EXPECT_NEAR(overload.deadlineMissRate(),
                static_cast<double>(overload.deadline_misses) /
                    static_cast<double>(frames.size()),
                1e-12);
}

TEST(OverloadLadderTest, AdmissionDropsOldestUnderSustainedLoad)
{
    const std::vector<VoxelCloud> frames = testVideo(12);
    const CodecConfig codec = makeIntraOnlyConfig();
    const double clean_s = maxCleanEncodeSeconds(frames, codec);

    // Sustained 400x slowdown: one encode spans many 30 fps
    // arrival intervals, so the in-flight queue overflows and
    // admission control must shed the oldest queued frames.
    LoadSpec load;
    load.slowdown = 400.0;
    SessionConfig session = overloadSession(1.4 * clean_s, load);
    session.overload.queue_capacity = 2;

    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    EXPECT_GT(overload.queue_drops, 0u);
    ASSERT_EQ(overload.ladder.size(), frames.size());
    // Bounded misses even under hopeless load: the ladder bottoms
    // out at skip instead of missing forever.
    EXPECT_LE(overload.max_consecutive_misses, 5u);
    EXPECT_GT(overload.frames_skipped + overload.queue_drops, 0u);
    // Dropped frames still get a receiver-side verdict (concealed
    // or skipped), never a crash or a hole.
    ASSERT_EQ(report->frames.size(), frames.size());
    std::size_t shown = 0;
    for (const SessionFrame &frame : report->frames)
        shown += frame.outcome != FrameOutcome::kSkipped ? 1 : 0;
    EXPECT_GT(shown, 0u);
}

TEST(OverloadLadderTest, WatchdogTripsOnStalledGeometryStage)
{
    const std::vector<VoxelCloud> frames = testVideo(16);
    const CodecConfig codec = makeIntraOnlyConfig();
    const double clean_s = maxCleanEncodeSeconds(frames, codec);

    // Generous total budget: only the 6x geometry stall (frames
    // 8..19 of stall-geometry) can trip anything, via the per-stage
    // soft timeout.
    SessionConfig session =
        overloadSession(4.0 * clean_s, LoadSpec::stallGeometry());
    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    EXPECT_GT(overload.watchdog_stalls, 0u);
    bool saw_stall = false;
    for (const OverloadFrame &frame : overload.ladder) {
        if (frame.event != OverloadEvent::kStageStall)
            continue;
        saw_stall = true;
        EXPECT_EQ(frame.stalled_stage.rfind("geom.", 0), 0u)
            << "stalled stage: " << frame.stalled_stage;
    }
    EXPECT_TRUE(saw_stall);
    // No stall before the burst window.
    for (std::size_t f = 0; f < 8; ++f)
        EXPECT_EQ(overload.ladder[f].event, OverloadEvent::kNone);
}

TEST(OverloadLadderTest, InjectedAllocFailureShedsFrameAndSurvives)
{
    const std::vector<VoxelCloud> frames = testVideo(8);
    const CodecConfig codec = makeIntraOnlyConfig();
    const double clean_s = maxCleanEncodeSeconds(frames, codec);

    auto load = LoadSpec::parse("alloc-fail=2,alloc-fail=5");
    ASSERT_TRUE(load.hasValue());
    SessionConfig session = overloadSession(4.0 * clean_s, *load);
    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    EXPECT_EQ(overload.alloc_failures, 2u);
    ASSERT_EQ(overload.ladder.size(), frames.size());
    EXPECT_EQ(overload.ladder[2].event,
              OverloadEvent::kAllocFailure);
    EXPECT_EQ(overload.ladder[5].event,
              OverloadEvent::kAllocFailure);
    // The victims freeze (concealed), everything else is intact.
    ASSERT_EQ(report->frames.size(), frames.size());
    EXPECT_EQ(report->frames[2].outcome, FrameOutcome::kConcealed);
    EXPECT_EQ(report->frames[5].outcome, FrameOutcome::kConcealed);
    EXPECT_EQ(report->frames[0].outcome, FrameOutcome::kOk);
    EXPECT_EQ(report->frames[7].outcome, FrameOutcome::kOk);
}

TEST(OverloadLadderTest, IdleLoadNeverEngagesAndKeepsWireBytes)
{
    const std::vector<VoxelCloud> frames = testVideo(10);
    const CodecConfig codec = makeIntraInterV1Config();

    SessionConfig off;
    off.adaptive_gop = false;
    StreamSession plain(codec, off);
    auto baseline = plain.run(frames);
    ASSERT_TRUE(baseline.hasValue());

    // Overload armed but idle: huge deadline, no injected load.
    SessionConfig on = overloadSession(10.0, LoadSpec::none());
    StreamSession guarded(codec, on);
    auto report = guarded.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    EXPECT_TRUE(overload.enabled);
    EXPECT_EQ(overload.deadline_misses, 0u);
    EXPECT_EQ(overload.watchdog_stalls, 0u);
    EXPECT_EQ(overload.queue_drops, 0u);
    EXPECT_EQ(overload.rung_occupancy[0], frames.size());
    for (int r = 1; r < kOverloadRungCount; ++r)
        EXPECT_EQ(overload.rung_occupancy[r], 0u);

    // Clean-path neutrality: the guarded session produces exactly
    // the bytes the plain session does.
    EXPECT_EQ(report->stats.wire_bytes, baseline->stats.wire_bytes);
    ASSERT_EQ(report->frames.size(), baseline->frames.size());
    for (std::size_t f = 0; f < report->frames.size(); ++f) {
        EXPECT_EQ(report->frames[f].payload_bytes,
                  baseline->frames[f].payload_bytes);
        EXPECT_EQ(report->frames[f].outcome,
                  baseline->frames[f].outcome);
    }
}

// -----------------------------------------------------------------
// Wall-clock budget source
// -----------------------------------------------------------------

TEST(OverloadBudgetSourceTest, Names)
{
    EXPECT_STREQ(
        overloadBudgetSourceName(OverloadBudgetSource::kModelled),
        "modelled");
    EXPECT_STREQ(
        overloadBudgetSourceName(OverloadBudgetSource::kWallClock),
        "wall-clock");
}

TEST(OverloadBudgetSourceTest, EffectiveLatencySelectsSource)
{
    PipelineTiming timing;
    StageTiming geom;
    geom.name = "geom.build";
    geom.model_seconds = 0.010;
    geom.host_seconds = 0.002;
    StageTiming attr;
    attr.name = "attr.segment";
    attr.model_seconds = 0.004;
    attr.host_seconds = 0.009;
    timing.stages = {geom, attr};

    OverloadConfig config;  // kModelled, idle load
    const EffectiveLatency modelled =
        effectiveEncodeLatency(timing, config, 0);
    EXPECT_DOUBLE_EQ(modelled.total_s, 0.014);
    EXPECT_DOUBLE_EQ(modelled.worst_stage_s, 0.010);
    EXPECT_EQ(modelled.worst_stage, "geom.build");

    config.budget_source = OverloadBudgetSource::kWallClock;
    const EffectiveLatency host =
        effectiveEncodeLatency(timing, config, 0);
    EXPECT_DOUBLE_EQ(host.total_s, 0.011);
    EXPECT_DOUBLE_EQ(host.worst_stage_s, 0.009);
    EXPECT_EQ(host.worst_stage, "attr.segment");

    // Injected load scales whichever source is active.
    config.load.slowdown = 3.0;
    const EffectiveLatency loaded =
        effectiveEncodeLatency(timing, config, 0);
    EXPECT_DOUBLE_EQ(loaded.total_s, 0.033);
}

/**
 * Wall-clock mode reacts to measured host seconds, which vary by
 * machine — so the pinned session traces use only the two extreme
 * deadlines where every host agrees: impossibly tight (every encoded
 * frame misses, the ladder runs straight down to skip) and
 * effectively infinite (the ladder never engages).
 */
TEST(OverloadBudgetSourceTest, WallClockTinyDeadlineBottomsOut)
{
    const std::vector<VoxelCloud> frames = testVideo(10);
    const CodecConfig codec = makeIntraOnlyConfig();

    SessionConfig session = overloadSession(1e-9, LoadSpec::none());
    session.overload.budget_source =
        OverloadBudgetSource::kWallClock;
    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    // Any real host encode overruns a nanosecond: one miss per
    // encoded frame, one rung down each, clamped at skip. The EWMA
    // utilization is astronomically high, so the ladder never climbs
    // back within this stream.
    ASSERT_EQ(overload.ladder.size(), frames.size());
    EXPECT_EQ(rungTrace(overload), "0! 1! 2! 3! 4! 5 5 5 5 5");
    EXPECT_EQ(overload.deadline_misses, 5u);
    EXPECT_EQ(overload.frames_skipped, 5u);
}

TEST(OverloadBudgetSourceTest, WallClockHugeDeadlineStaysClean)
{
    const std::vector<VoxelCloud> frames = testVideo(8);
    const CodecConfig codec = makeIntraOnlyConfig();

    SessionConfig session = overloadSession(1e6, LoadSpec::none());
    session.overload.budget_source =
        OverloadBudgetSource::kWallClock;
    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    const OverloadStats &overload = report->overload;

    EXPECT_EQ(overload.deadline_misses, 0u);
    EXPECT_EQ(overload.rung_occupancy[0], frames.size());
    ASSERT_EQ(report->frames.size(), frames.size());
    for (const SessionFrame &frame : report->frames)
        EXPECT_EQ(frame.outcome, FrameOutcome::kOk);
}

}  // namespace
}  // namespace edgepcc
