/** @file Unit tests for Status / Expected. */

#include "edgepcc/common/status.h"

#include <gtest/gtest.h>

namespace edgepcc {
namespace {

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_TRUE(static_cast<bool>(status));
    EXPECT_EQ(status.code(), StatusCode::kOk);
    EXPECT_EQ(status.toString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status status = invalidArgument("bad input");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "bad input");
    EXPECT_EQ(status.toString(), "INVALID_ARGUMENT: bad input");
}

TEST(Status, AllConstructorsMapToTheirCodes)
{
    EXPECT_EQ(outOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(dataLoss("x").code(), StatusCode::kDataLoss);
    EXPECT_EQ(corruptBitstream("x").code(),
              StatusCode::kCorruptBitstream);
    EXPECT_EQ(unimplemented("x").code(),
              StatusCode::kUnimplemented);
    EXPECT_EQ(internalError("x").code(), StatusCode::kInternal);
    EXPECT_EQ(notFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(ioError("x").code(), StatusCode::kIoError);
}

TEST(Status, CodeNamesAreUnique)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kOk), "OK");
    EXPECT_STRNE(statusCodeName(StatusCode::kDataLoss),
                 statusCodeName(StatusCode::kCorruptBitstream));
}

TEST(Expected, HoldsValue)
{
    Expected<int> value(42);
    ASSERT_TRUE(value.hasValue());
    EXPECT_EQ(*value, 42);
    EXPECT_TRUE(value.status().isOk());
}

TEST(Expected, HoldsError)
{
    Expected<int> error(notFound("nothing here"));
    EXPECT_FALSE(error.hasValue());
    EXPECT_FALSE(static_cast<bool>(error));
    EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(Expected, TakeValueMovesOut)
{
    Expected<std::string> value(std::string("payload"));
    const std::string taken = value.takeValue();
    EXPECT_EQ(taken, "payload");
}

TEST(Expected, ArrowOperator)
{
    Expected<std::string> value(std::string("abc"));
    EXPECT_EQ(value->size(), 3u);
}

Status
propagateHelper(bool fail)
{
    EDGEPCC_RETURN_IF_ERROR(
        fail ? dataLoss("inner") : Status::ok());
    return internalError("reached end");
}

TEST(Status, ReturnIfErrorPropagates)
{
    EXPECT_EQ(propagateHelper(true).code(), StatusCode::kDataLoss);
    EXPECT_EQ(propagateHelper(false).code(),
              StatusCode::kInternal);
}

}  // namespace
}  // namespace edgepcc
