/** @file Tests for point-cloud containers, voxelizer and grid hash. */

#include <gtest/gtest.h>

#include "edgepcc/common/rng.h"
#include "edgepcc/geometry/grid_hash.h"
#include "edgepcc/geometry/point_cloud.h"
#include "edgepcc/geometry/voxelizer.h"

namespace edgepcc {
namespace {

TEST(Aabb, ExpandAndContain)
{
    AABB box;
    EXPECT_FALSE(box.valid());
    box.expand(Vec3f(1, 2, 3));
    box.expand(Vec3f(-1, 5, 0));
    EXPECT_TRUE(box.valid());
    EXPECT_TRUE(box.contains(Vec3f(0, 3, 1)));
    EXPECT_FALSE(box.contains(Vec3f(2, 3, 1)));
    EXPECT_FLOAT_EQ(box.extent().x, 2.0f);
    EXPECT_FLOAT_EQ(box.extent().y, 3.0f);
}

TEST(Vec3, BasicAlgebra)
{
    const Vec3f a(1, 2, 3), b(4, 5, 6);
    EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
    const Vec3f c = a.cross(b);
    EXPECT_FLOAT_EQ(c.x, -3.0f);
    EXPECT_FLOAT_EQ(c.y, 6.0f);
    EXPECT_FLOAT_EQ(c.z, -3.0f);
    EXPECT_NEAR(Vec3f(3, 4, 0).norm(), 5.0f, 1e-6f);
    EXPECT_NEAR(Vec3f(10, 0, 0).normalized().x, 1.0f, 1e-6f);
}

TEST(VoxelCloud, InvariantsHold)
{
    VoxelCloud cloud(4);
    cloud.add(0, 0, 0, 1, 2, 3);
    cloud.add(15, 15, 15, 4, 5, 6);
    EXPECT_TRUE(cloud.checkInvariants());
    EXPECT_EQ(cloud.rawBytes(), 30u);
    EXPECT_EQ(cloud.color(1), (Color{4, 5, 6}));
}

TEST(VoxelCloud, InvariantViolationDetected)
{
    VoxelCloud cloud(4);
    cloud.add(16, 0, 0, 0, 0, 0);  // out of the 16^3 grid
    EXPECT_FALSE(cloud.checkInvariants());
}

TEST(Voxelizer, RejectsEmptyAndBadBits)
{
    PointCloud empty;
    EXPECT_FALSE(voxelize(empty, 10).hasValue());
    PointCloud one;
    one.add(Vec3f(0, 0, 0), Color{});
    EXPECT_FALSE(voxelize(one, 0).hasValue());
    EXPECT_FALSE(voxelize(one, 17).hasValue());
}

TEST(Voxelizer, MapsCornersToGridExtremes)
{
    PointCloud cloud;
    cloud.add(Vec3f(0, 0, 0), Color{10, 10, 10});
    cloud.add(Vec3f(1, 1, 1), Color{20, 20, 20});
    auto result = voxelize(cloud, 4);
    ASSERT_TRUE(result.hasValue());
    ASSERT_EQ(result->cloud.size(), 2u);
    EXPECT_TRUE(result->cloud.checkInvariants());
    // One voxel at the origin, one at the far corner.
    bool has_origin = false, has_corner = false;
    for (std::size_t i = 0; i < 2; ++i) {
        if (result->cloud.x()[i] == 0 &&
            result->cloud.y()[i] == 0)
            has_origin = true;
        if (result->cloud.x()[i] == 15 &&
            result->cloud.y()[i] == 15)
            has_corner = true;
    }
    EXPECT_TRUE(has_origin);
    EXPECT_TRUE(has_corner);
}

TEST(Voxelizer, MergesCoincidentPointsAveragingColors)
{
    PointCloud cloud;
    cloud.add(Vec3f(0, 0, 0), Color{10, 20, 30});
    cloud.add(Vec3f(0.0001f, 0, 0), Color{30, 40, 50});
    cloud.add(Vec3f(100, 100, 100), Color{0, 0, 0});
    auto result = voxelize(cloud, 8);
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->cloud.size(), 2u);
    EXPECT_EQ(result->merged_points, 1u);
    // Find the merged voxel and check the averaged color.
    for (std::size_t i = 0; i < result->cloud.size(); ++i) {
        if (result->cloud.x()[i] == 0) {
            EXPECT_EQ(result->cloud.color(i), (Color{20, 30, 40}));
        }
    }
}

TEST(Voxelizer, TransformRoundtripsWithinHalfVoxel)
{
    Rng rng(21);
    PointCloud cloud;
    for (int i = 0; i < 500; ++i) {
        cloud.add(Vec3f(static_cast<float>(rng.uniform(0, 50)),
                        static_cast<float>(rng.uniform(0, 50)),
                        static_cast<float>(rng.uniform(0, 50))),
                  Color{});
    }
    auto result = voxelize(cloud, 10);
    ASSERT_TRUE(result.hasValue());
    // Every voxel center must map back inside the original bounds,
    // within half a voxel step.
    const float tolerance = result->transform.scale;
    for (std::size_t i = 0; i < result->cloud.size(); ++i) {
        const Vec3f back = result->transform.toFloat(
            result->cloud.x()[i], result->cloud.y()[i],
            result->cloud.z()[i]);
        EXPECT_GE(back.x, -tolerance);
        EXPECT_LE(back.x, 50.0f + tolerance);
    }
}

TEST(GridHash, ExactLookup)
{
    VoxelCloud cloud(8);
    cloud.add(1, 2, 3, 0, 0, 0);
    cloud.add(200, 100, 50, 0, 0, 0);
    const GridHash hash(cloud);
    ASSERT_TRUE(hash.findExact(1, 2, 3).has_value());
    EXPECT_EQ(*hash.findExact(1, 2, 3), 0u);
    EXPECT_EQ(*hash.findExact(200, 100, 50), 1u);
    EXPECT_FALSE(hash.findExact(9, 9, 9).has_value());
}

TEST(GridHash, NearestPrefersExact)
{
    VoxelCloud cloud(8);
    cloud.add(10, 10, 10, 0, 0, 0);
    cloud.add(11, 10, 10, 0, 0, 0);
    const GridHash hash(cloud);
    EXPECT_EQ(*hash.findNearest(10, 10, 10), 0u);
    EXPECT_EQ(*hash.findNearest(11, 10, 10), 1u);
}

TEST(GridHash, NearestWithinRadius)
{
    VoxelCloud cloud(8);
    cloud.add(10, 10, 10, 0, 0, 0);
    const GridHash hash(cloud);
    EXPECT_TRUE(hash.findNearest(12, 10, 10, 4).has_value());
    EXPECT_FALSE(hash.findNearest(20, 10, 10, 4).has_value());
}

TEST(GridHash, NearestMatchesBruteForce)
{
    Rng rng(22);
    VoxelCloud cloud(8);
    for (int i = 0; i < 400; ++i) {
        cloud.add(static_cast<std::uint16_t>(rng.bounded(64)),
                  static_cast<std::uint16_t>(rng.bounded(64)),
                  static_cast<std::uint16_t>(rng.bounded(64)), 0,
                  0, 0);
    }
    const GridHash hash(cloud);
    for (int q = 0; q < 200; ++q) {
        const auto qx =
            static_cast<std::uint16_t>(rng.bounded(64));
        const auto qy =
            static_cast<std::uint16_t>(rng.bounded(64));
        const auto qz =
            static_cast<std::uint16_t>(rng.bounded(64));
        // Brute-force nearest squared distance.
        std::int64_t best = -1;
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            const std::int64_t dx =
                static_cast<std::int64_t>(qx) - cloud.x()[i];
            const std::int64_t dy =
                static_cast<std::int64_t>(qy) - cloud.y()[i];
            const std::int64_t dz =
                static_cast<std::int64_t>(qz) - cloud.z()[i];
            const std::int64_t d2 = dx * dx + dy * dy + dz * dz;
            if (best < 0 || d2 < best)
                best = d2;
        }
        const auto nn = hash.findNearest(qx, qy, qz, 8);
        if (best <= 64) {  // within the hash's search radius
            ASSERT_TRUE(nn.has_value());
            const std::int64_t dx =
                static_cast<std::int64_t>(qx) - cloud.x()[*nn];
            const std::int64_t dy =
                static_cast<std::int64_t>(qy) - cloud.y()[*nn];
            const std::int64_t dz =
                static_cast<std::int64_t>(qz) - cloud.z()[*nn];
            EXPECT_EQ(dx * dx + dy * dy + dz * dz, best);
        }
    }
}

}  // namespace
}  // namespace edgepcc
