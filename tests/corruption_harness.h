/**
 * @file
 * Shared corruption-sweep helpers for decoder robustness tests.
 *
 * A decoder under test is wrapped as a DecodeFn that (a) runs the
 * decode on an arbitrary byte buffer and (b) validates any
 * successfully decoded output (sizes, coordinate bounds) before
 * returning Ok. The sweeps then assert the hardening contract: a
 * corrupt stream may decode to garbage values or fail with
 * Status::kCorruptBitstream, but it must never crash, trip a
 * sanitizer, or yield out-of-bounds output.
 */

#ifndef EDGEPCC_TESTS_CORRUPTION_HARNESS_H
#define EDGEPCC_TESTS_CORRUPTION_HARNESS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "edgepcc/common/rng.h"
#include "edgepcc/common/status.h"

namespace edgepcc::testing {

/** Decodes `bytes` and validates any Ok output before returning. */
using DecodeFn =
    std::function<Status(const std::vector<std::uint8_t> &)>;

/** Result of a corruption sweep. */
struct SweepStats {
    std::size_t attempts = 0;
    std::size_t decoded_ok = 0;   ///< mutations the decoder accepted
    std::size_t rejected = 0;     ///< clean Status failures
};

/**
 * Decodes every strict prefix of `payload` (including the empty
 * buffer). Each truncation point must produce either a clean Status
 * failure or valid output — the process-level contract (no crash, no
 * sanitizer report) is checked implicitly by surviving the sweep.
 * `stride` > 1 samples every stride-th truncation point, for large
 * payloads where the full quadratic sweep is too slow.
 */
inline SweepStats
truncationSweep(const std::vector<std::uint8_t> &payload,
                const DecodeFn &decode, std::size_t stride = 1)
{
    SweepStats stats;
    for (std::size_t len = 0; len < payload.size();
         len += stride) {
        const std::vector<std::uint8_t> prefix(
            payload.begin(),
            payload.begin() + static_cast<std::ptrdiff_t>(len));
        ++stats.attempts;
        if (decode(prefix).isOk())
            ++stats.decoded_ok;
        else
            ++stats.rejected;
    }
    return stats;
}

/**
 * Applies `num_flips` independent single-bit flips at seeded random
 * positions, decoding after each. Every flip starts from the pristine
 * payload, so each trial corrupts exactly one bit.
 */
inline SweepStats
bitFlipSweep(const std::vector<std::uint8_t> &payload,
             const DecodeFn &decode, std::uint64_t seed,
             std::size_t num_flips = 256)
{
    SweepStats stats;
    Rng rng(seed);
    const std::size_t num_bits = payload.size() * 8;
    if (num_bits == 0)
        return stats;
    for (std::size_t flip = 0; flip < num_flips; ++flip) {
        std::vector<std::uint8_t> mutated = payload;
        const std::size_t bit =
            static_cast<std::size_t>(rng.bounded(num_bits));
        mutated[bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        ++stats.attempts;
        if (decode(mutated).isOk())
            ++stats.decoded_ok;
        else
            ++stats.rejected;
    }
    return stats;
}

/**
 * Heavier mutation: overwrites a seeded random run of bytes with
 * random garbage (stresses length fields and varint continuations in
 * ways single-bit flips cannot).
 */
inline SweepStats
garbageRunSweep(const std::vector<std::uint8_t> &payload,
                const DecodeFn &decode, std::uint64_t seed,
                std::size_t num_trials = 64)
{
    SweepStats stats;
    Rng rng(seed);
    if (payload.empty())
        return stats;
    for (std::size_t trial = 0; trial < num_trials; ++trial) {
        std::vector<std::uint8_t> mutated = payload;
        const std::size_t start = static_cast<std::size_t>(
            rng.bounded(mutated.size()));
        const std::size_t max_run = mutated.size() - start;
        const std::size_t run = 1 + static_cast<std::size_t>(
            rng.bounded(std::uint64_t{max_run < 16 ? max_run : 16}));
        for (std::size_t i = 0; i < run; ++i)
            mutated[start + i] =
                static_cast<std::uint8_t>(rng());
        ++stats.attempts;
        if (decode(mutated).isOk())
            ++stats.decoded_ok;
        else
            ++stats.rejected;
    }
    return stats;
}

/** Runs all three sweeps and accumulates the stats. */
inline SweepStats
fullSweep(const std::vector<std::uint8_t> &payload,
          const DecodeFn &decode, std::uint64_t seed,
          std::size_t num_flips = 256)
{
    SweepStats total = truncationSweep(payload, decode);
    const SweepStats flips =
        bitFlipSweep(payload, decode, seed, num_flips);
    const SweepStats runs =
        garbageRunSweep(payload, decode, seed ^ 0x9e3779b9u);
    total.attempts += flips.attempts + runs.attempts;
    total.decoded_ok += flips.decoded_ok + runs.decoded_ok;
    total.rejected += flips.rejected + runs.rejected;
    return total;
}

// -----------------------------------------------------------------
// Chunk-level sweeps (framing layer)
//
// These operate on a stream of already-serialized transport chunks
// rather than one contiguous payload: faults are injected at chunk
// granularity (whole-chunk drops, reordering) or into the
// concatenated wire (bit flips that may land in a header, a CRC
// field, or a payload). The DecodeFn receives the damaged wire
// bytes; for a resilient receiver it should ingest + decode and
// return Ok unless output validation fails.
// -----------------------------------------------------------------

/** Concatenates serialized chunks into one wire buffer. */
inline std::vector<std::uint8_t>
joinChunks(const std::vector<std::vector<std::uint8_t>> &chunks)
{
    std::vector<std::uint8_t> wire;
    for (const auto &chunk : chunks)
        wire.insert(wire.end(), chunk.begin(), chunk.end());
    return wire;
}

/**
 * Drops every single chunk and every contiguous pair of chunks,
 * decoding the concatenation of the survivors each time.
 */
inline SweepStats
chunkDropSweep(const std::vector<std::vector<std::uint8_t>> &chunks,
               const DecodeFn &decode)
{
    SweepStats stats;
    const auto run = [&](std::size_t first, std::size_t count) {
        std::vector<std::uint8_t> wire;
        for (std::size_t i = 0; i < chunks.size(); ++i) {
            if (i >= first && i < first + count)
                continue;
            wire.insert(wire.end(), chunks[i].begin(),
                        chunks[i].end());
        }
        ++stats.attempts;
        if (decode(wire).isOk())
            ++stats.decoded_ok;
        else
            ++stats.rejected;
    };
    for (std::size_t i = 0; i < chunks.size(); ++i)
        run(i, 1);
    for (std::size_t i = 0; i + 1 < chunks.size(); ++i)
        run(i, 2);
    return stats;
}

/**
 * Flips one seeded random bit anywhere in the concatenated wire per
 * trial — headers, CRC fields and payloads are all fair game.
 */
inline SweepStats
chunkFlipSweep(const std::vector<std::vector<std::uint8_t>> &chunks,
               const DecodeFn &decode, std::uint64_t seed,
               std::size_t num_flips = 128)
{
    return bitFlipSweep(joinChunks(chunks), decode, seed,
                        num_flips);
}

/**
 * Shuffles the chunk order with a seeded Fisher–Yates permutation
 * per trial and decodes the reordered wire. No bytes are damaged:
 * a self-delimiting receiver must reassemble by frame id.
 */
inline SweepStats
chunkReorderSweep(
    const std::vector<std::vector<std::uint8_t>> &chunks,
    const DecodeFn &decode, std::uint64_t seed,
    std::size_t num_trials = 32)
{
    SweepStats stats;
    Rng rng(seed);
    if (chunks.empty())
        return stats;
    for (std::size_t trial = 0; trial < num_trials; ++trial) {
        std::vector<std::size_t> order(chunks.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        for (std::size_t i = order.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(rng.bounded(i + 1));
            const std::size_t tmp = order[i];
            order[i] = order[j];
            order[j] = tmp;
        }
        std::vector<std::uint8_t> wire;
        for (const std::size_t i : order)
            wire.insert(wire.end(), chunks[i].begin(),
                        chunks[i].end());
        ++stats.attempts;
        if (decode(wire).isOk())
            ++stats.decoded_ok;
        else
            ++stats.rejected;
    }
    return stats;
}

/** Runs drop + flip + reorder chunk sweeps and accumulates. */
inline SweepStats
chunkFullSweep(
    const std::vector<std::vector<std::uint8_t>> &chunks,
    const DecodeFn &decode, std::uint64_t seed)
{
    SweepStats total = chunkDropSweep(chunks, decode);
    const SweepStats flips = chunkFlipSweep(chunks, decode, seed);
    const SweepStats reorders =
        chunkReorderSweep(chunks, decode, seed ^ 0x85ebca6bu);
    total.attempts += flips.attempts + reorders.attempts;
    total.decoded_ok += flips.decoded_ok + reorders.decoded_ok;
    total.rejected += flips.rejected + reorders.rejected;
    return total;
}

}  // namespace edgepcc::testing

#endif  // EDGEPCC_TESTS_CORRUPTION_HARNESS_H
