/** @file Tests for the streaming substrate (network model,
 *  end-to-end pipeline, rate controller). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "edgepcc/common/rng.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/stream/pipeline.h"
#include "edgepcc/stream/rate_controller.h"
#include "edgepcc/stream/stream_file.h"

namespace edgepcc {
namespace {

TEST(NetworkModel, TransferTimeScalesWithBytes)
{
    const NetworkSpec net = NetworkSpec::wifi();
    const double small = net.transferSeconds(1000);
    const double large = net.transferSeconds(1000000);
    EXPECT_GT(large, small);
    // Latency floor: even zero bytes pay half an RTT plus jitter.
    EXPECT_NEAR(net.transferSeconds(0),
                (net.rtt_ms / 2.0 + net.jitter_ms) / 1e3, 1e-12);
}

TEST(NetworkModel, LossInflatesTransferTime)
{
    NetworkSpec clean = NetworkSpec::wifi();
    clean.packet_loss_rate = 0.0;
    clean.jitter_ms = 0.0;
    NetworkSpec lossy = clean;
    lossy.packet_loss_rate = 0.2;

    const std::uint64_t mb = 1000000;
    // Retransmissions: every byte is sent 1/(1-p) times on average.
    EXPECT_NEAR(lossy.transferSeconds(mb) - lossy.rtt_ms / 2e3,
                (clean.transferSeconds(mb) - clean.rtt_ms / 2e3) /
                    0.8,
                1e-9);
    // A silly loss rate degrades gracefully instead of exploding.
    lossy.packet_loss_rate = 1.0;
    EXPECT_TRUE(std::isfinite(lossy.transferSeconds(mb)));
}

TEST(NetworkModel, PresetsCarryLossAndJitter)
{
    for (const NetworkSpec &net :
         {NetworkSpec::wifi(), NetworkSpec::lte(),
          NetworkSpec::fiveG()}) {
        EXPECT_GT(net.packet_loss_rate, 0.0) << net.name;
        EXPECT_LT(net.packet_loss_rate, 0.1) << net.name;
        EXPECT_GT(net.jitter_ms, 0.0) << net.name;
    }
    // LTE is the flakiest of the three.
    EXPECT_GT(NetworkSpec::lte().packet_loss_rate,
              NetworkSpec::fiveG().packet_loss_rate);
    EXPECT_GT(NetworkSpec::fiveG().packet_loss_rate,
              NetworkSpec::wifi().packet_loss_rate);
}

TEST(NetworkModel, PresetsAreOrdered)
{
    // LTE is the slowest uplink of the three presets.
    const std::uint64_t mb = 1000000;
    EXPECT_GT(NetworkSpec::lte().transferSeconds(mb),
              NetworkSpec::fiveG().transferSeconds(mb));
    EXPECT_GT(NetworkSpec::fiveG().transferSeconds(mb),
              NetworkSpec::wifi().transferSeconds(mb));
}

TEST(NetworkModel, RawFrameMissesRealTime)
{
    // The paper's motivation: a raw ~1M-point frame (15 MB) cannot
    // be shipped within a 33 ms frame budget on common links.
    const std::uint64_t raw_bytes = 15000000;
    EXPECT_GT(NetworkSpec::wifi().transferSeconds(raw_bytes),
              0.033);
}

class PipelineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        VideoSpec spec;
        spec.name = "stream-test";
        spec.seed = 31;
        spec.target_points = 10000;
        SyntheticHumanVideo video(spec);
        for (int f = 0; f < 3; ++f)
            frames_.push_back(video.frame(f));
    }

    static void TearDownTestSuite() { frames_.clear(); }

    static std::vector<VoxelCloud> frames_;
};

std::vector<VoxelCloud> PipelineTest::frames_;

TEST_F(PipelineTest, RejectsEmptyInput)
{
    EXPECT_FALSE(evaluatePipeline({}, makeIntraOnlyConfig(),
                                  PipelineConfig{})
                     .hasValue());
}

TEST_F(PipelineTest, ReportsAllStages)
{
    auto report = evaluatePipeline(
        frames_, makeIntraOnlyConfig(), PipelineConfig{});
    ASSERT_TRUE(report.hasValue());
    ASSERT_EQ(report->frames.size(), frames_.size());
    for (const FrameLatency &frame : report->frames) {
        EXPECT_GT(frame.capture_s, 0.0);
        EXPECT_GT(frame.encode_s, 0.0);
        EXPECT_GT(frame.transmit_s, 0.0);
        EXPECT_GT(frame.decode_s, 0.0);
        EXPECT_GT(frame.render_s, 0.0);
        EXPECT_GT(frame.bytes, 0u);
        EXPECT_NEAR(frame.total(),
                    frame.capture_s + frame.encode_s +
                        frame.transmit_s + frame.decode_s +
                        frame.render_s,
                    1e-12);
        EXPECT_GE(frame.bottleneckSeconds(), frame.capture_s);
        EXPECT_LE(frame.bottleneckSeconds(), frame.total());
    }
    EXPECT_GT(report->pipelinedFps(), 0.0);
    EXPECT_GT(report->meanBitsPerFrame(), 0.0);
}

TEST_F(PipelineTest, ProposedBeatsBaselineEndToEnd)
{
    auto fast = evaluatePipeline(frames_, makeIntraOnlyConfig(),
                                 PipelineConfig{});
    auto slow = evaluatePipeline(frames_, makeTmc13LikeConfig(),
                                 PipelineConfig{});
    ASSERT_TRUE(fast.hasValue());
    ASSERT_TRUE(slow.hasValue());
    EXPECT_LT(fast->meanTotalSeconds(),
              slow->meanTotalSeconds());
    EXPECT_GT(fast->pipelinedFps(), slow->pipelinedFps());
}

TEST_F(PipelineTest, InterModeWorksThroughPipeline)
{
    auto report = evaluatePipeline(
        frames_, makeIntraInterV1Config(), PipelineConfig{});
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->frames[0].type, Frame::Type::kIntra);
    EXPECT_EQ(report->frames[1].type, Frame::Type::kPredicted);
}

TEST(StreamFile, PackUnpackRoundtrip)
{
    Rng rng(55);
    std::vector<std::vector<std::uint8_t>> frames;
    for (int f = 0; f < 5; ++f) {
        std::vector<std::uint8_t> frame(rng.bounded(4000) + 1);
        for (auto &byte : frame)
            byte = static_cast<std::uint8_t>(rng.bounded(256));
        frames.push_back(std::move(frame));
    }
    const auto bytes = packStream(frames);
    auto unpacked = unpackStream(bytes);
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, frames);
}

TEST(StreamFile, EmptyStream)
{
    const auto bytes = packStream({});
    auto unpacked = unpackStream(bytes);
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_TRUE(unpacked->empty());
}

TEST(StreamFile, ZeroLengthFramesAllowed)
{
    std::vector<std::vector<std::uint8_t>> frames{{}, {1, 2}, {}};
    auto unpacked = unpackStream(packStream(frames));
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, frames);
}

TEST(StreamFile, BadMagicRejected)
{
    auto bytes = packStream({{1, 2, 3}});
    bytes[0] = 'X';
    EXPECT_FALSE(unpackStream(bytes).hasValue());
}

TEST(StreamFile, TruncationRejected)
{
    auto bytes = packStream({{1, 2, 3, 4, 5, 6, 7, 8}});
    bytes.resize(bytes.size() - 3);
    const auto unpacked = unpackStream(bytes);
    EXPECT_FALSE(unpacked.hasValue());
    EXPECT_EQ(unpacked.status().code(),
              StatusCode::kCorruptBitstream);
}

TEST(StreamFile, FileRoundtrip)
{
    std::vector<std::vector<std::uint8_t>> frames{
        {9, 8, 7}, {6, 5}, {4}};
    const std::string path = std::string(::testing::TempDir()) +
                             "/edgepcc_test_stream.epcv";
    ASSERT_TRUE(writeStreamFile(path, frames).isOk());
    auto loaded = readStreamFile(path);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(*loaded, frames);
    (void)std::remove(path.c_str());
}

TEST(StreamFile, MissingFileReported)
{
    const auto result = readStreamFile("/no/such/file.epcv");
    EXPECT_FALSE(result.hasValue());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(RateController, IFramesDoNotAdjust)
{
    RateControllerConfig config;
    config.initial_threshold = 15.0;
    ReuseRateController controller(config);
    controller.onFrame(Frame::Type::kIntra, 10 * 1000 * 1000);
    EXPECT_DOUBLE_EQ(controller.threshold(), 15.0);
    EXPECT_EQ(controller.framesObserved(), 1u);
}

TEST(RateController, OvershootRaisesThreshold)
{
    RateControllerConfig config;
    config.target_bytes_per_frame = 100000;
    ReuseRateController controller(config);
    const double before = controller.threshold();
    controller.onFrame(Frame::Type::kPredicted, 400000);
    EXPECT_GT(controller.threshold(), before);
}

TEST(RateController, UndershootLowersThreshold)
{
    RateControllerConfig config;
    config.target_bytes_per_frame = 100000;
    ReuseRateController controller(config);
    const double before = controller.threshold();
    controller.onFrame(Frame::Type::kPredicted, 20000);
    EXPECT_LT(controller.threshold(), before);
}

TEST(RateController, OnTargetIsStable)
{
    RateControllerConfig config;
    config.target_bytes_per_frame = 100000;
    ReuseRateController controller(config);
    const double before = controller.threshold();
    controller.onFrame(Frame::Type::kPredicted, 100000);
    EXPECT_NEAR(controller.threshold(), before, 1e-9);
}

TEST(RateController, ClampsToRange)
{
    RateControllerConfig config;
    config.target_bytes_per_frame = 100000;
    config.min_threshold = 5.0;
    config.max_threshold = 100.0;
    ReuseRateController controller(config);
    for (int i = 0; i < 50; ++i)
        controller.onFrame(Frame::Type::kPredicted, 10000000);
    EXPECT_DOUBLE_EQ(controller.threshold(), 100.0);
    for (int i = 0; i < 50; ++i)
        controller.onFrame(Frame::Type::kPredicted, 1);
    EXPECT_DOUBLE_EQ(controller.threshold(), 5.0);
}

TEST(RateController, ClosedLoopShrinksPFrames)
{
    // Integration: drive the codec with the controller and check
    // that P-frame sizes move toward a tight budget.
    VideoSpec spec;
    spec.name = "rc-test";
    spec.seed = 77;
    spec.target_points = 12000;
    SyntheticHumanVideo video(spec);

    CodecConfig codec = makeIntraInterV1Config();
    RateControllerConfig rc;
    // Budget far below what threshold 15 produces at this scale,
    // so the controller must raise the threshold (more reuse).
    rc.target_bytes_per_frame = 8000;
    rc.gain = 0.8;
    ReuseRateController controller(rc);
    const double initial_threshold = controller.threshold();

    VideoEncoder encoder(codec);
    std::uint64_t first_p = 0, last_p = 0;
    for (int f = 0; f < 9; ++f) {
        CodecConfig current = codec;
        current.block_match.reuse_threshold =
            controller.threshold();
        // Threshold changes only affect P frames; rebuild the
        // encoder config in place via a fresh encoder per GOP
        // would reset state, so mutate through a new encoder only
        // at GOP starts.
        if (f % codec.gop_size == 0) {
            encoder = VideoEncoder(current);
        }
        auto encoded = encoder.encode(video.frame(f % 4));
        ASSERT_TRUE(encoded.hasValue());
        controller.onFrame(encoded->stats.type,
                           encoded->stats.total_bytes);
        if (encoded->stats.type == Frame::Type::kPredicted) {
            if (first_p == 0)
                first_p = encoded->stats.total_bytes;
            last_p = encoded->stats.total_bytes;
        }
    }
    ASSERT_GT(first_p, 0u);
    // The controller raises the threshold and P frames shrink
    // toward the budget (bounded below by the geometry payload).
    EXPECT_GT(controller.threshold(), initial_threshold);
    EXPECT_LE(last_p, first_p);
}

}  // namespace
}  // namespace edgepcc
