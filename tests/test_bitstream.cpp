/** @file Unit and property tests for the bit-level serialization. */

#include "edgepcc/entropy/bitstream.h"

#include <gtest/gtest.h>

#include "edgepcc/common/rng.h"

namespace edgepcc {
namespace {

TEST(BitWriter, SingleBits)
{
    BitWriter writer;
    writer.writeBits(1, 1);
    writer.writeBits(0, 1);
    writer.writeBits(1, 1);
    const auto bytes = writer.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b101u);
}

TEST(BitWriter, CrossesByteBoundary)
{
    BitWriter writer;
    writer.writeBits(0xABC, 12);
    writer.writeBits(0xDE, 8);
    const auto bytes = writer.take();
    BitReader reader(bytes);
    EXPECT_EQ(reader.readBits(12), 0xABCu);
    EXPECT_EQ(reader.readBits(8), 0xDEu);
    EXPECT_FALSE(reader.overrun());
}

TEST(BitWriter, ZeroWidthWriteIsNoop)
{
    BitWriter writer;
    writer.writeBits(123, 0);
    EXPECT_TRUE(writer.take().empty());
}

TEST(BitWriter, MasksHighBits)
{
    BitWriter writer;
    writer.writeBits(0xFF, 4);  // only low 4 bits survive
    writer.writeBits(0x0, 4);
    const auto bytes = writer.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0x0Fu);
}

TEST(BitWriter, SixtyFourBitValues)
{
    const std::uint64_t value = 0xDEADBEEFCAFEBABEull;
    BitWriter writer;
    writer.writeBits(value, 64);
    const std::vector<std::uint8_t> buffer = writer.take();
    BitReader reader(buffer);
    EXPECT_EQ(reader.readBits(64), value);
}

TEST(BitWriter, AlignToByte)
{
    BitWriter writer;
    writer.writeBits(1, 3);
    writer.alignToByte();
    writer.writeBits(0xFF, 8);
    const auto bytes = writer.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0x01u);
    EXPECT_EQ(bytes[1], 0xFFu);
}

TEST(BitReader, OverrunFlagSticks)
{
    const std::vector<std::uint8_t> bytes{0xAA};
    BitReader reader(bytes);
    EXPECT_EQ(reader.readBits(8), 0xAAu);
    EXPECT_FALSE(reader.overrun());
    reader.readBits(1);
    EXPECT_TRUE(reader.overrun());
    EXPECT_FALSE(reader.status().isOk());
}

TEST(Varint, RoundtripBoundaries)
{
    const std::uint64_t cases[] = {
        0, 1, 127, 128, 16383, 16384, 0xFFFFFFFFull,
        ~std::uint64_t{0}};
    BitWriter writer;
    for (const auto value : cases)
        writer.writeVarint(value);
    const std::vector<std::uint8_t> buffer = writer.take();
    BitReader reader(buffer);
    for (const auto value : cases)
        EXPECT_EQ(reader.readVarint(), value);
    EXPECT_FALSE(reader.overrun());
}

TEST(Varint, SignedRoundtrip)
{
    const std::int64_t cases[] = {0, -1, 1, -64, 63, -65, 1000,
                                  -123456789, INT64_MAX,
                                  INT64_MIN + 1};
    BitWriter writer;
    for (const auto value : cases)
        writer.writeSignedVarint(value);
    const std::vector<std::uint8_t> buffer = writer.take();
    BitReader reader(buffer);
    for (const auto value : cases)
        EXPECT_EQ(reader.readSignedVarint(), value);
}

TEST(Zigzag, KnownMapping)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    EXPECT_EQ(zigzagDecode(4), 2);
}

TEST(Zigzag, RoundtripRandom)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto value =
            static_cast<std::int64_t>(rng()) >> (i % 40);
        EXPECT_EQ(zigzagDecode(zigzagEncode(value)), value);
    }
}

TEST(BitWidth, KnownValues)
{
    EXPECT_EQ(bitWidth(0), 0);
    EXPECT_EQ(bitWidth(1), 1);
    EXPECT_EQ(bitWidth(2), 2);
    EXPECT_EQ(bitWidth(3), 2);
    EXPECT_EQ(bitWidth(255), 8);
    EXPECT_EQ(bitWidth(256), 9);
    EXPECT_EQ(bitWidth(~std::uint64_t{0}), 64);
}

/** Property: any interleaving of writes reads back identically. */
class BitstreamFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitstreamFuzz, RandomMixedRoundtrip)
{
    Rng rng(GetParam());
    struct Op {
        std::uint64_t value;
        int bits;
    };
    std::vector<Op> ops;
    BitWriter writer;
    for (int i = 0; i < 500; ++i) {
        const int bits = static_cast<int>(rng.bounded(64)) + 1;
        std::uint64_t value = rng();
        if (bits < 64)
            value &= (std::uint64_t{1} << bits) - 1;
        ops.push_back({value, bits});
        writer.writeBits(value, bits);
    }
    const std::vector<std::uint8_t> buffer = writer.take();
    BitReader reader(buffer);
    for (const Op &op : ops)
        EXPECT_EQ(reader.readBits(op.bits), op.value);
    EXPECT_FALSE(reader.overrun());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           34));

}  // namespace
}  // namespace edgepcc
