/** @file Tests for the G-PCC Predicting Transform attribute codec. */

#include "edgepcc/attr/predicting_transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {
namespace {

VoxelCloud
smoothSortedCloud(std::uint64_t seed, std::size_t n, int bits)
{
    Rng rng(seed);
    std::set<std::uint64_t> codes;
    const std::uint32_t grid = 1u << bits;
    while (codes.size() < n) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const std::uint32_t z = (x + 2 * y) % grid;
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  static_cast<std::uint8_t>(
                      40 + xyz.x * 150 / grid),
                  static_cast<std::uint8_t>(
                      60 + xyz.y * 120 / grid),
                  static_cast<std::uint8_t>(
                      90 + xyz.z * 80 / grid));
    }
    return cloud;
}

double
maxAbsColorError(const VoxelCloud &a, const VoxelCloud &b)
{
    double max_err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(a.r()[i]) -
                                    b.r()[i]));
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(a.g()[i]) -
                                    b.g()[i]));
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(a.b()[i]) -
                                    b.b()[i]));
    }
    return max_err;
}

TEST(Predicting, RejectsBadConfig)
{
    VoxelCloud empty(6);
    EXPECT_FALSE(
        encodePredicting(empty, PredictingConfig{}).hasValue());

    VoxelCloud one(6);
    one.add(1, 1, 1, 9, 9, 9);
    PredictingConfig bad;
    bad.qstep = 0.0;
    EXPECT_FALSE(encodePredicting(one, bad).hasValue());
    bad = PredictingConfig{};
    bad.num_neighbors = 0;
    EXPECT_FALSE(encodePredicting(one, bad).hasValue());
    bad.num_neighbors = 5;
    EXPECT_FALSE(encodePredicting(one, bad).hasValue());
}

TEST(Predicting, SinglePointRoundtrip)
{
    VoxelCloud cloud(6);
    cloud.add(7, 3, 1, 200, 100, 50);
    PredictingConfig config;
    config.qstep = 1.0;
    auto payload = encodePredicting(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    decoded.setColor(0, Color{});
    ASSERT_TRUE(decodePredictingInto(*payload, decoded).isOk());
    EXPECT_NEAR(decoded.r()[0], 200, 1);
    EXPECT_NEAR(decoded.g()[0], 100, 1);
    EXPECT_NEAR(decoded.b()[0], 50, 1);
}

TEST(Predicting, AllDuplicatePointsRoundtrip)
{
    // Unlike RAHT, the predicting transform has no structural
    // dependence on unique codes: a degenerate cloud collapsed onto
    // one voxel predicts each point from identical neighbours and
    // must reconstruct exactly at qstep 1.
    VoxelCloud cloud(6);
    for (int i = 0; i < 16; ++i)
        cloud.add(12, 34, 56, 200, 100, 50);
    PredictingConfig config;
    config.qstep = 1.0;
    auto payload = encodePredicting(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        decoded.setColor(i, Color{});
    ASSERT_TRUE(decodePredictingInto(*payload, decoded).isOk());
    EXPECT_LE(maxAbsColorError(cloud, decoded), 1.0);
}

TEST(Predicting, MaxDepthGridRoundtrip)
{
    // grid_bits 16: the deepest grid uint16 coordinates allow, with
    // points at the extreme corners of the coordinate range.
    const int bits = 16;
    VoxelCloud cloud = smoothSortedCloud(210, 64, bits);
    VoxelCloud corners(bits);
    corners.add(0, 0, 0, 10, 20, 30);
    corners.add(65535, 65535, 65535, 240, 230, 220);
    for (VoxelCloud *c : {&cloud, &corners}) {
        PredictingConfig config;
        config.qstep = 1.0;
        auto payload = encodePredicting(*c, config);
        ASSERT_TRUE(payload.hasValue()) << c->size() << " points";
        VoxelCloud decoded = *c;
        ASSERT_TRUE(decodePredictingInto(*payload, decoded).isOk());
        EXPECT_LE(maxAbsColorError(*c, decoded), 1.0);
    }
}

TEST(Predicting, FineQstepReconstructsTightly)
{
    const VoxelCloud cloud = smoothSortedCloud(200, 1200, 7);
    PredictingConfig config;
    config.qstep = 0.5;
    auto payload = encodePredicting(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    ASSERT_TRUE(decodePredictingInto(*payload, decoded).isOk());
    EXPECT_LE(maxAbsColorError(cloud, decoded), 1.0);
}

TEST(Predicting, QstepControlsRateDistortion)
{
    const VoxelCloud cloud = smoothSortedCloud(201, 3000, 8);
    PredictingConfig fine;
    fine.qstep = 1.0;
    PredictingConfig coarse;
    coarse.qstep = 16.0;
    auto fine_payload = encodePredicting(cloud, fine);
    auto coarse_payload = encodePredicting(cloud, coarse);
    ASSERT_TRUE(fine_payload.hasValue());
    ASSERT_TRUE(coarse_payload.hasValue());
    EXPECT_LT(coarse_payload->size(), fine_payload->size());
}

TEST(Predicting, SmoothContentCompressesBelowRaw)
{
    const VoxelCloud cloud = smoothSortedCloud(202, 5000, 8);
    PredictingConfig config;
    auto payload = encodePredicting(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    EXPECT_LT(payload->size(), cloud.size() * 3);
}

TEST(Predicting, NeighborCountSweepStaysCorrect)
{
    const VoxelCloud cloud = smoothSortedCloud(203, 900, 7);
    for (int neighbors = 1; neighbors <= 4; ++neighbors) {
        PredictingConfig config;
        config.num_neighbors = neighbors;
        config.qstep = 1.0;
        auto payload = encodePredicting(cloud, config);
        ASSERT_TRUE(payload.hasValue()) << neighbors;
        VoxelCloud decoded = cloud;
        ASSERT_TRUE(
            decodePredictingInto(*payload, decoded).isOk())
            << neighbors;
        EXPECT_LE(maxAbsColorError(cloud, decoded), 1.0)
            << neighbors;
    }
}

TEST(Predicting, LodLevelSweepStaysCorrect)
{
    const VoxelCloud cloud = smoothSortedCloud(204, 700, 7);
    for (const int levels : {0, 1, 4, 8, 16}) {
        PredictingConfig config;
        config.lod_levels = levels;
        config.qstep = 1.0;
        auto payload = encodePredicting(cloud, config);
        ASSERT_TRUE(payload.hasValue()) << levels;
        VoxelCloud decoded = cloud;
        ASSERT_TRUE(
            decodePredictingInto(*payload, decoded).isOk())
            << levels;
        EXPECT_LE(maxAbsColorError(cloud, decoded), 1.0)
            << levels;
    }
}

TEST(Predicting, PointCountMismatchRejected)
{
    const VoxelCloud cloud = smoothSortedCloud(205, 500, 7);
    auto payload = encodePredicting(cloud, PredictingConfig{});
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud wrong = smoothSortedCloud(206, 400, 7);
    EXPECT_FALSE(decodePredictingInto(*payload, wrong).isOk());
}

TEST(Predicting, CorruptPayloadRejected)
{
    const VoxelCloud cloud = smoothSortedCloud(207, 500, 7);
    auto payload = encodePredicting(cloud, PredictingConfig{});
    ASSERT_TRUE(payload.hasValue());
    auto bad = *payload;
    bad[0] = 'X';
    VoxelCloud decoded = cloud;
    EXPECT_FALSE(decodePredictingInto(bad, decoded).isOk());
    bad = *payload;
    bad.resize(bad.size() / 2);
    EXPECT_FALSE(decodePredictingInto(bad, decoded).isOk());
}

TEST(Predicting, RecordsSequentialKernel)
{
    const VoxelCloud cloud = smoothSortedCloud(208, 400, 7);
    WorkRecorder recorder;
    auto payload =
        encodePredicting(cloud, PredictingConfig{}, &recorder);
    ASSERT_TRUE(payload.hasValue());
    const auto profile = recorder.takeProfile();
    ASSERT_FALSE(profile.stages.empty());
    EXPECT_EQ(profile.stages[0].name, "attr.predicting");
    ASSERT_FALSE(profile.stages[0].kernels.empty());
    EXPECT_EQ(profile.stages[0].kernels[0].resource,
              ExecResource::kCpuSequential);
}

/** Sweep: roundtrip across sizes and qsteps with bounded error.
 *  Prediction residual quantization error does not accumulate
 *  beyond a small multiple of qstep on smooth content. */
class PredictingSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(PredictingSweep, BoundedReconstructionError)
{
    const auto [n, qstep] = GetParam();
    const VoxelCloud cloud = smoothSortedCloud(
        209 + static_cast<std::uint64_t>(n),
        static_cast<std::size_t>(n), 8);
    PredictingConfig config;
    config.qstep = qstep;
    auto payload = encodePredicting(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    ASSERT_TRUE(decodePredictingInto(*payload, decoded).isOk());
    EXPECT_LE(maxAbsColorError(cloud, decoded), qstep / 2 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredictingSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 64, 1000),
                       ::testing::Values(1.0, 4.0)));

}  // namespace
}  // namespace edgepcc
