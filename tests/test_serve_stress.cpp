/**
 * @file
 * Serve-layer stress: 16 tenant sessions multiplexed over a small
 * shared pool, with batches racing on the worker threads — the TSan
 * job runs this to prove the batch latch, the reference cache and
 * the per-tenant encoder handoff are data-race free. The tenant mix
 * varies with EDGEPCC_CHAOS_SEED (the chaos job sweeps it); every
 * assertion is seed-independent, and a second identical run must
 * reproduce the exact schedule (determinism under concurrency).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/parallel/thread_pool.h"
#include "edgepcc/serve/fault_injector.h"
#include "edgepcc/serve/serve_scheduler.h"

namespace edgepcc {
namespace serve {
namespace {

std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("EDGEPCC_CHAOS_SEED");
    if (env == nullptr)
        return 0;
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<VoxelCloud>
stressVideo(int num_frames, std::uint64_t seed)
{
    VideoSpec spec;
    spec.name = "serve-stress";
    spec.seed = seed;
    spec.target_points = 1500;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

std::vector<TenantSpec>
stressMix(std::uint64_t seed)
{
    std::vector<TenantSpec> tenants;
    for (int t = 0; t < 16; ++t) {
        TenantSpec tenant;
        tenant.name = "tenant-" + std::to_string(t);
        tenant.codec = t % 2 == 0 ? makeIntraOnlyConfig()
                                  : makeIntraInterV1Config();
        // Four content groups of four: popular content, so the
        // reference cache sees real sharing under contention.
        tenant.frames = stressVideo(
            3, seed * 100 + static_cast<std::uint64_t>(t % 4));
        tenant.deadline_class =
            static_cast<DeadlineClass>(t % kDeadlineClassCount);
        tenant.weight = 1.0 + static_cast<double>(t % 3);
        tenant.arrival_offset_s = 0.003 * static_cast<double>(t);
        tenant.queue_capacity = 64;
        tenants.push_back(std::move(tenant));
    }
    return tenants;
}

TEST(ServeStressTest, SixteenSessionsOnSharedPool)
{
    ScopedGlobalPool pool(4);
    const std::uint64_t seed = chaosSeed();

    ServeConfig config;
    config.quantum_s = 0.002;
    config.batch_max = 8;

    ServeScheduler scheduler(config, stressMix(seed));
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    EXPECT_EQ(report->fleet.sessions, 16u);
    EXPECT_EQ(report->fleet.admitted, 16u);
    EXPECT_GT(report->fairness_index, 0.0);
    EXPECT_LE(report->fairness_index, 1.0 + 1e-12);
    for (const TenantReport &tenant : report->tenants) {
        EXPECT_EQ(tenant.stats.served + tenant.stats.dropped +
                      tenant.stats.faulted +
                      tenant.stats.quarantined + tenant.stats.shed,
                  tenant.stats.frames)
            << tenant.name;
        EXPECT_GT(tenant.stats.served, 0u) << tenant.name;
    }
    // Content groups of four: at least the followers within each
    // group hit the cache.
    EXPECT_GT(report->cache.hits, 0u);

    // Same mix, fresh scheduler: byte-for-byte the same schedule
    // even though batches raced on 4 worker threads.
    ServeScheduler again(config, stressMix(seed));
    auto second = again.run();
    ASSERT_TRUE(second.hasValue());
    EXPECT_EQ(traceString(*report), traceString(*second));
    EXPECT_EQ(report->cache.hits, second->cache.hits);
    ASSERT_EQ(report->tenants.size(), second->tenants.size());
    for (std::size_t t = 0; t < report->tenants.size(); ++t) {
        const std::vector<ServedFrame> &a =
            report->tenants[t].frames;
        const std::vector<ServedFrame> &b =
            second->tenants[t].frames;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t f = 0; f < a.size(); ++f)
            EXPECT_EQ(a[f].bitstream, b[f].bitstream);
    }
}

TEST(ServeStressTest, CrashFailoverSweepIsDeterministic)
{
    // Chaos sweep: the 16-tenant mix runs on two replicas and the
    // secondary crashes mid-stream. Whatever the seed, the recovery
    // schedule must be reproducible run-to-run and every surviving
    // stream fully accounted for. The chaos CI job sweeps
    // EDGEPCC_CHAOS_SEED; locally this covers three fixed seeds.
    ScopedGlobalPool pool(4);
    std::vector<std::uint64_t> seeds{chaosSeed(), 17, 4242};

    for (std::uint64_t seed : seeds) {
        ServeConfig config;
        config.quantum_s = 0.002;
        config.batch_max = 8;
        config.replicas = 2;
        config.checkpoint_interval_frames = 1;
        config.faults = DeviceFaultSpec::crashSecondary();

        ServeScheduler scheduler(config, stressMix(seed));
        auto report = scheduler.run();
        ASSERT_TRUE(report.hasValue()) << "seed " << seed;

        EXPECT_EQ(report->recovery.crashes, 1u) << "seed " << seed;
        for (const TenantReport &tenant : report->tenants) {
            EXPECT_EQ(tenant.stats.served + tenant.stats.dropped +
                          tenant.stats.faulted +
                          tenant.stats.quarantined +
                          tenant.stats.shed,
                      tenant.stats.frames)
                << tenant.name << " seed " << seed;
        }

        // Every failed-over tenant's post-crash service starts at a
        // keyframe and decodes cleanly from there — the restored
        // state never leaks an undecodable reference chain.
        for (const FailoverRecord &crash : report->failovers) {
            for (const FailoverMove &move : crash.moves) {
                if (move.to_replica < 0)
                    continue;  // shed, nothing served afterwards
                const TenantReport *moved = nullptr;
                for (const TenantReport &tenant : report->tenants) {
                    if (tenant.name == move.tenant)
                        moved = &tenant;
                }
                ASSERT_NE(moved, nullptr) << move.tenant;
                VideoDecoder fresh;
                bool first_after = true;
                for (const ServedFrame &frame : moved->frames) {
                    if (frame.completion_s <= crash.at_s ||
                        frame.outcome != ServeOutcome::kEncoded)
                        continue;
                    if (first_after) {
                        EXPECT_EQ(frame.stats.type,
                                  Frame::Type::kIntra)
                            << move.tenant << " seed " << seed;
                        first_after = false;
                    }
                    EXPECT_TRUE(
                        fresh.decode(frame.bitstream).hasValue())
                        << move.tenant << " frame "
                        << frame.frame_id << " seed " << seed;
                }
            }
        }

        // Recovery is deterministic: identical traces and bytes on
        // a fresh scheduler over the same mix.
        ServeScheduler again(config, stressMix(seed));
        auto second = again.run();
        ASSERT_TRUE(second.hasValue()) << "seed " << seed;
        EXPECT_EQ(traceString(*report), traceString(*second));
        EXPECT_EQ(recoveryTraceString(*report),
                  recoveryTraceString(*second));
        ASSERT_EQ(report->tenants.size(), second->tenants.size());
        for (std::size_t t = 0; t < report->tenants.size(); ++t) {
            const std::vector<ServedFrame> &a =
                report->tenants[t].frames;
            const std::vector<ServedFrame> &b =
                second->tenants[t].frames;
            ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
            for (std::size_t f = 0; f < a.size(); ++f)
                EXPECT_EQ(a[f].bitstream, b[f].bitstream)
                    << "seed " << seed;
        }
    }
}

}  // namespace
}  // namespace serve
}  // namespace edgepcc
