/**
 * @file
 * Serve-layer stress: 16 tenant sessions multiplexed over a small
 * shared pool, with batches racing on the worker threads — the TSan
 * job runs this to prove the batch latch, the reference cache and
 * the per-tenant encoder handoff are data-race free. The tenant mix
 * varies with EDGEPCC_CHAOS_SEED (the chaos job sweeps it); every
 * assertion is seed-independent, and a second identical run must
 * reproduce the exact schedule (determinism under concurrency).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/parallel/thread_pool.h"
#include "edgepcc/serve/serve_scheduler.h"

namespace edgepcc {
namespace serve {
namespace {

std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("EDGEPCC_CHAOS_SEED");
    if (env == nullptr)
        return 0;
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<VoxelCloud>
stressVideo(int num_frames, std::uint64_t seed)
{
    VideoSpec spec;
    spec.name = "serve-stress";
    spec.seed = seed;
    spec.target_points = 1500;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

std::vector<TenantSpec>
stressMix(std::uint64_t seed)
{
    std::vector<TenantSpec> tenants;
    for (int t = 0; t < 16; ++t) {
        TenantSpec tenant;
        tenant.name = "tenant-" + std::to_string(t);
        tenant.codec = t % 2 == 0 ? makeIntraOnlyConfig()
                                  : makeIntraInterV1Config();
        // Four content groups of four: popular content, so the
        // reference cache sees real sharing under contention.
        tenant.frames = stressVideo(
            3, seed * 100 + static_cast<std::uint64_t>(t % 4));
        tenant.deadline_class =
            static_cast<DeadlineClass>(t % kDeadlineClassCount);
        tenant.weight = 1.0 + static_cast<double>(t % 3);
        tenant.arrival_offset_s = 0.003 * static_cast<double>(t);
        tenant.queue_capacity = 64;
        tenants.push_back(std::move(tenant));
    }
    return tenants;
}

TEST(ServeStressTest, SixteenSessionsOnSharedPool)
{
    ScopedGlobalPool pool(4);
    const std::uint64_t seed = chaosSeed();

    ServeConfig config;
    config.quantum_s = 0.002;
    config.batch_max = 8;

    ServeScheduler scheduler(config, stressMix(seed));
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    EXPECT_EQ(report->fleet.sessions, 16u);
    EXPECT_EQ(report->fleet.admitted, 16u);
    EXPECT_GT(report->fairness_index, 0.0);
    EXPECT_LE(report->fairness_index, 1.0 + 1e-12);
    for (const TenantReport &tenant : report->tenants) {
        EXPECT_EQ(tenant.stats.served + tenant.stats.dropped,
                  tenant.stats.frames)
            << tenant.name;
        EXPECT_GT(tenant.stats.served, 0u) << tenant.name;
    }
    // Content groups of four: at least the followers within each
    // group hit the cache.
    EXPECT_GT(report->cache.hits, 0u);

    // Same mix, fresh scheduler: byte-for-byte the same schedule
    // even though batches raced on 4 worker threads.
    ServeScheduler again(config, stressMix(seed));
    auto second = again.run();
    ASSERT_TRUE(second.hasValue());
    EXPECT_EQ(traceString(*report), traceString(*second));
    EXPECT_EQ(report->cache.hits, second->cache.hits);
    ASSERT_EQ(report->tenants.size(), second->tenants.size());
    for (std::size_t t = 0; t < report->tenants.size(); ++t) {
        const std::vector<ServedFrame> &a =
            report->tenants[t].frames;
        const std::vector<ServedFrame> &b =
            second->tenants[t].frames;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t f = 0; f < a.size(); ++f)
            EXPECT_EQ(a[f].bitstream, b[f].bitstream);
    }
}

}  // namespace
}  // namespace serve
}  // namespace edgepcc
