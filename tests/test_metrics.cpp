/** @file Tests for quality metrics and CDF utilities. */

#include <gtest/gtest.h>

#include <cmath>

#include "edgepcc/metrics/cdf.h"
#include "edgepcc/metrics/quality.h"

namespace edgepcc {
namespace {

VoxelCloud
lineCloud(int n, std::uint8_t base_color = 100)
{
    VoxelCloud cloud(8);
    for (int i = 0; i < n; ++i) {
        cloud.add(static_cast<std::uint16_t>(i), 10, 10,
                  base_color, base_color, base_color);
    }
    return cloud;
}

TEST(AttrPsnr, IdenticalCloudsAreLossless)
{
    const VoxelCloud cloud = lineCloud(100);
    const AttrQuality quality = attributePsnr(cloud, cloud);
    EXPECT_EQ(quality.mse, 0.0);
    EXPECT_TRUE(std::isinf(quality.psnr));
    EXPECT_EQ(quality.matched_points, 100u);
    EXPECT_EQ(quality.unmatched_points, 0u);
}

TEST(AttrPsnr, KnownUniformError)
{
    const VoxelCloud a = lineCloud(50, 100);
    const VoxelCloud b = lineCloud(50, 110);  // +10 on all channels
    const AttrQuality quality = attributePsnr(a, b);
    EXPECT_NEAR(quality.mse, 100.0, 1e-9);
    EXPECT_NEAR(quality.psnr, 10.0 * std::log10(255.0 * 255.0 / 100.0),
                1e-9);
}

TEST(AttrPsnr, MatchesThroughSmallGeometricDisplacement)
{
    // Decoded cloud shifted by one voxel: NN matching must still
    // pair the points and see zero color error.
    const VoxelCloud a = lineCloud(50);
    VoxelCloud b(8);
    for (int i = 0; i < 50; ++i) {
        b.add(static_cast<std::uint16_t>(i), 11, 10, 100, 100,
              100);
    }
    const AttrQuality quality = attributePsnr(a, b);
    EXPECT_EQ(quality.mse, 0.0);
    EXPECT_EQ(quality.matched_points, 50u);
}

TEST(AttrPsnr, EmptyCloudsAreSafe)
{
    VoxelCloud empty(8);
    const VoxelCloud cloud = lineCloud(10);
    EXPECT_EQ(attributePsnr(empty, cloud).matched_points, 0u);
    EXPECT_EQ(attributePsnr(cloud, empty).matched_points, 0u);
}

TEST(GeometryPsnr, IdenticalIsInfinite)
{
    const VoxelCloud cloud = lineCloud(64);
    const GeometryQuality quality = geometryPsnrD1(cloud, cloud);
    EXPECT_EQ(quality.mse, 0.0);
    EXPECT_TRUE(std::isinf(quality.psnr));
}

TEST(GeometryPsnr, UnitDisplacement)
{
    const VoxelCloud a = lineCloud(64);
    VoxelCloud b(8);
    for (int i = 0; i < 64; ++i) {
        b.add(static_cast<std::uint16_t>(i), 11, 10, 0, 0, 0);
    }
    const GeometryQuality quality = geometryPsnrD1(a, b);
    EXPECT_NEAR(quality.mse, 1.0, 1e-9);
    EXPECT_NEAR(quality.psnr,
                10.0 * std::log10(255.0 * 255.0 / 1.0), 1e-9);
}

TEST(GeometryPsnr, SymmetricTakesWorseDirection)
{
    // b has an extra far-away point: the b->a direction dominates.
    const VoxelCloud a = lineCloud(32);
    VoxelCloud b = lineCloud(32);
    b.add(200, 200, 200, 0, 0, 0);
    const GeometryQuality ab = geometryPsnrD1(a, b);
    EXPECT_GE(ab.mse, 0.0);
    // a -> b alone would be lossless; symmetry must not report 0
    // unless the far point is outside the NN search radius (it is,
    // so both directions skip it; just check no crash and finite).
    EXPECT_TRUE(std::isfinite(ab.psnr) || ab.mse == 0.0);
}

TEST(Cdf, QuantilesAndFractions)
{
    EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
    EXPECT_EQ(cdf.sampleCount(), 5u);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(3.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10.0), 1.0);
}

TEST(Cdf, EmptyIsSafe)
{
    EmpiricalCdf cdf({});
    EXPECT_EQ(cdf.sampleCount(), 0u);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Cdf, FractionIsMonotone)
{
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i)
        samples.push_back(static_cast<double>((i * 37) % 100));
    EmpiricalCdf cdf(std::move(samples));
    double prev = -1.0;
    for (double x = -5.0; x <= 105.0; x += 1.0) {
        const double f = cdf.fractionAtOrBelow(x);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

}  // namespace
}  // namespace edgepcc
