/**
 * @file
 * Concurrency stress tests for the thread pool and the parallel
 * primitives. These are race detectors' food: run them under the
 * tsan preset. Every test constructs its own multi-worker pool so
 * the stress is real even on single-core hosts, where the global
 * pool has zero workers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "edgepcc/common/rng.h"
#include "edgepcc/parallel/parallel_for.h"
#include "edgepcc/parallel/radix_sort.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace {

TEST(ParallelStress, ConcurrentParallelForOnSharedPool)
{
    ThreadPool pool(4);
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kN = 20000;
    std::vector<std::vector<std::atomic<int>>> hits(kCallers);
    for (auto &caller_hits : hits)
        caller_hits = std::vector<std::atomic<int>>(kN);

    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&pool, &hits, c] {
            for (int round = 0; round < 8; ++round)
                parallelFor(
                    0, hits[c].size(),
                    [&hits, c](std::size_t i) {
                        hits[c][i].fetch_add(
                            1, std::memory_order_relaxed);
                    },
                    pool, 512);
        });
    }
    for (auto &caller : callers)
        caller.join();

    for (std::size_t c = 0; c < kCallers; ++c)
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[c][i].load(), 8) << c << ":" << i;
}

TEST(ParallelStress, ConcurrentParallelReduceOnSharedPool)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 100000;
    const std::uint64_t expected = kN * (kN - 1) / 2;

    std::vector<std::thread> callers;
    std::array<std::uint64_t, 4> results{};
    for (std::size_t c = 0; c < results.size(); ++c) {
        callers.emplace_back([&pool, &results, c] {
            results[c] = parallelReduce(
                std::size_t{0}, kN, std::uint64_t{0},
                [](std::size_t i) {
                    return static_cast<std::uint64_t>(i);
                },
                [](std::uint64_t a, std::uint64_t b) {
                    return a + b;
                },
                pool, 1024);
        });
    }
    for (auto &caller : callers)
        caller.join();
    for (const std::uint64_t result : results)
        EXPECT_EQ(result, expected);
}

TEST(ParallelStress, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(3);
    constexpr std::size_t kOuter = 64;
    constexpr std::size_t kInner = 256;
    std::vector<std::atomic<int>> hits(kOuter * kInner);

    parallelFor(
        0, kOuter,
        [&pool, &hits](std::size_t outer) {
            parallelFor(
                0, kInner,
                [&hits, outer](std::size_t inner) {
                    hits[outer * kInner + inner].fetch_add(
                        1, std::memory_order_relaxed);
                },
                pool, 32);
        },
        pool, 1);

    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelStress, SubmitAndWaitFromManyThreads)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &counter] {
            for (int i = 0; i < 200; ++i)
                pool.submit([&counter] {
                    counter.fetch_add(1,
                                      std::memory_order_relaxed);
                });
            pool.wait();
        });
    }
    for (auto &producer : producers)
        producer.join();
    pool.wait();
    EXPECT_EQ(counter.load(), 800);
}

TEST(ParallelStress, PoolChurnWithPendingTasks)
{
    // Construct/destroy pools while tasks are still queued; the
    // destructor must run or discard them without racing the
    // workers. The counter outlives every pool.
    auto counter = std::make_shared<std::atomic<int>>(0);
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(3);
        for (int i = 0; i < 64; ++i)
            pool.submit([counter] {
                counter->fetch_add(1,
                                   std::memory_order_relaxed);
            });
        // No wait(): destruction races against execution on
        // purpose. Tasks hold shared ownership of the counter.
    }
    EXPECT_GE(counter->load(), 0);
}

TEST(ParallelStress, RadixSortFromManyThreads)
{
    std::vector<std::thread> sorters;
    std::atomic<bool> all_sorted{true};
    for (unsigned t = 0; t < 4; ++t) {
        sorters.emplace_back([t, &all_sorted] {
            Rng rng(900 + t);
            std::vector<KeyIndex> pairs(50000);
            for (std::uint32_t i = 0; i < pairs.size(); ++i)
                pairs[i] = {rng(), i};
            radixSortPairs(pairs, 64);
            for (std::size_t i = 1; i < pairs.size(); ++i)
                if (pairs[i - 1].key > pairs[i].key)
                    all_sorted.store(false);
        });
    }
    for (auto &sorter : sorters)
        sorter.join();
    EXPECT_TRUE(all_sorted.load());
}

TEST(ParallelStress, ParallelForChunksConcurrent)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 30000;
    std::vector<std::thread> callers;
    std::array<std::atomic<std::uint64_t>, 3> sums{};
    for (std::size_t c = 0; c < sums.size(); ++c) {
        callers.emplace_back([&pool, &sums, c] {
            parallelForChunks(
                0, kN,
                [&sums, c](std::size_t lo, std::size_t hi) {
                    std::uint64_t local = 0;
                    for (std::size_t i = lo; i < hi; ++i)
                        local += i;
                    sums[c].fetch_add(
                        local, std::memory_order_relaxed);
                },
                pool, 256);
        });
    }
    for (auto &caller : callers)
        caller.join();
    const std::uint64_t expected =
        std::uint64_t{kN} * (kN - 1) / 2;
    for (const auto &sum : sums)
        EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace edgepcc
