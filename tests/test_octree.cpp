/** @file Tests for the sequential and parallel octree builders. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/octree/parallel_builder.h"
#include "edgepcc/octree/sequential_builder.h"

namespace edgepcc {
namespace {

VoxelCloud
uniqueRandomCloud(std::uint64_t seed, std::size_t n, int bits)
{
    Rng rng(seed);
    std::set<std::uint64_t> used;
    VoxelCloud cloud(bits);
    const std::uint32_t grid = 1u << bits;
    while (cloud.size() < n) {
        const auto x =
            static_cast<std::uint16_t>(rng.bounded(grid));
        const auto y =
            static_cast<std::uint16_t>(rng.bounded(grid));
        const auto z =
            static_cast<std::uint16_t>(rng.bounded(grid));
        if (used.insert(mortonEncode(x, y, z)).second)
            cloud.add(x, y, z, 0, 0, 0);
    }
    return cloud;
}

// ---------------------------------------------------------------
// Sequential builder
// ---------------------------------------------------------------

TEST(SequentialOctree, SinglePoint)
{
    VoxelCloud cloud(3);
    cloud.add(5, 2, 7, 0, 0, 0);
    const PointerOctree tree = buildSequentialOctree(cloud);
    EXPECT_EQ(tree.numLeaves(), 1u);
    // Root + one node per level.
    EXPECT_EQ(tree.numNodes(), 4u);
}

TEST(SequentialOctree, DuplicatesCollapse)
{
    VoxelCloud cloud(4);
    cloud.add(1, 1, 1, 0, 0, 0);
    cloud.add(1, 1, 1, 0, 0, 0);
    const PointerOctree tree = buildSequentialOctree(cloud);
    EXPECT_EQ(tree.numLeaves(), 1u);
}

TEST(SequentialOctree, RootOccupancyReflectsOctants)
{
    VoxelCloud cloud(1);  // 2x2x2 grid: leaves are root children
    cloud.add(0, 0, 0, 0, 0, 0);  // octant 0
    cloud.add(1, 1, 1, 0, 0, 0);  // octant 7
    const PointerOctree tree = buildSequentialOctree(cloud);
    EXPECT_EQ(tree.nodes()[0].occupancy, 0b10000001u);
}

TEST(SequentialOctree, InsertReturnsDepthWalked)
{
    PointerOctree tree(5);
    EXPECT_EQ(tree.insert(0, 0, 0), 5);
}

TEST(SequentialOctree, SerializationSizeEqualsBranchCount)
{
    const VoxelCloud cloud = uniqueRandomCloud(31, 300, 6);
    const PointerOctree tree = buildSequentialOctree(cloud);
    const auto stream = serializeDepthFirst(tree);
    // One byte per branch node; leaves carry none.
    EXPECT_EQ(stream.size(), tree.numNodes() - tree.numLeaves());
}

// ---------------------------------------------------------------
// Parallel builder
// ---------------------------------------------------------------

TEST(ParallelOctree, RejectsBadInput)
{
    EXPECT_FALSE(buildParallelOctree({}, 4).hasValue());
    EXPECT_FALSE(buildParallelOctree({3, 1}, 4).hasValue());
    EXPECT_FALSE(buildParallelOctree({0}, 0).hasValue());
}

TEST(ParallelOctree, SinglePointTree)
{
    const std::vector<std::uint64_t> codes{
        mortonEncode(3, 3, 3)};
    auto tree = buildParallelOctree(codes, 2);
    ASSERT_TRUE(tree.hasValue());
    EXPECT_EQ(tree->depth, 2);
    EXPECT_EQ(tree->numNodes(), 3u);  // root, level-1, leaf
    EXPECT_EQ(tree->numLeaves(), 1u);
    EXPECT_EQ(tree->parent[0], -1);
    EXPECT_EQ(tree->parent[1], 0);
    EXPECT_EQ(tree->parent[2], 1);
}

TEST(ParallelOctree, PaperFigureFiveShape)
{
    // Paper Fig. 5: three points on a depth-2 tree. P0=(1,0,0),
    // P1=(0,0,0) (after shifting the paper's -1 into grid range)
    // and P2=(3,3,3).
    const std::vector<std::uint64_t> codes = [] {
        std::vector<std::uint64_t> c{mortonEncode(0, 0, 0),
                                     mortonEncode(1, 0, 0),
                                     mortonEncode(3, 3, 3)};
        std::sort(c.begin(), c.end());
        return c;
    }();
    auto tree = buildParallelOctree(codes, 2);
    ASSERT_TRUE(tree.hasValue());
    // Level 1 has two nodes (cells 0 and 7), leaves three.
    EXPECT_EQ(tree->numNodesAtLevel(0), 1u);
    EXPECT_EQ(tree->numNodesAtLevel(1), 2u);
    EXPECT_EQ(tree->numLeaves(), 3u);

    const auto occupancy = occupancyFromFlatOctree(*tree);
    ASSERT_EQ(occupancy.size(), 3u);  // root + 2 branch nodes
    EXPECT_EQ(occupancy[0], 0b10000001u);  // children 0 and 7
    EXPECT_EQ(occupancy[1], 0b00000011u);  // leaves 0 and 1
    EXPECT_EQ(occupancy[2], 0b10000000u);  // leaf 7
}

TEST(ParallelOctree, DuplicateCodesCollapse)
{
    const std::uint64_t code = mortonEncode(1, 2, 3);
    auto tree = buildParallelOctree({code, code, code}, 4);
    ASSERT_TRUE(tree.hasValue());
    EXPECT_EQ(tree->numLeaves(), 1u);
}

TEST(ParallelOctree, ParentChildCodesConsistent)
{
    const VoxelCloud cloud = uniqueRandomCloud(32, 500, 6);
    std::vector<std::uint64_t> codes;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        codes.push_back(mortonEncode(cloud.x()[i], cloud.y()[i],
                                     cloud.z()[i]));
    std::sort(codes.begin(), codes.end());
    auto tree = buildParallelOctree(codes, 6);
    ASSERT_TRUE(tree.hasValue());
    for (std::size_t i = 1; i < tree->numNodes(); ++i) {
        const auto parent =
            static_cast<std::size_t>(tree->parent[i]);
        EXPECT_EQ(tree->codes[i] >> 3, tree->codes[parent]);
    }
    // Level offsets are consistent and codes ascend per level.
    for (int level = 0; level <= tree->depth; ++level) {
        const auto lo =
            tree->level_offsets[static_cast<std::size_t>(level)];
        const auto hi = tree->level_offsets[
            static_cast<std::size_t>(level) + 1];
        for (std::size_t i = lo + 1; i < hi; ++i)
            EXPECT_LT(tree->codes[i - 1], tree->codes[i]);
    }
}

TEST(ParallelOctree, LeavesMatchInputCodes)
{
    const VoxelCloud cloud = uniqueRandomCloud(33, 700, 7);
    std::vector<std::uint64_t> codes;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        codes.push_back(mortonEncode(cloud.x()[i], cloud.y()[i],
                                     cloud.z()[i]));
    std::sort(codes.begin(), codes.end());
    auto tree = buildParallelOctree(codes, 7);
    ASSERT_TRUE(tree.hasValue());
    ASSERT_EQ(tree->numLeaves(), codes.size());
    const auto leaf_base =
        tree->level_offsets[static_cast<std::size_t>(tree->depth)];
    for (std::size_t i = 0; i < codes.size(); ++i)
        EXPECT_EQ(tree->codes[leaf_base + i], codes[i]);
}

// ---------------------------------------------------------------
// Cross-validation: both builders describe the same tree
// ---------------------------------------------------------------

TEST(OctreeCrossCheck, OccupancyMultisetsMatch)
{
    const VoxelCloud cloud = uniqueRandomCloud(34, 1000, 6);

    const PointerOctree seq = buildSequentialOctree(cloud);
    auto seq_stream = serializeDepthFirst(seq);

    std::vector<std::uint64_t> codes;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        codes.push_back(mortonEncode(cloud.x()[i], cloud.y()[i],
                                     cloud.z()[i]));
    std::sort(codes.begin(), codes.end());
    auto par = buildParallelOctree(codes, 6);
    ASSERT_TRUE(par.hasValue());
    auto par_stream = occupancyFromFlatOctree(*par);

    // Same tree, different traversal order: the byte multisets and
    // counts must agree.
    ASSERT_EQ(seq_stream.size(), par_stream.size());
    std::sort(seq_stream.begin(), seq_stream.end());
    std::sort(par_stream.begin(), par_stream.end());
    EXPECT_EQ(seq_stream, par_stream);

    EXPECT_EQ(seq.numNodes(), par->numNodes());
    EXPECT_EQ(seq.numLeaves(), par->numLeaves());
}

TEST(OctreeCrossCheck, RootBytesIdentical)
{
    const VoxelCloud cloud = uniqueRandomCloud(35, 200, 5);
    const PointerOctree seq = buildSequentialOctree(cloud);
    const auto seq_stream = serializeDepthFirst(seq);

    std::vector<std::uint64_t> codes;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        codes.push_back(mortonEncode(cloud.x()[i], cloud.y()[i],
                                     cloud.z()[i]));
    std::sort(codes.begin(), codes.end());
    auto par = buildParallelOctree(codes, 5);
    ASSERT_TRUE(par.hasValue());
    const auto par_stream = occupancyFromFlatOctree(*par);

    // DFS and BFS both emit the root byte first.
    ASSERT_FALSE(seq_stream.empty());
    ASSERT_FALSE(par_stream.empty());
    EXPECT_EQ(seq_stream[0], par_stream[0]);
}

/** Parameterized sweep: node counts agree across sizes/depths. */
class OctreeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OctreeSweep, BuildersAgreeOnStructure)
{
    const auto [n, bits] = GetParam();
    // Never ask for more unique voxels than half the grid holds.
    const std::size_t capped = std::min<std::size_t>(
        static_cast<std::size_t>(n),
        (std::size_t{1} << (3 * bits)) / 2 + 1);
    const VoxelCloud cloud = uniqueRandomCloud(
        static_cast<std::uint64_t>(n) * 37 +
            static_cast<std::uint64_t>(bits),
        capped, bits);
    const PointerOctree seq = buildSequentialOctree(cloud);
    std::vector<std::uint64_t> codes;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        codes.push_back(mortonEncode(cloud.x()[i], cloud.y()[i],
                                     cloud.z()[i]));
    std::sort(codes.begin(), codes.end());
    auto par = buildParallelOctree(codes, bits);
    ASSERT_TRUE(par.hasValue());
    EXPECT_EQ(seq.numNodes(), par->numNodes());
    EXPECT_EQ(seq.numLeaves(), par->numLeaves());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDepths, OctreeSweep,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 2000),
                       ::testing::Values(2, 5, 8, 10)));

}  // namespace
}  // namespace edgepcc
