/** @file Tests for the RAHT attribute codec. */

#include "edgepcc/attr/raht.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/morton/morton_order.h"

namespace edgepcc {
namespace {

/** Morton-sorted, duplicate-free cloud with smooth colors. */
VoxelCloud
smoothSortedCloud(std::uint64_t seed, std::size_t n, int bits)
{
    Rng rng(seed);
    std::set<std::uint64_t> codes;
    const std::uint32_t grid = 1u << bits;
    while (codes.size() < n) {
        // Cluster points on a smooth 2D-ish sheet for locality.
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const auto z = static_cast<std::uint32_t>(
            (x + y) % grid);
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        // Smooth color field over position.
        const auto r = static_cast<std::uint8_t>(
            100 + (xyz.x * 100) / grid);
        const auto g = static_cast<std::uint8_t>(
            50 + (xyz.y * 150) / grid);
        const auto b = static_cast<std::uint8_t>(
            30 + ((xyz.x + xyz.z) * 90) / (2 * grid));
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z), r, g, b);
    }
    return cloud;
}

double
maxAbsColorError(const VoxelCloud &a, const VoxelCloud &b)
{
    double max_err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(
            max_err,
            std::abs(static_cast<double>(a.r()[i]) - b.r()[i]));
        max_err = std::max(
            max_err,
            std::abs(static_cast<double>(a.g()[i]) - b.g()[i]));
        max_err = std::max(
            max_err,
            std::abs(static_cast<double>(a.b()[i]) - b.b()[i]));
    }
    return max_err;
}

TEST(Raht, RejectsEmptyAndUnsorted)
{
    VoxelCloud empty(4);
    EXPECT_FALSE(encodeRaht(empty, RahtConfig{}).hasValue());

    VoxelCloud unsorted(4);
    unsorted.add(5, 5, 5, 0, 0, 0);
    unsorted.add(0, 0, 0, 0, 0, 0);
    EXPECT_FALSE(encodeRaht(unsorted, RahtConfig{}).hasValue());
}

TEST(Raht, RejectsDuplicatePoints)
{
    // RAHT's merge replay needs strictly increasing Morton codes;
    // a cloud collapsed onto one voxel must be rejected cleanly,
    // not mis-encoded.
    VoxelCloud duplicates(6);
    for (int i = 0; i < 8; ++i)
        duplicates.add(12, 34, 56, 200, 100, 50);
    EXPECT_FALSE(encodeRaht(duplicates, RahtConfig{}).hasValue());

    VoxelCloud pair(6);
    pair.add(0, 0, 0, 1, 2, 3);
    pair.add(0, 0, 0, 1, 2, 3);
    EXPECT_FALSE(encodeRaht(pair, RahtConfig{}).hasValue());
}

TEST(Raht, MaxDepthGridRoundtrip)
{
    // grid_bits 16 is the deepest octree VoxelCloud's uint16
    // coordinates allow: 48 butterfly levels, coordinates at the
    // extremes of the value range.
    const int bits = 16;
    VoxelCloud cloud = smoothSortedCloud(80, 64, bits);
    // Pin the exact corners of the grid as well.
    VoxelCloud corners(bits);
    corners.add(0, 0, 0, 10, 20, 30);
    corners.add(65535, 65535, 65535, 240, 230, 220);
    for (VoxelCloud *c : {&cloud, &corners}) {
        RahtConfig config;
        config.qstep = 1.0;
        auto payload = encodeRaht(*c, config);
        ASSERT_TRUE(payload.hasValue()) << c->size() << " points";
        VoxelCloud decoded = *c;
        ASSERT_TRUE(decodeRahtInto(*payload, decoded).isOk());
        EXPECT_LE(maxAbsColorError(*c, decoded), 2.0);
    }
}

TEST(Raht, RejectsNonPositiveQstep)
{
    VoxelCloud cloud(4);
    cloud.add(0, 0, 0, 1, 2, 3);
    RahtConfig config;
    config.qstep = 0.0;
    EXPECT_FALSE(encodeRaht(cloud, config).hasValue());
}

TEST(Raht, SinglePointRoundtrip)
{
    VoxelCloud cloud(4);
    cloud.add(3, 9, 2, 123, 45, 210);
    RahtConfig config;
    config.qstep = 1.0;
    auto payload = encodeRaht(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    decoded.mutableR()[0] = 0;
    decoded.mutableG()[0] = 0;
    decoded.mutableB()[0] = 0;
    ASSERT_TRUE(decodeRahtInto(*payload, decoded).isOk());
    EXPECT_NEAR(decoded.r()[0], 123, 1);
    EXPECT_NEAR(decoded.g()[0], 45, 1);
    EXPECT_NEAR(decoded.b()[0], 210, 1);
}

TEST(Raht, ConstantColorsAreNearLossless)
{
    VoxelCloud cloud = smoothSortedCloud(70, 500, 6);
    for (std::size_t i = 0; i < cloud.size(); ++i)
        cloud.setColor(i, Color{90, 120, 60});
    RahtConfig config;
    config.qstep = 4.0;
    auto payload = encodeRaht(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    ASSERT_TRUE(decodeRahtInto(*payload, decoded).isOk());
    // All HC coefficients are zero for constant input; only DC
    // quantization error remains.
    EXPECT_LE(maxAbsColorError(cloud, decoded), 3.0);
}

TEST(Raht, FineQstepGivesTightReconstruction)
{
    const VoxelCloud cloud = smoothSortedCloud(71, 800, 6);
    RahtConfig config;
    config.qstep = 0.25;
    auto payload = encodeRaht(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    ASSERT_TRUE(decodeRahtInto(*payload, decoded).isOk());
    EXPECT_LE(maxAbsColorError(cloud, decoded), 2.0);
}

TEST(Raht, QstepControlsRateDistortion)
{
    const VoxelCloud cloud = smoothSortedCloud(72, 1500, 7);
    RahtConfig fine;
    fine.qstep = 1.0;
    RahtConfig coarse;
    coarse.qstep = 16.0;
    auto fine_payload = encodeRaht(cloud, fine);
    auto coarse_payload = encodeRaht(cloud, coarse);
    ASSERT_TRUE(fine_payload.hasValue());
    ASSERT_TRUE(coarse_payload.hasValue());
    // Coarser quantization -> smaller payload...
    EXPECT_LT(coarse_payload->size(), fine_payload->size());
    // ...and larger error.
    VoxelCloud fine_decoded = cloud;
    VoxelCloud coarse_decoded = cloud;
    ASSERT_TRUE(
        decodeRahtInto(*fine_payload, fine_decoded).isOk());
    ASSERT_TRUE(
        decodeRahtInto(*coarse_payload, coarse_decoded).isOk());
    EXPECT_LE(maxAbsColorError(cloud, fine_decoded),
              maxAbsColorError(cloud, coarse_decoded));
}

TEST(Raht, SmoothContentCompressesBelowRaw)
{
    const VoxelCloud cloud = smoothSortedCloud(73, 4000, 8);
    RahtConfig config;
    config.qstep = 4.0;
    auto payload = encodeRaht(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    EXPECT_LT(payload->size(), cloud.size() * 3);
}

TEST(Raht, PointCountMismatchRejected)
{
    const VoxelCloud cloud = smoothSortedCloud(74, 300, 6);
    auto payload = encodeRaht(cloud, RahtConfig{});
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud other = smoothSortedCloud(75, 200, 6);
    EXPECT_FALSE(decodeRahtInto(*payload, other).isOk());
}

TEST(Raht, GeometryStructureMismatchRejected)
{
    const VoxelCloud cloud = smoothSortedCloud(76, 300, 6);
    auto payload = encodeRaht(cloud, RahtConfig{});
    ASSERT_TRUE(payload.hasValue());
    // Same size, different geometry: the replayed merge structure
    // will not match the coefficient count.
    VoxelCloud other = smoothSortedCloud(77, 300, 6);
    const Status status = decodeRahtInto(*payload, other);
    // Either an explicit structure mismatch or a stream error.
    EXPECT_FALSE(status.isOk());
}

TEST(Raht, CorruptPayloadRejected)
{
    const VoxelCloud cloud = smoothSortedCloud(78, 300, 6);
    auto payload = encodeRaht(cloud, RahtConfig{});
    ASSERT_TRUE(payload.hasValue());
    auto bad = *payload;
    bad[0] = 'X';
    VoxelCloud decoded = cloud;
    EXPECT_FALSE(decodeRahtInto(bad, decoded).isOk());
    bad = *payload;
    bad.resize(bad.size() / 3);
    EXPECT_FALSE(decodeRahtInto(bad, decoded).isOk());
}

/** Error bound sweep: reconstruction error tracks qstep. */
class RahtQstepSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RahtQstepSweep, ErrorScalesWithQstep)
{
    const double qstep = GetParam();
    const VoxelCloud cloud = smoothSortedCloud(79, 600, 6);
    RahtConfig config;
    config.qstep = qstep;
    auto payload = encodeRaht(cloud, config);
    ASSERT_TRUE(payload.hasValue());
    VoxelCloud decoded = cloud;
    ASSERT_TRUE(decodeRahtInto(*payload, decoded).isOk());
    // RAHT error is not strictly bounded by qstep/2 per point (the
    // transform redistributes it), but it stays within a small
    // multiple for smooth content.
    EXPECT_LE(maxAbsColorError(cloud, decoded),
              4.0 * qstep + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Qsteps, RahtQstepSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0,
                                           8.0));

}  // namespace
}  // namespace edgepcc
