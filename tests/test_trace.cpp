/** @file Tests for the tracing/metrics observability layer. */

#include "edgepcc/common/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace edgepcc {
namespace {

/** Restores the global tracer to a clean, disabled state. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::global().clear();
        Tracer::global().setEnabled(false);
    }
    void
    TearDown() override
    {
        Tracer::global().setEnabled(false);
        Tracer::global().setVerbosity(0);
        Tracer::global().clear();
    }
};

TEST_F(TraceTest, DisabledSpansRecordNothing)
{
    {
        ScopedTrace span("test.disabled");
    }
    EXPECT_EQ(Tracer::global().eventCount(), 0u);
}

TEST_F(TraceTest, EnabledSpansRecordNameAndDuration)
{
    Tracer::global().setEnabled(true);
    {
        ScopedTrace span("test.enabled");
    }
    const auto events = Tracer::global().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.enabled");
    EXPECT_GE(events[0].dur_s, 0.0);
    EXPECT_GE(events[0].start_s, 0.0);
}

TEST_F(TraceTest, KernelSpansGatedByVerbosity)
{
    Tracer::global().setEnabled(true);
    // Default verbosity 0: per-kernel spans are skipped, stage
    // spans still record.
    {
        ScopedTrace kernel("test.kernel",
                           Tracer::kVerbosityKernel);
        ScopedTrace stage("test.stage");
    }
    EXPECT_EQ(Tracer::global().eventCount(), 1u);

    Tracer::global().setVerbosity(Tracer::kVerbosityKernel);
    {
        ScopedTrace kernel("test.kernel",
                           Tracer::kVerbosityKernel);
    }
    EXPECT_EQ(Tracer::global().eventCount(), 2u);
    Tracer::global().setVerbosity(0);
}

TEST_F(TraceTest, StopEndsSpanEarlyAndIsIdempotent)
{
    Tracer::global().setEnabled(true);
    {
        ScopedTrace span("test.stop");
        span.stop();
        span.stop();  // second stop and destructor must not re-record
    }
    EXPECT_EQ(Tracer::global().eventCount(), 1u);
}

TEST_F(TraceTest, SpansTakeEffectMidstream)
{
    {
        ScopedTrace off("test.off");
        Tracer::global().setEnabled(true);
    }
    // Span opened while disabled: not recorded even though tracing
    // was enabled before it closed.
    EXPECT_EQ(Tracer::global().eventCount(), 0u);
    {
        ScopedTrace on("test.on");
    }
    EXPECT_EQ(Tracer::global().eventCount(), 1u);
}

TEST_F(TraceTest, TracedStageFeedsBothSinks)
{
    Tracer::global().setEnabled(true);
    WorkRecorder recorder;
    {
        TracedStage stage(&recorder, "test.stage");
        recordKernel(&recorder, KernelWork{.name = "test.kernel",
                                           .items = 10,
                                           .ops = 20,
                                           .bytes = 30});
    }
    const auto &profile = recorder.profile();
    ASSERT_EQ(profile.stages.size(), 1u);
    EXPECT_EQ(profile.stages[0].name, "test.stage");
    EXPECT_EQ(profile.stages[0].totalOps(), 20u);
    const auto events = Tracer::global().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.stage");
}

TEST_F(TraceTest, ThreadsGetDistinctIds)
{
    Tracer::global().setEnabled(true);
    {
        ScopedTrace span("test.main");
    }
    std::thread worker([] { ScopedTrace span("test.worker"); });
    worker.join();
    const auto events = Tracer::global().events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ChromeExportIsWellFormed)
{
    Tracer::global().setEnabled(true);
    {
        ScopedTrace span("test.\"quoted\"\\span");
    }
    std::ostringstream out;
    writeChromeTrace(Tracer::global().events(), out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    int depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Percentiles, EmptyGivesZeros)
{
    const PercentileStats stats = computePercentiles({});
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.p50, 0.0);
    EXPECT_EQ(stats.max, 0.0);
}

TEST(Percentiles, SingleSample)
{
    const PercentileStats stats = computePercentiles({3.5});
    EXPECT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.mean, 3.5);
    EXPECT_DOUBLE_EQ(stats.p50, 3.5);
    EXPECT_DOUBLE_EQ(stats.p95, 3.5);
    EXPECT_DOUBLE_EQ(stats.max, 3.5);
}

TEST(Percentiles, NearestRankOnHundredSamples)
{
    std::vector<double> samples;
    for (int i = 100; i >= 1; --i)  // unsorted on purpose
        samples.push_back(i);
    const PercentileStats stats =
        computePercentiles(std::move(samples));
    EXPECT_DOUBLE_EQ(stats.p50, 50.0);
    EXPECT_DOUBLE_EQ(stats.p95, 95.0);
    EXPECT_DOUBLE_EQ(stats.max, 100.0);
    EXPECT_DOUBLE_EQ(stats.mean, 50.5);
    EXPECT_DOUBLE_EQ(stats.total, 5050.0);
}

TEST(StageStats, AggregatesAcrossFramesInFirstSeenOrder)
{
    StageStatsAggregator aggregator;
    aggregator.addStage("encode", 0.010, 0.020, 100, 1000);
    aggregator.addStage("decode", 0.005, 0.008, 50, 500);
    aggregator.addStage("encode", 0.030, 0.040, 100, 1000);

    const auto summaries = aggregator.summaries();
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_EQ(summaries[0].name, "encode");
    EXPECT_EQ(summaries[0].frames, 2u);
    EXPECT_DOUBLE_EQ(summaries[0].host_s.max, 0.030);
    EXPECT_DOUBLE_EQ(summaries[0].model_s.max, 0.040);
    EXPECT_EQ(summaries[0].total_ops, 200u);
    EXPECT_EQ(summaries[0].total_bytes, 2000u);
    EXPECT_EQ(summaries[1].name, "decode");
    EXPECT_EQ(summaries[1].frames, 1u);
}

TEST(StageStats, NegativeModelMeansUnmodelled)
{
    StageStatsAggregator aggregator;
    aggregator.addStage("stage", 0.010, -1.0, 0, 0);
    const auto summaries = aggregator.summaries();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].model_s.count, 0u);
    EXPECT_EQ(summaries[0].host_s.count, 1u);
}

TEST(StageStats, AddProfileTakesRecorderOutput)
{
    WorkRecorder recorder;
    recorder.beginStage("stage.a");
    recordKernel(&recorder,
                 KernelWork{.name = "k", .ops = 7, .bytes = 9});
    recorder.endStage();
    StageStatsAggregator aggregator;
    aggregator.addProfile(recorder.profile());
    const auto summaries = aggregator.summaries();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].name, "stage.a");
    EXPECT_EQ(summaries[0].total_ops, 7u);
    EXPECT_EQ(summaries[0].total_bytes, 9u);
}

}  // namespace
}  // namespace edgepcc
