/** @file Tests for the edge-device timing and energy model. */

#include "edgepcc/platform/device_model.h"

#include <gtest/gtest.h>

namespace edgepcc {
namespace {

KernelWork
gpuKernel(std::uint64_t ops, std::uint64_t launches = 1)
{
    KernelWork work;
    work.name = "test.gpu_kernel";
    work.resource = ExecResource::kGpu;
    work.invocations = launches;
    work.items = ops;
    work.ops = ops;
    work.bytes = ops;
    return work;
}

TEST(DeviceSpec, RailLookup)
{
    const DeviceSpec spec = DeviceSpec::jetsonXavier15W();
    EXPECT_DOUBLE_EQ(spec.activeRailW(ExecResource::kCpuSequential),
                     spec.cpu_seq_active_w);
    EXPECT_DOUBLE_EQ(spec.activeRailW(ExecResource::kCpuParallel),
                     spec.cpu_par_active_w);
    EXPECT_DOUBLE_EQ(spec.activeRailW(ExecResource::kGpu),
                     spec.gpu_active_w);
}

TEST(KernelCostTable, NamedOverridesBeatDefaults)
{
    KernelCostTable table;
    table.setDefault(ExecResource::kGpu, {1e9, 1e-12});
    table.set("special", {5e9, 2e-12});
    EXPECT_DOUBLE_EQ(
        table.costFor("special", ExecResource::kGpu)
            .ops_per_second,
        5e9);
    EXPECT_DOUBLE_EQ(
        table.costFor("other", ExecResource::kGpu).ops_per_second,
        1e9);
}

TEST(KernelCostTable, CalibratedTableCoversPaperKernels)
{
    const KernelCostTable &table = KernelCostTable::calibrated();
    // Spot-check the paper-anchored entries exist (they differ
    // from the resource defaults).
    EXPECT_NE(table.costFor("octree.seq_insert",
                            ExecResource::kCpuSequential)
                  .ops_per_second,
              table.costFor("unknown",
                            ExecResource::kCpuSequential)
                  .ops_per_second);
    EXPECT_NE(
        table.costFor("bm.diff_squared", ExecResource::kGpu)
            .ops_per_second,
        table.costFor("unknown", ExecResource::kGpu)
            .ops_per_second);
}

TEST(EdgeDeviceModel, TimeScalesLinearlyWithOps)
{
    const EdgeDeviceModel model;
    const KernelTiming a = model.evaluateKernel(gpuKernel(1000000));
    const KernelTiming b =
        model.evaluateKernel(gpuKernel(2000000));
    // Launch overhead is constant; subtracting it, time doubles.
    const double overhead =
        model.spec().gpu_launch_overhead_s;
    EXPECT_NEAR((b.seconds - overhead) / (a.seconds - overhead),
                2.0, 1e-6);
}

TEST(EdgeDeviceModel, LaunchOverheadCharged)
{
    const EdgeDeviceModel model;
    const KernelTiming one = model.evaluateKernel(gpuKernel(0, 1));
    const KernelTiming ten =
        model.evaluateKernel(gpuKernel(0, 10));
    EXPECT_NEAR(ten.seconds, 10.0 * one.seconds, 1e-12);
}

TEST(EdgeDeviceModel, CpuParallelDividesByThreads)
{
    KernelWork work;
    work.name = "test.cpu_par";
    work.resource = ExecResource::kCpuParallel;
    work.ops = 1000000;

    DeviceSpec spec = DeviceSpec::jetsonXavier15W();
    spec.cpu_parallel_threads = 1;
    const EdgeDeviceModel one(spec);
    spec.cpu_parallel_threads = 4;
    const EdgeDeviceModel four(spec);
    EXPECT_NEAR(one.evaluateKernel(work).seconds /
                    four.evaluateKernel(work).seconds,
                4.0, 1e-9);
}

TEST(EdgeDeviceModel, TenWattModeIsSlowances)
{
    const EdgeDeviceModel fast(DeviceSpec::jetsonXavier15W());
    const EdgeDeviceModel slow(DeviceSpec::jetsonXavier10W());
    const KernelWork work = gpuKernel(10000000, 0);
    EXPECT_NEAR(slow.evaluateKernel(work).seconds /
                    fast.evaluateKernel(work).seconds,
                1.29, 1e-6);
}

TEST(EdgeDeviceModel, EnergyIncludesStaticAndDynamic)
{
    DeviceSpec spec = DeviceSpec::jetsonXavier15W();
    KernelCostTable table;
    table.setDefault(ExecResource::kGpu, {1e9, 1e-9});
    const EdgeDeviceModel model(spec, table);
    KernelWork work = gpuKernel(1000000, 0);
    const KernelTiming timing = model.evaluateKernel(work);
    const double static_j =
        timing.seconds * (spec.board_idle_w + spec.gpu_active_w);
    const double dynamic_j = 1e6 * 1e-9;
    EXPECT_NEAR(timing.joules, static_j + dynamic_j, 1e-12);
}

TEST(EdgeDeviceModel, StageAndPipelineAggregation)
{
    WorkRecorder recorder;
    recorder.beginStage("stage.a");
    recorder.addKernel(gpuKernel(1000000));
    recorder.addKernel(gpuKernel(2000000));
    recorder.endStage();
    recorder.beginStage("stage.b");
    recorder.addKernel(gpuKernel(500000));
    recorder.endStage();

    const EdgeDeviceModel model;
    const PipelineTiming timing =
        model.evaluate(recorder.profile());
    ASSERT_EQ(timing.stages.size(), 2u);
    EXPECT_EQ(timing.stages[0].kernels.size(), 2u);
    EXPECT_NEAR(timing.modelSeconds(),
                timing.stages[0].model_seconds +
                    timing.stages[1].model_seconds,
                1e-15);
    EXPECT_NEAR(timing.joules(),
                timing.stages[0].joules + timing.stages[1].joules,
                1e-15);
    EXPECT_NEAR(timing.modelSecondsWithPrefix("stage.a"),
                timing.stages[0].model_seconds, 1e-15);
    EXPECT_GT(timing.joulesWithPrefix("stage."), 0.0);
    EXPECT_DOUBLE_EQ(timing.modelSecondsWithPrefix("zzz"), 0.0);
}

TEST(EdgeDeviceModel, PaperAnchorSequentialOctree)
{
    // At the paper's Redandblack scale the sequential build walks
    // ~N*depth = 7.27M node steps and must land near the paper's
    // ~1.0 s construction time (within 30%).
    KernelWork work;
    work.name = "octree.seq_insert";
    work.resource = ExecResource::kCpuSequential;
    work.ops = 727070ull * 10ull;
    const EdgeDeviceModel model;
    const double seconds = model.evaluateKernel(work).seconds;
    EXPECT_GT(seconds, 0.7);
    EXPECT_LT(seconds, 1.3);
}

TEST(EdgeDeviceModel, PaperAnchorMortonGeneration)
{
    // Morton generation is quoted at 0.5 ms for one frame.
    KernelWork work;
    work.name = "morton.generate";
    work.resource = ExecResource::kGpu;
    work.invocations = 1;
    work.ops = 727070ull * 18ull;
    const EdgeDeviceModel model;
    const double seconds = model.evaluateKernel(work).seconds;
    EXPECT_GT(seconds, 0.0002);
    EXPECT_LT(seconds, 0.001);
}

}  // namespace
}  // namespace edgepcc
