/**
 * @file
 * PR 10 robustness: GF(256) arithmetic KATs against the polynomial
 * definition, Reed-Solomon erasure encode/recover property tests
 * (every loss pattern up to m for several (k, m) geometries,
 * including runt groups and parity-row subsets), adversarial
 * inconsistency rejections, the RedundancyController's negotiation
 * rules, and session-config validation at setup.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "edgepcc/common/gf256.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/redundancy_controller.h"
#include "edgepcc/stream/rs_fec.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

// -----------------------------------------------------------------
// GF(256) arithmetic
// -----------------------------------------------------------------

TEST(Gf256, KnownAnswerValues)
{
    // Generator powers: 2^1 = 2, 2^2 = 4, ... and the first
    // reduction x^8 = x^4 + x^3 + x^2 + 1 = 0x1d.
    EXPECT_EQ(gfMul(2, 2), 4);
    EXPECT_EQ(gfMul(2, 4), 8);
    EXPECT_EQ(gfMul(2, 128), 0x1d);
    // Identity and absorbing elements.
    EXPECT_EQ(gfMul(0, 0xab), 0);
    EXPECT_EQ(gfMul(0xab, 0), 0);
    EXPECT_EQ(gfMul(1, 0xab), 0xab);
    EXPECT_EQ(gfMul(0xab, 1), 0xab);
}

TEST(Gf256, ExpTableIsA255Cycle)
{
    const Gf256Tables &t = gf256Tables();
    EXPECT_EQ(t.exp[0], 1);
    EXPECT_EQ(t.exp[255], 1);  // generator order is 255
    // The mirrored upper half makes log[a] + log[b] indexable
    // without a modulo.
    for (int i = 0; i < 255; ++i)
        EXPECT_EQ(t.exp[i], t.exp[i + 255]) << i;
    // All 255 nonzero elements appear exactly once per cycle.
    bool seen[256] = {};
    for (int i = 0; i < 255; ++i) {
        EXPECT_FALSE(seen[t.exp[i]]) << i;
        seen[t.exp[i]] = true;
    }
    EXPECT_FALSE(seen[0]);
}

/** The table-driven multiply must match the bitwise polynomial
 *  reference on the full 256 x 256 domain. */
TEST(Gf256, TableMulMatchesPolynomialReference)
{
    for (int a = 0; a < 256; ++a) {
        for (int b = 0; b < 256; ++b) {
            const auto ua = static_cast<std::uint8_t>(a);
            const auto ub = static_cast<std::uint8_t>(b);
            ASSERT_EQ(gfMul(ua, ub), gfMulSlow(ua, ub))
                << a << " * " << b;
        }
    }
}

TEST(Gf256, InverseAndDivision)
{
    for (int a = 1; a < 256; ++a) {
        const auto ua = static_cast<std::uint8_t>(a);
        ASSERT_EQ(gfMul(ua, gfInv(ua)), 1) << a;
        ASSERT_EQ(gfDiv(ua, ua), 1) << a;
        ASSERT_EQ(gfDiv(0, ua), 0) << a;
    }
    EXPECT_EQ(gfInv(1), 1);
    EXPECT_EQ(gfInv(0), 0);  // defined as 0 by contract
}

// -----------------------------------------------------------------
// RS encode / recover
// -----------------------------------------------------------------

std::vector<std::uint8_t>
patternPayload(std::size_t size, std::uint8_t salt)
{
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(
            (i * 131 + salt * 7 + 3) & 0xff);
    return payload;
}

ParsedChunk
makeDataChunk(std::uint8_t fec_seq, std::size_t payload_size,
              std::uint8_t group_size)
{
    ParsedChunk chunk;
    chunk.header.frame_id = 41;
    chunk.header.gop_id = 40;
    chunk.header.frame_type = Frame::Type::kPredicted;
    chunk.header.flags = static_cast<std::uint8_t>(
        kChunkFlagFec | kChunkFlagRsFec);
    chunk.header.slice_index = fec_seq;
    chunk.header.slice_count = group_size;
    chunk.header.fec_group = 9;
    chunk.header.fec_seq = fec_seq;
    chunk.header.fec_group_size = group_size;
    chunk.payload = patternPayload(payload_size, fec_seq);
    return chunk;
}

/** A k-chunk group with deliberately unequal payload sizes (the
 *  last chunk of a sliced frame is usually a runt). */
std::vector<ParsedChunk>
makeGroup(int k)
{
    std::vector<ParsedChunk> group;
    group.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
        const std::size_t size =
            i + 1 == k ? 17 : 96 + 13 * static_cast<std::size_t>(i);
        group.push_back(makeDataChunk(
            static_cast<std::uint8_t>(i), size,
            static_cast<std::uint8_t>(k)));
    }
    return group;
}

std::map<int, std::vector<std::uint8_t>>
buildParityRows(const std::vector<ParsedChunk> &group, int m)
{
    std::vector<ChunkView> views;
    views.reserve(group.size());
    for (const ParsedChunk &chunk : group)
        views.push_back({chunk.header, ByteSpan(chunk.payload)});
    std::map<int, std::vector<std::uint8_t>> rows;
    std::vector<std::uint8_t> parity;
    for (int row = 0; row < m; ++row) {
        buildRsParityInto(views, row, parity);
        rows[row] = parity;
    }
    return rows;
}

void
expectRecovered(const std::vector<ParsedChunk> &group,
                const std::vector<ParsedChunk> &recovered,
                const std::vector<int> &missing)
{
    ASSERT_EQ(recovered.size(), missing.size());
    for (std::size_t r = 0; r < missing.size(); ++r) {
        const ParsedChunk &want =
            group[static_cast<std::size_t>(missing[r])];
        const ParsedChunk &got = recovered[r];
        EXPECT_EQ(got.header.frame_id, want.header.frame_id);
        EXPECT_EQ(got.header.gop_id, want.header.gop_id);
        EXPECT_EQ(got.header.slice_index,
                  want.header.slice_index);
        EXPECT_EQ(got.header.slice_count,
                  want.header.slice_count);
        EXPECT_EQ(got.header.fec_seq, want.header.fec_seq);
        EXPECT_EQ(got.header.frame_type, want.header.frame_type);
        EXPECT_TRUE(got.header.isRsFec());
        EXPECT_EQ(got.payload, want.payload);
    }
}

/** Exhaustive loss patterns: for each geometry, every subset of up
 *  to m data chunks is dropped and must come back bit-exact. */
TEST(RsFec, AllLossPatternsUpToParityDepthRecover)
{
    const std::pair<int, int> geometries[] = {
        {4, 2}, {5, 3}, {3, 1}, {8, 2}};
    for (const auto &[k, m] : geometries) {
        const std::vector<ParsedChunk> group = makeGroup(k);
        const auto parity = buildParityRows(group, m);
        for (std::uint32_t mask = 1;
             mask < (1u << static_cast<unsigned>(k)); ++mask) {
            if (__builtin_popcount(mask) > m)
                continue;
            std::map<std::uint8_t, ParsedChunk> data;
            std::vector<int> missing;
            for (int i = 0; i < k; ++i) {
                if (mask & (1u << static_cast<unsigned>(i)))
                    missing.push_back(i);
                else
                    data.emplace(static_cast<std::uint8_t>(i),
                                 group[static_cast<std::size_t>(
                                     i)]);
            }
            const auto recovered =
                recoverRsChunks(k, data, parity);
            ASSERT_TRUE(recovered.has_value())
                << "k=" << k << " m=" << m << " mask=" << mask;
            expectRecovered(group, *recovered, missing);
        }
    }
}

/** The decoder must work from ANY e surviving parity rows, not
 *  just rows 0..e-1 — bursts eat parity chunks too. */
TEST(RsFec, RecoversFromArbitraryParityRowSubset)
{
    const int k = 5;
    const int m = 3;
    const std::vector<ParsedChunk> group = makeGroup(k);
    const auto all_rows = buildParityRows(group, m);
    // Drop data chunks 1 and 3; keep only parity rows 1 and 2.
    std::map<std::uint8_t, ParsedChunk> data;
    for (const int i : {0, 2, 4})
        data.emplace(static_cast<std::uint8_t>(i),
                     group[static_cast<std::size_t>(i)]);
    std::map<int, std::vector<std::uint8_t>> rows;
    rows[1] = all_rows.at(1);
    rows[2] = all_rows.at(2);
    const auto recovered = recoverRsChunks(k, data, rows);
    ASSERT_TRUE(recovered.has_value());
    expectRecovered(group, *recovered, {1, 3});
}

TEST(RsFec, CompleteGroupRecoversNothing)
{
    const int k = 4;
    const std::vector<ParsedChunk> group = makeGroup(k);
    const auto parity = buildParityRows(group, 2);
    std::map<std::uint8_t, ParsedChunk> data;
    for (int i = 0; i < k; ++i)
        data.emplace(static_cast<std::uint8_t>(i),
                     group[static_cast<std::size_t>(i)]);
    const auto recovered = recoverRsChunks(k, data, parity);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_TRUE(recovered->empty());
}

TEST(RsFec, SingleChunkGroupWithParityRecovers)
{
    // Runt tail group: k = 1 still round-trips through the codec.
    const std::vector<ParsedChunk> group = makeGroup(1);
    const auto parity = buildParityRows(group, 2);
    const auto recovered = recoverRsChunks(1, {}, parity);
    ASSERT_TRUE(recovered.has_value());
    expectRecovered(group, *recovered, {0});
}

// -----------------------------------------------------------------
// RS decode rejections (adversarial/inconsistent groups)
// -----------------------------------------------------------------

TEST(RsFec, RejectsTooFewParityRows)
{
    const int k = 4;
    const std::vector<ParsedChunk> group = makeGroup(k);
    const auto parity = buildParityRows(group, 1);
    std::map<std::uint8_t, ParsedChunk> data;
    data.emplace(0, group[0]);
    data.emplace(1, group[1]);  // two missing, one parity row
    EXPECT_FALSE(recoverRsChunks(k, data, parity).has_value());
}

TEST(RsFec, RejectsDataSequenceOutsideGroup)
{
    const int k = 3;
    const std::vector<ParsedChunk> group = makeGroup(k);
    const auto parity = buildParityRows(group, 1);
    std::map<std::uint8_t, ParsedChunk> data;
    data.emplace(0, group[0]);
    data.emplace(1, group[1]);
    data.emplace(7, makeDataChunk(7, 8, 3));  // seq >= k
    EXPECT_FALSE(recoverRsChunks(k, data, parity).has_value());
}

TEST(RsFec, RejectsParityShorterThanKnownRecord)
{
    const int k = 3;
    const std::vector<ParsedChunk> group = makeGroup(k);
    auto parity = buildParityRows(group, 1);
    parity[0].resize(kFecRecordPrefixBytes);  // truncated row
    std::map<std::uint8_t, ParsedChunk> data;
    data.emplace(0, group[0]);
    data.emplace(1, group[1]);
    EXPECT_FALSE(recoverRsChunks(k, data, parity).has_value());
}

TEST(RsFec, RejectsMismatchedParityRowLengths)
{
    const int k = 4;
    const std::vector<ParsedChunk> group = makeGroup(k);
    auto parity = buildParityRows(group, 2);
    parity[1].push_back(0);
    std::map<std::uint8_t, ParsedChunk> data;
    data.emplace(0, group[0]);
    data.emplace(1, group[1]);
    EXPECT_FALSE(recoverRsChunks(k, data, parity).has_value());
}

TEST(RsFec, RejectsInvalidGroupSize)
{
    const std::map<int, std::vector<std::uint8_t>> none;
    EXPECT_FALSE(recoverRsChunks(0, {}, none).has_value());
    EXPECT_FALSE(recoverRsChunks(-3, {}, none).has_value());
    EXPECT_FALSE(recoverRsChunks(256, {}, none).has_value());
}

TEST(RsFec, RejectsCorruptedParityBytes)
{
    const int k = 4;
    const std::vector<ParsedChunk> group = makeGroup(k);
    auto parity = buildParityRows(group, 2);
    // Flip a prefix byte: the recovered record's embedded fec_seq
    // (or sizes) no longer matches the erasure position.
    parity[0][4] ^= 0x5a;
    parity[0][13] ^= 0x81;
    std::map<std::uint8_t, ParsedChunk> data;
    for (int i = 1; i < k; ++i)
        data.emplace(static_cast<std::uint8_t>(i),
                     group[static_cast<std::size_t>(i)]);
    std::map<int, std::vector<std::uint8_t>> one_row;
    one_row[0] = parity[0];
    EXPECT_FALSE(recoverRsChunks(k, data, one_row).has_value());
}

/** Cauchy coefficients match their definition and are never 0 —
 *  a zero coefficient would silently drop a chunk from a row. */
TEST(RsFec, CauchyCoefficientsAreNonzeroAndCorrect)
{
    for (const int k : {2, 4, 16, 64}) {
        for (int row = 0; row < 4; ++row) {
            for (int i = 0; i < k; ++i) {
                const std::uint8_t c = rsCoefficient(k, row, i);
                ASSERT_NE(c, 0) << k << "," << row << "," << i;
                ASSERT_EQ(
                    gfMul(c, static_cast<std::uint8_t>(
                                 (k + row) ^ i)),
                    1);
            }
        }
    }
}

TEST(RsFec, ParitySeqMapping)
{
    EXPECT_EQ(rsParitySeq(0), kFecParitySeq);
    EXPECT_EQ(rsParitySeq(1), 0xfe);
    EXPECT_EQ(rsParityRow(rsParitySeq(0)), 0);
    EXPECT_EQ(rsParityRow(rsParitySeq(7)), 7);
}

// -----------------------------------------------------------------
// RedundancyController negotiation
// -----------------------------------------------------------------

RedundancyConfig
redundancyConfig()
{
    RedundancyConfig config;
    config.enabled = true;
    config.min_group_size = 2;
    config.max_group_size = 16;
    config.min_parity = 1;
    config.max_parity = 4;
    config.min_gop_size = 1;
    config.max_gop_size = 12;
    config.grow_after_clean = 3;
    return config;
}

TEST(Redundancy, CleanChannelPicksCheapestGeometry)
{
    RedundancyController ctrl(redundancyConfig(), 8, 15.0);
    for (int i = 0; i < 32; ++i)
        ctrl.onFrameFeedback(20, 0, 0, true);
    const RedundancyDecision d = ctrl.decide();
    EXPECT_EQ(d.parity_chunks, 1);  // burst EWMA decays to 1
    EXPECT_EQ(d.group_size, 16);    // overhead floor: m/(k_max+m)
    EXPECT_FALSE(d.force_keyframe);
}

TEST(Redundancy, BurstLengthDrivesParityDepth)
{
    RedundancyController ctrl(redundancyConfig(), 8, 15.0);
    // Sustained 3-chunk bursts: m must track the burst length even
    // though every frame was ultimately delivered (parity paid).
    for (int i = 0; i < 32; ++i)
        ctrl.onFrameFeedback(20, 3, 3, true);
    EXPECT_NEAR(ctrl.estimatedBurstLength(), 3.0, 0.1);
    const RedundancyDecision d = ctrl.decide();
    EXPECT_EQ(d.parity_chunks, 3);
    // Sustained 15% loss shrinks k from the clean-channel maximum.
    EXPECT_LT(d.group_size, 16);
    EXPECT_GT(d.group_size, d.parity_chunks);
}

TEST(Redundancy, KeyframeAndGopReactOnlyToUnrecoverableLoss)
{
    RedundancyController ctrl(redundancyConfig(), 8, 15.0);
    // Recoverable loss: no keyframe, GOP untouched.
    ctrl.onFrameFeedback(20, 2, 2, true);
    EXPECT_FALSE(ctrl.consumeForcedKeyframe());
    EXPECT_EQ(ctrl.decide().gop_size, 8);
    // Unrecoverable loss: keyframe fires once, GOP halves.
    ctrl.onFrameFeedback(20, 6, 3, false);
    EXPECT_EQ(ctrl.decide().gop_size, 4);
    EXPECT_TRUE(ctrl.consumeForcedKeyframe());
    EXPECT_FALSE(ctrl.consumeForcedKeyframe());  // consumed
    // Clean streak grows the GOP back one step at a time.
    for (int i = 0; i < 3; ++i)
        ctrl.onFrameFeedback(20, 0, 0, true);
    EXPECT_EQ(ctrl.decide().gop_size, 5);
}

TEST(Redundancy, PayloadBudgetDiscountsParityShare)
{
    RedundancyConfig config = redundancyConfig();
    config.wire_budget_bytes = 10000;
    RedundancyController ctrl(config, 8, 15.0);
    const RedundancyDecision d = ctrl.decide();
    const double k = d.group_size;
    const double m = d.parity_chunks;
    EXPECT_EQ(d.payload_budget_bytes,
              static_cast<std::uint64_t>(10000.0 * k / (k + m)));
    EXPECT_GE(d.reuse_threshold, 0.0);

    // Overshooting the post-parity budget raises the threshold
    // (coarser P frames); undershooting lowers it back.
    ctrl.onEncodedFrame(Frame::Type::kPredicted,
                        d.payload_budget_bytes * 2);
    const double up = ctrl.decide().reuse_threshold;
    EXPECT_GT(up, 15.0);
    ctrl.onEncodedFrame(Frame::Type::kPredicted,
                        d.payload_budget_bytes / 4);
    EXPECT_LT(ctrl.decide().reuse_threshold, up);
    // Intra frames never nudge the threshold.
    const double before = ctrl.decide().reuse_threshold;
    ctrl.onEncodedFrame(Frame::Type::kIntra, 1);
    EXPECT_EQ(ctrl.decide().reuse_threshold, before);
}

TEST(Redundancy, BudgetCouplingOffLeavesCodecAlone)
{
    RedundancyController ctrl(redundancyConfig(), 8, 15.0);
    const RedundancyDecision d = ctrl.decide();
    EXPECT_EQ(d.payload_budget_bytes, 0u);
    EXPECT_LT(d.reuse_threshold, 0.0);
}

// -----------------------------------------------------------------
// Session-config validation at setup
// -----------------------------------------------------------------

SessionConfig
rsSession()
{
    SessionConfig config;
    config.fec.enabled = true;
    config.fec.scheme = FecScheme::kReedSolomon;
    config.fec.group_size = 6;
    config.fec.parity_chunks = 2;
    config.mtu_payload = 512;
    return config;
}

TEST(SessionValidation, AcceptsDefaultAndRsConfigs)
{
    EXPECT_TRUE(validateSessionConfig(SessionConfig{}).isOk());
    EXPECT_TRUE(validateSessionConfig(rsSession()).isOk());
}

TEST(SessionValidation, RejectsDegenerateGroupSize)
{
    SessionConfig config = rsSession();
    config.fec.group_size = 1;
    config.fec.parity_chunks = 0;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.fec.group_size = 256;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
}

TEST(SessionValidation, RejectsParityAtLeastGroupSize)
{
    SessionConfig config = rsSession();
    config.fec.parity_chunks = 6;  // m == k
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.fec.parity_chunks = 9;  // m > k
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.fec.parity_chunks = 0;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    // XOR ignores parity_chunks entirely.
    config.fec.scheme = FecScheme::kXor;
    EXPECT_TRUE(validateSessionConfig(config).isOk());
}

TEST(SessionValidation, RejectsCauchyFieldOverflow)
{
    SessionConfig config = rsSession();
    config.fec.group_size = 254;
    config.fec.parity_chunks = 4;  // k + m > 255
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.fec.parity_chunks = 1;  // k + m == 255: fine
    EXPECT_TRUE(validateSessionConfig(config).isOk());
}

TEST(SessionValidation, RejectsInterleaveNotDividingGroup)
{
    SessionConfig config = rsSession();
    config.fec_interleave = 4;  // 6 % 4 != 0
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.fec_interleave = 3;
    EXPECT_TRUE(validateSessionConfig(config).isOk());
    config.mtu_payload = 0;  // nothing to stripe
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.mtu_payload = 512;
    config.fec.enabled = false;
    config.redundancy.enabled = false;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
}

TEST(SessionValidation, RejectsControllersWithoutTheirDeps)
{
    SessionConfig config;
    config.adaptive_fec = true;  // requires fec.enabled
    EXPECT_FALSE(validateSessionConfig(config).isOk());

    SessionConfig red;
    red.redundancy.enabled = true;  // requires RS FEC
    EXPECT_FALSE(validateSessionConfig(red).isOk());
    red.fec.enabled = true;
    red.fec.scheme = FecScheme::kXor;
    EXPECT_FALSE(validateSessionConfig(red).isOk());
    red.fec.scheme = FecScheme::kReedSolomon;
    EXPECT_TRUE(validateSessionConfig(red).isOk());
    red.adaptive_fec = true;  // cannot stack under redundancy
    EXPECT_FALSE(validateSessionConfig(red).isOk());
}

TEST(SessionValidation, RejectsNegativeRetryKnobs)
{
    SessionConfig config;
    config.max_retransmits = -1;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
    config.max_retransmits = 0;
    config.backoff_ms = -2.0;
    EXPECT_FALSE(validateSessionConfig(config).isOk());
}

}  // namespace
}  // namespace edgepcc
