/**
 * @file
 * ISSUE-4 streaming features: v2 chunk header (slice + FEC fields)
 * with v1 back-compat pinned byte-for-byte, sub-frame slicing and
 * reassembly (reordered slices, one-slice blast radius for a bit
 * flip), XOR-parity FEC reconstruction edge cases (each chunk lost
 * in turn, parity itself lost, two losses, final partial group),
 * the session-level 5%-loss acceptance criterion, and the
 * network-aware transport mode of the pipeline evaluator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/lossy_channel.h"
#include "edgepcc/stream/pipeline.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

std::vector<VoxelCloud>
testVideo(int num_frames, std::uint64_t seed = 91,
          std::size_t points = 6000)
{
    VideoSpec spec;
    spec.name = "fec-slicing-test";
    spec.seed = seed;
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

std::vector<std::uint8_t>
patternPayload(std::size_t size, std::uint8_t salt)
{
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(
            (i * 31 + salt) & 0xff);
    return payload;
}

/** One member of a synthetic FEC group. */
ParsedChunk
makeDataChunk(std::uint8_t fec_seq, std::size_t payload_size,
              std::uint16_t fec_group = 7,
              std::uint8_t group_size = 3)
{
    ParsedChunk chunk;
    chunk.header.frame_id = 5;
    chunk.header.gop_id = 4;
    chunk.header.frame_type = Frame::Type::kPredicted;
    chunk.header.flags = kChunkFlagFec;
    chunk.header.slice_index = fec_seq;
    chunk.header.slice_count = group_size;
    chunk.header.fec_group = fec_group;
    chunk.header.fec_seq = fec_seq;
    chunk.header.fec_group_size = group_size;
    chunk.payload = patternPayload(payload_size, fec_seq);
    return chunk;
}

// -----------------------------------------------------------------
// Wire format: v1 back-compat and v2 round-trip
// -----------------------------------------------------------------

/** A default header must serialize to the exact v1 layout — this
 *  pins the clean-channel byte-identity acceptance criterion. */
TEST(ChunkV2, DefaultHeaderEmitsV1Bytes)
{
    ChunkHeader header;
    header.sequence = 0x04030201u;
    header.frame_id = 0x14131211u;
    header.gop_id = 0x24232221u;
    header.frame_type = Frame::Type::kPredicted;
    const std::vector<std::uint8_t> payload = {0xaa, 0xbb, 0xcc};
    const auto wire = serializeChunk(header, payload);

    ASSERT_EQ(wire.size(), kChunkHeaderBytes + payload.size());
    // Hand-built v1 header, field by field.
    const std::uint8_t expected_prefix[] = {
        'E',  'P',  'C',  'K',         // marker
        0x01, 0x02, 0x03, 0x04,        // sequence LE
        0x11, 0x12, 0x13, 0x14,        // frame_id LE
        0x21, 0x22, 0x23, 0x24,        // gop_id LE
        0x01,                          // frame_type = P
        0x00,                          // flags (no V2 bit)
        0x03, 0x00, 0x00, 0x00,        // payload_size LE
    };
    for (std::size_t i = 0; i < sizeof(expected_prefix); ++i)
        EXPECT_EQ(wire[i], expected_prefix[i]) << "byte " << i;

    WireScanStats stats;
    const auto parsed = scanWire(wire, &stats);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(stats.chunks_ok, 1u);
    EXPECT_FALSE(parsed[0].header.isV2());
    EXPECT_EQ(parsed[0].header.slice_count, 1);
    EXPECT_EQ(parsed[0].payload, payload);
}

TEST(ChunkV2, ExtensionFieldsRoundTrip)
{
    ChunkHeader header;
    header.sequence = 9;
    header.frame_id = 3;
    header.gop_id = 2;
    header.frame_type = Frame::Type::kPredicted;
    header.flags = kChunkFlagFec;
    header.slice_index = 513;
    header.slice_count = 777;
    header.fec_group = 0xbeef;
    header.fec_seq = 3;
    header.fec_group_size = 4;
    const auto payload = patternPayload(64, 1);
    const auto wire = serializeChunk(header, payload);
    ASSERT_EQ(wire.size(), kChunkHeaderBytesV2 + payload.size());

    const auto parsed = scanWire(wire);
    ASSERT_EQ(parsed.size(), 1u);
    const ChunkHeader &h = parsed[0].header;
    EXPECT_TRUE(h.isV2());
    EXPECT_EQ(h.flags & kChunkFlagFec, kChunkFlagFec);
    EXPECT_EQ(h.slice_index, 513);
    EXPECT_EQ(h.slice_count, 777);
    EXPECT_EQ(h.fec_group, 0xbeef);
    EXPECT_EQ(h.fec_seq, 3);
    EXPECT_EQ(h.fec_group_size, 4);
    EXPECT_EQ(parsed[0].payload, payload);
}

/** v1 and v2 chunks interleaved in one buffer both parse — a v2
 *  receiver accepts old streams and vice versa for clean chunks. */
TEST(ChunkV2, MixedVersionsInOneWire)
{
    ChunkHeader v1;
    v1.frame_id = 1;
    ChunkHeader v2;
    v2.frame_id = 2;
    v2.slice_index = 1;
    v2.slice_count = 2;
    const auto wire = concatWire({
        serializeChunk(v1, patternPayload(10, 0)),
        serializeChunk(v2, patternPayload(11, 1)),
        serializeChunk(v1, patternPayload(12, 2)),
    });
    WireScanStats stats;
    const auto parsed = scanWire(wire, &stats);
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(stats.bytes_skipped, 0u);
    EXPECT_FALSE(parsed[0].header.isV2());
    EXPECT_TRUE(parsed[1].header.isV2());
    EXPECT_EQ(parsed[1].header.slice_index, 1);
}

/** Flipping the V2 flag bit moves the CRC offset; the scan must
 *  reject the chunk rather than misparse it. */
TEST(ChunkV2, FlippedVersionBitRejected)
{
    ChunkHeader header;
    header.frame_id = 1;
    auto wire = serializeChunk(header, patternPayload(32, 3));
    wire[17] ^= kChunkFlagV2;
    WireScanStats stats;
    const auto parsed = scanWire(wire, &stats);
    EXPECT_TRUE(parsed.empty());
    EXPECT_GE(stats.chunks_bad_crc + stats.chunks_truncated, 1u);
}

// -----------------------------------------------------------------
// Sub-frame slicing
// -----------------------------------------------------------------

TEST(Slicing, SplitAndReassemble)
{
    ChunkHeader base;
    base.frame_id = 6;
    base.gop_id = 6;
    const auto payload = patternPayload(1000, 9);
    const auto slices = sliceFramePayload(base, payload, 300);
    ASSERT_EQ(slices.size(), 4u);  // 300+300+300+100
    std::vector<const std::vector<std::uint8_t> *> parts;
    for (const ParsedChunk &slice : slices) {
        EXPECT_EQ(slice.header.slice_count, 4);
        EXPECT_EQ(slice.header.frame_id, 6u);
        EXPECT_LE(slice.payload.size(), 300u);
        parts.push_back(&slice.payload);
    }
    EXPECT_EQ(slices[3].payload.size(), 100u);
    EXPECT_EQ(assembleSlices(parts), payload);
}

TEST(Slicing, ZeroMtuKeepsV1SingleChunk)
{
    ChunkHeader base;
    const auto payload = patternPayload(5000, 2);
    const auto slices = sliceFramePayload(base, payload, 0);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_FALSE(slices[0].header.isV2());
    EXPECT_EQ(slices[0].payload, payload);
}

/** Slices arriving in reverse order still reassemble and decode. */
TEST(Slicing, ReorderedSlicesReassemble)
{
    const auto frames = testVideo(1);
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frames[0]);
    ASSERT_TRUE(encoded.hasValue());

    ChunkHeader base;
    base.frame_id = 0;
    auto slices =
        sliceFramePayload(base, encoded->bitstream, 256);
    ASSERT_GT(slices.size(), 2u);
    std::reverse(slices.begin(), slices.end());

    StreamReceiver receiver;
    for (const ParsedChunk &slice : slices)
        receiver.ingest(
            serializeChunk(slice.header, slice.payload));
    EXPECT_TRUE(receiver.hasFrame(0));
    const auto decoded = receiver.decodeAll(1);
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].outcome, FrameOutcome::kOk);
}

/** A bit flip knocks out exactly the slice it hit. */
TEST(Slicing, BitFlipCostsOneSlice)
{
    ChunkHeader base;
    base.frame_id = 0;
    const auto payload = patternPayload(900, 5);
    const auto slices = sliceFramePayload(base, payload, 300);
    ASSERT_EQ(slices.size(), 3u);

    StreamReceiver receiver;
    for (std::size_t i = 0; i < slices.size(); ++i) {
        auto wire =
            serializeChunk(slices[i].header, slices[i].payload);
        if (i == 1)
            wire[wire.size() / 2] ^= 0x10;
        receiver.ingest(wire);
    }
    EXPECT_FALSE(receiver.hasFrame(0));
    EXPECT_TRUE(receiver.hasSlice(0, 0));
    EXPECT_FALSE(receiver.hasSlice(0, 1));
    EXPECT_TRUE(receiver.hasSlice(0, 2));
}

// -----------------------------------------------------------------
// XOR-parity FEC reconstruction
// -----------------------------------------------------------------

TEST(Fec, RecoversEachChunkInTurn)
{
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 200),
        makeDataChunk(1, 150),  // shorter than the longest
        makeDataChunk(2, 220),
    };
    const auto parity = buildFecParity(group);
    for (std::size_t lost = 0; lost < group.size(); ++lost) {
        std::vector<ParsedChunk> received;
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (i != lost)
                received.push_back(group[i]);
        }
        const auto rebuilt = recoverFecChunk(received, parity);
        ASSERT_TRUE(rebuilt.has_value()) << "lost " << lost;
        EXPECT_EQ(rebuilt->header.frame_id,
                  group[lost].header.frame_id);
        EXPECT_EQ(rebuilt->header.gop_id,
                  group[lost].header.gop_id);
        EXPECT_EQ(rebuilt->header.slice_index,
                  group[lost].header.slice_index);
        EXPECT_EQ(rebuilt->header.slice_count,
                  group[lost].header.slice_count);
        EXPECT_EQ(rebuilt->header.frame_type,
                  group[lost].header.frame_type);
        EXPECT_EQ(rebuilt->header.fec_seq,
                  group[lost].header.fec_seq);
        EXPECT_EQ(rebuilt->payload, group[lost].payload);
    }
}

TEST(Fec, TwoLossesRejected)
{
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 200),
        makeDataChunk(1, 150),
        makeDataChunk(2, 220),
    };
    const auto parity = buildFecParity(group);
    // Only one survivor: the XOR residue mixes two records and the
    // trailing-zero check must refuse to fabricate data.
    EXPECT_FALSE(
        recoverFecChunk({group[0]}, parity).has_value());
}

/** Receiver-level: parity chunk itself lost. The data is complete,
 *  so nothing needs recovery, and the group still counts as a
 *  single loss survived without retransmission. */
TEST(Fec, ParityLostDataComplete)
{
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 100),
        makeDataChunk(1, 100),
        makeDataChunk(2, 100),
    };
    StreamReceiver receiver;
    for (const ParsedChunk &chunk : group)
        receiver.ingest(
            serializeChunk(chunk.header, chunk.payload));
    const FecStats stats = receiver.fecStats();
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.parity_received, 0u);
    EXPECT_EQ(stats.recovered_chunks, 0u);
    EXPECT_EQ(stats.single_loss_groups, 1u);
    EXPECT_EQ(stats.single_loss_recovered, 1u);
    EXPECT_DOUBLE_EQ(stats.singleLossRecoveredFraction(), 1.0);
}

/** Receiver-level: one data chunk lost, parity arrives late. */
TEST(Fec, ReceiverRecoversFromParity)
{
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 300),
        makeDataChunk(1, 300),
        makeDataChunk(2, 140),
    };
    ChunkHeader parity_header = group[0].header;
    parity_header.flags = kChunkFlagParity | kChunkFlagFec;
    parity_header.slice_index = 0;
    parity_header.fec_seq = kFecParitySeq;
    const auto parity = buildFecParity(group);

    StreamReceiver receiver;
    receiver.ingest(
        serializeChunk(group[0].header, group[0].payload));
    receiver.ingest(
        serializeChunk(group[2].header, group[2].payload));
    EXPECT_FALSE(receiver.hasSlice(5, 1));
    receiver.ingest(serializeChunk(parity_header, parity));
    EXPECT_TRUE(receiver.hasSlice(5, 1));
    EXPECT_TRUE(receiver.hasFrame(5));

    const FecStats stats = receiver.fecStats();
    EXPECT_EQ(stats.recovered_chunks, 1u);
    EXPECT_EQ(stats.single_loss_groups, 1u);
    EXPECT_EQ(stats.single_loss_recovered, 1u);
    EXPECT_EQ(stats.unrecovered_groups, 0u);
}

/** Receiver-level: two data chunks lost in one group — recovery is
 *  impossible and the group is reported for the NACK fallback. */
TEST(Fec, ReceiverTwoLossesFallBackToNack)
{
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 300),
        makeDataChunk(1, 300),
        makeDataChunk(2, 140),
    };
    ChunkHeader parity_header = group[0].header;
    parity_header.flags = kChunkFlagParity | kChunkFlagFec;
    parity_header.fec_seq = kFecParitySeq;
    const auto parity = buildFecParity(group);

    StreamReceiver receiver;
    receiver.ingest(
        serializeChunk(group[0].header, group[0].payload));
    receiver.ingest(serializeChunk(parity_header, parity));
    const FecStats stats = receiver.fecStats();
    EXPECT_EQ(stats.recovered_chunks, 0u);
    EXPECT_EQ(stats.single_loss_groups, 0u);
    EXPECT_EQ(stats.unrecovered_groups, 1u);
    EXPECT_FALSE(receiver.hasFrame(5));
}

/** Loss on the final partial group of a frame (fewer data chunks
 *  than FecSpec::group_size) still recovers. */
TEST(Fec, FinalPartialGroupRecovers)
{
    // Group of 2 (e.g. 6 slices with group_size 4 -> 4 + 2).
    const std::vector<ParsedChunk> group = {
        makeDataChunk(0, 180, /*fec_group=*/9, /*group_size=*/2),
        makeDataChunk(1, 90, /*fec_group=*/9, /*group_size=*/2),
    };
    ChunkHeader parity_header = group[0].header;
    parity_header.flags = kChunkFlagParity | kChunkFlagFec;
    parity_header.fec_seq = kFecParitySeq;
    const auto parity = buildFecParity(group);

    StreamReceiver receiver;
    receiver.ingest(serializeChunk(parity_header, parity));
    receiver.ingest(
        serializeChunk(group[1].header, group[1].payload));
    const FecStats stats = receiver.fecStats();
    EXPECT_EQ(stats.recovered_chunks, 1u);
    EXPECT_TRUE(receiver.hasSlice(5, 0));
}

// -----------------------------------------------------------------
// Session-level FEC + slicing
// -----------------------------------------------------------------

SessionConfig
fecSessionConfig(double loss, std::uint64_t seed)
{
    SessionConfig session;
    session.channel = ChannelSpec::lossy(loss, seed);
    session.mtu_payload = 400;
    session.fec.enabled = true;
    session.fec.group_size = 4;
    return session;
}

/** ISSUE-4 acceptance: at 5% chunk loss, >= 90% of single-loss
 *  groups recover without a retransmission. */
TEST(SessionFec, AcceptanceFivePercentSingleLossRecovery)
{
    const auto frames = testVideo(30);
    StreamSession stream(makeIntraInterV1Config(),
                         fecSessionConfig(0.05, 17));
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());

    // The sliced stream actually exercised FEC.
    EXPECT_GT(report->stats.parity_sent, 0u);
    EXPECT_GT(report->fec.groups, 0u);
    EXPECT_GT(report->fec.single_loss_groups, 0u);
    EXPECT_GT(report->fec.recovered_chunks, 0u);
    EXPECT_GE(report->fec.singleLossRecoveredFraction(), 0.9);

    // FEC + NACK fallback keeps the stream watchable.
    EXPECT_EQ(report->stats.frames_lost, 0u);
    EXPECT_DOUBLE_EQ(report->stats.okOrConcealedFraction(), 1.0);
}

/** FEC reduces retransmissions vs the identical NACK-only run. */
TEST(SessionFec, FewerRetransmitsThanNackOnly)
{
    const auto frames = testVideo(20);
    SessionConfig with_fec = fecSessionConfig(0.05, 23);
    SessionConfig nack_only = with_fec;
    nack_only.fec.enabled = false;

    auto fec_report =
        StreamSession(makeIntraInterV1Config(), with_fec)
            .run(frames);
    auto nack_report =
        StreamSession(makeIntraInterV1Config(), nack_only)
            .run(frames);
    ASSERT_TRUE(fec_report.hasValue());
    ASSERT_TRUE(nack_report.hasValue());
    EXPECT_LT(fec_report->stats.retransmits,
              nack_report->stats.retransmits);
    EXPECT_EQ(nack_report->stats.parity_sent, 0u);
    EXPECT_EQ(nack_report->fec.groups, 0u);
}

TEST(SessionFec, DeterministicAcrossRuns)
{
    const auto frames = testVideo(12);
    const SessionConfig session = fecSessionConfig(0.08, 5);
    auto a = StreamSession(makeIntraInterV1Config(), session)
                 .run(frames);
    auto b = StreamSession(makeIntraInterV1Config(), session)
                 .run(frames);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_EQ(a->stats.chunks_sent, b->stats.chunks_sent);
    EXPECT_EQ(a->stats.retransmits, b->stats.retransmits);
    EXPECT_EQ(a->stats.wire_bytes, b->stats.wire_bytes);
    EXPECT_EQ(a->fec.recovered_chunks, b->fec.recovered_chunks);
    ASSERT_EQ(a->frames.size(), b->frames.size());
    for (std::size_t f = 0; f < a->frames.size(); ++f)
        EXPECT_EQ(a->frames[f].outcome, b->frames[f].outcome);
}

/** Clean channel with slicing+FEC on: zero recovery activity and
 *  every frame intact. */
TEST(SessionFec, CleanChannelNoRecoveryNeeded)
{
    const auto frames = testVideo(6);
    SessionConfig session = fecSessionConfig(0.0, 1);
    session.channel = ChannelSpec::clean();
    auto report =
        StreamSession(makeIntraInterV1Config(), session)
            .run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_EQ(report->fec.recovered_chunks, 0u);
    EXPECT_EQ(report->fec.single_loss_groups, 0u);
    EXPECT_EQ(report->stats.frames_ok, frames.size());
    EXPECT_GT(report->stats.parity_sent, 0u);
}

// -----------------------------------------------------------------
// Burst loss and FEC interleaving
// -----------------------------------------------------------------

/** The bursty channel drops runs of consecutive chunks — the loss
 *  pattern XOR parity is weakest against without interleaving. */
TEST(Fec, BurstChannelDropsConsecutiveRuns)
{
    const ChannelSpec spec = ChannelSpec::bursty(0.04, 4, 11);
    EXPECT_FALSE(spec.isClean());
    LossyChannel channel(spec);

    // 200 distinguishable chunks; record which survive.
    std::vector<bool> arrived(200, false);
    for (std::uint32_t i = 0; i < 200; ++i) {
        ChunkHeader header;
        header.sequence = i;
        header.frame_id = i;
        const auto wire =
            serializeChunk(header, patternPayload(32, 1));
        for (const auto &out : channel.transmit(wire)) {
            WireScanStats stats;
            const auto parsed = scanWire(out, &stats);
            ASSERT_EQ(parsed.size(), 1u);
            arrived[parsed[0].header.frame_id] = true;
        }
    }
    for (const auto &out : channel.flush())
        (void)out;  // pure burst spec never reorders

    const ChannelStats &stats = channel.stats();
    EXPECT_GT(stats.bursts, 0u);
    EXPECT_EQ(stats.dropped, stats.burst_dropped);
    EXPECT_EQ(stats.burst_dropped, stats.bursts * 4);

    // Every loss run is a whole burst (or back-to-back bursts):
    // a multiple of burst_length consecutive chunks.
    std::size_t run = 0;
    std::size_t lost = 0;
    for (std::size_t i = 0; i <= arrived.size(); ++i) {
        if (i < arrived.size() && !arrived[i]) {
            ++run;
            ++lost;
            continue;
        }
        EXPECT_EQ(run % 4, 0u) << "run ending at chunk " << i;
        run = 0;
    }
    EXPECT_EQ(lost, stats.dropped);
}

/**
 * ISSUE-5 satellite: interleaving spreads a drop burst across FEC
 * groups. With contiguous grouping a 3-chunk burst lands 2+ losses
 * in one XOR group (unrecoverable without NACK); with interleave
 * depth 4 the same burst costs 3 different groups one chunk each —
 * all parity-recoverable. Same channel, same codec, FEC-only
 * recovery (no retransmission rounds).
 */
TEST(SessionFec, InterleaveSpreadsBurstAcrossGroups)
{
    const auto frames = testVideo(16, 91, 4000);
    SessionConfig contiguous;
    contiguous.channel = ChannelSpec::bursty(0.025, 3, 29);
    contiguous.mtu_payload = 400;
    contiguous.fec.enabled = true;
    contiguous.fec.group_size = 4;
    contiguous.max_retransmits = 0;
    contiguous.adaptive_gop = false;

    SessionConfig interleaved = contiguous;
    interleaved.fec_interleave = 4;

    auto flat = StreamSession(makeIntraInterV1Config(),
                              contiguous)
                    .run(frames);
    auto striped = StreamSession(makeIntraInterV1Config(),
                                 interleaved)
                       .run(frames);
    ASSERT_TRUE(flat.hasValue());
    ASSERT_TRUE(striped.hasValue());

    // Both runs saw bursts; only the interleaved one turns them
    // into single losses per group.
    EXPECT_GT(flat->fec.unrecovered_groups, 0u);
    EXPECT_LT(striped->fec.unrecovered_groups,
              flat->fec.unrecovered_groups);
    EXPECT_GT(striped->stats.frames_ok, flat->stats.frames_ok);
    EXPECT_GT(striped->fec.recovered_chunks, 0u);
}

/** Interleave depth 1 must keep the contiguous wire bytes exactly
 *  (it is the documented no-op default). */
TEST(SessionFec, InterleaveDepthOneIsByteIdentical)
{
    const auto frames = testVideo(6);
    SessionConfig base = fecSessionConfig(0.0, 1);
    base.channel = ChannelSpec::clean();
    SessionConfig depth_one = base;
    depth_one.fec_interleave = 1;

    auto a = StreamSession(makeIntraInterV1Config(), base)
                 .run(frames);
    auto b = StreamSession(makeIntraInterV1Config(), depth_one)
                 .run(frames);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_EQ(a->stats.wire_bytes, b->stats.wire_bytes);
    EXPECT_EQ(a->stats.chunks_sent, b->stats.chunks_sent);
    EXPECT_EQ(a->stats.parity_sent, b->stats.parity_sent);
}

/** Interleaved groups still recover on a clean channel (the
 *  receiver is header-driven, so striping must be transparent). */
TEST(SessionFec, InterleavedCleanChannelAllOk)
{
    const auto frames = testVideo(6);
    SessionConfig session = fecSessionConfig(0.0, 1);
    session.channel = ChannelSpec::clean();
    session.fec_interleave = 4;
    auto report =
        StreamSession(makeIntraInterV1Config(), session)
            .run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->stats.frames_ok, frames.size());
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_GT(report->stats.parity_sent, 0u);
    EXPECT_EQ(report->fec.unrecovered_groups, 0u);
}

// -----------------------------------------------------------------
// Reed-Solomon burst acceptance
// -----------------------------------------------------------------

SessionConfig
rsBurstConfig(double burst_rate, int burst_length,
              std::uint64_t seed)
{
    SessionConfig session;
    session.channel =
        ChannelSpec::bursty(burst_rate, burst_length, seed);
    session.mtu_payload = 400;
    session.fec.enabled = true;
    session.fec.scheme = FecScheme::kReedSolomon;
    session.fec.group_size = 6;
    session.fec.parity_chunks = 3;
    return session;
}

/** PR 10 acceptance: on a bursty channel (burst length >= 3) an RS
 *  session with parity depth >= burst length recovers >= 90% of
 *  multi-loss groups with zero NACK round-trips. */
TEST(SessionRsFec, BurstLossRecoversWithoutRetransmit)
{
    const auto frames = testVideo(20);
    StreamSession stream(makeIntraInterV1Config(),
                         rsBurstConfig(0.02, 3, 1));
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());

    // Bursts actually hit FEC groups with multiple losses --
    // patterns XOR parity could never cover.
    EXPECT_GT(report->fec.multi_loss_groups, 0u);
    EXPECT_GE(report->fec.multiLossRecoveredFraction(), 0.9);
    EXPECT_GT(report->fec.recovered_chunks, 0u);

    // Every group was rebuilt from parity before the NACK
    // fallback fired: no retransmission round-trips at all.
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_EQ(report->stats.frames_lost, 0u);
    EXPECT_EQ(report->stats.frames_ok, frames.size());
}

/** On the identical burst channel, XOR parity (depth 1) leaves
 *  multi-loss groups for the NACK fallback while RS solves them
 *  in-stream. */
TEST(SessionRsFec, FewerRetransmitsThanXorOnBurstChannel)
{
    const auto frames = testVideo(20);
    SessionConfig rs = rsBurstConfig(0.02, 3, 1);
    SessionConfig xor_fec = rs;
    xor_fec.fec.scheme = FecScheme::kXor;

    auto rs_report =
        StreamSession(makeIntraInterV1Config(), rs).run(frames);
    auto xor_report =
        StreamSession(makeIntraInterV1Config(), xor_fec)
            .run(frames);
    ASSERT_TRUE(rs_report.hasValue());
    ASSERT_TRUE(xor_report.hasValue());

    // XOR cannot rebuild any multi-loss group; RS rebuilt them
    // all, so only the XOR run pays retransmission round-trips.
    EXPECT_EQ(xor_report->fec.multi_loss_recovered, 0u);
    EXPECT_GT(xor_report->stats.retransmits,
              rs_report->stats.retransmits);
    EXPECT_GT(rs_report->fec.multi_loss_recovered, 0u);
}

/** Clean channel: RS parity rows ride along but no recovery or
 *  retransmission activity happens. */
TEST(SessionRsFec, CleanChannelSendsParityOnly)
{
    const auto frames = testVideo(6);
    SessionConfig session = rsBurstConfig(0.0, 3, 7);
    session.channel = ChannelSpec::clean();
    auto report =
        StreamSession(makeIntraInterV1Config(), session)
            .run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_GT(report->stats.parity_sent, 0u);
    EXPECT_EQ(report->fec.recovered_chunks, 0u);
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_EQ(report->stats.frames_ok, frames.size());
}

// -----------------------------------------------------------------
// Network-aware pipeline evaluation
// -----------------------------------------------------------------

TEST(PipelineTransport, ReportsRecoveryLatency)
{
    const auto frames = testVideo(8, 91, 4000);
    PipelineConfig config;
    config.network = NetworkSpec::wifi();
    config.network.packet_loss_rate = 0.05;
    config.transport = true;
    config.transport_seed = 3;
    config.session.mtu_payload = 400;
    config.session.fec.enabled = true;

    auto report = evaluatePipeline(
        frames, makeIntraInterV1Config(), config);
    ASSERT_TRUE(report.hasValue());
    EXPECT_TRUE(report->transport);
    ASSERT_EQ(report->frames.size(), frames.size());
    EXPECT_GT(report->session.chunks_sent, 0u);
    double recovery = 0.0;
    for (const FrameLatency &frame : report->frames) {
        // Wire bytes include framing + parity, so they exceed the
        // raw payload for every delivered frame.
        EXPECT_GT(frame.wire_bytes, frame.bytes);
        EXPECT_GT(frame.transmit_s, 0.0);
        EXPECT_GE(frame.recovery_s, 0.0);
        EXPECT_GE(frame.total(),
                  frame.capture_s + frame.render_s);
        recovery += frame.recovery_s;
        if (frame.retransmits > 0) {
            EXPECT_GT(frame.recovery_s, 0.0);
        }
    }
    EXPECT_EQ(report->meanRecoverySeconds() * frames.size(),
              recovery);
}

/** Without transport the analytic model is untouched: loss-free
 *  session stats stay zero and recovery is zero. */
TEST(PipelineTransport, AnalyticModeUnchanged)
{
    const auto frames = testVideo(3, 91, 3000);
    PipelineConfig config;
    auto report = evaluatePipeline(
        frames, makeIntraOnlyConfig(), config);
    ASSERT_TRUE(report.hasValue());
    EXPECT_FALSE(report->transport);
    EXPECT_EQ(report->session.chunks_sent, 0u);
    for (const FrameLatency &frame : report->frames) {
        EXPECT_EQ(frame.recovery_s, 0.0);
        EXPECT_EQ(frame.outcome, FrameOutcome::kOk);
        EXPECT_EQ(frame.wire_bytes, frame.bytes);
    }
}

/** Transport evaluation is deterministic for a fixed seed. */
TEST(PipelineTransport, Deterministic)
{
    const auto frames = testVideo(5, 91, 3000);
    PipelineConfig config;
    config.network = NetworkSpec::lte();
    config.transport = true;
    config.transport_seed = 11;
    config.session.mtu_payload = 500;
    config.session.fec.enabled = true;

    auto a = evaluatePipeline(frames, makeIntraInterV1Config(),
                              config);
    auto b = evaluatePipeline(frames, makeIntraInterV1Config(),
                              config);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_EQ(a->session.wire_bytes, b->session.wire_bytes);
    ASSERT_EQ(a->frames.size(), b->frames.size());
    for (std::size_t f = 0; f < a->frames.size(); ++f) {
        EXPECT_EQ(a->frames[f].wire_bytes,
                  b->frames[f].wire_bytes);
        EXPECT_DOUBLE_EQ(a->frames[f].total(),
                         b->frames[f].total());
    }
}

}  // namespace
}  // namespace edgepcc
