/** @file Tests for Morton coding and whole-cloud ordering. */

#include "edgepcc/morton/morton.h"

#include <gtest/gtest.h>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton_order.h"

namespace edgepcc {
namespace {

TEST(Morton, OriginIsZero)
{
    EXPECT_EQ(mortonEncode(0, 0, 0), 0u);
}

TEST(Morton, UnitAxes)
{
    EXPECT_EQ(mortonEncode(1, 0, 0), 1u);  // x -> bit 0
    EXPECT_EQ(mortonEncode(0, 1, 0), 2u);  // y -> bit 1
    EXPECT_EQ(mortonEncode(0, 0, 1), 4u);  // z -> bit 2
}

TEST(Morton, LowBitsSelectOctant)
{
    // The low 3 bits must be the octant within the parent voxel,
    // the property paper Algorithm 1 depends on.
    const std::uint64_t code = mortonEncode(5, 3, 6);
    EXPECT_EQ(code & 7u, (5u & 1) | ((3u & 1) << 1) |
                             ((6u & 1) << 2));
    EXPECT_EQ(code >> 3, mortonEncode(5 / 2, 3 / 2, 6 / 2));
}

TEST(Morton, MaxCoordinateRoundtrip)
{
    const std::uint32_t max = (1u << kMaxMortonBitsPerAxis) - 1;
    const MortonXyz xyz = mortonDecode(mortonEncode(max, max, max));
    EXPECT_EQ(xyz.x, max);
    EXPECT_EQ(xyz.y, max);
    EXPECT_EQ(xyz.z, max);
}

TEST(Morton, ExpandCompactInverse)
{
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const auto v = static_cast<std::uint32_t>(
            rng.bounded(1u << kMaxMortonBitsPerAxis));
        EXPECT_EQ(mortonCompactBits(mortonExpandBits(v)), v);
    }
}

TEST(Morton, RandomRoundtrip)
{
    Rng rng(12);
    for (int i = 0; i < 5000; ++i) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(1 << 21));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(1 << 21));
        const auto z =
            static_cast<std::uint32_t>(rng.bounded(1 << 21));
        const MortonXyz xyz = mortonDecode(mortonEncode(x, y, z));
        EXPECT_EQ(xyz, (MortonXyz{x, y, z}));
    }
}

TEST(Morton, PreservesLocalityOfNeighbours)
{
    // Points inside one 2x2x2 cell share all but the low 3 bits.
    const std::uint64_t base = mortonEncode(10, 20, 30);
    for (std::uint32_t dx = 0; dx < 2; ++dx) {
        for (std::uint32_t dy = 0; dy < 2; ++dy) {
            for (std::uint32_t dz = 0; dz < 2; ++dz) {
                const std::uint64_t code =
                    mortonEncode(10 + dx, 20 + dy, 30 + dz);
                EXPECT_EQ(code >> 3, base >> 3);
            }
        }
    }
}

TEST(Morton, CommonLevel)
{
    const int depth = 10;
    const std::uint64_t a = mortonEncode(0, 0, 0);
    EXPECT_EQ(mortonCommonLevel(a, a, depth), depth);
    const std::uint64_t b = mortonEncode(1, 0, 0);
    EXPECT_EQ(mortonCommonLevel(a, b, depth), depth - 1);
    const std::uint64_t c = mortonEncode(512, 0, 0);
    EXPECT_EQ(mortonCommonLevel(a, c, depth), 0);
}

VoxelCloud
randomCloud(std::uint64_t seed, std::size_t n, int grid_bits = 10)
{
    Rng rng(seed);
    VoxelCloud cloud(grid_bits);
    const std::uint32_t grid = 1u << grid_bits;
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add(static_cast<std::uint16_t>(rng.bounded(grid)),
                  static_cast<std::uint16_t>(rng.bounded(grid)),
                  static_cast<std::uint16_t>(rng.bounded(grid)),
                  static_cast<std::uint8_t>(rng.bounded(256)),
                  static_cast<std::uint8_t>(rng.bounded(256)),
                  static_cast<std::uint8_t>(rng.bounded(256)));
    }
    return cloud;
}

TEST(MortonOrder, CodesAreSorted)
{
    const VoxelCloud cloud = randomCloud(13, 5000);
    const MortonOrder order = computeMortonOrder(cloud);
    EXPECT_EQ(order.codes.size(), cloud.size());
    EXPECT_EQ(order.depth, cloud.gridBits());
    EXPECT_TRUE(isSorted(order.codes));
}

TEST(MortonOrder, PermIsAPermutation)
{
    const VoxelCloud cloud = randomCloud(14, 3000);
    const MortonOrder order = computeMortonOrder(cloud);
    std::vector<bool> seen(cloud.size(), false);
    for (const auto index : order.perm) {
        ASSERT_LT(index, cloud.size());
        EXPECT_FALSE(seen[index]);
        seen[index] = true;
    }
}

TEST(MortonOrder, CodesMatchPermutedCoordinates)
{
    const VoxelCloud cloud = randomCloud(15, 2000);
    const MortonOrder order = computeMortonOrder(cloud);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const auto src = order.perm[i];
        EXPECT_EQ(order.codes[i],
                  mortonEncode(cloud.x()[src], cloud.y()[src],
                               cloud.z()[src]));
    }
}

TEST(MortonOrder, ApplyOrderCarriesColors)
{
    const VoxelCloud cloud = randomCloud(16, 1000);
    const MortonOrder order = computeMortonOrder(cloud);
    const VoxelCloud sorted = applyOrder(cloud, order);
    ASSERT_EQ(sorted.size(), cloud.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const auto src = order.perm[i];
        EXPECT_EQ(sorted.x()[i], cloud.x()[src]);
        EXPECT_EQ(sorted.color(i), cloud.color(src));
        EXPECT_EQ(mortonEncode(sorted.x()[i], sorted.y()[i],
                               sorted.z()[i]),
                  order.codes[i]);
    }
}

TEST(MortonOrder, RecordsKernels)
{
    const VoxelCloud cloud = randomCloud(17, 500);
    WorkRecorder recorder;
    recorder.beginStage("test");
    computeMortonOrder(cloud, &recorder);
    recorder.endStage();
    const auto profile = recorder.profile();
    ASSERT_EQ(profile.stages.size(), 1u);
    ASSERT_GE(profile.stages[0].kernels.size(), 2u);
    EXPECT_EQ(profile.stages[0].kernels[0].name,
              "morton.generate");
    EXPECT_EQ(profile.stages[0].kernels[0].items, cloud.size());
}

/** Property: Morton sorting groups points into spatial blocks whose
 *  coordinate spread shrinks as segments get finer (the paper's
 *  Fig. 3a premise). */
TEST(MortonOrder, FinerSegmentsAreSpatiallyTighter)
{
    const VoxelCloud cloud = randomCloud(18, 20000);
    const MortonOrder order = computeMortonOrder(cloud);
    const VoxelCloud sorted = applyOrder(cloud, order);

    const auto mean_extent = [&](std::size_t segments) {
        const std::size_t k =
            (sorted.size() + segments - 1) / segments;
        double total = 0.0;
        std::size_t counted = 0;
        for (std::size_t lo = 0; lo < sorted.size(); lo += k) {
            const std::size_t hi =
                std::min(sorted.size(), lo + k);
            std::uint16_t mn = 0xffff, mx = 0;
            for (std::size_t i = lo; i < hi; ++i) {
                mn = std::min(mn, sorted.x()[i]);
                mx = std::max(mx, sorted.x()[i]);
            }
            total += mx - mn;
            ++counted;
        }
        return total / static_cast<double>(counted);
    };

    EXPECT_LT(mean_extent(1000), mean_extent(10));
}

}  // namespace
}  // namespace edgepcc
