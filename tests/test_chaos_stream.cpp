/**
 * @file
 * Chaos suite (tier2): randomized loss sweeps through the full
 * resilient session. The channel seed comes from EDGEPCC_CHAOS_SEED
 * (default 1) so CI can rotate seeds without a rebuild; everything
 * else is deterministic given that seed. The invariants are the
 * hardening contract, not quality numbers: every frame must come
 * back with a FrameOutcome, no crash, no hang, no out-of-bounds
 * output, and the accounting must stay self-consistent.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("EDGEPCC_CHAOS_SEED");
    if (env == nullptr || *env == '\0')
        return 1;
    return static_cast<std::uint64_t>(
        std::strtoull(env, nullptr, 10));
}

std::vector<VoxelCloud>
chaosVideo(int num_frames, std::uint64_t seed)
{
    VideoSpec spec;
    spec.name = "chaos";
    spec.seed = seed;
    spec.target_points = 3000;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

void
checkInvariants(const SessionReport &report,
                std::size_t num_frames)
{
    ASSERT_EQ(report.frames.size(), num_frames);
    ASSERT_EQ(report.stats.totalFrames(), num_frames);
    for (std::size_t f = 0; f < report.frames.size(); ++f) {
        const SessionFrame &frame = report.frames[f];
        EXPECT_EQ(frame.frame_id, f);
        if (frame.outcome == FrameOutcome::kSkipped) {
            EXPECT_TRUE(frame.cloud.empty());
            continue;
        }
        // Presentable frames carry in-bounds geometry.
        const std::uint32_t grid = frame.cloud.gridSize();
        for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
            EXPECT_LT(frame.cloud.x()[i], grid);
            EXPECT_LT(frame.cloud.y()[i], grid);
            EXPECT_LT(frame.cloud.z()[i], grid);
        }
    }
    EXPECT_EQ(report.stats.frames_delivered +
                  report.stats.frames_lost,
              num_frames);
    EXPECT_EQ(report.stats.nacks, report.stats.retransmits);
}

class ChaosStream
    : public ::testing::TestWithParam<double>
{
};

TEST_P(ChaosStream, SessionSurvivesLossSweep)
{
    const double loss = GetParam();
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(16, seed * 1000 + 7);

    SessionConfig session;
    session.channel = ChannelSpec::lossy(loss, seed);
    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    checkInvariants(*report, frames.size());
    SCOPED_TRACE("loss=" + std::to_string(loss) +
                 " seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(LossRates, ChaosStream,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1,
                                           0.25, 0.5, 0.9));

TEST(ChaosStream, AllFaultTypesAtOnce)
{
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(16, seed * 2000 + 3);

    SessionConfig session;
    session.channel.drop_rate = 0.1;
    session.channel.truncate_rate = 0.1;
    session.channel.bit_flip_rate = 0.1;
    session.channel.duplicate_rate = 0.2;
    session.channel.reorder_rate = 0.3;
    session.channel.seed = seed;
    session.max_retransmits = 3;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    checkInvariants(*report, frames.size());
    // Something must actually have been injected at these rates.
    EXPECT_GT(report->wire.chunks_bad_crc +
                  report->wire.chunks_truncated +
                  report->stats.retransmits,
              0u);
}

/** Slicing + FEC under the loss sweep: same invariants, plus the
 *  FEC accounting must stay self-consistent. */
class ChaosFecStream
    : public ::testing::TestWithParam<double>
{
};

TEST_P(ChaosFecStream, SlicedFecSessionSurvivesLossSweep)
{
    const double loss = GetParam();
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(16, seed * 4000 + 13);

    SessionConfig session;
    session.channel = ChannelSpec::lossy(loss, seed);
    session.mtu_payload = 300;
    session.fec.enabled = true;
    session.fec.group_size = 4;
    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    checkInvariants(*report, frames.size());
    SCOPED_TRACE("loss=" + std::to_string(loss) +
                 " seed=" + std::to_string(seed));

    const FecStats &fec = report->fec;
    EXPECT_LE(fec.single_loss_recovered, fec.single_loss_groups);
    EXPECT_LE(fec.parity_received, fec.groups);
    EXPECT_LE(fec.unrecovered_groups, fec.groups);
    EXPECT_GE(fec.singleLossRecoveredFraction(), 0.0);
    EXPECT_LE(fec.singleLossRecoveredFraction(), 1.0);
    if (loss == 0.0) {
        EXPECT_EQ(fec.recovered_chunks, 0u);
        EXPECT_EQ(report->stats.retransmits, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ChaosFecStream,
                         ::testing::Values(0.0, 0.05, 0.25,
                                           0.6));

/** All fault types with slicing + FEC and a tiny group size. */
TEST(ChaosStream, AllFaultTypesWithFecAndSlicing)
{
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(12, seed * 5000 + 17);

    SessionConfig session;
    session.channel.drop_rate = 0.1;
    session.channel.truncate_rate = 0.1;
    session.channel.bit_flip_rate = 0.1;
    session.channel.duplicate_rate = 0.2;
    session.channel.reorder_rate = 0.3;
    session.channel.seed = seed;
    session.max_retransmits = 3;
    session.mtu_payload = 200;
    session.fec.enabled = true;
    session.fec.group_size = 2;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    checkInvariants(*report, frames.size());
    EXPECT_GT(report->stats.parity_sent, 0u);
}

/**
 * Burst-loss sweep: FEC interleaving must improve the recovered
 * fraction. Aggregated over several derived channel seeds so the
 * comparison is about structure (striping bursts across groups),
 * not one lucky RNG alignment — CI rotates the base seed.
 */
TEST(ChaosBurstFec, InterleaveImprovesRecoveredFraction)
{
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(12, seed * 6000 + 19);

    std::size_t flat_ok = 0;
    std::size_t striped_ok = 0;
    std::size_t flat_unrecovered = 0;
    std::size_t striped_unrecovered = 0;
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
        SessionConfig contiguous;
        contiguous.channel =
            ChannelSpec::bursty(0.025, 3, seed * 100 + trial);
        contiguous.mtu_payload = 400;
        contiguous.fec.enabled = true;
        contiguous.fec.group_size = 4;
        contiguous.max_retransmits = 0;
        contiguous.adaptive_gop = false;
        SessionConfig interleaved = contiguous;
        interleaved.fec_interleave = 4;

        auto flat = StreamSession(makeIntraInterV1Config(),
                                  contiguous)
                        .run(frames);
        auto striped = StreamSession(makeIntraInterV1Config(),
                                     interleaved)
                           .run(frames);
        ASSERT_TRUE(flat.hasValue());
        ASSERT_TRUE(striped.hasValue());
        checkInvariants(*flat, frames.size());
        checkInvariants(*striped, frames.size());
        flat_ok += flat->stats.frames_ok;
        striped_ok += striped->stats.frames_ok;
        flat_unrecovered += flat->fec.unrecovered_groups;
        striped_unrecovered += striped->fec.unrecovered_groups;
    }
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EXPECT_GT(striped_ok, flat_ok);
    EXPECT_LT(striped_unrecovered, flat_unrecovered);
}

/** The deadline ladder under channel loss at the same time: both
 *  degradation mechanisms active, all invariants intact. */
TEST(ChaosStream, OverloadLadderSurvivesLossSweep)
{
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(16, seed * 7000 + 23);

    SessionConfig session;
    session.channel = ChannelSpec::lossy(0.15, seed);
    session.mtu_payload = 300;
    session.fec.enabled = true;
    session.fec.group_size = 4;
    session.overload.enabled = true;
    session.overload.deadline_s = 0.004;
    session.overload.load = LoadSpec::burst2x();
    session.overload.load.seed = seed;
    session.overload.load.jitter = 0.1;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    // Dropped/skipped frames are never sent, so the delivered +
    // lost == frames invariant does not hold; check the ladder's
    // own accounting instead.
    ASSERT_EQ(report->frames.size(), frames.size());
    const OverloadStats &overload = report->overload;
    ASSERT_EQ(overload.ladder.size(), frames.size());
    std::size_t occupancy = 0;
    for (int r = 0; r < kOverloadRungCount; ++r)
        occupancy += overload.rung_occupancy[r];
    EXPECT_EQ(occupancy + overload.queue_drops, frames.size());
    EXPECT_EQ(overload.frames, frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f)
        EXPECT_EQ(overload.ladder[f].frame_id, f);
}

TEST(ChaosStream, IntraOnlyCodecSurvivesHeavyLoss)
{
    const std::uint64_t seed = chaosSeed();
    const auto frames = chaosVideo(12, seed * 3000 + 11);

    SessionConfig session;
    session.channel = ChannelSpec::lossy(0.4, seed + 1);
    session.max_retransmits = 1;
    StreamSession stream(makeIntraOnlyConfig(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    checkInvariants(*report, frames.size());
    // Intra-only: a delivered frame never depends on a reference,
    // so nothing can be concealed by reference promotion — every
    // delivered frame decodes ok or resynced.
    for (const SessionFrame &frame : report->frames) {
        if (frame.delivered) {
            EXPECT_NE(frame.outcome, FrameOutcome::kSkipped);
        }
    }
}

}  // namespace
}  // namespace edgepcc
