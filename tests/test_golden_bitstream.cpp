/**
 * @file
 * Golden-bitstream conformance: re-encodes the workload pinned in
 * tools/golden_spec.h and requires byte-identical output to the
 * .epcv files checked in under tests/golden. Any diff means the
 * bitstream format changed — intentionally (regenerate with
 * tools/regen_golden.sh and review the new goldens) or not (a
 * regression this test just caught).
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/stream/stream_file.h"

#include "golden_spec.h"

#ifndef EDGEPCC_GOLDEN_DIR
#error "build must define EDGEPCC_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace edgepcc {
namespace {

std::vector<VoxelCloud>
goldenFrames()
{
    const SyntheticHumanVideo video(golden::goldenVideoSpec());
    std::vector<VoxelCloud> frames;
    for (int i = 0; i < golden::kGoldenFrames; ++i)
        frames.push_back(video.frame(i));
    return frames;
}

TEST(GoldenBitstream, EncoderReproducesGoldenBytes)
{
    const std::vector<VoxelCloud> frames = goldenFrames();
    for (const golden::GoldenCase &item : golden::goldenCases()) {
        SCOPED_TRACE(item.config.name);
        const std::string path =
            std::string(EDGEPCC_GOLDEN_DIR) + "/" + item.file;
        auto golden_frames = readStreamFile(path);
        ASSERT_TRUE(golden_frames.hasValue())
            << path << ": " << golden_frames.status().message()
            << " (regenerate with tools/regen_golden.sh)";
        ASSERT_EQ(golden_frames->size(), frames.size());

        VideoEncoder encoder(item.config);
        for (std::size_t f = 0; f < frames.size(); ++f) {
            auto encoded = encoder.encode(frames[f]);
            ASSERT_TRUE(encoded.hasValue()) << "frame " << f;
            EXPECT_EQ(encoded->bitstream, (*golden_frames)[f])
                << item.file << " frame " << f
                << ": bitstream bytes changed. If the format change "
                   "is intentional, run tools/regen_golden.sh and "
                   "commit the new goldens.";
        }
    }
}

TEST(GoldenBitstream, GoldenStreamsDecodeToSaneQuality)
{
    // The byte comparison above would pass even if encoder and
    // decoder drifted together into nonsense; this anchors the
    // goldens to actual reconstruction quality.
    const std::vector<VoxelCloud> frames = goldenFrames();
    for (const golden::GoldenCase &item : golden::goldenCases()) {
        SCOPED_TRACE(item.config.name);
        const std::string path =
            std::string(EDGEPCC_GOLDEN_DIR) + "/" + item.file;
        auto golden_frames = readStreamFile(path);
        ASSERT_TRUE(golden_frames.hasValue());

        VideoDecoder decoder;
        for (std::size_t f = 0; f < golden_frames->size(); ++f) {
            auto decoded = decoder.decode((*golden_frames)[f]);
            ASSERT_TRUE(decoded.hasValue())
                << item.file << " frame " << f << ": "
                << decoded.status().message();
            const AttrQuality attr =
                attributePsnr(frames[f], decoded->cloud);
            EXPECT_GT(attr.psnr, 25.0)
                << item.file << " frame " << f;
            const GeometryQuality geom =
                geometryPsnrD1(frames[f], decoded->cloud);
            EXPECT_GT(geom.psnr, 30.0)
                << item.file << " frame " << f;
        }
    }
}

TEST(GoldenBitstream, GoldenContainerRoundTripsThroughPack)
{
    // The .epcv container itself must be stable: unpack(pack(x))
    // == x for the checked-in files.
    for (const golden::GoldenCase &item : golden::goldenCases()) {
        const std::string path =
            std::string(EDGEPCC_GOLDEN_DIR) + "/" + item.file;
        auto golden_frames = readStreamFile(path);
        ASSERT_TRUE(golden_frames.hasValue());
        const std::vector<std::uint8_t> packed =
            packStream(*golden_frames);
        auto unpacked = unpackStream(packed);
        ASSERT_TRUE(unpacked.hasValue());
        EXPECT_EQ(*unpacked, *golden_frames) << item.file;
    }
}

}  // namespace
}  // namespace edgepcc
