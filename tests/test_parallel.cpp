/** @file Tests for the thread pool, parallel primitives and sort. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "edgepcc/common/rng.h"
#include "edgepcc/parallel/parallel_for.h"
#include "edgepcc/parallel/radix_sort.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace {

TEST(ThreadPool, InlineExecutionWithZeroWorkers)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 0u);
    int value = 0;
    pool.submit([&value] { value = 7; });
    pool.wait();
    EXPECT_EQ(value, 7);
}

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReentrant)
{
    ThreadPool pool(2);
    pool.wait();  // no tasks
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(5000);
    parallelFor(0, hits.size(),
                [&](std::size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, EmptyRange)
{
    bool touched = false;
    parallelFor(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBeginCoversExactRange)
{
    // Regression: chunking must respect `begin`, not restart at 0.
    ThreadPool pool(2);
    constexpr std::size_t kBegin = 1000;
    constexpr std::size_t kEnd = 9000;
    std::vector<std::atomic<int>> hits(kEnd + 100);
    parallelFor(
        kBegin, kEnd, [&](std::size_t i) { ++hits[i]; }, pool,
        64);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(),
                  (i >= kBegin && i < kEnd) ? 1 : 0)
            << i;
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline)
{
    // Regression: grain > n must degenerate to one inline chunk,
    // not produce zero or empty chunks.
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(10);
    parallelFor(
        3, 7, [&](std::size_t i) { ++hits[i]; }, pool, 1024);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), (i >= 3 && i < 7) ? 1 : 0);
}

TEST(ParallelForChunks, NonZeroBeginAndLargeGrain)
{
    ThreadPool pool(2);
    std::atomic<std::uint64_t> sum{0};
    parallelForChunks(
        100, 200,
        [&](std::size_t lo, std::size_t hi) {
            std::uint64_t local = 0;
            for (std::size_t i = lo; i < hi; ++i)
                local += i;
            sum.fetch_add(local);
        },
        pool, 5000);
    std::uint64_t expected = 0;
    for (std::size_t i = 100; i < 200; ++i)
        expected += i;
    EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelReduce, NonZeroBeginAndGrainLargerThanRange)
{
    ThreadPool pool(2);
    const std::uint64_t got = parallelReduce<std::uint64_t>(
        10, 20, 0, [](std::size_t i) { return i; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        pool, 4096);
    EXPECT_EQ(got, 145u);  // 10 + 11 + ... + 19
}

TEST(ParallelForChunks, ChunksPartitionTheRange)
{
    std::vector<int> data(10000, 0);
    parallelForChunks(0, data.size(),
                      [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                              data[i] += 1;
                      });
    EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                            [](int v) { return v == 1; }));
}

TEST(ParallelReduce, SumMatchesSequential)
{
    std::vector<std::uint64_t> values(20000);
    Rng rng(5);
    for (auto &value : values)
        value = rng.bounded(1000);
    const std::uint64_t expected = std::accumulate(
        values.begin(), values.end(), std::uint64_t{0});
    const std::uint64_t got = parallelReduce<std::uint64_t>(
        0, values.size(), 0,
        [&](std::size_t i) { return values[i]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(got, expected);
}

TEST(ExclusiveScan, KnownSequence)
{
    std::vector<std::uint32_t> values{3, 1, 4, 1, 5};
    const std::uint32_t total = exclusiveScan(values);
    EXPECT_EQ(total, 14u);
    EXPECT_EQ(values,
              (std::vector<std::uint32_t>{0, 3, 4, 8, 9}));
}

TEST(RadixSort, EmptyAndSingle)
{
    std::vector<KeyIndex> empty;
    radixSortPairs(empty);
    EXPECT_TRUE(empty.empty());

    std::vector<KeyIndex> one{{42, 0}};
    radixSortPairs(one);
    EXPECT_EQ(one[0].key, 42u);
}

TEST(RadixSort, MatchesStdSort)
{
    Rng rng(6);
    std::vector<KeyIndex> pairs(30000);
    for (std::uint32_t i = 0; i < pairs.size(); ++i)
        pairs[i] = {rng(), i};
    std::vector<std::uint64_t> expected;
    expected.reserve(pairs.size());
    for (const auto &pair : pairs)
        expected.push_back(pair.key);
    std::sort(expected.begin(), expected.end());

    radixSortPairs(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(pairs[i].key, expected[i]);
}

TEST(RadixSort, IsStable)
{
    // Equal keys must preserve their input index order.
    std::vector<KeyIndex> pairs;
    for (std::uint32_t i = 0; i < 1000; ++i)
        pairs.push_back({i % 7, i});
    radixSortPairs(pairs, 8);
    for (std::size_t i = 1; i < pairs.size(); ++i) {
        if (pairs[i - 1].key == pairs[i].key) {
            EXPECT_LT(pairs[i - 1].index, pairs[i].index);
        }
    }
}

TEST(RadixSort, RespectsKeyBitsLimit)
{
    // Keys above key_bits are ignored by construction: with 8-bit
    // sorting, only the low byte decides the order.
    std::vector<KeyIndex> pairs{{0x0102, 0}, {0x0201, 1}};
    radixSortPairs(pairs, 8);
    EXPECT_EQ(pairs[0].key, 0x0201u);  // low byte 0x01 first
    EXPECT_EQ(pairs[1].key, 0x0102u);
}

TEST(RadixSort, KeysOnlyVariant)
{
    Rng rng(8);
    std::vector<std::uint64_t> keys(10000);
    for (auto &key : keys)
        key = rng();
    std::vector<std::uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    radixSortKeys(keys);
    EXPECT_EQ(keys, expected);
}

/** Parameterized sweep over sizes and key widths. */
class RadixSortSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RadixSortSweep, SortedAscending)
{
    const auto [size, bits] = GetParam();
    Rng rng(static_cast<std::uint64_t>(size) * 131 +
            static_cast<std::uint64_t>(bits));
    std::vector<KeyIndex> pairs(static_cast<std::size_t>(size));
    const std::uint64_t mask =
        bits == 64 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << bits) - 1);
    for (std::uint32_t i = 0; i < pairs.size(); ++i)
        pairs[i] = {rng() & mask, i};
    radixSortPairs(pairs, bits);
    for (std::size_t i = 1; i < pairs.size(); ++i)
        EXPECT_LE(pairs[i - 1].key, pairs[i].key);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, RadixSortSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 100, 4096),
                       ::testing::Values(1, 8, 30, 33, 64)));

}  // namespace
}  // namespace edgepcc
