/**
 * @file
 * Corruption harness over every decoder entry point: round-trips
 * each codec, then sweeps truncations at every byte boundary plus
 * seeded bit flips and garbage runs, asserting that corrupt input
 * yields a clean Status (or validated output) rather than a crash,
 * sanitizer report, or out-of-bounds result. Run under the asan and
 * tsan presets to give the "no UB" half of the contract teeth.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "corruption_harness.h"
#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/common/rng.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/entropy/bitstream.h"
#include "edgepcc/entropy/range_coder.h"
#include "edgepcc/interframe/macroblock_codec.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/octree/geometry_codec.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

using testing::DecodeFn;
using testing::SweepStats;
using testing::fullSweep;

/** Morton-sorted synthetic surface cloud (small: the truncation
 *  sweep decodes the payload once per byte). */
VoxelCloud
surfaceCloud(std::uint64_t seed, std::size_t n, int bits,
             int shift_x = 0)
{
    Rng rng(seed);
    std::set<std::uint64_t> codes;
    const std::uint32_t grid = 1u << bits;
    while (codes.size() < n) {
        const auto x = static_cast<std::uint32_t>(
            (rng.bounded(grid / 2) + shift_x) % grid);
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const std::uint32_t z = (x * 2 + y) % grid;
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  static_cast<std::uint8_t>(xyz.x * 3),
                  static_cast<std::uint8_t>(xyz.y * 5),
                  static_cast<std::uint8_t>(xyz.z * 7));
    }
    return cloud;
}

// -----------------------------------------------------------------
// BitReader
// -----------------------------------------------------------------

TEST(CorruptBitstream, BitReaderSurvivesSweeps)
{
    BitWriter writer;
    Rng rng(42);
    for (int i = 0; i < 64; ++i) {
        writer.writeVarint(rng());
        writer.writeSignedVarint(static_cast<std::int64_t>(rng()));
        writer.writeBits(rng() & 0x1f, 5);
    }
    writer.alignToByte();
    const std::vector<std::uint8_t> payload = writer.bytes();

    const DecodeFn decode =
        [](const std::vector<std::uint8_t> &bytes) {
            BitReader reader(bytes);
            // Read more fields than were written so truncation is
            // always exercised; the reader must saturate via its
            // overrun flag, never read out of bounds.
            for (int i = 0; i < 80; ++i) {
                (void)reader.readVarint();
                (void)reader.readSignedVarint();
                (void)reader.readBits(5);
            }
            return reader.status();
        };

    const SweepStats stats = fullSweep(payload, decode, 1001);
    EXPECT_GT(stats.attempts, payload.size());
    EXPECT_GT(stats.rejected, 0u);
}

// -----------------------------------------------------------------
// Adaptive range coder
// -----------------------------------------------------------------

TEST(CorruptBitstream, EntropyDecompressSurvivesSweeps)
{
    Rng rng(7);
    std::vector<std::uint8_t> original(4096);
    for (auto &byte : original)
        byte = static_cast<std::uint8_t>(rng.bounded(24) * 11);
    const std::vector<std::uint8_t> payload =
        entropyCompress(original);
    const std::size_t expected_size = original.size();

    const DecodeFn decode =
        [expected_size](const std::vector<std::uint8_t> &bytes)
        -> Status {
        auto decoded = entropyDecompress(bytes, expected_size);
        if (!decoded.hasValue())
            return decoded.status();
        EXPECT_EQ(decoded->size(), expected_size);
        return Status::ok();
    };

    // Sanity: the pristine payload round-trips.
    auto pristine = entropyDecompress(payload, expected_size);
    ASSERT_TRUE(pristine.hasValue());
    EXPECT_EQ(*pristine, original);

    const SweepStats stats = fullSweep(payload, decode, 1002);
    EXPECT_GT(stats.rejected, 0u);
}

TEST(CorruptBitstream, EntropyDecompressRejectsHugeClaimedSize)
{
    const std::vector<std::uint8_t> tiny = {0x01, 0x02, 0x03};
    auto decoded =
        entropyDecompress(tiny, std::size_t{1} << 60);
    ASSERT_FALSE(decoded.hasValue());
    EXPECT_EQ(decoded.status().code(),
              StatusCode::kCorruptBitstream);
}

// -----------------------------------------------------------------
// Geometry codec (all builder / entropy variants)
// -----------------------------------------------------------------

DecodeFn
geometryValidator()
{
    return [](const std::vector<std::uint8_t> &bytes) -> Status {
        auto decoded = decodeGeometry(bytes);
        if (!decoded.hasValue())
            return decoded.status();
        const VoxelCloud &cloud = *decoded;
        const std::uint32_t grid = cloud.gridSize();
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            EXPECT_LT(cloud.x()[i], grid);
            EXPECT_LT(cloud.y()[i], grid);
            EXPECT_LT(cloud.z()[i], grid);
        }
        return Status::ok();
    };
}

struct GeometryVariant {
    const char *name;
    GeometryConfig config;
};

std::vector<GeometryVariant>
geometryVariants()
{
    std::vector<GeometryVariant> variants;
    GeometryConfig sequential;
    sequential.builder = GeometryConfig::Builder::kSequential;
    sequential.tight_bbox = false;
    variants.push_back({"sequential", sequential});

    GeometryConfig parallel;
    parallel.builder = GeometryConfig::Builder::kParallelMorton;
    variants.push_back({"parallel", parallel});

    GeometryConfig entropy = parallel;
    entropy.entropy_coding = true;
    variants.push_back({"entropy", entropy});

    GeometryConfig contextual = parallel;
    contextual.contextual_entropy = true;
    variants.push_back({"contextual", contextual});
    return variants;
}

TEST(CorruptBitstream, GeometryDecoderSurvivesSweeps)
{
    const VoxelCloud cloud = surfaceCloud(21, 1500, 7);
    const DecodeFn decode = geometryValidator();
    std::uint64_t seed = 2000;
    for (const GeometryVariant &variant : geometryVariants()) {
        SCOPED_TRACE(variant.name);
        auto encoded = encodeGeometry(cloud, variant.config);
        ASSERT_TRUE(encoded.hasValue());

        // Sanity: pristine payload decodes.
        ASSERT_TRUE(decode(encoded->payload).isOk());

        const SweepStats stats =
            fullSweep(encoded->payload, decode, ++seed);
        EXPECT_GT(stats.rejected, 0u);
    }
}

TEST(CorruptBitstream, GeometryDecoderRejectsEmptyAndGarbage)
{
    const DecodeFn decode = geometryValidator();
    EXPECT_FALSE(decode({}).isOk());
    Rng rng(3);
    std::vector<std::uint8_t> garbage(512);
    for (auto &byte : garbage)
        byte = static_cast<std::uint8_t>(rng());
    EXPECT_FALSE(decode(garbage).isOk());
}

// -----------------------------------------------------------------
// Segment attribute codec
// -----------------------------------------------------------------

TEST(CorruptBitstream, SegmentDecoderSurvivesSweeps)
{
    Rng rng(5);
    const std::size_t n = 2000;
    AttrChannels channels;
    for (auto &channel : channels) {
        channel.resize(n);
        for (auto &value : channel)
            value = static_cast<std::int32_t>(rng.bounded(256));
    }
    SegmentCodecConfig config;
    auto encoded = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(encoded.hasValue());

    const DecodeFn decode =
        [n](const std::vector<std::uint8_t> &bytes) -> Status {
        auto decoded = decodeSegmentAttr(bytes);
        if (!decoded.hasValue())
            return decoded.status();
        for (const auto &channel : *decoded)
            EXPECT_LE(channel.size(), std::size_t{1} << 24);
        (void)n;
        return Status::ok();
    };

    ASSERT_TRUE(decode(*encoded).isOk());
    const SweepStats stats = fullSweep(*encoded, decode, 3001);
    EXPECT_GT(stats.rejected, 0u);
}

// -----------------------------------------------------------------
// Macro-block inter-frame codec
// -----------------------------------------------------------------

TEST(CorruptBitstream, MacroBlockDecoderSurvivesSweeps)
{
    const VoxelCloud i_frame = surfaceCloud(31, 1200, 7, 0);
    const VoxelCloud p_frame = surfaceCloud(32, 1200, 7, 5);
    MacroBlockConfig config;
    auto encoded = encodeMacroBlockAttr(p_frame, i_frame, config);
    ASSERT_TRUE(encoded.hasValue());

    const DecodeFn decode =
        [&i_frame,
         &p_frame](const std::vector<std::uint8_t> &bytes) {
            // Fresh output cloud per trial: a partial decode must
            // not leave out-of-range colors behind.
            VoxelCloud out = p_frame;
            for (std::size_t i = 0; i < out.size(); ++i)
                out.setColor(i, Color{});
            return decodeMacroBlockAttrInto(bytes, i_frame, out);
        };

    ASSERT_TRUE(decode(encoded->payload).isOk());
    const SweepStats stats =
        fullSweep(encoded->payload, decode, 4001);
    EXPECT_GT(stats.rejected, 0u);
}

// -----------------------------------------------------------------
// Chunked transport framing + resilient receiver
// -----------------------------------------------------------------

/** Serializes a short IPPI GOP into transport chunks. */
std::vector<std::vector<std::uint8_t>>
gopChunks(std::size_t num_frames)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    std::vector<std::vector<std::uint8_t>> chunks;
    std::uint32_t gop_id = 0;
    for (std::size_t f = 0; f < num_frames; ++f) {
        const VoxelCloud frame = surfaceCloud(
            61, 600, 7, static_cast<int>(f) * 3);
        auto encoded = encoder.encode(frame);
        EXPECT_TRUE(encoded.hasValue());
        if (encoded->stats.type == Frame::Type::kIntra)
            gop_id = static_cast<std::uint32_t>(f);
        ChunkHeader header;
        header.sequence = static_cast<std::uint32_t>(f);
        header.frame_id = static_cast<std::uint32_t>(f);
        header.gop_id = gop_id;
        header.frame_type = encoded->stats.type;
        chunks.push_back(
            serializeChunk(header, encoded->bitstream));
    }
    return chunks;
}

/** Ingests damaged wire bytes through the resilient receiver and
 *  validates every ladder output. Never returns failure: the
 *  contract is no crash / no hang / no OOB output, not rejection. */
DecodeFn
receiverValidator(std::uint32_t expected_frames)
{
    return [expected_frames](
               const std::vector<std::uint8_t> &wire) -> Status {
        StreamReceiver receiver;
        receiver.ingest(wire);
        const std::vector<SessionFrame> frames =
            receiver.decodeAll(expected_frames);
        EXPECT_EQ(frames.size(), expected_frames);
        for (const SessionFrame &frame : frames) {
            const std::uint32_t grid = frame.cloud.gridSize();
            for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
                EXPECT_LT(frame.cloud.x()[i], grid);
                EXPECT_LT(frame.cloud.y()[i], grid);
                EXPECT_LT(frame.cloud.z()[i], grid);
            }
        }
        return Status::ok();
    };
}

TEST(CorruptBitstream, ChunkedReceiverSurvivesChunkSweeps)
{
    const auto chunks = gopChunks(4);
    const DecodeFn decode = receiverValidator(4);

    // Sanity: the pristine wire decodes.
    ASSERT_TRUE(decode(testing::joinChunks(chunks)).isOk());

    const SweepStats stats =
        testing::chunkFullSweep(chunks, decode, 6001);
    EXPECT_GT(stats.attempts, 0u);
    // The receiver degrades instead of rejecting: every damaged
    // wire still yields one validated outcome per frame.
    EXPECT_EQ(stats.decoded_ok, stats.attempts);
}

TEST(CorruptBitstream, ChunkedReceiverSurvivesWireTruncation)
{
    const auto chunks = gopChunks(3);
    const std::vector<std::uint8_t> wire =
        testing::joinChunks(chunks);
    // Strided: the wire is a few KB and each trial decodes every
    // surviving chunk; step 17 still hits every alignment class
    // within the 26-byte header period.
    const SweepStats stats = testing::truncationSweep(
        wire, receiverValidator(3), /*stride=*/17);
    EXPECT_GT(stats.attempts, 0u);
    EXPECT_EQ(stats.decoded_ok, stats.attempts);
}

TEST(CorruptBitstream, ChunkedReceiverReassemblesPureReorder)
{
    const auto chunks = gopChunks(4);
    // Reversed wire order, undamaged bytes: reassembly by frame id
    // must recover every frame as ok.
    std::vector<std::vector<std::uint8_t>> reversed(
        chunks.rbegin(), chunks.rend());
    StreamReceiver receiver;
    receiver.ingest(testing::joinChunks(reversed));
    const auto frames = receiver.decodeAll(4);
    ASSERT_EQ(frames.size(), 4u);
    for (const SessionFrame &frame : frames)
        EXPECT_EQ(frame.outcome, FrameOutcome::kOk)
            << "frame " << frame.frame_id;
}

TEST(CorruptBitstream, RawEntropyAttrSurvivesSweeps)
{
    const VoxelCloud cloud = surfaceCloud(41, 1500, 7);
    const std::vector<std::uint8_t> payload =
        encodeRawEntropyAttr(cloud);

    const DecodeFn decode =
        [&cloud](const std::vector<std::uint8_t> &bytes) {
            VoxelCloud out = cloud;
            return decodeRawEntropyAttrInto(bytes, out);
        };

    ASSERT_TRUE(decode(payload).isOk());
    const SweepStats stats = fullSweep(payload, decode, 5001);
    EXPECT_GT(stats.rejected, 0u);
}

}  // namespace
}  // namespace edgepcc
