/**
 * @file
 * Scalar-vs-SIMD equivalence: every dispatched kernel must be
 * *byte-identical* across all instruction-set levels the host can
 * run (docs/PERFORMANCE.md "Dispatch shim"). Each property test
 * runs the kernel under every forceable level and compares against
 * the scalar reference output; the capstone test encodes whole
 * frames under each level and requires identical bitstreams.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "edgepcc/common/crc32c.h"
#include "edgepcc/common/gf256.h"
#include "edgepcc/common/rng.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/parallel/radix_sort.h"
#include "edgepcc/platform/simd.h"
#include "edgepcc/stream/rs_fec.h"

namespace edgepcc {
namespace {

/** Every level the host supports, scalar first (the reference). */
std::vector<SimdLevel>
forceableLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::kScalar};
    if (detectSimdLevel() >= SimdLevel::kSse4)
        levels.push_back(SimdLevel::kSse4);
    if (detectSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    return levels;
}

/** RAII: force a level, restore detection-order dispatch after. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level)
    {
        applied_ = setSimdLevelForTesting(level);
    }
    ~ScopedSimdLevel() { clearSimdLevelForTesting(); }
    SimdLevel applied() const { return applied_; }

  private:
    SimdLevel applied_ = SimdLevel::kScalar;
};

TEST(SimdDispatch, ParseAndNameRoundTrip)
{
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
        SimdLevel parsed = SimdLevel::kScalar;
        ASSERT_TRUE(
            simdLevelFromName(simdLevelName(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
    SimdLevel parsed = SimdLevel::kAvx2;
    EXPECT_FALSE(simdLevelFromName("neon", &parsed));
    EXPECT_FALSE(simdLevelFromName("", &parsed));
    EXPECT_EQ(parsed, SimdLevel::kAvx2);  // untouched on failure
}

TEST(SimdDispatch, TestOverrideClampsToDetected)
{
    // Asking for more than the host has must clamp, never crash.
    ScopedSimdLevel forced(SimdLevel::kAvx2);
    EXPECT_LE(forced.applied(), detectSimdLevel());
    EXPECT_EQ(activeSimdLevel(), forced.applied());
}

TEST(SimdEquivalence, MortonEncodeBatchMatchesScalar)
{
    Rng rng(7);
    for (const std::size_t n : {0u, 1u, 2u, 3u, 5u, 63u, 1000u}) {
        std::vector<std::uint16_t> x(n), y(n), z(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
            y[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
            z[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
        }
        std::vector<std::uint64_t> reference(n);
        for (std::size_t i = 0; i < n; ++i)
            reference[i] = mortonEncode(x[i], y[i], z[i]);
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint64_t> codes(n, ~0ull);
            mortonEncodeBatch(x.data(), y.data(), z.data(), n,
                              codes.data());
            EXPECT_EQ(codes, reference)
                << "n=" << n << " level="
                << simdLevelName(forced.applied());
        }
    }
}

TEST(SimdEquivalence, MortonDecodeBatchMatchesScalar)
{
    Rng rng(8);
    for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 1000u}) {
        std::vector<std::uint64_t> codes(n);
        for (std::size_t i = 0; i < n; ++i) {
            // 48 random bits: the full u16 coordinate space.
            codes[i] = (static_cast<std::uint64_t>(
                            rng.bounded(1u << 24))
                        << 24) |
                       rng.bounded(1u << 24);
        }
        std::vector<std::uint32_t> rx(n), ry(n), rz(n);
        for (std::size_t i = 0; i < n; ++i) {
            const MortonXyz xyz = mortonDecode(codes[i]);
            rx[i] = xyz.x;
            ry[i] = xyz.y;
            rz[i] = xyz.z;
        }
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint32_t> dx(n, ~0u), dy(n, ~0u),
                dz(n, ~0u);
            mortonDecodeBatch(codes.data(), n, dx.data(),
                              dy.data(), dz.data());
            EXPECT_EQ(dx, rx) << simdLevelName(forced.applied());
            EXPECT_EQ(dy, ry) << simdLevelName(forced.applied());
            EXPECT_EQ(dz, rz) << simdLevelName(forced.applied());
        }
    }
}

TEST(SimdEquivalence, RadixSortKeysValuesMatchesPairSort)
{
    Rng rng(9);
    for (const std::size_t n : {0u, 1u, 2u, 100u, 4096u}) {
        std::vector<std::uint64_t> keys(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Narrow key range on purpose: duplicate keys probe the
            // stability contract (equal keys keep input order).
            keys[i] = rng.bounded(257);
        }
        std::vector<KeyIndex> pairs(n);
        for (std::size_t i = 0; i < n; ++i)
            pairs[i] = KeyIndex{keys[i],
                                static_cast<std::uint32_t>(i)};
        radixSortPairs(pairs, 48);

        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint64_t> k = keys;
            std::vector<std::uint32_t> v(n);
            for (std::size_t i = 0; i < n; ++i)
                v[i] = static_cast<std::uint32_t>(i);
            radixSortKeysValues(k.data(), v.data(), n, 48);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(k[i], pairs[i].key)
                    << i << " " << simdLevelName(forced.applied());
                EXPECT_EQ(v[i], pairs[i].index)
                    << i << " " << simdLevelName(forced.applied());
            }
        }
    }
}

TEST(SimdEquivalence, Crc32cMatchesScalarTable)
{
    Rng rng(10);
    for (const std::size_t n :
         {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>(rng.bounded(256));
        std::uint32_t reference = 0;
        std::uint32_t chained_reference = 0;
        {
            ScopedSimdLevel forced(SimdLevel::kScalar);
            reference = crc32c(data);
            // Chained seeds (the wire format CRCs header and
            // payload as one running state).
            chained_reference =
                crc32c(data.data() + n / 2, n - n / 2,
                       crc32c(data.data(), n / 2));
        }
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            EXPECT_EQ(crc32c(data), reference)
                << "n=" << n << " level="
                << simdLevelName(forced.applied());
            EXPECT_EQ(crc32c(data.data() + n / 2, n - n / 2,
                             crc32c(data.data(), n / 2)),
                      chained_reference)
                << "n=" << n << " level="
                << simdLevelName(forced.applied());
        }
    }
    // Known-answer check ("123456789" -> 0xE3069283, Castagnoli).
    const std::uint8_t kat[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
    for (const SimdLevel level : forceableLevels()) {
        ScopedSimdLevel forced(level);
        EXPECT_EQ(crc32c(kat, sizeof(kat)), 0xE3069283u)
            << simdLevelName(forced.applied());
    }
}

TEST(SimdEquivalence, XorBytesMatchesScalarXor)
{
    Rng rng(11);
    for (const std::size_t n :
         {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 1000u}) {
        std::vector<std::uint8_t> src(n), base(n);
        for (std::size_t i = 0; i < n; ++i) {
            src[i] = static_cast<std::uint8_t>(rng.bounded(256));
            base[i] = static_cast<std::uint8_t>(rng.bounded(256));
        }
        std::vector<std::uint8_t> reference = base;
        for (std::size_t i = 0; i < n; ++i)
            reference[i] ^= src[i];
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint8_t> dst = base;
            xorBytes(dst.data(), src.data(), n);
            EXPECT_EQ(dst, reference)
                << "n=" << n << " level="
                << simdLevelName(forced.applied());
        }
    }
}

TEST(SimdEquivalence, GfMulAddBytesMatchesTableReference)
{
    Rng rng(13);
    for (const std::size_t n :
         {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 1000u}) {
        std::vector<std::uint8_t> src(n), base(n);
        for (std::size_t i = 0; i < n; ++i) {
            src[i] = static_cast<std::uint8_t>(rng.bounded(256));
            base[i] = static_cast<std::uint8_t>(rng.bounded(256));
        }
        // Coefficients hitting the fast paths (0 = no-op, 1 = XOR)
        // and both nibble halves of the PSHUFB tables.
        for (const std::uint8_t coeff : {0, 1, 2, 0x0f, 0x1d,
                                         0x53, 0x80, 0xca, 0xff}) {
            std::vector<std::uint8_t> reference = base;
            for (std::size_t i = 0; i < n; ++i)
                reference[i] ^= gfMul(coeff, src[i]);
            for (const SimdLevel level : forceableLevels()) {
                ScopedSimdLevel forced(level);
                std::vector<std::uint8_t> dst = base;
                gfMulAddBytes(dst.data(), src.data(), coeff, n);
                EXPECT_EQ(dst, reference)
                    << "n=" << n << " coeff=" << int(coeff)
                    << " level="
                    << simdLevelName(forced.applied());
            }
        }
    }
}

TEST(SimdEquivalence, RsParityRowsIdenticalAcrossLevels)
{
    // Whole parity rows built through the dispatcher must be
    // byte-identical to the forced-scalar rows: RS recovery math
    // depends on sender and receiver agreeing bit for bit.
    Rng rng(17);
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<ChunkView> group;
    for (int i = 0; i < 6; ++i) {
        std::vector<std::uint8_t> payload(
            static_cast<std::size_t>(64 + 37 * i));
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(rng.bounded(256));
        payloads.push_back(std::move(payload));
    }
    for (int i = 0; i < 6; ++i) {
        ChunkHeader header;
        header.frame_id = 3;
        header.fec_seq = static_cast<std::uint8_t>(i);
        header.slice_index = static_cast<std::uint16_t>(i);
        header.slice_count = 6;
        group.push_back({header, ByteSpan(payloads[
            static_cast<std::size_t>(i)])});
    }
    for (int row = 0; row < 3; ++row) {
        std::vector<std::uint8_t> reference;
        {
            ScopedSimdLevel forced(SimdLevel::kScalar);
            buildRsParityInto(group, row, reference);
        }
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint8_t> parity;
            buildRsParityInto(group, row, parity);
            EXPECT_EQ(parity, reference)
                << "row=" << row << " level="
                << simdLevelName(forced.applied());
        }
    }
}

// The capstone: whole encoded frames — every kernel, every config —
// must be byte-identical across dispatch levels.
TEST(SimdEquivalence, EncodedBitstreamsIdenticalAcrossLevels)
{
    VideoSpec spec;
    spec.name = "simd";
    spec.seed = 77;
    spec.target_points = 6000;
    SyntheticHumanVideo video(spec);
    const VoxelCloud frame0 = video.frame(0);
    const VoxelCloud frame1 = video.frame(1);

    for (const CodecConfig &config : allPaperConfigs()) {
        std::vector<std::vector<std::uint8_t>> reference;
        {
            ScopedSimdLevel forced(SimdLevel::kScalar);
            VideoEncoder encoder(config);
            auto e0 = encoder.encode(frame0);
            auto e1 = encoder.encode(frame1);
            ASSERT_TRUE(e0.hasValue()) << config.name;
            ASSERT_TRUE(e1.hasValue()) << config.name;
            reference.push_back(e0->bitstream);
            reference.push_back(e1->bitstream);
        }
        for (const SimdLevel level : forceableLevels()) {
            ScopedSimdLevel forced(level);
            VideoEncoder encoder(config);
            auto e0 = encoder.encode(frame0);
            auto e1 = encoder.encode(frame1);
            ASSERT_TRUE(e0.hasValue()) << config.name;
            ASSERT_TRUE(e1.hasValue()) << config.name;
            EXPECT_EQ(e0->bitstream, reference[0])
                << config.name << " level="
                << simdLevelName(forced.applied());
            EXPECT_EQ(e1->bitstream, reference[1])
                << config.name << " level="
                << simdLevelName(forced.applied());
            // And the decode must round-trip the scalar stream.
            VideoDecoder decoder;
            auto d0 = decoder.decode(reference[0]);
            ASSERT_TRUE(d0.hasValue()) << config.name;
            EXPECT_TRUE(d0->cloud.checkInvariants());
        }
    }
}

}  // namespace
}  // namespace edgepcc
