/**
 * @file
 * Runtime semantics of the annotated sync primitives
 * (include/edgepcc/common/sync.h). The *static* guarantees — that
 * clang rejects unguarded access to EDGEPCC_GUARDED_BY fields — are
 * exercised by the configure-time compile-fail harness in
 * tests/compile_fail/; this suite pins down the runtime behaviour
 * the annotations wrap: mutual exclusion, tryLock, condition-variable
 * wakeups, and that the annotated types compose with the components
 * migrated onto them (Tracer, StageStatsAggregator, ThreadPool).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "edgepcc/common/sync.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace {

TEST(Sync, MutexLockUnlockRoundTrip)
{
    Mutex mutex;
    mutex.lock();
    mutex.unlock();
    {
        MutexLock lock(mutex);
    }
    // Re-lockable after scoped release.
    MutexLock lock(mutex);
}

TEST(Sync, TryLockReflectsOwnership)
{
    Mutex mutex;
    ASSERT_TRUE(mutex.tryLock());

    std::atomic<bool> other_got{true};
    std::thread other([&] { other_got = mutex.tryLock(); });
    other.join();
    EXPECT_FALSE(other_got.load());

    mutex.unlock();
    std::thread retry([&] {
        other_got = mutex.tryLock();
        if (other_got)
            mutex.unlock();
    });
    retry.join();
    EXPECT_TRUE(other_got.load());
}

TEST(Sync, MutexProvidesMutualExclusion)
{
    Mutex mutex;
    long counter = 0;
    constexpr int kThreads = 8;
    constexpr int kIncrements = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Sync, CondVarProducerConsumer)
{
    Mutex mutex;
    CondVar ready;
    std::vector<int> queue;
    bool done = false;
    constexpr int kItems = 1000;

    std::thread consumer([&] {
        long sum = 0;
        int received = 0;
        while (received < kItems) {
            MutexLock lock(mutex);
            while (queue.empty() && !done)
                ready.wait(mutex);
            for (int v : queue) {
                sum += v;
                ++received;
            }
            queue.clear();
        }
        EXPECT_EQ(sum, static_cast<long>(kItems) * (kItems - 1) / 2);
    });

    for (int i = 0; i < kItems; ++i) {
        {
            MutexLock lock(mutex);
            queue.push_back(i);
        }
        ready.notifyOne();
    }
    {
        MutexLock lock(mutex);
        done = true;
    }
    ready.notifyAll();
    consumer.join();
}

TEST(Sync, CondVarNotifyAllWakesEveryWaiter)
{
    Mutex mutex;
    CondVar gate;
    bool open = false;
    std::atomic<int> awake{0};
    constexpr int kWaiters = 6;

    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
        waiters.emplace_back([&] {
            MutexLock lock(mutex);
            while (!open)
                gate.wait(mutex);
            ++awake;
        });
    }
    {
        MutexLock lock(mutex);
        open = true;
    }
    gate.notifyAll();
    for (auto &thread : waiters)
        thread.join();
    EXPECT_EQ(awake.load(), kWaiters);
}

// The migrated components must stay thread-safe through the
// annotated primitives: concurrent feeders, consistent totals.

TEST(Sync, TracerConcurrentRecording)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kSpans = 500;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kSpans; ++i)
                tracer.record("sync.test", 0.0, 1e-6);
        });
    }
    for (auto &thread : threads)
        thread.join();
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.eventCount(),
              static_cast<std::size_t>(kThreads) * kSpans);
    tracer.clear();
}

TEST(Sync, StageStatsAggregatorConcurrentFeeding)
{
    StageStatsAggregator agg;
    constexpr int kThreads = 4;
    constexpr int kSamples = 250;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kSamples; ++i)
                agg.addStage("stage", 0.001, -1.0, 1, 1);
        });
    }
    for (auto &thread : threads)
        thread.join();

    const auto summaries = agg.summaries();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].frames,
              static_cast<std::size_t>(kThreads) * kSamples);
}

TEST(Sync, StageStatsAggregatorMovePreservesState)
{
    StageStatsAggregator agg;
    agg.addStage("stage", 0.002, -1.0, 3, 7);
    StageStatsAggregator moved(std::move(agg));
    const auto summaries = moved.summaries();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].frames, 1u);
    EXPECT_EQ(summaries[0].total_ops, 3u);
    EXPECT_EQ(summaries[0].total_bytes, 7u);
}

TEST(Sync, ThreadPoolDrainsUnderAnnotatedLocking)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    constexpr int kTasks = 200;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace edgepcc
