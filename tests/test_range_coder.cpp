/** @file Unit and property tests for the adaptive range coder. */

#include "edgepcc/entropy/range_coder.h"

#include <gtest/gtest.h>

#include "edgepcc/common/rng.h"

namespace edgepcc {
namespace {

std::vector<std::uint8_t>
randomBytes(std::uint64_t seed, std::size_t count)
{
    Rng rng(seed);
    std::vector<std::uint8_t> bytes(count);
    for (auto &byte : bytes)
        byte = static_cast<std::uint8_t>(rng.bounded(256));
    return bytes;
}

TEST(RangeCoder, EmptyRoundtrip)
{
    const std::vector<std::uint8_t> empty;
    const auto packed = entropyCompress(empty);
    const auto unpacked = entropyDecompress(packed, 0);
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_TRUE(unpacked->empty());
}

TEST(RangeCoder, SingleByteRoundtrip)
{
    for (int value : {0, 1, 127, 128, 255}) {
        const std::vector<std::uint8_t> input{
            static_cast<std::uint8_t>(value)};
        const auto packed = entropyCompress(input);
        const auto unpacked = entropyDecompress(packed, 1);
        ASSERT_TRUE(unpacked.hasValue());
        EXPECT_EQ(*unpacked, input);
    }
}

TEST(RangeCoder, RandomBytesRoundtrip)
{
    const auto input = randomBytes(42, 20000);
    const auto packed = entropyCompress(input);
    const auto unpacked = entropyDecompress(packed, input.size());
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, input);
}

TEST(RangeCoder, RandomDataIsIncompressible)
{
    const auto input = randomBytes(43, 20000);
    const auto packed = entropyCompress(input);
    // Random data must not shrink by more than ~1%.
    EXPECT_GT(packed.size(), input.size() * 99 / 100);
    // ...and the adaptive model's expansion stays below 2%.
    EXPECT_LT(packed.size(), input.size() * 102 / 100 + 64);
}

TEST(RangeCoder, SkewedDataCompressesWell)
{
    Rng rng(44);
    std::vector<std::uint8_t> input(50000);
    for (auto &byte : input) {
        // ~90% zeros, rest small values: typical residual stream.
        byte = rng.uniform() < 0.9
                   ? 0
                   : static_cast<std::uint8_t>(rng.bounded(8));
    }
    const auto packed = entropyCompress(input);
    EXPECT_LT(packed.size(), input.size() / 5);
    const auto unpacked = entropyDecompress(packed, input.size());
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, input);
}

TEST(RangeCoder, ConstantDataCompressesExtremely)
{
    const std::vector<std::uint8_t> input(100000, 7);
    const auto packed = entropyCompress(input);
    EXPECT_LT(packed.size(), input.size() / 50);
    const auto unpacked = entropyDecompress(packed, input.size());
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, input);
}

TEST(RangeCoder, TruncatedStreamReportsCorruption)
{
    const auto input = randomBytes(45, 4096);
    auto packed = entropyCompress(input);
    packed.resize(packed.size() / 2);
    const auto unpacked = entropyDecompress(packed, input.size());
    EXPECT_FALSE(unpacked.hasValue());
    EXPECT_EQ(unpacked.status().code(),
              StatusCode::kCorruptBitstream);
}

TEST(RangeCoder, BitModelRoundtrip)
{
    Rng rng(46);
    std::vector<int> bits(5000);
    for (auto &bit : bits)
        bit = rng.uniform() < 0.8 ? 0 : 1;

    std::vector<std::uint8_t> out;
    RangeEncoder encoder(out);
    std::uint16_t enc_prob = kBitModelInit;
    for (const int bit : bits)
        encoder.encodeBit(enc_prob, bit);
    encoder.finish();

    RangeDecoder decoder(out);
    std::uint16_t dec_prob = kBitModelInit;
    for (const int bit : bits)
        EXPECT_EQ(decoder.decodeBit(dec_prob), bit);
    EXPECT_FALSE(decoder.overrun());
}

TEST(RangeCoder, BitModelSkewCompresses)
{
    std::vector<std::uint8_t> out;
    RangeEncoder encoder(out);
    std::uint16_t prob = kBitModelInit;
    for (int i = 0; i < 80000; ++i)
        encoder.encodeBit(prob, 0);
    encoder.finish();
    // 80k identical bits must collapse to a few hundred bytes.
    EXPECT_LT(out.size(), 600u);
}

TEST(RangeCoder, SpanInterfaceRoundtrip)
{
    // Direct span coding with a fixed 4-symbol model.
    const std::uint32_t freqs[4] = {10, 20, 30, 40};
    const std::uint32_t cums[4] = {0, 10, 30, 60};
    const std::uint32_t total = 100;
    Rng rng(47);
    std::vector<int> symbols(3000);
    for (auto &symbol : symbols)
        symbol = static_cast<int>(rng.bounded(4));

    std::vector<std::uint8_t> out;
    RangeEncoder encoder(out);
    for (const int s : symbols)
        encoder.encodeSpan(cums[s], freqs[s], total);
    encoder.finish();

    RangeDecoder decoder(out);
    for (const int s : symbols) {
        const std::uint32_t value = decoder.decodeGetValue(total);
        int found = 3;
        for (int k = 0; k < 4; ++k) {
            if (value < cums[k] + freqs[k]) {
                found = k;
                break;
            }
        }
        EXPECT_EQ(found, s);
        decoder.decodeSpan(cums[found], freqs[found]);
    }
    EXPECT_FALSE(decoder.overrun());
}

TEST(ContextualByteCoder, ParentBuckets)
{
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x00), 0);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x01), 0);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x03), 0);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x07), 1);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x1F), 1);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0x3F), 2);
    EXPECT_EQ(ContextualByteCoder::parentBucket(0xFF), 2);
}

TEST(ContextualByteCoder, RoundtripWithMatchingContexts)
{
    Rng rng(48);
    std::vector<std::uint8_t> symbols(5000);
    std::vector<std::uint8_t> contexts(5000);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        contexts[i] =
            static_cast<std::uint8_t>(rng.bounded(256));
        // Correlate symbol density with context density.
        symbols[i] = static_cast<std::uint8_t>(
            ContextualByteCoder::parentBucket(contexts[i]) == 2
                ? 255 - rng.bounded(8)
                : 1u << rng.bounded(8));
    }
    std::vector<std::uint8_t> out;
    RangeEncoder encoder(out);
    ContextualByteCoder enc_coder;
    for (std::size_t i = 0; i < symbols.size(); ++i)
        enc_coder.encode(encoder, contexts[i], symbols[i]);
    encoder.finish();

    RangeDecoder decoder(out);
    ContextualByteCoder dec_coder;
    for (std::size_t i = 0; i < symbols.size(); ++i)
        EXPECT_EQ(dec_coder.decode(decoder, contexts[i]),
                  symbols[i]);
    EXPECT_FALSE(decoder.overrun());
}

TEST(ContextualByteCoder, SeparatesMixtureDistributions)
{
    // Two context-dependent distributions: contextual coding must
    // beat a single order-0 model on the mixture.
    Rng rng(49);
    std::vector<std::uint8_t> symbols(40000);
    std::vector<std::uint8_t> contexts(40000);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        const bool dense = rng.uniform() < 0.5;
        contexts[i] = dense ? 0xFF : 0x01;
        symbols[i] = static_cast<std::uint8_t>(
            dense ? 0xF0 | rng.bounded(16)
                  : 1u << rng.bounded(8));
    }
    std::vector<std::uint8_t> contextual;
    {
        RangeEncoder encoder(contextual);
        ContextualByteCoder coder;
        for (std::size_t i = 0; i < symbols.size(); ++i)
            coder.encode(encoder, contexts[i], symbols[i]);
        encoder.finish();
    }
    const std::vector<std::uint8_t> order0 =
        entropyCompress(symbols);
    EXPECT_LT(contextual.size(), order0.size());
}

/** Property sweep: roundtrip across sizes and distributions. */
class RangeCoderSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(RangeCoderSweep, Roundtrip)
{
    const auto [size, skew] = GetParam();
    Rng rng(static_cast<std::uint64_t>(size) * 31 +
            static_cast<std::uint64_t>(skew * 100));
    std::vector<std::uint8_t> input(
        static_cast<std::size_t>(size));
    for (auto &byte : input) {
        byte = rng.uniform() < skew
                   ? 0
                   : static_cast<std::uint8_t>(rng.bounded(256));
    }
    const auto packed = entropyCompress(input);
    const auto unpacked = entropyDecompress(packed, input.size());
    ASSERT_TRUE(unpacked.hasValue());
    EXPECT_EQ(*unpacked, input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSkews, RangeCoderSweep,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 1000,
                                         33333),
                       ::testing::Values(0.0, 0.5, 0.99)));

}  // namespace
}  // namespace edgepcc
