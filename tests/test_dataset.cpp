/** @file Tests for the synthetic dataset, catalogue and PLY I/O. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "edgepcc/dataset/catalogue.h"
#include "edgepcc/dataset/ply_io.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/geometry/grid_hash.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {
namespace {

VideoSpec
smallSpec(std::size_t points = 12000)
{
    VideoSpec spec;
    spec.name = "unit";
    spec.seed = 99;
    spec.target_points = points;
    spec.num_frames = 10;
    return spec;
}

TEST(SyntheticHuman, FrameIsDeterministic)
{
    const SyntheticHumanVideo a(smallSpec());
    const SyntheticHumanVideo b(smallSpec());
    const VoxelCloud fa = a.frame(3);
    const VoxelCloud fb = b.frame(3);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa.x()[i], fb.x()[i]);
        EXPECT_EQ(fa.color(i), fb.color(i));
    }
}

TEST(SyntheticHuman, HitsTargetPointCount)
{
    const SyntheticHumanVideo video(smallSpec(20000));
    const VoxelCloud frame = video.frame(0);
    EXPECT_GT(frame.size(), 20000u * 6 / 10);
    EXPECT_LT(frame.size(), 20000u * 16 / 10);
}

TEST(SyntheticHuman, FramesAreValidAndDeduplicated)
{
    const SyntheticHumanVideo video(smallSpec());
    const VoxelCloud frame = video.frame(1);
    EXPECT_TRUE(frame.checkInvariants());
    std::set<std::uint64_t> codes;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        EXPECT_TRUE(codes
                        .insert(mortonEncode(frame.x()[i],
                                             frame.y()[i],
                                             frame.z()[i]))
                        .second);
    }
}

TEST(SyntheticHuman, ConsecutiveFramesAreTemporallyCoherent)
{
    const SyntheticHumanVideo video(smallSpec());
    const VoxelCloud f0 = video.frame(0);
    const VoxelCloud f1 = video.frame(1);
    // Most voxels of frame 1 lie within 3 voxels of frame 0: that's
    // the temporal locality the inter codec exploits (Fig. 3b).
    const GridHash hash(f0);
    std::size_t near = 0;
    for (std::size_t i = 0; i < f1.size(); ++i) {
        if (hash.findNearest(f1.x()[i], f1.y()[i], f1.z()[i], 3))
            ++near;
    }
    EXPECT_GT(static_cast<double>(near) /
                  static_cast<double>(f1.size()),
              0.95);
}

TEST(SyntheticHuman, DistantFramesMoveMore)
{
    VideoSpec spec = smallSpec();
    spec.motion_amplitude = 0.5;
    const SyntheticHumanVideo video(spec);
    const VoxelCloud f0 = video.frame(0);

    const auto mean_nn_dist = [&](const VoxelCloud &other) {
        const GridHash hash(f0);
        double sum = 0.0;
        std::size_t counted = 0;
        for (std::size_t i = 0; i < other.size(); i += 7) {
            const auto nn = hash.findNearest(
                other.x()[i], other.y()[i], other.z()[i], 8);
            if (!nn)
                continue;
            const double dx = static_cast<double>(other.x()[i]) -
                              f0.x()[*nn];
            const double dy = static_cast<double>(other.y()[i]) -
                              f0.y()[*nn];
            const double dz = static_cast<double>(other.z()[i]) -
                              f0.z()[*nn];
            sum += dx * dx + dy * dy + dz * dz;
            ++counted;
        }
        return sum / static_cast<double>(counted);
    };

    EXPECT_LT(mean_nn_dist(video.frame(1)),
              mean_nn_dist(video.frame(10)));
}

TEST(SyntheticHuman, ColorsAreSpatiallySmooth)
{
    const SyntheticHumanVideo video(smallSpec());
    const VoxelCloud frame = video.frame(0);
    const GridHash hash(frame);
    // Mean color distance between 1-voxel neighbours stays small.
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < frame.size(); i += 11) {
        for (int dx = -1; dx <= 1; dx += 2) {
            const std::int32_t nx = frame.x()[i] + dx;
            if (nx < 0)
                continue;
            const auto nn = hash.findExact(
                static_cast<std::uint16_t>(nx), frame.y()[i],
                frame.z()[i]);
            if (!nn)
                continue;
            sum += std::abs(static_cast<double>(frame.r()[i]) -
                            frame.r()[*nn]);
            ++counted;
        }
    }
    ASSERT_GT(counted, 100u);
    EXPECT_LT(sum / static_cast<double>(counted), 12.0);
}

TEST(SyntheticHuman, UpperBodyVariantStaysInGrid)
{
    VideoSpec spec = smallSpec();
    spec.upper_body_only = true;
    const SyntheticHumanVideo video(spec);
    const VoxelCloud frame = video.frame(0);
    EXPECT_TRUE(frame.checkInvariants());
    EXPECT_GT(frame.size(), 1000u);
}

TEST(Catalogue, HasSixPaperVideos)
{
    const auto entries = paperCatalogue();
    ASSERT_EQ(entries.size(), 6u);
    EXPECT_STREQ(entries[0].name, "Redandblack");
    EXPECT_EQ(entries[0].points_per_frame, 727070u);
    EXPECT_EQ(entries[5].points_per_frame, 1486648u);
    EXPECT_TRUE(entries[4].upper_body_only);   // Andrew10 (MVUB)
    EXPECT_FALSE(entries[1].upper_body_only);  // Longdress
}

TEST(Catalogue, ScaleShrinksTargets)
{
    const auto entry = paperCatalogue()[0];
    const VideoSpec full = makeVideoSpec(entry, 1.0);
    const VideoSpec small = makeVideoSpec(entry, 0.1);
    EXPECT_EQ(full.target_points, 727070u);
    EXPECT_EQ(small.target_points, 72707u);
    EXPECT_EQ(full.seed, small.seed);  // same video, same seed
}

TEST(Catalogue, DistinctVideosGetDistinctSeeds)
{
    const auto specs = paperVideoSpecs(0.1);
    std::set<std::uint64_t> seeds;
    for (const auto &spec : specs)
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), specs.size());
}

class PlyRoundtrip : public ::testing::TestWithParam<bool>
{
};

TEST_P(PlyRoundtrip, WriteReadPreservesData)
{
    const bool binary = GetParam();
    PointCloud cloud;
    cloud.add(Vec3f(0.5f, 1.25f, -3.0f), Color{10, 20, 30});
    cloud.add(Vec3f(100.0f, 0.0f, 42.5f), Color{255, 0, 128});
    cloud.add(Vec3f(-7.75f, 33.0f, 8.125f), Color{1, 2, 3});

    const std::string path =
        std::string(::testing::TempDir()) + "/edgepcc_test_" +
        (binary ? "bin" : "ascii") + ".ply";
    ASSERT_TRUE(writePly(path, cloud, binary).isOk());

    auto loaded = readPly(path);
    ASSERT_TRUE(loaded.hasValue());
    ASSERT_EQ(loaded->size(), cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_FLOAT_EQ(loaded->positions()[i].x,
                        cloud.positions()[i].x);
        EXPECT_FLOAT_EQ(loaded->positions()[i].z,
                        cloud.positions()[i].z);
        EXPECT_EQ(loaded->colors()[i], cloud.colors()[i]);
    }
    (void)std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Formats, PlyRoundtrip,
                         ::testing::Bool());

TEST(PlyIo, MissingFileReported)
{
    const auto result = readPly("/nonexistent/file.ply");
    EXPECT_FALSE(result.hasValue());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(PlyIo, VoxelCloudExportReimport)
{
    VoxelCloud cloud(6);
    cloud.add(0, 0, 0, 5, 6, 7);
    cloud.add(63, 63, 63, 8, 9, 10);
    cloud.add(10, 20, 30, 11, 12, 13);
    const std::string path = std::string(::testing::TempDir()) +
                             "/edgepcc_test_voxels.ply";
    ASSERT_TRUE(writePlyVoxels(path, cloud).isOk());
    auto loaded = readPlyVoxels(path, 6);
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded->size(), cloud.size());
    EXPECT_TRUE(loaded->checkInvariants());
    (void)std::remove(path.c_str());
}

TEST(WorkloadEnv, ScaleParsing)
{
    // No env set in tests: falls back.
    unsetenv("EDGEPCC_SCALE");
    EXPECT_DOUBLE_EQ(workloadScaleFromEnv(0.25), 0.25);
    setenv("EDGEPCC_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(workloadScaleFromEnv(0.25), 0.5);
    setenv("EDGEPCC_SCALE", "7", 1);  // clamped to 1
    EXPECT_DOUBLE_EQ(workloadScaleFromEnv(0.25), 1.0);
    setenv("EDGEPCC_SCALE", "bogus", 1);
    EXPECT_DOUBLE_EQ(workloadScaleFromEnv(0.25), 0.25);
    unsetenv("EDGEPCC_SCALE");

    unsetenv("EDGEPCC_FRAMES");
    EXPECT_EQ(framesFromEnv(3), 3);
    setenv("EDGEPCC_FRAMES", "9", 1);
    EXPECT_EQ(framesFromEnv(3), 9);
    unsetenv("EDGEPCC_FRAMES");
}

}  // namespace
}  // namespace edgepcc
