/**
 * @file
 * Loss-resilient streaming session tests: chunk framing round-trip
 * and resync, deterministic fault-injection channel, the decoder
 * degradation ladder (exact FrameOutcome sequences per loss
 * pattern), adaptive keyframe insertion, and the ISSUE-3 acceptance
 * sweep (5% loss over a 30-frame IPP stream).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "edgepcc/common/crc32c.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/lossy_channel.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace {

// -----------------------------------------------------------------
// Shared fixtures
// -----------------------------------------------------------------

std::vector<VoxelCloud>
testVideo(int num_frames, std::uint64_t seed = 91,
          std::size_t points = 6000)
{
    VideoSpec spec;
    spec.name = "resilience-test";
    spec.seed = seed;
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

/** Encodes `frames` and wraps each bitstream in a chunk. */
struct EncodedStream {
    std::vector<std::vector<std::uint8_t>> chunks;
    std::vector<std::vector<std::uint8_t>> bitstreams;
    std::vector<Frame::Type> types;
};

EncodedStream
encodeChunked(const std::vector<VoxelCloud> &frames,
              const CodecConfig &config)
{
    EncodedStream out;
    VideoEncoder encoder(config);
    std::uint32_t gop_id = 0;
    for (std::size_t f = 0; f < frames.size(); ++f) {
        auto encoded = encoder.encode(frames[f]);
        EXPECT_TRUE(encoded.hasValue());
        if (encoded->stats.type == Frame::Type::kIntra)
            gop_id = static_cast<std::uint32_t>(f);
        ChunkHeader header;
        header.sequence = static_cast<std::uint32_t>(f);
        header.frame_id = static_cast<std::uint32_t>(f);
        header.gop_id = gop_id;
        header.frame_type = encoded->stats.type;
        out.chunks.push_back(
            serializeChunk(header, encoded->bitstream));
        out.bitstreams.push_back(encoded->bitstream);
        out.types.push_back(encoded->stats.type);
    }
    return out;
}

/** Drops the listed frame ids and ladder-decodes the rest. */
std::vector<SessionFrame>
decodeWithDrops(const EncodedStream &stream,
                const std::vector<std::uint32_t> &dropped)
{
    std::vector<std::vector<std::uint8_t>> kept;
    for (std::size_t f = 0; f < stream.chunks.size(); ++f) {
        if (std::find(dropped.begin(), dropped.end(),
                      static_cast<std::uint32_t>(f)) ==
            dropped.end())
            kept.push_back(stream.chunks[f]);
    }
    StreamReceiver receiver;
    receiver.ingest(concatWire(kept));
    return receiver.decodeAll(
        static_cast<std::uint32_t>(stream.chunks.size()));
}

std::vector<FrameOutcome>
outcomes(const std::vector<SessionFrame> &frames)
{
    std::vector<FrameOutcome> out;
    out.reserve(frames.size());
    for (const SessionFrame &frame : frames)
        out.push_back(frame.outcome);
    return out;
}

// -----------------------------------------------------------------
// CRC32C
// -----------------------------------------------------------------

TEST(Crc32c, KnownVectors)
{
    // RFC 3720 test vector: 32 zero bytes.
    std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
    // "123456789" -> 0xE3069283 (Castagnoli check value).
    const char *digits = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const std::uint8_t *>(
                         digits),
                     9),
              0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const std::uint32_t one_shot = crc32c(data);
    std::uint32_t incremental = crc32c(data.data(), 100);
    incremental =
        crc32c(data.data() + 100, data.size() - 100, incremental);
    EXPECT_EQ(one_shot, incremental);
}

// -----------------------------------------------------------------
// Chunk framing
// -----------------------------------------------------------------

TEST(ChunkStream, RoundTripPreservesEverything)
{
    ChunkHeader header;
    header.sequence = 7;
    header.frame_id = 3;
    header.gop_id = 2;
    header.frame_type = Frame::Type::kPredicted;
    header.flags = kChunkFlagRetransmit;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};

    const auto wire = serializeChunk(header, payload);
    EXPECT_EQ(wire.size(), kChunkHeaderBytes + payload.size());

    WireScanStats stats;
    const auto chunks = scanWire(wire, &stats);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(stats.chunks_ok, 1u);
    EXPECT_EQ(stats.bytes_skipped, 0u);
    EXPECT_EQ(chunks[0].header.sequence, 7u);
    EXPECT_EQ(chunks[0].header.frame_id, 3u);
    EXPECT_EQ(chunks[0].header.gop_id, 2u);
    EXPECT_EQ(chunks[0].header.frame_type,
              Frame::Type::kPredicted);
    EXPECT_EQ(chunks[0].header.flags, kChunkFlagRetransmit);
    EXPECT_EQ(chunks[0].payload, payload);
}

TEST(ChunkStream, EmptyPayloadAllowed)
{
    const auto wire = serializeChunk(ChunkHeader{}, {});
    const auto chunks = scanWire(wire);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_TRUE(chunks[0].payload.empty());
}

TEST(ChunkStream, ResyncSkipsDamageBetweenChunks)
{
    const std::vector<std::uint8_t> p1 = {10, 11, 12};
    const std::vector<std::uint8_t> p2 = {20, 21};
    ChunkHeader h1, h2;
    h1.frame_id = 0;
    h2.frame_id = 1;

    std::vector<std::uint8_t> wire;
    // Leading garbage, a valid chunk, mid-stream garbage (including
    // a fake marker), another valid chunk, trailing garbage.
    wire.insert(wire.end(), {0xde, 0xad, 0xbe, 0xef});
    const auto c1 = serializeChunk(h1, p1);
    wire.insert(wire.end(), c1.begin(), c1.end());
    wire.insert(wire.end(), {'E', 'P', 'C', 'K', 0x99, 0x01});
    const auto c2 = serializeChunk(h2, p2);
    wire.insert(wire.end(), c2.begin(), c2.end());
    wire.insert(wire.end(), {0x42, 0x42});

    WireScanStats stats;
    const auto chunks = scanWire(wire, &stats);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].payload, p1);
    EXPECT_EQ(chunks[1].payload, p2);
    EXPECT_EQ(stats.chunks_ok, 2u);
    EXPECT_GT(stats.bytes_skipped, 0u);
}

TEST(ChunkStream, CorruptPayloadFailsCrc)
{
    const std::vector<std::uint8_t> payload(100, 0x5a);
    auto wire = serializeChunk(ChunkHeader{}, payload);
    wire[kChunkHeaderBytes + 50] ^= 0x01;
    WireScanStats stats;
    EXPECT_TRUE(scanWire(wire, &stats).empty());
    EXPECT_EQ(stats.chunks_ok, 0u);
    EXPECT_GT(stats.chunks_bad_crc, 0u);
}

TEST(ChunkStream, TruncatedChunkDetected)
{
    const std::vector<std::uint8_t> payload(64, 0x11);
    auto wire = serializeChunk(ChunkHeader{}, payload);
    wire.resize(wire.size() - 10);
    WireScanStats stats;
    EXPECT_TRUE(scanWire(wire, &stats).empty());
    EXPECT_GT(stats.chunks_truncated, 0u);
}

TEST(ChunkStream, EveryTruncationIsSafeAndNeverFalselyValid)
{
    ChunkHeader header;
    header.frame_id = 9;
    std::vector<std::uint8_t> payload(50);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    const auto wire = serializeChunk(header, payload);
    for (std::size_t len = 0; len < wire.size(); ++len) {
        const std::vector<std::uint8_t> prefix(
            wire.begin(),
            wire.begin() + static_cast<std::ptrdiff_t>(len));
        EXPECT_TRUE(scanWire(prefix).empty()) << "len " << len;
    }
}

// -----------------------------------------------------------------
// Lossy channel
// -----------------------------------------------------------------

TEST(LossyChannel, CleanChannelIsByteIdentical)
{
    std::vector<std::vector<std::uint8_t>> chunks;
    for (int i = 0; i < 10; ++i)
        chunks.push_back(serializeChunk(
            ChunkHeader{.frame_id =
                            static_cast<std::uint32_t>(i)},
            std::vector<std::uint8_t>(
                static_cast<std::size_t>(i * 13 + 1),
                static_cast<std::uint8_t>(i))));
    LossyChannel channel(ChannelSpec::clean());
    EXPECT_EQ(channel.transmitAll(chunks), concatWire(chunks));
    EXPECT_EQ(channel.stats().dropped, 0u);
    EXPECT_EQ(channel.stats().chunks_out, 10u);
}

TEST(LossyChannel, SameSeedSameDamage)
{
    std::vector<std::vector<std::uint8_t>> chunks;
    for (int i = 0; i < 200; ++i)
        chunks.push_back(serializeChunk(
            ChunkHeader{.sequence =
                            static_cast<std::uint32_t>(i)},
            std::vector<std::uint8_t>(40,
                                      static_cast<std::uint8_t>(
                                          i))));
    const ChannelSpec spec = ChannelSpec::lossy(0.3, 77);
    LossyChannel a(spec), b(spec);
    EXPECT_EQ(a.transmitAll(chunks), b.transmitAll(chunks));

    ChannelSpec other = spec;
    other.seed = 78;
    LossyChannel c(other);
    EXPECT_NE(a.transmitAll(chunks), c.transmitAll(chunks));
}

TEST(LossyChannel, FaultRatesRoughlyHonoured)
{
    ChannelSpec spec;
    spec.drop_rate = 0.2;
    spec.duplicate_rate = 0.2;
    spec.seed = 5;
    std::vector<std::vector<std::uint8_t>> chunks(
        1000, std::vector<std::uint8_t>(20, 0xaa));
    LossyChannel channel(spec);
    (void)channel.transmitAll(chunks);
    const ChannelStats &stats = channel.stats();
    EXPECT_EQ(stats.chunks_in, 1000u);
    EXPECT_GT(stats.dropped, 120u);
    EXPECT_LT(stats.dropped, 280u);
    EXPECT_GT(stats.duplicated, 100u);
    // Delivered = in - dropped + duplicated.
    EXPECT_EQ(stats.chunks_out,
              stats.chunks_in - stats.dropped +
                  stats.duplicated);
}

TEST(LossyChannel, ReorderedChunksStillArrive)
{
    ChannelSpec spec;
    spec.reorder_rate = 0.5;
    spec.reorder_window = 2;
    spec.seed = 9;
    std::vector<std::vector<std::uint8_t>> chunks;
    for (int i = 0; i < 50; ++i)
        chunks.push_back(serializeChunk(
            ChunkHeader{.sequence =
                            static_cast<std::uint32_t>(i)},
            {static_cast<std::uint8_t>(i)}));
    LossyChannel channel(spec);
    const auto wire = channel.transmitAll(chunks);
    const auto parsed = scanWire(wire);
    ASSERT_EQ(parsed.size(), 50u);  // nothing lost, order changed
    EXPECT_GT(channel.stats().reordered, 5u);
    bool out_of_order = false;
    for (std::size_t i = 1; i < parsed.size(); ++i)
        out_of_order |= parsed[i].header.sequence <
                        parsed[i - 1].header.sequence;
    EXPECT_TRUE(out_of_order);
}

// -----------------------------------------------------------------
// Degradation ladder: exact outcome sequences per loss pattern
// (6-frame IPP stream, GOP 3: I P P I P P)
// -----------------------------------------------------------------

class LadderTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        frames_ = new std::vector<VoxelCloud>(testVideo(6));
        stream_ = new EncodedStream(
            encodeChunked(*frames_, makeIntraInterV1Config()));
        // Sanity on the GOP pattern the ladder tests assume.
        const std::vector<Frame::Type> expect = {
            Frame::Type::kIntra,     Frame::Type::kPredicted,
            Frame::Type::kPredicted, Frame::Type::kIntra,
            Frame::Type::kPredicted, Frame::Type::kPredicted};
        ASSERT_EQ(stream_->types, expect);
    }

    static void
    TearDownTestSuite()
    {
        delete frames_;
        delete stream_;
        frames_ = nullptr;
        stream_ = nullptr;
    }

    static std::vector<VoxelCloud> *frames_;
    static EncodedStream *stream_;
};

std::vector<VoxelCloud> *LadderTest::frames_ = nullptr;
EncodedStream *LadderTest::stream_ = nullptr;

TEST_F(LadderTest, NoLossAllOk)
{
    const auto results = decodeWithDrops(*stream_, {});
    for (const SessionFrame &frame : results) {
        EXPECT_EQ(frame.outcome, FrameOutcome::kOk)
            << "frame " << frame.frame_id;
        EXPECT_TRUE(frame.delivered);
    }
    // Lossless path is bit-exact against the plain decoder.
    VideoDecoder reference;
    for (std::size_t f = 0; f < results.size(); ++f) {
        auto direct = reference.decode(stream_->bitstreams[f]);
        ASSERT_TRUE(direct.hasValue());
        EXPECT_EQ(results[f].cloud.x(), direct->cloud.x());
        EXPECT_EQ(results[f].cloud.r(), direct->cloud.r());
    }
}

TEST_F(LadderTest, LostLeadingIntra)
{
    const auto results = decodeWithDrops(*stream_, {0});
    const std::vector<FrameOutcome> expect = {
        FrameOutcome::kSkipped,    // no good frame yet
        FrameOutcome::kConcealed,  // P promoted, gray attrs
        FrameOutcome::kConcealed,
        FrameOutcome::kResynced,  // intact I re-anchors
        FrameOutcome::kOk,
        FrameOutcome::kOk,
    };
    EXPECT_EQ(outcomes(results), expect);
    // The promoted P frames still carry real geometry.
    EXPECT_GT(results[1].cloud.size(), 0u);
    const GeometryQuality geom =
        geometryPsnrD1((*frames_)[1], results[1].cloud);
    EXPECT_GT(geom.psnr, 30.0);
}

TEST_F(LadderTest, LostFirstPredicted)
{
    const auto results = decodeWithDrops(*stream_, {1});
    const std::vector<FrameOutcome> expect = {
        FrameOutcome::kOk,
        FrameOutcome::kConcealed,  // frozen from frame 0
        FrameOutcome::kOk,  // still decodable: I-frame ref intact
        FrameOutcome::kResynced,  // next I clears the damage flag
        FrameOutcome::kOk,
        FrameOutcome::kOk,
    };
    EXPECT_EQ(outcomes(results), expect);
    // Freeze concealment: frame 1 output is frame 0's decode, so
    // its quality against the true frame 1 is bounded by the
    // inter-frame motion, not by the codec. Require a sane floor.
    const AttrQuality attr =
        attributePsnr((*frames_)[1], results[1].cloud);
    EXPECT_GT(attr.psnr, 14.0);
    EXPECT_TRUE(std::isfinite(attr.psnr));
}

TEST_F(LadderTest, LostTailPredicted)
{
    const auto results = decodeWithDrops(*stream_, {5});
    const std::vector<FrameOutcome> expect = {
        FrameOutcome::kOk,        FrameOutcome::kOk,
        FrameOutcome::kOk,        FrameOutcome::kOk,
        FrameOutcome::kOk,        FrameOutcome::kConcealed,
    };
    EXPECT_EQ(outcomes(results), expect);
    const AttrQuality attr =
        attributePsnr((*frames_)[5], results[5].cloud);
    EXPECT_GT(attr.psnr, 14.0);
}

TEST_F(LadderTest, BurstLossAcrossGopBoundary)
{
    // Losing the second I frame (3) and its first P (4): frame 5's
    // chunk arrives but references the lost I, so it is promoted,
    // never decoded against the stale frame-0 reference.
    const auto results = decodeWithDrops(*stream_, {3, 4});
    const std::vector<FrameOutcome> expect = {
        FrameOutcome::kOk,        FrameOutcome::kOk,
        FrameOutcome::kOk,        FrameOutcome::kConcealed,
        FrameOutcome::kConcealed, FrameOutcome::kConcealed,
    };
    EXPECT_EQ(outcomes(results), expect);
    // Frame 5 was promoted: real geometry, borrowed attributes.
    EXPECT_TRUE(results[5].delivered);
    const GeometryQuality geom =
        geometryPsnrD1((*frames_)[5], results[5].cloud);
    EXPECT_GT(geom.psnr, 30.0);
    const AttrQuality attr =
        attributePsnr((*frames_)[5], results[5].cloud);
    EXPECT_GT(attr.psnr, 12.0);
}

TEST_F(LadderTest, EverythingLost)
{
    const auto results =
        decodeWithDrops(*stream_, {0, 1, 2, 3, 4, 5});
    for (const SessionFrame &frame : results) {
        EXPECT_EQ(frame.outcome, FrameOutcome::kSkipped);
        EXPECT_FALSE(frame.delivered);
        EXPECT_TRUE(frame.cloud.empty());
    }
}

TEST_F(LadderTest, NackListMatchesMissingFrames)
{
    std::vector<std::vector<std::uint8_t>> kept = {
        stream_->chunks[0], stream_->chunks[2],
        stream_->chunks[5]};
    StreamReceiver receiver;
    receiver.ingest(concatWire(kept));
    EXPECT_TRUE(receiver.hasFrame(0));
    EXPECT_FALSE(receiver.hasFrame(1));
    const std::vector<std::uint32_t> expect = {1, 3, 4};
    EXPECT_EQ(receiver.missingFrames(6), expect);
}

// -----------------------------------------------------------------
// Adaptive GOP controller
// -----------------------------------------------------------------

TEST(AdaptiveGop, SustainedLossShrinksGop)
{
    AdaptiveGopController gop(AdaptiveGopConfig{}, 12);
    for (int i = 0; i < 10; ++i)
        gop.onFrameDelivery(false);
    EXPECT_EQ(gop.gopSize(), 1);
    EXPECT_GT(gop.estimatedLoss(), 0.5);
}

TEST(AdaptiveGop, CleanChannelGrowsBack)
{
    AdaptiveGopConfig config;
    AdaptiveGopController gop(config, 12);
    for (int i = 0; i < 10; ++i)
        gop.onFrameDelivery(false);
    ASSERT_EQ(gop.gopSize(), config.min_gop_size);
    for (int i = 0; i < 200; ++i)
        gop.onFrameDelivery(true);
    EXPECT_EQ(gop.gopSize(), config.max_gop_size);
    EXPECT_LT(gop.estimatedLoss(), config.low_loss);
}

TEST(AdaptiveGop, SporadicLossHoldsSteady)
{
    AdaptiveGopConfig config;
    AdaptiveGopController gop(config, 3);
    // One loss in fifty: EWMA stays under the high watermark.
    for (int i = 0; i < 150; ++i)
        gop.onFrameDelivery(i % 50 != 0);
    EXPECT_GE(gop.gopSize(), 3);
}

// -----------------------------------------------------------------
// Adaptive FEC controller
// -----------------------------------------------------------------

TEST(AdaptiveFec, PinnedTrajectoryForFixedLossTrace)
{
    AdaptiveFecConfig config;  // min 2, max 8, 5%/1.5%, grow 4
    AdaptiveFecController fec(config, 8);
    EXPECT_EQ(fec.groupSize(), 8);

    // Scripted (ewma_loss, delivered) trace with the exact group
    // size pinned after every step: sustained high loss halves the
    // group toward min (more parity exactly when recovery
    // matters), mild loss resets the clean streak without halving,
    // and a clean channel grows one step per grow_after_clean
    // consecutive deliveries.
    struct Step {
        double loss;
        bool delivered;
        int expect;
    };
    const Step trace[] = {
        {0.10, false, 4},  // above high watermark: halve
        {0.12, false, 2},  // halve again
        {0.15, false, 2},  // clamped at min_group_size
        {0.01, true, 2},   // clean streak 1
        {0.01, true, 2},   // 2
        {0.01, true, 2},   // 3
        {0.01, true, 3},   // 4th clean frame: grow one step
        {0.01, true, 3},   // streak restarts after growth
        {0.03, false, 3},  // loss below high watermark: hold,
                           // but the clean streak resets
        {0.01, true, 3},   // 1
        {0.01, true, 3},   // 2
        {0.01, true, 3},   // 3
        {0.01, true, 4},   // 4: grow again
        {0.02, true, 4},   // clean but loss above low watermark:
                           // no growth credit toward max
        {0.01, true, 4},
        {0.01, true, 4},
        {0.01, true, 5},
    };
    int step = 0;
    for (const Step &s : trace) {
        fec.onLossEstimate(s.loss, s.delivered);
        EXPECT_EQ(fec.groupSize(), s.expect)
            << "at trace step " << step;
        ++step;
    }
}

TEST(AdaptiveFec, InitialGroupSizeIsClamped)
{
    AdaptiveFecConfig config;
    EXPECT_EQ(AdaptiveFecController(config, 64).groupSize(),
              config.max_group_size);
    EXPECT_EQ(AdaptiveFecController(config, 0).groupSize(),
              config.min_group_size);
}

TEST(AdaptiveFec, SessionShrinksGroupsUnderSustainedLoss)
{
    const auto frames = testVideo(24, 5, 3000);
    SessionConfig session;
    session.channel = ChannelSpec::lossy(0.25, 7);
    session.mtu_payload = 1200;
    session.fec.enabled = true;
    session.fec.group_size = 8;
    session.adaptive_fec = true;
    session.adaptive_gop = false;  // isolate the FEC loop
    session.max_retransmits = 1;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_GT(report->stats.parity_sent, 0u);
    // 25% chunk loss with one retransmission round loses frames,
    // so the EWMA must rise past the high watermark and shrink the
    // groups: more parity chunks than the fixed group_size=8
    // session would ever emit for the same slice count.
    SessionConfig fixed = session;
    fixed.adaptive_fec = false;
    StreamSession fixed_stream(makeIntraInterV1Config(), fixed);
    auto fixed_report = fixed_stream.run(frames);
    ASSERT_TRUE(fixed_report.hasValue());
    EXPECT_GT(report->stats.parity_sent,
              fixed_report->stats.parity_sent);
}

// -----------------------------------------------------------------
// End-to-end session
// -----------------------------------------------------------------

TEST(StreamSession, CleanChannelAllOkAndByteIdentical)
{
    const auto frames = testVideo(6);
    const CodecConfig codec = makeIntraInterV1Config();
    SessionConfig session;
    session.channel = ChannelSpec::clean();
    session.adaptive_gop = false;

    StreamSession stream(codec, session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    ASSERT_EQ(report->frames.size(), frames.size());
    EXPECT_EQ(report->stats.frames_ok, frames.size());
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_EQ(report->stats.frames_lost, 0u);
    EXPECT_EQ(report->wire.chunks_bad_crc, 0u);

    // The session must not perturb the encoder: outputs are
    // bit-identical to a plain encode/decode loop.
    VideoEncoder encoder(codec);
    VideoDecoder decoder;
    for (std::size_t f = 0; f < frames.size(); ++f) {
        auto encoded = encoder.encode(frames[f]);
        ASSERT_TRUE(encoded.hasValue());
        auto decoded = decoder.decode(encoded->bitstream);
        ASSERT_TRUE(decoded.hasValue());
        EXPECT_EQ(report->frames[f].cloud.x(),
                  decoded->cloud.x());
        EXPECT_EQ(report->frames[f].cloud.r(),
                  decoded->cloud.r());
        EXPECT_EQ(report->frames[f].type, encoded->stats.type);
    }
}

TEST(StreamSession, RetransmissionRecoversDroppedChunks)
{
    const auto frames = testVideo(8);
    SessionConfig session;
    session.channel.drop_rate = 0.4;
    session.channel.seed = 13;
    session.max_retransmits = 6;  // enough that loss ~0.4^7 ~ 0
    session.adaptive_gop = false;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->stats.frames_lost, 0u);
    EXPECT_GT(report->stats.retransmits, 0u);
    EXPECT_GT(report->stats.backoff_s, 0.0);
    for (const SessionFrame &frame : report->frames)
        EXPECT_NE(frame.outcome, FrameOutcome::kSkipped);
}

TEST(StreamSession, UnrecoveredLossForcesKeyframe)
{
    const auto frames = testVideo(10);
    SessionConfig session;
    session.channel.drop_rate = 0.5;
    session.channel.seed = 3;
    session.max_retransmits = 0;  // every drop is unrecovered
    session.adaptive_gop = false;
    session.keyframe_on_loss = true;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_GT(report->stats.frames_lost, 0u);
    EXPECT_GT(report->stats.keyframes_forced, 0u);
}

TEST(StreamSession, AcceptanceFivePercentLossThirtyFrames)
{
    // ISSUE 3 acceptance: ChannelSpec{loss=0.05}, 30-frame IPP
    // stream; every frame gets an outcome, >= 90% ok-or-concealed.
    const auto frames = testVideo(30, 17, 4000);
    SessionConfig session;
    session.channel = ChannelSpec::lossy(0.05, 42);

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    ASSERT_EQ(report->frames.size(), 30u);
    EXPECT_EQ(report->stats.totalFrames(), 30u);
    EXPECT_GE(report->stats.okOrConcealedFraction(), 0.9);
    for (std::size_t f = 0; f < report->frames.size(); ++f)
        EXPECT_EQ(report->frames[f].frame_id, f);
}

/** PR 10 acceptance: a 2-3-loss burst channel is survivable
 *  without any retransmission once RS parity depth covers the
 *  burst length. The redundancy controller is deliberately off so
 *  the geometry under test stays fixed. */
TEST(StreamSession, RsBurstAcceptanceNoNackRoundTrips)
{
    const auto frames = testVideo(20, 17, 4000);
    SessionConfig session;
    session.channel = ChannelSpec::bursty(0.02, 3, 1);
    session.mtu_payload = 400;
    session.fec.enabled = true;
    session.fec.scheme = FecScheme::kReedSolomon;
    session.fec.group_size = 6;
    session.fec.parity_chunks = 3;

    StreamSession stream(makeIntraInterV1Config(), session);
    auto report = stream.run(frames);
    ASSERT_TRUE(report.hasValue());
    EXPECT_GT(report->fec.multi_loss_groups, 0u);
    EXPECT_GE(report->fec.multiLossRecoveredFraction(), 0.9);
    EXPECT_EQ(report->stats.retransmits, 0u);
    EXPECT_EQ(report->stats.frames_lost, 0u);
}

TEST(StreamSession, DeterministicAcrossRuns)
{
    const auto frames = testVideo(9);
    SessionConfig session;
    session.channel = ChannelSpec::lossy(0.3, 21);

    StreamSession a(makeIntraInterV1Config(), session);
    StreamSession b(makeIntraInterV1Config(), session);
    auto ra = a.run(frames);
    auto rb = b.run(frames);
    ASSERT_TRUE(ra.hasValue());
    ASSERT_TRUE(rb.hasValue());
    ASSERT_EQ(ra->frames.size(), rb->frames.size());
    for (std::size_t f = 0; f < ra->frames.size(); ++f) {
        EXPECT_EQ(ra->frames[f].outcome, rb->frames[f].outcome);
        EXPECT_EQ(ra->frames[f].cloud.x(),
                  rb->frames[f].cloud.x());
        EXPECT_EQ(ra->frames[f].cloud.r(),
                  rb->frames[f].cloud.r());
    }
    EXPECT_EQ(ra->stats.retransmits, rb->stats.retransmits);
}

TEST(StreamSession, OutcomeNamesAreStable)
{
    EXPECT_STREQ(frameOutcomeName(FrameOutcome::kOk), "ok");
    EXPECT_STREQ(frameOutcomeName(FrameOutcome::kResynced),
                 "resynced");
    EXPECT_STREQ(frameOutcomeName(FrameOutcome::kConcealed),
                 "concealed");
    EXPECT_STREQ(frameOutcomeName(FrameOutcome::kSkipped),
                 "skipped");
}

TEST(StreamSession, RejectsEmptyInput)
{
    StreamSession stream(makeIntraOnlyConfig(), SessionConfig{});
    EXPECT_FALSE(stream.run({}).hasValue());
}

}  // namespace
}  // namespace edgepcc
