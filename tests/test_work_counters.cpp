/** @file Tests for the WorkRecorder instrumentation. */

#include "edgepcc/common/work_counters.h"

#include <gtest/gtest.h>

#include "edgepcc/common/rng.h"

namespace edgepcc {
namespace {

KernelWork
makeKernel(const char *name, std::uint64_t ops)
{
    KernelWork work;
    work.name = name;
    work.ops = ops;
    work.bytes = ops * 2;
    return work;
}

TEST(WorkRecorder, StagesCollectKernels)
{
    WorkRecorder recorder;
    recorder.beginStage("alpha");
    recorder.addKernel(makeKernel("k1", 10));
    recorder.addKernel(makeKernel("k2", 20));
    recorder.endStage();

    const PipelineProfile &profile = recorder.profile();
    ASSERT_EQ(profile.stages.size(), 1u);
    EXPECT_EQ(profile.stages[0].name, "alpha");
    EXPECT_EQ(profile.stages[0].totalOps(), 30u);
    EXPECT_EQ(profile.stages[0].totalBytes(), 60u);
    EXPECT_GE(profile.stages[0].host_seconds, 0.0);
}

TEST(WorkRecorder, BeginClosesPreviousStage)
{
    WorkRecorder recorder;
    recorder.beginStage("first");
    recorder.addKernel(makeKernel("a", 1));
    recorder.beginStage("second");
    recorder.addKernel(makeKernel("b", 2));
    recorder.endStage();

    const auto &profile = recorder.profile();
    ASSERT_EQ(profile.stages.size(), 2u);
    EXPECT_EQ(profile.stages[0].name, "first");
    EXPECT_EQ(profile.stages[1].name, "second");
    EXPECT_EQ(profile.stages[1].totalOps(), 2u);
}

TEST(WorkRecorder, OrphanKernelGetsImplicitStage)
{
    WorkRecorder recorder;
    recorder.addKernel(makeKernel("lonely", 5));
    const auto &profile = recorder.profile();
    ASSERT_EQ(profile.stages.size(), 1u);
    EXPECT_EQ(profile.stages[0].name, "lonely");
}

TEST(WorkRecorder, TakeProfileClosesOpenStage)
{
    WorkRecorder recorder;
    recorder.beginStage("open");
    recorder.addKernel(makeKernel("x", 1));
    const PipelineProfile profile = recorder.takeProfile();
    ASSERT_EQ(profile.stages.size(), 1u);
    // Recorder is reusable afterwards.
    recorder.beginStage("next");
    recorder.endStage();
    EXPECT_EQ(recorder.profile().stages.size(), 1u);
}

TEST(WorkRecorder, EndWithoutBeginIsNoop)
{
    WorkRecorder recorder;
    recorder.endStage();
    EXPECT_TRUE(recorder.profile().stages.empty());
}

TEST(WorkRecorder, ScopedStageAndNullSafety)
{
    {
        ScopedStage null_scope(nullptr, "ignored");
        recordKernel(nullptr, makeKernel("ignored", 1));
    }
    WorkRecorder recorder;
    {
        ScopedStage scope(&recorder, "scoped");
        recordKernel(&recorder, makeKernel("k", 3));
    }
    ASSERT_EQ(recorder.profile().stages.size(), 1u);
    EXPECT_EQ(recorder.profile().stages[0].name, "scoped");
}

TEST(PipelineProfile, PrefixSums)
{
    WorkRecorder recorder;
    recorder.beginStage("geom.a");
    recorder.endStage();
    recorder.beginStage("geom.b");
    recorder.endStage();
    recorder.beginStage("attr.c");
    recorder.endStage();
    const auto profile = recorder.takeProfile();
    EXPECT_GE(profile.hostSecondsWithPrefix("geom."), 0.0);
    EXPECT_LE(profile.hostSecondsWithPrefix("geom."),
              profile.hostSeconds());
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.uniform(2.0, 5.0);
        EXPECT_GE(value, 2.0);
        EXPECT_LT(value, 5.0);
    }
}

TEST(Rng, BoundedBelowBound)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace edgepcc
