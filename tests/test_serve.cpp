/**
 * @file
 * Serve-layer tests: Jain fairness math, deadline classes, the
 * pinned DRR schedule trace for a seeded 4-tenant mix, per-tenant
 * byte-identity against solo-session encodes, admission-rejection
 * ordering, reference-cache hit accounting, queue backpressure, and
 * the DRR quantum-bound property sweep over seeded tenant mixes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/serve/reference_cache.h"
#include "edgepcc/serve/serve_scheduler.h"

namespace edgepcc {
namespace serve {
namespace {

std::vector<VoxelCloud>
testVideo(int num_frames, std::uint64_t seed = 91,
          std::size_t points = 2500)
{
    VideoSpec spec;
    spec.name = "serve-test";
    spec.seed = seed;
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

TenantSpec
makeTenant(const std::string &name, std::uint64_t seed,
           DeadlineClass deadline_class, int num_frames = 3)
{
    TenantSpec tenant;
    tenant.name = name;
    tenant.codec = makeIntraOnlyConfig();
    tenant.frames = testVideo(num_frames, seed);
    tenant.deadline_class = deadline_class;
    tenant.queue_capacity = 64;  // roomy: no drops unless asked
    return tenant;
}

/** Reference encode: the tenant alone on a fresh encoder. */
std::vector<std::vector<std::uint8_t>>
soloBitstreams(const TenantSpec &tenant)
{
    VideoEncoder encoder(tenant.codec);
    std::vector<std::vector<std::uint8_t>> out;
    for (const VoxelCloud &frame : tenant.frames) {
        auto encoded = encoder.encode(frame);
        EXPECT_TRUE(encoded.hasValue());
        out.push_back(encoded->bitstream);
    }
    return out;
}

const TenantReport &
tenantNamed(const ServeReport &report, const std::string &name)
{
    for (const TenantReport &tenant : report.tenants) {
        if (tenant.name == name)
            return tenant;
    }
    ADD_FAILURE() << "no tenant named " << name;
    static const TenantReport missing;
    return missing;
}

/** Probe utilization exactly the way admission control does. */
double
probeUtilization(const TenantSpec &tenant, const DeviceSpec &device)
{
    VideoEncoder probe(tenant.codec);
    auto encoded = probe.encode(tenant.frames.front());
    EXPECT_TRUE(encoded.hasValue());
    const EdgeDeviceModel model(device);
    return model.evaluate(encoded->profile).modelSeconds() *
           tenant.fps;
}

/** Large-quantum config: every backlogged tenant proceeds each
 *  round, so structural behavior is isolated from DRR pacing. */
ServeConfig
roomyConfig()
{
    ServeConfig config;
    config.quantum_s = 10.0;
    config.batch_max = 8;
    return config;
}

// -----------------------------------------------------------------
// Pure helpers
// -----------------------------------------------------------------

TEST(ServeHelpersTest, JainFairnessIndex)
{
    EXPECT_DOUBLE_EQ(jainFairnessIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairnessIndex({0.0, 0.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairnessIndex({3.0, 3.0, 3.0, 3.0}), 1.0);
    // One tenant hogging everything: 1/n.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({5.0, 0.0, 0.0, 0.0}), 0.25);
    const double two_to_one = jainFairnessIndex({2.0, 1.0});
    EXPECT_GT(two_to_one, 0.25);
    EXPECT_LT(two_to_one, 1.0);
}

TEST(ServeHelpersTest, DeadlineClassNamesAndSlack)
{
    EXPECT_STREQ(deadlineClassName(DeadlineClass::kInteractive),
                 "interactive");
    EXPECT_STREQ(deadlineClassName(DeadlineClass::kStandard),
                 "standard");
    EXPECT_STREQ(deadlineClassName(DeadlineClass::kBulk), "bulk");
    EXPECT_DOUBLE_EQ(deadlineClassSlack(DeadlineClass::kInteractive),
                     1.0);
    EXPECT_DOUBLE_EQ(deadlineClassSlack(DeadlineClass::kStandard),
                     2.0);
    EXPECT_DOUBLE_EQ(deadlineClassSlack(DeadlineClass::kBulk), 4.0);
}

TEST(ServeHelpersTest, TraceStringMarksOutcomes)
{
    ServeReport report;
    report.trace.push_back({"A", 0, ServeOutcome::kEncoded, false});
    report.trace.push_back({"B", 1, ServeOutcome::kCacheHit, false});
    report.trace.push_back({"C", 2, ServeOutcome::kEncoded, true});
    report.trace.push_back({"A", 3, ServeOutcome::kDropped, false});
    EXPECT_EQ(traceString(report), "A0 B1* C2! A3-");
}

TEST(ServeHelpersTest, OutcomeNames)
{
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kEncoded),
                 "encoded");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kCacheHit),
                 "cache-hit");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kDropped),
                 "dropped");
}

// -----------------------------------------------------------------
// Reference cache unit behavior
// -----------------------------------------------------------------

TEST(ReferenceCacheTest, DigestsSeparateContentAndConfig)
{
    const std::vector<VoxelCloud> a = testVideo(2, 7);
    const std::vector<VoxelCloud> b = testVideo(2, 8);
    EXPECT_EQ(cloudDigest(a[0]), cloudDigest(a[0]));
    EXPECT_NE(cloudDigest(a[0]), cloudDigest(a[1]));
    EXPECT_NE(cloudDigest(a[0]), cloudDigest(b[0]));

    const CodecConfig intra = makeIntraOnlyConfig();
    CodecConfig coarse = intra;
    coarse.segment.quant_step += 1;
    EXPECT_EQ(codecConfigDigest(intra),
              codecConfigDigest(makeIntraOnlyConfig()));
    EXPECT_NE(codecConfigDigest(intra), codecConfigDigest(coarse));

    // Stream keys chain: same digest folded into different
    // prefixes must not collide back together.
    const std::uint64_t digest = cloudDigest(a[0]);
    EXPECT_NE(chainStreamKey(codecConfigDigest(intra), digest),
              chainStreamKey(codecConfigDigest(coarse), digest));
}

TEST(ReferenceCacheTest, LruEvictionAndStats)
{
    ReferenceCache cache(2);
    EXPECT_EQ(cache.find(1), nullptr);

    CacheEntry entry;
    entry.bitstream = {0x01};
    entry.device_cost_s = 0.5;
    cache.insert(1, entry);
    cache.insert(2, entry);
    ASSERT_NE(cache.find(1), nullptr);  // 1 now most recent
    cache.insert(3, entry);             // evicts 2
    EXPECT_EQ(cache.find(2), nullptr);
    ASSERT_NE(cache.find(1), nullptr);
    ASSERT_NE(cache.find(3), nullptr);

    cache.recordSavings(0.25);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups, 5u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_DOUBLE_EQ(stats.saved_device_s, 0.25);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 3.0 / 5.0);
}

// -----------------------------------------------------------------
// Scheduler validation
// -----------------------------------------------------------------

TEST(ServeSchedulerTest, RejectsInvalidInput)
{
    {
        ServeScheduler scheduler(ServeConfig{}, {});
        EXPECT_FALSE(scheduler.run().hasValue());
    }
    {
        TenantSpec nameless = makeTenant("", 1, DeadlineClass::kStandard);
        ServeScheduler scheduler(ServeConfig{}, {nameless});
        EXPECT_FALSE(scheduler.run().hasValue());
    }
    {
        TenantSpec empty = makeTenant("A", 1, DeadlineClass::kStandard);
        empty.frames.clear();
        ServeScheduler scheduler(ServeConfig{}, {empty});
        EXPECT_FALSE(scheduler.run().hasValue());
    }
    {
        TenantSpec bad = makeTenant("A", 1, DeadlineClass::kStandard);
        bad.weight = 0.0;
        ServeScheduler scheduler(ServeConfig{}, {bad});
        EXPECT_FALSE(scheduler.run().hasValue());
    }
    {
        std::vector<TenantSpec> twins = {
            makeTenant("A", 1, DeadlineClass::kStandard),
            makeTenant("A", 2, DeadlineClass::kStandard)};
        ServeScheduler scheduler(ServeConfig{}, std::move(twins));
        EXPECT_FALSE(scheduler.run().hasValue());
    }
    {
        ServeConfig config;
        config.quantum_s = 0.0;
        ServeScheduler scheduler(
            config, {makeTenant("A", 1, DeadlineClass::kStandard)});
        EXPECT_FALSE(scheduler.run().hasValue());
    }
}

// -----------------------------------------------------------------
// Byte-identity: solo and mixed runs
// -----------------------------------------------------------------

TEST(ServeSchedulerTest, SoloRunMatchesDirectEncode)
{
    TenantSpec tenant = makeTenant("A", 31, DeadlineClass::kStandard, 4);
    const auto solo = soloBitstreams(tenant);

    ServeScheduler scheduler(roomyConfig(), {tenant});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    const TenantReport &served = tenantNamed(*report, "A");
    EXPECT_TRUE(served.admitted);
    EXPECT_EQ(served.stats.dropped, 0u);
    ASSERT_EQ(served.frames.size(), solo.size());
    for (std::size_t f = 0; f < solo.size(); ++f) {
        EXPECT_EQ(served.frames[f].frame_id, f);
        EXPECT_EQ(served.frames[f].outcome, ServeOutcome::kEncoded);
        EXPECT_EQ(served.frames[f].bitstream, solo[f])
            << "frame " << f << " diverged from the solo encode";
    }
}

/** The acceptance invariant: each tenant's bitstream under the
 *  4-tenant mix is byte-identical to its solo-session encode. */
TEST(ServeSchedulerTest, MixPreservesPerTenantByteIdentity)
{
    std::vector<TenantSpec> tenants = {
        makeTenant("A", 11, DeadlineClass::kInteractive, 4),
        makeTenant("B", 22, DeadlineClass::kStandard, 4),
        makeTenant("C", 33, DeadlineClass::kStandard, 3),
        makeTenant("D", 44, DeadlineClass::kBulk, 3)};
    tenants[1].weight = 2.0;
    tenants[2].arrival_offset_s = 0.01;
    // Inter coding on one tenant: interleaving must not perturb
    // its GOP phase or prediction reference either.
    tenants[3].codec = makeIntraInterV1Config();

    std::vector<std::vector<std::vector<std::uint8_t>>> solo;
    for (const TenantSpec &tenant : tenants)
        solo.push_back(soloBitstreams(tenant));

    ServeScheduler scheduler(roomyConfig(), tenants);
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->fleet.admitted, tenants.size());

    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const TenantReport &served =
            tenantNamed(*report, tenants[t].name);
        EXPECT_TRUE(served.admitted);
        EXPECT_EQ(served.stats.dropped, 0u);
        ASSERT_EQ(served.frames.size(), solo[t].size());
        for (std::size_t f = 0; f < solo[t].size(); ++f) {
            EXPECT_EQ(served.frames[f].bitstream, solo[t][f])
                << tenants[t].name << " frame " << f
                << " diverged from the solo encode";
        }
        // Latency accounting is consistent.
        EXPECT_EQ(served.stats.served, solo[t].size());
        EXPECT_EQ(served.stats.latency_s.size(), solo[t].size());
        for (double latency : served.stats.latency_s)
            EXPECT_GT(latency, 0.0);
    }

    // All four equally backlogged tenants got service.
    EXPECT_GT(report->fairness_index, 0.0);
    EXPECT_LE(report->fairness_index, 1.0 + 1e-12);
    EXPECT_GT(report->fleet.device_busy_s, 0.0);
    EXPECT_GE(report->fleet.makespan_s, report->fleet.device_busy_s);
    EXPECT_GT(report->fleet.utilization(), 0.0);
    EXPECT_GT(report->fleet.sessionsPerDevice(), 0.0);
}

// -----------------------------------------------------------------
// Pinned DRR schedule
// -----------------------------------------------------------------

/** The exact deterministic schedule for a seeded 4-tenant mix —
 *  the serve-layer analogue of the pinned overload ladder walk.
 *  Everything is virtual-time; the trace depends only on the device
 *  model and the synthetic content, never on the host. */
TEST(ServeSchedulerTest, PinnedDrrTraceForSeededMix)
{
    std::vector<TenantSpec> tenants = {
        makeTenant("A", 11, DeadlineClass::kInteractive, 3),
        makeTenant("B", 22, DeadlineClass::kStandard, 3),
        makeTenant("C", 33, DeadlineClass::kStandard, 3),
        makeTenant("D", 44, DeadlineClass::kBulk, 3)};
    tenants[0].weight = 2.0;

    ServeConfig config;
    config.quantum_s = 0.004;
    config.batch_max = 3;  // forces the cursor to carry over rounds

    ServeScheduler scheduler(config, tenants);
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    // The cut after C0 leaves the cursor at D, so the next batch
    // starts there; later rounds show the same carry-over (D1
    // before A1, C2 before D2's round completes at A2 B2).
    EXPECT_EQ(traceString(*report),
              "A0 B0 C0 D0 D1 A1 B1 C1 C2 D2 A2 B2");

    // The cut batches are visible in the fleet counters.
    EXPECT_EQ(report->fleet.batched_frames, 12u);
    EXPECT_GE(report->fleet.batches, 4u);
    EXPECT_GE(report->fleet.rounds, report->fleet.batches);
}

// -----------------------------------------------------------------
// Admission control
// -----------------------------------------------------------------

TEST(ServeSchedulerTest, AdmissionRejectsInClassPriorityOrder)
{
    ServeConfig config = roomyConfig();
    std::vector<TenantSpec> tenants = {
        makeTenant("bulk", 3, DeadlineClass::kBulk),
        makeTenant("interactive", 1, DeadlineClass::kInteractive),
        makeTenant("standard", 2, DeadlineClass::kStandard)};
    // All three are probe-identical except for content; size the cap
    // from the measured utilization so exactly two fit.
    const double util =
        probeUtilization(tenants[1], config.device);
    ASSERT_GT(util, 0.0);
    config.admission_utilization_cap = 2.5 * util;

    ServeScheduler scheduler(config, tenants);
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    // Class order decides who is shed: bulk first, regardless of
    // input position.
    EXPECT_TRUE(tenantNamed(*report, "interactive").admitted);
    EXPECT_TRUE(tenantNamed(*report, "standard").admitted);
    const TenantReport &bulk = tenantNamed(*report, "bulk");
    EXPECT_FALSE(bulk.admitted);
    EXPECT_EQ(bulk.rejection_reason, RejectionReason::kAdmissionCap);
    EXPECT_STREQ(rejectionReasonName(bulk.rejection_reason),
                 "admission-cap");
    EXPECT_TRUE(bulk.frames.empty());
    EXPECT_GT(bulk.estimated_utilization, 0.0);
    EXPECT_EQ(report->fleet.admitted, 2u);
    EXPECT_EQ(report->fleet.rejected, 1u);
}

TEST(ServeSchedulerTest, OversizedTenantRejectedOutright)
{
    ServeConfig config = roomyConfig();
    TenantSpec modest = makeTenant("modest", 5, DeadlineClass::kBulk);
    TenantSpec hog = makeTenant("hog", 6, DeadlineClass::kInteractive);
    hog.fps = 1.0e6;  // solo utilization far beyond any device
    const double modest_util =
        probeUtilization(modest, config.device);
    config.admission_utilization_cap = 2.0 * modest_util;

    ServeScheduler scheduler(config, {modest, hog});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    // The hog cannot fit even alone, so it must not consume the cap
    // that the (lower-priority!) modest tenant then uses.
    const TenantReport &rejected = tenantNamed(*report, "hog");
    EXPECT_FALSE(rejected.admitted);
    EXPECT_EQ(rejected.rejection_reason,
              RejectionReason::kExceedsDeviceCapacity);
    EXPECT_STREQ(rejectionReasonName(rejected.rejection_reason),
                 "exceeds-device-capacity");
    EXPECT_TRUE(tenantNamed(*report, "modest").admitted);
}

// -----------------------------------------------------------------
// Reference cache inside the scheduler
// -----------------------------------------------------------------

TEST(ServeSchedulerTest, IdenticalStreamsShareEncodeWork)
{
    // Twin tenants: identical codec and content, the follower half
    // a second behind — every follower frame must be served from
    // the reference cache, byte-identical to the leader (and so to
    // the solo encode). Inter coding makes this bite: a cache hit
    // must also adopt the leader's post-frame encoder state.
    TenantSpec leader = makeTenant("leader", 77, DeadlineClass::kStandard, 4);
    leader.codec = makeIntraInterV1Config();
    TenantSpec follower = leader;
    follower.name = "follower";
    follower.arrival_offset_s = 0.5;

    const auto solo = soloBitstreams(leader);

    ServeScheduler scheduler(roomyConfig(), {leader, follower});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    const TenantReport &lead = tenantNamed(*report, "leader");
    const TenantReport &follow = tenantNamed(*report, "follower");
    EXPECT_EQ(lead.stats.cache_hits, 0u);
    EXPECT_EQ(lead.stats.encoded, solo.size());
    EXPECT_EQ(follow.stats.cache_hits, solo.size());
    EXPECT_EQ(follow.stats.encoded, 0u);

    ASSERT_EQ(follow.frames.size(), solo.size());
    for (std::size_t f = 0; f < solo.size(); ++f) {
        EXPECT_EQ(follow.frames[f].outcome, ServeOutcome::kCacheHit);
        EXPECT_EQ(follow.frames[f].bitstream, solo[f]);
        // A hit is charged the cheap cache cost, not the encode.
        EXPECT_LT(follow.frames[f].cost_s,
                  lead.frames[f].cost_s);
    }

    const CacheStats &cache = report->cache;
    EXPECT_EQ(cache.lookups, 2 * solo.size());
    EXPECT_EQ(cache.hits, solo.size());
    EXPECT_EQ(cache.misses, solo.size());
    EXPECT_EQ(cache.insertions, solo.size());
    EXPECT_GT(cache.saved_device_s, 0.0);
}

TEST(ServeSchedulerTest, CacheDisabledEncodesEverything)
{
    TenantSpec leader = makeTenant("leader", 77, DeadlineClass::kStandard);
    TenantSpec follower = leader;
    follower.name = "follower";
    follower.arrival_offset_s = 0.5;

    ServeConfig config = roomyConfig();
    config.cache_enabled = false;
    ServeScheduler scheduler(config, {leader, follower});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    EXPECT_EQ(report->cache.lookups, 0u);
    EXPECT_EQ(report->cache.hits, 0u);
    const TenantReport &follow = tenantNamed(*report, "follower");
    EXPECT_EQ(follow.stats.cache_hits, 0u);
    EXPECT_EQ(follow.stats.encoded, follow.stats.frames);
}

TEST(ServeSchedulerTest, DivergentConfigNeverHitsCache)
{
    // Same content, different quantization: stream keys diverge at
    // the codec-config anchor, so sharing would be wrong and must
    // not happen.
    TenantSpec fine = makeTenant("fine", 77, DeadlineClass::kStandard);
    TenantSpec coarse = fine;
    coarse.name = "coarse";
    coarse.codec.segment.quant_step += 2;
    coarse.arrival_offset_s = 0.5;

    ServeScheduler scheduler(roomyConfig(), {fine, coarse});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->cache.hits, 0u);
    EXPECT_EQ(tenantNamed(*report, "coarse").stats.cache_hits, 0u);
}

// -----------------------------------------------------------------
// Backpressure
// -----------------------------------------------------------------

TEST(ServeSchedulerTest, QueueBackpressureDropsOldestFrames)
{
    // A 240 fps tenant against a sustained 100x compute slowdown:
    // arrivals outrun the device, so the tiny queue must shed the
    // oldest frames. Admission probes the clean cost, so the tenant
    // is still admitted.
    TenantSpec tenant = makeTenant("hot", 55, DeadlineClass::kStandard, 12);
    tenant.fps = 240.0;
    tenant.queue_capacity = 0;

    ServeConfig config = roomyConfig();
    config.load.slowdown = 100.0;
    ServeScheduler scheduler(config, {tenant});
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    const TenantReport &served = tenantNamed(*report, "hot");
    EXPECT_GT(served.stats.dropped, 0u);
    EXPECT_GT(served.stats.served, 0u);
    EXPECT_EQ(served.stats.served + served.stats.dropped,
              served.stats.frames);
    ASSERT_EQ(served.frames.size(), served.stats.frames);
    for (const ServedFrame &frame : served.frames) {
        if (frame.outcome == ServeOutcome::kDropped) {
            EXPECT_TRUE(frame.bitstream.empty());
            EXPECT_DOUBLE_EQ(frame.cost_s, 0.0);
        } else {
            EXPECT_FALSE(frame.bitstream.empty());
        }
    }
    // Oldest-drop: every drop precedes the last served frame.
    std::size_t last_served = 0;
    for (const ServedFrame &frame : served.frames) {
        if (frame.outcome != ServeOutcome::kDropped)
            last_served = frame.frame_id;
    }
    EXPECT_EQ(last_served, served.stats.frames - 1);
}

// -----------------------------------------------------------------
// DRR fairness: the quantum-bound property sweep
// -----------------------------------------------------------------

/** For any seeded tenant mix, no admitted tenant's deficit ever
 *  exceeds its quantum grant, and the overdraft is bounded by one
 *  frame's cost — the classic DRR fairness invariant. */
TEST(ServePropertyTest, DeficitStaysWithinQuantumBound)
{
    constexpr double kEps = 1e-12;
    const double quanta[] = {0.0005, 0.002, 0.01};
    const std::uint64_t seeds[] = {1, 2, 3};

    for (double quantum_s : quanta) {
        for (std::uint64_t seed : seeds) {
            ServeConfig config;
            config.quantum_s = quantum_s;
            config.batch_max = 2;

            std::vector<TenantSpec> tenants = {
                makeTenant("A", seed * 10 + 1,
                           DeadlineClass::kInteractive, 4),
                makeTenant("B", seed * 10 + 2,
                           DeadlineClass::kStandard, 4),
                makeTenant("C", seed * 10 + 3,
                           DeadlineClass::kBulk, 4)};
            tenants[0].weight = 0.5 + static_cast<double>(seed);
            tenants[2].arrival_offset_s =
                0.002 * static_cast<double>(seed);

            ServeScheduler scheduler(config, tenants);
            auto report = scheduler.run();
            ASSERT_TRUE(report.hasValue())
                << "quantum " << quantum_s << " seed " << seed;

            for (const TenantReport &tenant : report->tenants) {
                ASSERT_TRUE(tenant.admitted);
                const TenantStats &stats = tenant.stats;
                EXPECT_LE(stats.max_deficit_s,
                          quantum_s * tenant.weight + kEps)
                    << tenant.name << " banked beyond its quantum";
                EXPECT_GE(stats.min_deficit_s,
                          -(stats.max_frame_cost_s + kEps))
                    << tenant.name
                    << " overdrew more than one frame cost";
                EXPECT_EQ(stats.served + stats.dropped,
                          stats.frames);
            }
            EXPECT_GT(report->fairness_index, 0.0);
            EXPECT_LE(report->fairness_index, 1.0 + kEps);
        }
    }
}

/** Equal tenants must end up with near-equal device share. */
TEST(ServePropertyTest, EqualTenantsShareFairly)
{
    std::vector<TenantSpec> tenants;
    for (int t = 0; t < 4; ++t) {
        tenants.push_back(makeTenant(std::string(1, 'A' + t),
                                     static_cast<std::uint64_t>(t),
                                     DeadlineClass::kStandard, 4));
    }
    ServeConfig config;
    config.quantum_s = 0.002;
    ServeScheduler scheduler(config, std::move(tenants));
    auto report = scheduler.run();
    ASSERT_TRUE(report.hasValue());

    // Identical-shape content: shares differ only by per-frame
    // content variation, so the Jain index sits near 1.
    EXPECT_GT(report->fairness_index, 0.95);
    for (const TenantReport &tenant : report->tenants) {
        EXPECT_GT(tenant.stats.served, 0u)
            << tenant.name << " was starved";
    }
}

}  // namespace
}  // namespace serve
}  // namespace edgepcc
