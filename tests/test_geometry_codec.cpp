/** @file End-to-end geometry codec tests (encode -> decode). */

#include "edgepcc/octree/geometry_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {
namespace {

VoxelCloud
uniqueRandomCloud(std::uint64_t seed, std::size_t n, int bits)
{
    Rng rng(seed);
    std::set<std::uint64_t> used;
    VoxelCloud cloud(bits);
    const std::uint32_t grid = 1u << bits;
    while (cloud.size() < n) {
        const auto x =
            static_cast<std::uint16_t>(rng.bounded(grid));
        const auto y =
            static_cast<std::uint16_t>(rng.bounded(grid));
        const auto z =
            static_cast<std::uint16_t>(rng.bounded(grid));
        if (used.insert(mortonEncode(x, y, z)).second) {
            cloud.add(x, y, z,
                      static_cast<std::uint8_t>(rng.bounded(256)),
                      static_cast<std::uint8_t>(rng.bounded(256)),
                      static_cast<std::uint8_t>(rng.bounded(256)));
        }
    }
    return cloud;
}

std::set<std::uint64_t>
voxelSet(const VoxelCloud &cloud)
{
    std::set<std::uint64_t> set;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        set.insert(mortonEncode(cloud.x()[i], cloud.y()[i],
                                cloud.z()[i]));
    return set;
}

GeometryConfig
parallelConfig(bool tight, bool entropy = false)
{
    GeometryConfig config;
    config.builder = GeometryConfig::Builder::kParallelMorton;
    config.tight_bbox = tight;
    config.entropy_coding = entropy;
    return config;
}

GeometryConfig
sequentialConfig(bool entropy = false)
{
    GeometryConfig config;
    config.builder = GeometryConfig::Builder::kSequential;
    config.tight_bbox = false;
    config.entropy_coding = entropy;
    return config;
}

TEST(GeometryCodec, RejectsEmptyCloud)
{
    VoxelCloud empty(6);
    EXPECT_FALSE(
        encodeGeometry(empty, parallelConfig(false)).hasValue());
}

TEST(GeometryCodec, ParallelLosslessRoundtrip)
{
    const VoxelCloud cloud = uniqueRandomCloud(50, 800, 7);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded));
}

TEST(GeometryCodec, SequentialLosslessRoundtrip)
{
    const VoxelCloud cloud = uniqueRandomCloud(51, 800, 7);
    auto encoded = encodeGeometry(cloud, sequentialConfig());
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded));
}

TEST(GeometryCodec, BothBuildersDecodeToSameCloud)
{
    const VoxelCloud cloud = uniqueRandomCloud(52, 600, 6);
    auto seq = encodeGeometry(cloud, sequentialConfig());
    auto par = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(seq.hasValue());
    ASSERT_TRUE(par.hasValue());
    auto seq_decoded = decodeGeometry(seq->payload);
    auto par_decoded = decodeGeometry(par->payload);
    ASSERT_TRUE(seq_decoded.hasValue());
    ASSERT_TRUE(par_decoded.hasValue());
    EXPECT_EQ(voxelSet(*seq_decoded), voxelSet(*par_decoded));
}

TEST(GeometryCodec, DecodedOrderIsMortonSorted)
{
    const VoxelCloud cloud = uniqueRandomCloud(53, 500, 6);
    for (const auto &config :
         {sequentialConfig(), parallelConfig(false)}) {
        auto encoded = encodeGeometry(cloud, config);
        ASSERT_TRUE(encoded.hasValue());
        auto decoded = decodeGeometry(encoded->payload);
        ASSERT_TRUE(decoded.hasValue());
        for (std::size_t i = 1; i < decoded->size(); ++i) {
            EXPECT_LT(mortonEncode(decoded->x()[i - 1],
                                   decoded->y()[i - 1],
                                   decoded->z()[i - 1]),
                      mortonEncode(decoded->x()[i],
                                   decoded->y()[i],
                                   decoded->z()[i]));
        }
    }
}

TEST(GeometryCodec, SortedCloudAlignsWithDecode)
{
    // The i-th sorted_cloud entry must correspond to the i-th
    // decoded voxel — the contract the attribute codecs rely on.
    const VoxelCloud cloud = uniqueRandomCloud(54, 700, 7);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    ASSERT_EQ(decoded->size(), encoded->sorted_cloud.size());
    for (std::size_t i = 0; i < decoded->size(); ++i) {
        EXPECT_EQ(decoded->x()[i], encoded->sorted_cloud.x()[i]);
        EXPECT_EQ(decoded->y()[i], encoded->sorted_cloud.y()[i]);
        EXPECT_EQ(decoded->z()[i], encoded->sorted_cloud.z()[i]);
    }
}

TEST(GeometryCodec, TightBboxErrorBounded)
{
    // Requantization moves each coordinate by at most one voxel
    // (slope >= 1 injective map, rounding both ways).
    Rng rng(55);
    VoxelCloud cloud(8);
    std::set<std::uint64_t> used;
    while (cloud.size() < 500) {
        // Keep the cloud inside a sub-box so the tight bbox matters.
        const auto x = static_cast<std::uint16_t>(
            17 + rng.bounded(150));
        const auto y = static_cast<std::uint16_t>(
            9 + rng.bounded(120));
        const auto z = static_cast<std::uint16_t>(
            33 + rng.bounded(77));
        if (used.insert(mortonEncode(x, y, z)).second)
            cloud.add(x, y, z, 0, 0, 0);
    }
    auto encoded = encodeGeometry(cloud, parallelConfig(true));
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    ASSERT_EQ(decoded->size(), cloud.size());

    // Match decoded voxels against the original set: every decoded
    // voxel must be within 1 voxel (Chebyshev) of some original.
    const auto originals = voxelSet(cloud);
    for (std::size_t i = 0; i < decoded->size(); ++i) {
        bool close = false;
        for (int dx = -1; dx <= 1 && !close; ++dx) {
            for (int dy = -1; dy <= 1 && !close; ++dy) {
                for (int dz = -1; dz <= 1 && !close; ++dz) {
                    const std::int64_t nx = decoded->x()[i] + dx;
                    const std::int64_t ny = decoded->y()[i] + dy;
                    const std::int64_t nz = decoded->z()[i] + dz;
                    if (nx < 0 || ny < 0 || nz < 0)
                        continue;
                    if (originals.count(mortonEncode(
                            static_cast<std::uint32_t>(nx),
                            static_cast<std::uint32_t>(ny),
                            static_cast<std::uint32_t>(nz)))) {
                        close = true;
                    }
                }
            }
        }
        EXPECT_TRUE(close) << "decoded voxel " << i
                           << " strayed more than 1 voxel";
    }
}

TEST(GeometryCodec, FullGridTightBboxIsIdentity)
{
    // When the cloud spans the full grid, tight-bbox requantization
    // becomes the identity and the roundtrip is lossless.
    VoxelCloud cloud(4);
    cloud.add(0, 0, 0, 0, 0, 0);
    cloud.add(15, 15, 15, 0, 0, 0);
    cloud.add(7, 8, 9, 0, 0, 0);
    auto encoded = encodeGeometry(cloud, parallelConfig(true));
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded));
}

TEST(GeometryCodec, ContextualEntropyRoundtripsBothBuilders)
{
    const VoxelCloud cloud = uniqueRandomCloud(160, 1500, 8);
    for (const bool parallel : {false, true}) {
        GeometryConfig config =
            parallel ? parallelConfig(false) : sequentialConfig();
        config.contextual_entropy = true;
        auto encoded = encodeGeometry(cloud, config);
        ASSERT_TRUE(encoded.hasValue()) << parallel;
        auto decoded = decodeGeometry(encoded->payload);
        ASSERT_TRUE(decoded.hasValue()) << parallel;
        EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded))
            << parallel;
    }
}

TEST(GeometryCodec, ContextualEntropyNeverWorseThanOrderZero)
{
    // The encoder makes a per-payload mode decision, so enabling
    // context modelling can never cost more than the order-0
    // stream regardless of data shape.
    Rng rng(161);
    VoxelCloud cloud(9);
    std::set<std::uint64_t> used;
    while (cloud.size() < 20000) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(512));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(512));
        const std::uint32_t z = (x + y) / 2;
        if (used.insert(mortonEncode(x, y, z)).second) {
            cloud.add(static_cast<std::uint16_t>(x),
                      static_cast<std::uint16_t>(y),
                      static_cast<std::uint16_t>(z), 0, 0, 0);
        }
    }
    GeometryConfig order0 = parallelConfig(false, true);
    GeometryConfig contextual = parallelConfig(false);
    contextual.contextual_entropy = true;
    auto a = encodeGeometry(cloud, order0);
    auto b = encodeGeometry(cloud, contextual);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_LE(b->payload.size(), a->payload.size());
}

TEST(GeometryCodec, ContextualEntropyWinsOnMixedDensity)
{
    // Mixed content — a dense slab plus sparse dust — is where
    // per-context byte distributions differ and context modelling
    // pays off: the order-0 model must code the mixture.
    Rng rng(163);
    VoxelCloud cloud(8);
    std::set<std::uint64_t> used;
    for (std::uint16_t x = 40; x < 72; ++x) {
        for (std::uint16_t y = 40; y < 72; ++y) {
            for (std::uint16_t z = 60; z < 68; ++z) {
                cloud.add(x, y, z, 0, 0, 0);
                used.insert(mortonEncode(x, y, z));
            }
        }
    }
    std::size_t dust = 0;
    while (dust < 8000) {
        const auto x =
            static_cast<std::uint16_t>(rng.bounded(256));
        const auto y =
            static_cast<std::uint16_t>(rng.bounded(256));
        const auto z =
            static_cast<std::uint16_t>(rng.bounded(256));
        if (used.insert(mortonEncode(x, y, z)).second) {
            cloud.add(x, y, z, 0, 0, 0);
            ++dust;
        }
    }
    GeometryConfig order0 = parallelConfig(false, true);
    GeometryConfig contextual = parallelConfig(false);
    contextual.contextual_entropy = true;
    auto a = encodeGeometry(cloud, order0);
    auto b = encodeGeometry(cloud, contextual);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_LT(b->payload.size(), a->payload.size());
    auto decoded = decodeGeometry(b->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded));
}

TEST(GeometryCodec, ContextualTruncationRejected)
{
    const VoxelCloud cloud = uniqueRandomCloud(162, 800, 7);
    GeometryConfig config = sequentialConfig();
    config.contextual_entropy = true;
    auto encoded = encodeGeometry(cloud, config);
    ASSERT_TRUE(encoded.hasValue());
    auto payload = encoded->payload;
    payload.resize(payload.size() / 2);
    EXPECT_FALSE(decodeGeometry(payload).hasValue());
}

TEST(GeometryCodec, EntropyCodingShrinksPayload)
{
    const VoxelCloud cloud = uniqueRandomCloud(56, 3000, 8);
    auto plain = encodeGeometry(cloud, parallelConfig(false, false));
    auto packed = encodeGeometry(cloud, parallelConfig(false, true));
    ASSERT_TRUE(plain.hasValue());
    ASSERT_TRUE(packed.hasValue());
    EXPECT_LT(packed->payload.size(), plain->payload.size());
    // And decodes identically.
    auto a = decodeGeometry(plain->payload);
    auto b = decodeGeometry(packed->payload);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_EQ(voxelSet(*a), voxelSet(*b));
}

TEST(GeometryCodec, CompressesBelowRawSize)
{
    // Occupancy coding must beat the 12 B/point raw geometry even
    // without entropy coding.
    const VoxelCloud cloud = uniqueRandomCloud(57, 5000, 9);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_LT(encoded->payload.size(), cloud.size() * 12);
}

TEST(GeometryCodec, DuplicateInputVoxelsCollapse)
{
    VoxelCloud cloud(5);
    cloud.add(1, 2, 3, 10, 20, 30);
    cloud.add(1, 2, 3, 40, 50, 60);
    cloud.add(4, 5, 6, 70, 80, 90);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_EQ(encoded->num_voxels, 2u);
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(decoded->size(), 2u);
}

TEST(GeometryCodec, CorruptMagicRejected)
{
    const VoxelCloud cloud = uniqueRandomCloud(58, 100, 5);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    auto payload = encoded->payload;
    payload[0] = 'X';
    EXPECT_FALSE(decodeGeometry(payload).hasValue());
}

TEST(GeometryCodec, TruncatedPayloadRejected)
{
    const VoxelCloud cloud = uniqueRandomCloud(59, 500, 6);
    auto encoded = encodeGeometry(cloud, parallelConfig(false));
    ASSERT_TRUE(encoded.hasValue());
    auto payload = encoded->payload;
    payload.resize(payload.size() / 2);
    const auto decoded = decodeGeometry(payload);
    EXPECT_FALSE(decoded.hasValue());
    EXPECT_EQ(decoded.status().code(),
              StatusCode::kCorruptBitstream);
}

TEST(GeometryCodec, RecordsGeometryStages)
{
    const VoxelCloud cloud = uniqueRandomCloud(60, 400, 6);
    WorkRecorder recorder;
    auto encoded =
        encodeGeometry(cloud, parallelConfig(true), &recorder);
    ASSERT_TRUE(encoded.hasValue());
    const auto profile = recorder.takeProfile();
    ASSERT_GE(profile.stages.size(), 3u);
    EXPECT_EQ(profile.stages[0].name, "geom.normalize");
    bool has_build = false;
    for (const auto &stage : profile.stages)
        has_build |= stage.name == "geom.build";
    EXPECT_TRUE(has_build);
}

/** Sweep: lossless roundtrip across sizes, depths, builders. */
class GeometryCodecSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
};

TEST_P(GeometryCodecSweep, LosslessRoundtrip)
{
    const auto [n, bits, parallel] = GetParam();
    // Never ask for more unique voxels than half the grid holds.
    const std::size_t capped = std::min<std::size_t>(
        static_cast<std::size_t>(n),
        (std::size_t{1} << (3 * bits)) / 2 + 1);
    const VoxelCloud cloud = uniqueRandomCloud(
        static_cast<std::uint64_t>(n) * 61 +
            static_cast<std::uint64_t>(bits),
        capped, bits);
    const GeometryConfig config =
        parallel ? parallelConfig(false) : sequentialConfig();
    auto encoded = encodeGeometry(cloud, config);
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decodeGeometry(encoded->payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(voxelSet(cloud), voxelSet(*decoded));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryCodecSweep,
    ::testing::Combine(::testing::Values(1, 7, 64, 1000),
                       ::testing::Values(1, 4, 10),
                       ::testing::Bool()));

}  // namespace
}  // namespace edgepcc
