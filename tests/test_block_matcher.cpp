/** @file Tests for the proposed Morton-window inter-frame codec. */

#include "edgepcc/interframe/block_matcher.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {
namespace {

/** Morton-sorted cloud with a smooth color field. */
VoxelCloud
smoothSortedCloud(std::uint64_t seed, std::size_t n, int bits,
                  int color_shift = 0, double noise = 0.0)
{
    Rng rng(seed);
    std::set<std::uint64_t> codes;
    const std::uint32_t grid = 1u << bits;
    while (codes.size() < n) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid));
        const auto z =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        codes.insert(mortonEncode(x, y, z));
    }
    Rng noise_rng(seed ^ 0xabcd);
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        const double jitter = noise * noise_rng.gaussian();
        const auto clampc = [](double v) {
            return static_cast<std::uint8_t>(
                std::clamp(v, 0.0, 255.0));
        };
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  clampc(60.0 + color_shift +
                         (xyz.x * 120.0) / grid + jitter),
                  clampc(40.0 + color_shift +
                         (xyz.y * 140.0) / grid + jitter),
                  clampc(90.0 + color_shift +
                         (xyz.z * 100.0) / grid + jitter));
    }
    return cloud;
}

double
meanAbsColorError(const VoxelCloud &a, const VoxelCloud &b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sum += std::abs(static_cast<double>(a.r()[i]) - b.r()[i]);
        sum += std::abs(static_cast<double>(a.g()[i]) - b.g()[i]);
        sum += std::abs(static_cast<double>(a.b()[i]) - b.b()[i]);
    }
    return sum / (3.0 * static_cast<double>(a.size()));
}

BlockMatchConfig
defaultConfig()
{
    BlockMatchConfig config;
    config.delta_codec.quant_step = 1;  // lossless deltas
    return config;
}

TEST(BlockMatcher, RejectsEmptyClouds)
{
    VoxelCloud empty(6);
    const VoxelCloud cloud = smoothSortedCloud(90, 100, 6);
    EXPECT_FALSE(encodeInterAttr(empty, cloud, defaultConfig())
                     .hasValue());
    EXPECT_FALSE(encodeInterAttr(cloud, empty, defaultConfig())
                     .hasValue());
    BlockMatchConfig bad = defaultConfig();
    bad.candidate_window = 0;
    EXPECT_FALSE(encodeInterAttr(cloud, cloud, bad).hasValue());
}

TEST(BlockMatcher, IdenticalFramesFullyReused)
{
    const VoxelCloud cloud = smoothSortedCloud(91, 4000, 7);
    auto encoded =
        encodeInterAttr(cloud, cloud, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_EQ(encoded->stats.reused_blocks,
              encoded->stats.num_blocks);
    EXPECT_EQ(encoded->stats.delta_points, 0u);

    VoxelCloud decoded = cloud;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        decoded.setColor(i, Color{});
    ASSERT_TRUE(decodeInterAttrInto(encoded->payload, cloud,
                                    decoded)
                    .isOk());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        EXPECT_EQ(decoded.color(i), cloud.color(i));
}

TEST(BlockMatcher, ReusePayloadIsSmall)
{
    const VoxelCloud cloud = smoothSortedCloud(92, 8000, 7);
    auto encoded =
        encodeInterAttr(cloud, cloud, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    // Full reuse: ~1 byte per block, far below 3 B/point raw.
    EXPECT_LT(encoded->payload.size(), cloud.size() / 2);
}

TEST(BlockMatcher, DissimilarFramesFallBackToDeltas)
{
    const VoxelCloud p = smoothSortedCloud(93, 3000, 7, 0);
    const VoxelCloud i = smoothSortedCloud(93, 3000, 7, 120);
    BlockMatchConfig config = defaultConfig();
    config.reuse_threshold = 1.0;  // strict
    auto encoded = encodeInterAttr(p, i, config);
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_EQ(encoded->stats.reused_blocks, 0u);
    // Lossless delta coding must reconstruct exactly.
    VoxelCloud decoded = p;
    for (std::size_t k = 0; k < decoded.size(); ++k)
        decoded.setColor(k, Color{});
    ASSERT_TRUE(
        decodeInterAttrInto(encoded->payload, i, decoded).isOk());
    for (std::size_t k = 0; k < decoded.size(); ++k)
        EXPECT_EQ(decoded.color(k), p.color(k));
}

TEST(BlockMatcher, ThresholdControlsReuseFraction)
{
    // Similar frames with mild noise: higher threshold -> more
    // direct reuse (the paper's Fig. 10b knob).
    const VoxelCloud i = smoothSortedCloud(94, 5000, 7, 0, 0.0);
    const VoxelCloud p = smoothSortedCloud(94, 5000, 7, 3, 2.0);
    double previous = -1.0;
    for (const double threshold : {2.0, 15.0, 60.0, 400.0}) {
        BlockMatchConfig config = defaultConfig();
        config.reuse_threshold = threshold;
        auto encoded = encodeInterAttr(p, i, config);
        ASSERT_TRUE(encoded.hasValue());
        const double fraction = encoded->stats.reuseFraction();
        EXPECT_GE(fraction, previous);
        previous = fraction;
    }
    EXPECT_GT(previous, 0.9);  // threshold 400 reuses nearly all
}

TEST(BlockMatcher, HigherThresholdSmallerPayloadLowerQuality)
{
    const VoxelCloud i = smoothSortedCloud(95, 6000, 7, 0, 0.0);
    const VoxelCloud p = smoothSortedCloud(95, 6000, 7, 4, 3.0);
    BlockMatchConfig strict = defaultConfig();
    strict.reuse_threshold = 4.0;
    BlockMatchConfig loose = defaultConfig();
    loose.reuse_threshold = 200.0;
    auto a = encodeInterAttr(p, i, strict);
    auto b = encodeInterAttr(p, i, loose);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_LE(b->payload.size(), a->payload.size());

    VoxelCloud da = p, db = p;
    ASSERT_TRUE(decodeInterAttrInto(a->payload, i, da).isOk());
    ASSERT_TRUE(decodeInterAttrInto(b->payload, i, db).isOk());
    EXPECT_LE(meanAbsColorError(p, da),
              meanAbsColorError(p, db) + 1e-9);
}

TEST(BlockMatcher, DifferentPointCountsHandled)
{
    const VoxelCloud p = smoothSortedCloud(96, 3100, 7);
    const VoxelCloud i = smoothSortedCloud(97, 2900, 7);
    auto encoded = encodeInterAttr(p, i, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud decoded = p;
    ASSERT_TRUE(
        decodeInterAttrInto(encoded->payload, i, decoded).isOk());
}

TEST(BlockMatcher, TinyReferenceFrame)
{
    const VoxelCloud p = smoothSortedCloud(98, 500, 6);
    const VoxelCloud i = smoothSortedCloud(99, 20, 6);
    auto encoded = encodeInterAttr(p, i, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud decoded = p;
    EXPECT_TRUE(
        decodeInterAttrInto(encoded->payload, i, decoded).isOk());
}

TEST(BlockMatcher, PointCountMismatchRejected)
{
    const VoxelCloud p = smoothSortedCloud(100, 1000, 6);
    auto encoded = encodeInterAttr(p, p, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud wrong = smoothSortedCloud(101, 900, 6);
    EXPECT_FALSE(
        decodeInterAttrInto(encoded->payload, p, wrong).isOk());
}

TEST(BlockMatcher, CorruptPayloadRejected)
{
    const VoxelCloud p = smoothSortedCloud(102, 1000, 6);
    auto encoded = encodeInterAttr(p, p, defaultConfig());
    ASSERT_TRUE(encoded.hasValue());
    auto bad = encoded->payload;
    bad[1] = 'X';
    VoxelCloud decoded = p;
    EXPECT_FALSE(decodeInterAttrInto(bad, p, decoded).isOk());
    bad = encoded->payload;
    bad.resize(bad.size() - bad.size() / 4);
    EXPECT_FALSE(decodeInterAttrInto(bad, p, decoded).isOk());
}

TEST(BlockMatcher, RecordsFigNineKernels)
{
    const VoxelCloud p = smoothSortedCloud(103, 2000, 7);
    WorkRecorder recorder;
    auto encoded =
        encodeInterAttr(p, p, defaultConfig(), &recorder);
    ASSERT_TRUE(encoded.hasValue());
    const auto profile = recorder.takeProfile();
    std::set<std::string> kernel_names;
    for (const auto &stage : profile.stages) {
        for (const auto &kernel : stage.kernels)
            kernel_names.insert(kernel.name);
    }
    EXPECT_TRUE(kernel_names.count("bm.diff_squared"));
    EXPECT_TRUE(kernel_names.count("bm.squared_sum"));
    EXPECT_TRUE(kernel_names.count("bm.address_gen"));
}

/** Sweep over block counts and windows. */
class BlockMatcherSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>>
{
};

TEST_P(BlockMatcherSweep, RoundtripReconstructs)
{
    const auto [blocks, window] = GetParam();
    const VoxelCloud i =
        smoothSortedCloud(104 + blocks, 2500, 7, 0, 0.0);
    const VoxelCloud p =
        smoothSortedCloud(104 + blocks, 2500, 7, 2, 1.0);
    BlockMatchConfig config = defaultConfig();
    config.num_blocks = blocks;
    config.candidate_window = window;
    config.reuse_threshold = 0.5;  // force lossless delta path
    auto encoded = encodeInterAttr(p, i, config);
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud decoded = p;
    for (std::size_t k = 0; k < decoded.size(); ++k)
        decoded.setColor(k, Color{});
    ASSERT_TRUE(
        decodeInterAttrInto(encoded->payload, i, decoded).isOk());
    std::size_t exact = 0;
    for (std::size_t k = 0; k < decoded.size(); ++k)
        exact += decoded.color(k) == p.color(k);
    // Non-reused blocks decode exactly (quant_step 1).
    EXPECT_GT(static_cast<double>(exact) /
                  static_cast<double>(decoded.size()),
              0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockMatcherSweep,
    ::testing::Combine(::testing::Values(0u, 16u, 200u),
                       ::testing::Values(1u, 10u, 100u)));

}  // namespace
}  // namespace edgepcc
