/** @file Tests for the Morton-segment Base+Delta attribute codec. */

#include "edgepcc/attr/segment_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "edgepcc/common/rng.h"

namespace edgepcc {
namespace {

AttrChannels
randomChannels(std::uint64_t seed, std::size_t n, std::int32_t lo,
               std::int32_t hi)
{
    Rng rng(seed);
    AttrChannels channels;
    for (auto &channel : channels) {
        channel.resize(n);
        for (auto &value : channel) {
            value = lo + static_cast<std::int32_t>(rng.bounded(
                             static_cast<std::uint64_t>(hi - lo)));
        }
    }
    return channels;
}

AttrChannels
smoothChannels(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    AttrChannels channels;
    for (auto &channel : channels) {
        channel.resize(n);
        double value = 128.0;
        for (std::size_t i = 0; i < n; ++i) {
            value += rng.gaussian() * 1.5;
            value = std::clamp(value, 0.0, 255.0);
            channel[i] = static_cast<std::int32_t>(value);
        }
    }
    return channels;
}

std::int32_t
maxAbsError(const AttrChannels &a, const AttrChannels &b)
{
    std::int32_t max_err = 0;
    for (int c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < a[0].size(); ++i) {
            max_err = std::max(
                max_err, std::abs(a[static_cast<std::size_t>(c)][i] -
                                  b[static_cast<std::size_t>(c)][i]));
        }
    }
    return max_err;
}

TEST(SegmentLayout, AutoSegments)
{
    SegmentCodecConfig config;
    const SegmentLayout layout = makeSegmentLayout(24000, config);
    EXPECT_EQ(layout.num_segments, 1000u);
    EXPECT_EQ(layout.points_per_segment, 24u);
}

TEST(SegmentLayout, NoEmptyTrailingSegments)
{
    SegmentCodecConfig config;
    config.num_segments = 7;
    const SegmentLayout layout = makeSegmentLayout(20, config);
    // ceil(20/7)=3 per segment -> 7 segments would leave the last
    // empty; the layout recomputes to ceil(20/3)=7... check bounds.
    const std::size_t last =
        layout.begin(layout.num_segments - 1);
    EXPECT_LT(last, 20u);
    EXPECT_EQ(layout.end(layout.num_segments - 1, 20), 20u);
}

TEST(SegmentLayout, MoreSegmentsThanPointsClamps)
{
    SegmentCodecConfig config;
    config.num_segments = 100;
    const SegmentLayout layout = makeSegmentLayout(5, config);
    EXPECT_LE(layout.num_segments, 5u);
    EXPECT_GE(layout.points_per_segment, 1u);
}

TEST(SegmentCodec, RejectsBadInput)
{
    AttrChannels empty;
    EXPECT_FALSE(
        encodeSegmentAttr(empty, SegmentCodecConfig{}).hasValue());

    AttrChannels uneven;
    uneven[0] = {1, 2, 3};
    uneven[1] = {1, 2};
    uneven[2] = {1, 2, 3};
    EXPECT_FALSE(
        encodeSegmentAttr(uneven, SegmentCodecConfig{}).hasValue());

    AttrChannels ok;
    ok[0] = ok[1] = ok[2] = {1, 2, 3};
    SegmentCodecConfig zero_q;
    zero_q.quant_step = 0;
    EXPECT_FALSE(encodeSegmentAttr(ok, zero_q).hasValue());
}

TEST(SegmentCodec, LosslessWithUnitQuantStep)
{
    const AttrChannels channels = randomChannels(80, 5000, 0, 256);
    SegmentCodecConfig config;
    config.quant_step = 1;
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    auto decoded = decodeSegmentAttr(*payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(*decoded, channels);
}

TEST(SegmentCodec, ErrorBoundedByHalfQuantStep)
{
    const AttrChannels channels = randomChannels(81, 5000, 0, 256);
    for (std::uint32_t q : {2u, 3u, 4u, 8u}) {
        SegmentCodecConfig config;
        config.quant_step = q;
        auto payload = encodeSegmentAttr(channels, config);
        ASSERT_TRUE(payload.hasValue());
        auto decoded = decodeSegmentAttr(*payload);
        ASSERT_TRUE(decoded.hasValue());
        EXPECT_LE(maxAbsError(channels, *decoded),
                  static_cast<std::int32_t>(q) / 2 + 1)
            << "quant step " << q;
    }
}

TEST(SegmentCodec, HandlesSignedValues)
{
    // Inter-frame deltas are signed; the codec must roundtrip them.
    const AttrChannels channels =
        randomChannels(82, 3000, -255, 256);
    SegmentCodecConfig config;
    config.quant_step = 1;
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    auto decoded = decodeSegmentAttr(*payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(*decoded, channels);
}

TEST(SegmentCodec, SingleValue)
{
    AttrChannels channels;
    channels[0] = {42};
    channels[1] = {-7};
    channels[2] = {255};
    SegmentCodecConfig config;
    config.quant_step = 1;
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    auto decoded = decodeSegmentAttr(*payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ(*decoded, channels);
}

TEST(SegmentCodec, SmoothDataBeatsRawSize)
{
    const AttrChannels channels = smoothChannels(83, 24000);
    SegmentCodecConfig config;  // defaults: q=4, two-layer, auto
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    // Raw would be 3 bytes/point.
    EXPECT_LT(payload->size(), 24000u * 3u);
}

TEST(SegmentCodec, TwoLayerHelpsOnSmoothData)
{
    const AttrChannels channels = smoothChannels(84, 24000);
    SegmentCodecConfig with;
    with.two_layer = true;
    SegmentCodecConfig without;
    without.two_layer = false;
    auto a = encodeSegmentAttr(channels, with);
    auto b = encodeSegmentAttr(channels, without);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_LE(a->size(), b->size());
}

TEST(SegmentCodec, ConstantDataIsTiny)
{
    AttrChannels channels;
    for (auto &channel : channels)
        channel.assign(10000, 77);
    SegmentCodecConfig config;
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    // Only per-segment headers remain (zero-width residuals).
    EXPECT_LT(payload->size(), 10000u / 2);
    auto decoded = decodeSegmentAttr(*payload);
    ASSERT_TRUE(decoded.hasValue());
    EXPECT_EQ((*decoded)[0][123], 77);
}

TEST(SegmentCodec, CorruptPayloadRejected)
{
    const AttrChannels channels = randomChannels(85, 1000, 0, 256);
    auto payload = encodeSegmentAttr(channels,
                                     SegmentCodecConfig{});
    ASSERT_TRUE(payload.hasValue());
    auto bad = *payload;
    bad[0] = 'Z';
    EXPECT_FALSE(decodeSegmentAttr(bad).hasValue());
    bad = *payload;
    bad.resize(bad.size() / 2);
    EXPECT_FALSE(decodeSegmentAttr(bad).hasValue());
}

TEST(SegmentCodec, RecordsKernels)
{
    const AttrChannels channels = randomChannels(86, 2000, 0, 256);
    WorkRecorder recorder;
    auto payload = encodeSegmentAttr(channels,
                                     SegmentCodecConfig{},
                                     &recorder);
    ASSERT_TRUE(payload.hasValue());
    const auto profile = recorder.takeProfile();
    ASSERT_EQ(profile.stages.size(), 1u);
    EXPECT_EQ(profile.stages[0].name, "attr.segment");
    EXPECT_EQ(profile.stages[0].kernels.size(), 4u);
}

/** Sweep over segment counts, quant steps and layer modes. */
class SegmentCodecSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, bool>>
{
};

TEST_P(SegmentCodecSweep, RoundtripWithinQuantBound)
{
    const auto [segments, q, two_layer] = GetParam();
    const AttrChannels channels = randomChannels(
        static_cast<std::uint64_t>(segments) * 91 + q, 4321, 0,
        256);
    SegmentCodecConfig config;
    config.num_segments = segments;
    config.quant_step = q;
    config.two_layer = two_layer;
    auto payload = encodeSegmentAttr(channels, config);
    ASSERT_TRUE(payload.hasValue());
    auto decoded = decodeSegmentAttr(*payload);
    ASSERT_TRUE(decoded.hasValue());
    ASSERT_EQ((*decoded)[0].size(), channels[0].size());
    EXPECT_LE(maxAbsError(channels, *decoded),
              static_cast<std::int32_t>(q) / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentCodecSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 10u, 1000u,
                                         10000u),
                       ::testing::Values(1u, 4u, 16u),
                       ::testing::Bool()));

}  // namespace
}  // namespace edgepcc
