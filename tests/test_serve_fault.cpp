/**
 * @file
 * Fault-tolerant serving tests: the shared RetryPolicy backoff
 * math (and its bit-parity with the historical NACK schedule),
 * DeviceFaultSpec parsing/round-tripping, the circuit-breaker
 * state machine, multi-replica placement and byte-identity, and
 * the pinned deterministic crash-failover scenario — checkpoint
 * restore, keyframe-on-failover decodability, bulk-first shedding,
 * throttle/stall/oom injection and frame conservation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "edgepcc/common/retry.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/serve/circuit_breaker.h"
#include "edgepcc/serve/fault_injector.h"
#include "edgepcc/serve/serve_scheduler.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {
namespace serve {
namespace {

std::vector<VoxelCloud>
faultVideo(int num_frames, std::uint64_t seed,
           std::size_t points = 1500)
{
    VideoSpec spec;
    spec.name = "serve-fault";
    spec.seed = seed;
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return frames;
}

TenantSpec
makeTenant(const std::string &name, std::uint64_t seed,
           DeadlineClass deadline_class, int num_frames = 8)
{
    TenantSpec tenant;
    tenant.name = name;
    tenant.codec = makeIntraOnlyConfig();
    tenant.frames = faultVideo(num_frames, seed);
    tenant.deadline_class = deadline_class;
    tenant.queue_capacity = 64;  // roomy: no drops unless asked
    return tenant;
}

const TenantReport &
tenantNamed(const ServeReport &report, const std::string &name)
{
    for (const TenantReport &tenant : report.tenants) {
        if (tenant.name == name)
            return tenant;
    }
    ADD_FAILURE() << "no tenant named " << name;
    static const TenantReport missing;
    return missing;
}

DeviceFaultSpec
mustParse(const std::string &text)
{
    auto spec = DeviceFaultSpec::parse(text);
    EXPECT_TRUE(spec.hasValue()) << text;
    return spec.hasValue() ? *spec : DeviceFaultSpec{};
}

/** Every offered frame must be accounted for by exactly one
 *  outcome bucket — degraded service is fine, silent loss is not. */
void
expectConservation(const TenantReport &tenant)
{
    EXPECT_EQ(tenant.stats.served + tenant.stats.dropped +
                  tenant.stats.faulted + tenant.stats.quarantined +
                  tenant.stats.shed,
              tenant.stats.frames)
        << tenant.name;
}

// -----------------------------------------------------------------
// RetryPolicy (shared by NACK retransmits and circuit breakers)
// -----------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffMatchesLegacyFormula)
{
    RetryPolicy policy;
    policy.initial_backoff_s = 0.008;
    policy.multiplier = 2.0;
    policy.max_backoff_s =
        std::numeric_limits<double>::infinity();
    // Bit-identical to the historical NACK schedule
    // backoff_ms/1e3 * (1 << (round - 1)).
    for (int round = 1; round <= 6; ++round) {
        EXPECT_DOUBLE_EQ(policy.backoffFor(round),
                         0.008 * static_cast<double>(1 << (round - 1)))
            << "round " << round;
    }
}

TEST(RetryPolicyTest, BackoffIsCapped)
{
    RetryPolicy policy;
    policy.initial_backoff_s = 0.1;
    policy.multiplier = 2.0;
    policy.max_backoff_s = 0.35;
    EXPECT_DOUBLE_EQ(policy.backoffFor(1), 0.1);
    EXPECT_DOUBLE_EQ(policy.backoffFor(2), 0.2);
    EXPECT_DOUBLE_EQ(policy.backoffFor(3), 0.35);
    EXPECT_DOUBLE_EQ(policy.backoffFor(10), 0.35);
    EXPECT_DOUBLE_EQ(policy.totalBackoff(3), 0.1 + 0.2 + 0.35);
}

TEST(RetryPolicyTest, JitterIsSeededAndBounded)
{
    RetryPolicy policy;
    policy.initial_backoff_s = 0.01;
    policy.jitter = 0.25;
    policy.seed = 42;
    for (int attempt = 1; attempt <= 8; ++attempt) {
        const double factor = policy.jitterFor(attempt);
        EXPECT_GE(factor, 0.75);
        EXPECT_LE(factor, 1.25);
        // Deterministic: same (seed, attempt) -> same factor.
        EXPECT_DOUBLE_EQ(factor, policy.jitterFor(attempt));
    }
    RetryPolicy no_jitter = policy;
    no_jitter.jitter = 0.0;
    EXPECT_DOUBLE_EQ(no_jitter.jitterFor(3), 1.0);
}

TEST(RetryPolicyTest, ExhaustionBound)
{
    RetryPolicy policy;
    policy.max_attempts = 2;
    EXPECT_FALSE(policy.exhausted(0));
    EXPECT_FALSE(policy.exhausted(1));
    EXPECT_TRUE(policy.exhausted(2));
}

TEST(RetryPolicyTest, SessionRetransmitPolicyMirrorsNackSchedule)
{
    SessionConfig session;
    session.max_retransmits = 3;
    session.backoff_ms = 8.0;
    const RetryPolicy policy = session.retransmitPolicy();
    EXPECT_EQ(policy.max_attempts, 3);
    EXPECT_DOUBLE_EQ(policy.backoffFor(1), 8.0 / 1e3);
    EXPECT_DOUBLE_EQ(policy.backoffFor(2), 8.0 / 1e3 * 2.0);
    EXPECT_DOUBLE_EQ(policy.backoffFor(3), 8.0 / 1e3 * 4.0);
    EXPECT_DOUBLE_EQ(policy.jitterFor(1), 1.0);
}

// -----------------------------------------------------------------
// DeviceFaultSpec parsing
// -----------------------------------------------------------------

TEST(DeviceFaultSpecTest, KindNames)
{
    EXPECT_STREQ(deviceFaultKindName(DeviceFaultKind::kTransientStall),
                 "stall");
    EXPECT_STREQ(
        deviceFaultKindName(DeviceFaultKind::kThermalThrottle),
        "throttle");
    EXPECT_STREQ(
        deviceFaultKindName(DeviceFaultKind::kMemoryExhaustion),
        "oom");
    EXPECT_STREQ(deviceFaultKindName(DeviceFaultKind::kCrash),
                 "crash");
}

TEST(DeviceFaultSpecTest, ParsesPresets)
{
    auto none = DeviceFaultSpec::parse("none");
    ASSERT_TRUE(none.hasValue());
    EXPECT_TRUE(none->isIdle());
    EXPECT_EQ(none->toString(), "none");

    auto crash = DeviceFaultSpec::parse("crash-secondary");
    ASSERT_TRUE(crash.hasValue());
    ASSERT_EQ(crash->events.size(), 1u);
    EXPECT_EQ(crash->events[0].kind, DeviceFaultKind::kCrash);
    EXPECT_EQ(crash->events[0].replica, 1);

    auto thermal = DeviceFaultSpec::parse("thermal-brownout");
    ASSERT_TRUE(thermal.hasValue());
    ASSERT_EQ(thermal->events.size(), 1u);
    EXPECT_EQ(thermal->events[0].kind,
              DeviceFaultKind::kThermalThrottle);
}

TEST(DeviceFaultSpecTest, ParsesEventListAndRoundTrips)
{
    const std::string text =
        "kind=crash,replica=1,at-ms=60;"
        "kind=throttle,at-ms=20,dur-ms=40,derate=2.5;"
        "kind=oom,at-ms=5,dur-ms=3;"
        "kind=stall,at-ms=1,dur-ms=2";
    auto spec = DeviceFaultSpec::parse(text);
    ASSERT_TRUE(spec.hasValue());
    ASSERT_EQ(spec->events.size(), 4u);
    EXPECT_EQ(spec->events[0].kind, DeviceFaultKind::kCrash);
    EXPECT_DOUBLE_EQ(spec->events[0].at_s, 0.060);
    EXPECT_DOUBLE_EQ(spec->events[1].derate, 2.5);
    EXPECT_DOUBLE_EQ(spec->events[2].duration_s, 0.003);

    // Canonical rendering parses back to the same spec.
    auto again = DeviceFaultSpec::parse(spec->toString());
    ASSERT_TRUE(again.hasValue());
    EXPECT_EQ(again->toString(), spec->toString());
}

TEST(DeviceFaultSpecTest, RejectsMalformedSpecs)
{
    EXPECT_FALSE(DeviceFaultSpec::parse("kind=warp,at-ms=1")
                     .hasValue());
    EXPECT_FALSE(DeviceFaultSpec::parse("replica=0").hasValue());
    EXPECT_FALSE(
        DeviceFaultSpec::parse("kind=oom,at-ms=5").hasValue());
    EXPECT_FALSE(
        DeviceFaultSpec::parse("kind=crash,at-ms=abc").hasValue());
    EXPECT_FALSE(
        DeviceFaultSpec::parse("kind=throttle,dur-ms=4,derate=-1")
            .hasValue());
}

// -----------------------------------------------------------------
// Circuit breaker state machine
// -----------------------------------------------------------------

CircuitBreakerConfig
fastBreaker()
{
    CircuitBreakerConfig config;
    config.failure_threshold = 3;
    config.reprobe.initial_backoff_s = 0.1;
    config.reprobe.multiplier = 2.0;
    config.reprobe.max_backoff_s = 10.0;
    return config;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures)
{
    CircuitBreaker breaker(fastBreaker());
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(breaker.allowRequest(0.0));
        breaker.onFailure(0.0);
        EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    }
    ASSERT_TRUE(breaker.allowRequest(0.0));
    breaker.onFailure(0.0);
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_DOUBLE_EQ(breaker.openUntil(), 0.1);
    EXPECT_FALSE(breaker.allowRequest(0.05));
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess)
{
    CircuitBreaker breaker(fastBreaker());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(breaker.allowRequest(0.0));
        breaker.onFailure(0.0);
    }
    ASSERT_EQ(breaker.state(), BreakerState::kOpen);
    // Quarantine expired: exactly one probe is admitted.
    ASSERT_TRUE(breaker.allowRequest(0.2));
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_FALSE(breaker.allowRequest(0.2));
    breaker.onSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_EQ(breaker.consecutiveFailures(), 0);
    // The backoff schedule reset with the success.
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(breaker.allowRequest(1.0));
        breaker.onFailure(1.0);
    }
    EXPECT_DOUBLE_EQ(breaker.openUntil(), 1.1);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithLongerBackoff)
{
    CircuitBreaker breaker(fastBreaker());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(breaker.allowRequest(0.0));
        breaker.onFailure(0.0);
    }
    EXPECT_DOUBLE_EQ(breaker.openUntil(), 0.1);
    ASSERT_TRUE(breaker.allowRequest(0.15));  // probe
    breaker.onFailure(0.15);
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.trips(), 2u);
    // Second consecutive trip: doubled quarantine.
    EXPECT_DOUBLE_EQ(breaker.openUntil(), 0.15 + 0.2);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips)
{
    CircuitBreakerConfig config = fastBreaker();
    config.enabled = false;
    CircuitBreaker breaker(config);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(breaker.allowRequest(0.0));
        breaker.onFailure(0.0);
    }
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, StateNames)
{
    EXPECT_STREQ(breakerStateName(BreakerState::kClosed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::kOpen), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::kHalfOpen),
                 "half-open");
}

// -----------------------------------------------------------------
// Trace rendering
// -----------------------------------------------------------------

TEST(ServeFaultHelpersTest, TraceStringMarksFaultOutcomes)
{
    ServeReport report;
    report.trace.push_back(
        {"A", 0, ServeOutcome::kFaulted, false, 0});
    report.trace.push_back(
        {"B", 1, ServeOutcome::kQuarantined, false, 0});
    report.trace.push_back({"C", 2, ServeOutcome::kShed, false, 1});
    EXPECT_EQ(traceString(report), "A0~ B1^ C2#");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kFaulted),
                 "faulted");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kQuarantined),
                 "quarantined");
    EXPECT_STREQ(serveOutcomeName(ServeOutcome::kShed), "shed");
}

TEST(ServeFaultHelpersTest, RecoveryTraceStringFormat)
{
    ServeReport report;
    FailoverRecord record;
    record.replica = 1;
    record.at_s = 0.0667;
    FailoverMove moved;
    moved.tenant = "B";
    moved.to_replica = 0;
    moved.restored_from_checkpoint = true;
    record.moves.push_back(moved);
    FailoverMove shed;
    shed.tenant = "D";
    shed.to_replica = -1;
    record.moves.push_back(shed);
    report.failovers.push_back(record);
    EXPECT_EQ(recoveryTraceString(report),
              "crash r1 @66700us: B->r0+ckpt D->shed");
    EXPECT_STREQ(
        rejectionReasonName(RejectionReason::kFailoverShed),
        "failover-shed");
}

// -----------------------------------------------------------------
// Scheduler validation
// -----------------------------------------------------------------

TEST(ServeFaultValidationTest, RejectsBadFaultConfigs)
{
    std::vector<TenantSpec> tenants;
    tenants.push_back(makeTenant("A", 1, DeadlineClass::kStandard, 2));

    ServeConfig zero_replicas;
    zero_replicas.replicas = 0;
    EXPECT_FALSE(
        ServeScheduler(zero_replicas, tenants).run().hasValue());

    ServeConfig out_of_range;
    out_of_range.replicas = 2;
    out_of_range.faults =
        mustParse("kind=crash,replica=5,at-ms=1");
    EXPECT_FALSE(
        ServeScheduler(out_of_range, tenants).run().hasValue());

    ServeConfig bad_checkpoint;
    bad_checkpoint.checkpoint_interval_frames = -1;
    EXPECT_FALSE(
        ServeScheduler(bad_checkpoint, tenants).run().hasValue());
}

// -----------------------------------------------------------------
// Multi-replica placement
// -----------------------------------------------------------------

TEST(ServeReplicaTest, PlacementSpreadsAcrossReplicas)
{
    ServeConfig config;
    config.replicas = 2;
    config.quantum_s = 10.0;
    config.batch_max = 8;

    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 11, DeadlineClass::kInteractive, 3));
    tenants.push_back(
        makeTenant("B", 22, DeadlineClass::kStandard, 3));
    tenants.push_back(
        makeTenant("C", 33, DeadlineClass::kStandard, 3));
    tenants.push_back(makeTenant("D", 44, DeadlineClass::kBulk, 3));

    auto report = ServeScheduler(config, tenants).run();
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->fleet.replicas, 2u);
    EXPECT_EQ(report->fleet.admitted, 4u);

    bool used[2] = {false, false};
    for (const TenantReport &tenant : report->tenants) {
        ASSERT_GE(tenant.replica, 0);
        ASSERT_LT(tenant.replica, 2);
        used[tenant.replica] = true;
        expectConservation(tenant);
        EXPECT_EQ(tenant.stats.served, tenant.stats.frames)
            << tenant.name;
    }
    EXPECT_TRUE(used[0]);
    EXPECT_TRUE(used[1]);
    EXPECT_TRUE(report->failovers.empty());
    EXPECT_EQ(recoveryTraceString(*report), "");

    // Per-tenant byte-identity holds across replicas: every
    // tenant's bitstreams equal its solo run.
    for (const TenantSpec &spec : tenants) {
        VideoEncoder solo(spec.codec);
        const TenantReport &tenant =
            tenantNamed(*report, spec.name);
        ASSERT_EQ(tenant.frames.size(), spec.frames.size());
        for (std::size_t f = 0; f < spec.frames.size(); ++f) {
            auto encoded = solo.encode(spec.frames[f]);
            ASSERT_TRUE(encoded.hasValue());
            EXPECT_EQ(tenant.frames[f].bitstream,
                      encoded->bitstream)
                << spec.name << " frame " << f;
        }
    }
}

// -----------------------------------------------------------------
// Fault injection: throttle, stall, oom
// -----------------------------------------------------------------

TEST(ServeFaultTest, ThermalThrottleDeratesCostNotBytes)
{
    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 7, DeadlineClass::kStandard, 4));

    ServeConfig base;
    base.quantum_s = 10.0;
    auto clean = ServeScheduler(base, tenants).run();
    ASSERT_TRUE(clean.hasValue());

    ServeConfig hot = base;
    hot.faults = mustParse(
        "kind=throttle,replica=0,at-ms=0,dur-ms=1e6,derate=2.5");
    ASSERT_EQ(hot.faults.events.size(), 1u);
    auto throttled = ServeScheduler(hot, tenants).run();
    ASSERT_TRUE(throttled.hasValue());

    const TenantReport &cold_tenant = tenantNamed(*clean, "A");
    const TenantReport &hot_tenant = tenantNamed(*throttled, "A");
    ASSERT_EQ(hot_tenant.frames.size(), cold_tenant.frames.size());
    for (std::size_t f = 0; f < hot_tenant.frames.size(); ++f) {
        ASSERT_EQ(hot_tenant.frames[f].outcome,
                  ServeOutcome::kEncoded);
        // 2.5x the modelled seconds, identical bytes.
        EXPECT_DOUBLE_EQ(hot_tenant.frames[f].cost_s,
                         cold_tenant.frames[f].cost_s * 2.5);
        EXPECT_EQ(hot_tenant.frames[f].bitstream,
                  cold_tenant.frames[f].bitstream);
    }
    EXPECT_GT(throttled->fleet.makespan_s,
              clean->fleet.makespan_s);
}

TEST(ServeFaultTest, TransientStallDelaysWithoutChangingBytes)
{
    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 7, DeadlineClass::kStandard, 4));

    ServeConfig base;
    base.quantum_s = 10.0;
    auto clean = ServeScheduler(base, tenants).run();
    ASSERT_TRUE(clean.hasValue());

    ServeConfig stalled_config = base;
    stalled_config.faults =
        mustParse("kind=stall,at-ms=1,dur-ms=50");
    auto stalled = ServeScheduler(stalled_config, tenants).run();
    ASSERT_TRUE(stalled.hasValue());

    // Nothing completes while the device is stalled: any frame
    // that would have finished inside the stall window is pushed
    // past its end. Later frames catch up during arrival gaps, so
    // the makespan itself can absorb the hiccup.
    const TenantReport &a = tenantNamed(*stalled, "A");
    const TenantReport &b = tenantNamed(*clean, "A");
    ASSERT_EQ(a.frames.size(), b.frames.size());
    bool saw_delayed_frame = false;
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
        EXPECT_EQ(a.frames[f].bitstream, b.frames[f].bitstream);
        // Faults land at round boundaries, so only frames whose
        // round begins after the trigger observe the stall.
        const bool round_after_trigger =
            f > 0 && b.frames[f - 1].completion_s >= 0.001;
        if (round_after_trigger &&
            b.frames[f].completion_s < 0.051) {
            saw_delayed_frame = true;
            EXPECT_GE(a.frames[f].completion_s, 0.051 - 1e-9)
                << "frame " << f;
        }
    }
    EXPECT_TRUE(saw_delayed_frame);
    EXPECT_GE(stalled->fleet.makespan_s, clean->fleet.makespan_s);
}

TEST(ServeFaultTest, MemoryExhaustionFaultsAreAttributable)
{
    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 7, DeadlineClass::kStandard, 6));

    ServeConfig config;
    config.quantum_s = 10.0;
    // The first dispatch lands inside the oom window.
    config.faults = mustParse("kind=oom,at-ms=0,dur-ms=1");
    auto report = ServeScheduler(config, tenants).run();
    ASSERT_TRUE(report.hasValue());

    const TenantReport &tenant = tenantNamed(*report, "A");
    expectConservation(tenant);
    ASSERT_GE(tenant.stats.faulted, 1u);
    const ServedFrame &faulted = tenant.frames.front();
    EXPECT_EQ(faulted.outcome, ServeOutcome::kFaulted);
    EXPECT_EQ(faulted.fault_status.code(),
              StatusCode::kResourceExhausted);
    EXPECT_NE(faulted.fault_status.message().find("tenant 'A'"),
              std::string::npos);
    EXPECT_NE(faulted.fault_status.message().find("frame 0"),
              std::string::npos);
    EXPECT_NE(
        faulted.fault_status.message().find("memory exhausted"),
        std::string::npos);
    // The window passed: the rest of the stream was served.
    EXPECT_GT(tenant.stats.served, 0u);
    EXPECT_EQ(report->recovery.faulted_frames,
              tenant.stats.faulted);
}

// -----------------------------------------------------------------
// Poisoned tenants and the breaker in the scheduler
// -----------------------------------------------------------------

TEST(ServeFaultTest, PoisonedTenantIsQuarantinedAndRecovers)
{
    TenantSpec poisoned =
        makeTenant("P", 5, DeadlineClass::kStandard, 12);
    poisoned.fault_frames = {1, 2, 3};
    poisoned.queue_capacity = 0;  // tight: quarantine sheds show

    ServeConfig config;
    config.quantum_s = 10.0;
    config.breaker.failure_threshold = 3;
    config.breaker.reprobe.initial_backoff_s = 0.2;

    auto report =
        ServeScheduler(config, {poisoned}).run();
    ASSERT_TRUE(report.hasValue());
    const TenantReport &tenant = tenantNamed(*report, "P");
    expectConservation(tenant);

    // All three poisoned dispatches faulted and tripped the
    // breaker; frames arriving during the quarantine were shed as
    // quarantined, and the re-probe closed the breaker again.
    EXPECT_EQ(tenant.stats.faulted, 3u);
    EXPECT_EQ(report->recovery.breaker_trips, 1u);
    EXPECT_GT(tenant.stats.quarantined, 0u);
    EXPECT_GT(tenant.stats.served, 1u);
    EXPECT_NE(tenant.frames[1].fault_status.message().find(
                  "poisoned"),
              std::string::npos);

    // The last frames were served normally post-recovery.
    EXPECT_EQ(tenant.frames.back().outcome,
              ServeOutcome::kEncoded);
}

TEST(ServeFaultTest, FaultedFramesNeverReachTheEncoder)
{
    // Byte-identity under faults: the bitstream equals a solo run
    // over the frames actually fed (the poisoned one skipped).
    TenantSpec poisoned =
        makeTenant("P", 5, DeadlineClass::kStandard, 5);
    poisoned.codec = makeIntraInterV1Config();
    poisoned.frames = faultVideo(5, 5);
    poisoned.fault_frames = {1};

    ServeConfig config;
    config.quantum_s = 10.0;
    auto report = ServeScheduler(config, {poisoned}).run();
    ASSERT_TRUE(report.hasValue());
    const TenantReport &tenant = tenantNamed(*report, "P");
    EXPECT_EQ(tenant.stats.faulted, 1u);
    EXPECT_EQ(tenant.stats.served, 4u);

    VideoEncoder solo(poisoned.codec);
    for (const ServedFrame &frame : tenant.frames) {
        if (frame.outcome != ServeOutcome::kEncoded)
            continue;
        auto encoded =
            solo.encode(poisoned.frames[frame.frame_id]);
        ASSERT_TRUE(encoded.hasValue());
        EXPECT_EQ(frame.bitstream, encoded->bitstream)
            << "frame " << frame.frame_id;
    }
}

// -----------------------------------------------------------------
// Crash failover
// -----------------------------------------------------------------

/** The canonical failover scenario: two replicas, four tenants,
 *  replica 1 crashes permanently mid-stream. */
struct CrashScenario {
    ServeConfig config;
    std::vector<TenantSpec> tenants;
};

CrashScenario
crashScenario()
{
    CrashScenario scenario;
    scenario.config.replicas = 2;
    scenario.config.quantum_s = 10.0;
    scenario.config.batch_max = 8;
    scenario.config.checkpoint_interval_frames = 2;
    scenario.config.checkpoint_cost_s = 0.0005;
    scenario.config.faults = DeviceFaultSpec::crashSecondary();

    scenario.tenants.push_back(
        makeTenant("A", 11, DeadlineClass::kInteractive, 8));
    TenantSpec b = makeTenant("B", 22, DeadlineClass::kInteractive, 8);
    b.codec = makeIntraInterV1Config();  // IPP: restore must re-key
    scenario.tenants.push_back(std::move(b));
    scenario.tenants.push_back(
        makeTenant("C", 33, DeadlineClass::kStandard, 8));
    scenario.tenants.push_back(
        makeTenant("D", 44, DeadlineClass::kBulk, 8));
    return scenario;
}

TEST(ServeFailoverTest, CrashMidStreamRecoversDeterministically)
{
    const CrashScenario scenario = crashScenario();
    auto report =
        ServeScheduler(scenario.config, scenario.tenants).run();
    ASSERT_TRUE(report.hasValue());

    // Exactly one crash; every victim found a new home (the
    // survivor has headroom), nobody shed.
    EXPECT_EQ(report->recovery.crashes, 1u);
    ASSERT_EQ(report->failovers.size(), 1u);
    const FailoverRecord &crash = report->failovers.front();
    EXPECT_EQ(crash.replica, 1);
    ASSERT_FALSE(crash.moves.empty());
    EXPECT_EQ(report->recovery.failovers, crash.moves.size());
    EXPECT_EQ(report->recovery.tenants_shed, 0u);
    EXPECT_GT(report->recovery.checkpoints, 0u);
    EXPECT_GT(report->recovery.mttr_s, 0.0);
    EXPECT_GE(report->recovery.worst_recovery_s,
              report->recovery.mttr_s);

    for (const FailoverMove &move : crash.moves) {
        EXPECT_EQ(move.from_replica, 1);
        EXPECT_EQ(move.to_replica, 0);
        // The crash landed after 2+ served frames, so every victim
        // restored from a checkpoint instead of a cold reset.
        EXPECT_TRUE(move.restored_from_checkpoint) << move.tenant;
        const TenantReport &tenant =
            tenantNamed(*report, move.tenant);
        EXPECT_EQ(tenant.replica, 0);
        EXPECT_EQ(tenant.rejection_reason, RejectionReason::kNone);
        expectConservation(tenant);

        // The tenant recovered: frames served after the crash,
        // and the first of them within its class budget of the
        // crash (the MTTR acceptance bound; interactive is the
        // tightest class in the mix).
        const ServedFrame *first_after = nullptr;
        for (const ServedFrame &frame : tenant.frames) {
            if (frame.outcome == ServeOutcome::kEncoded &&
                frame.completion_s > crash.at_s) {
                first_after = &frame;
                break;
            }
        }
        ASSERT_NE(first_after, nullptr) << move.tenant;
        EXPECT_LE(first_after->completion_s - crash.at_s,
                  tenant.stats.deadline_s)
            << move.tenant;

        // Keyframe-on-restore: the first post-crash frame is
        // intra, so a decoder joining at the failover point (or
        // riding through it) never needs the lost reference.
        EXPECT_EQ(first_after->stats.type, Frame::Type::kIntra)
            << move.tenant;
        VideoDecoder fresh;
        bool reached_restore = false;
        for (const ServedFrame &frame : tenant.frames) {
            if (frame.completion_s <= crash.at_s ||
                frame.outcome != ServeOutcome::kEncoded)
                continue;
            reached_restore = true;
            auto decoded = fresh.decode(frame.bitstream);
            EXPECT_TRUE(decoded.hasValue())
                << move.tenant << " frame " << frame.frame_id;
        }
        EXPECT_TRUE(reached_restore) << move.tenant;
    }

    // All four tenants finish their streams despite the crash.
    for (const TenantReport &tenant : report->tenants) {
        EXPECT_TRUE(tenant.admitted) << tenant.name;
        expectConservation(tenant);
        EXPECT_GT(tenant.stats.served, 0u) << tenant.name;
    }

    // Re-run determinism: the whole recovery schedule — service
    // trace, recovery trace, bitstreams, MTTR — is reproducible.
    auto second =
        ServeScheduler(scenario.config, scenario.tenants).run();
    ASSERT_TRUE(second.hasValue());
    EXPECT_EQ(traceString(*report), traceString(*second));
    EXPECT_EQ(recoveryTraceString(*report),
              recoveryTraceString(*second));
    EXPECT_DOUBLE_EQ(report->recovery.mttr_s,
                     second->recovery.mttr_s);
    ASSERT_EQ(report->tenants.size(), second->tenants.size());
    for (std::size_t t = 0; t < report->tenants.size(); ++t) {
        const std::vector<ServedFrame> &a =
            report->tenants[t].frames;
        const std::vector<ServedFrame> &b =
            second->tenants[t].frames;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t f = 0; f < a.size(); ++f)
            EXPECT_EQ(a[f].bitstream, b[f].bitstream);
    }
}

TEST(ServeFailoverTest, PinnedRecoveryTrace)
{
    const CrashScenario scenario = crashScenario();
    auto report =
        ServeScheduler(scenario.config, scenario.tenants).run();
    ASSERT_TRUE(report.hasValue());
    // Pinned: replica 1 hosts B and D (least-loaded placement in
    // admission order A, B, C, D), the crash is detected at the
    // first batch boundary past 60 ms, and both victims restore
    // from their frame-2 checkpoints onto replica 0.
    EXPECT_EQ(recoveryTraceString(*report),
              "crash r1 @66667us: B->r0+ckpt D->r0+ckpt");
}

TEST(ServeFailoverTest, ShedsBulkTenantsFirstWhenCapacityIsGone)
{
    // Shrink the cap so the survivor can absorb exactly one victim:
    // the standard-class victim moves, the bulk one is shed.
    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 11, DeadlineClass::kInteractive, 8));
    tenants.push_back(
        makeTenant("B", 22, DeadlineClass::kStandard, 8));
    tenants.push_back(
        makeTenant("C", 33, DeadlineClass::kStandard, 8));
    tenants.push_back(makeTenant("D", 44, DeadlineClass::kBulk, 8));

    ServeConfig config;
    config.replicas = 2;
    config.quantum_s = 10.0;
    config.batch_max = 8;
    config.faults = DeviceFaultSpec::crashSecondary();
    // Cap = 3.5x one tenant's probe utilization: each replica
    // holds two, and the survivor can take exactly one more.
    const double unit_util =
        [&] {
            VideoEncoder probe(tenants[0].codec);
            auto encoded = probe.encode(tenants[0].frames.front());
            EXPECT_TRUE(encoded.hasValue());
            const EdgeDeviceModel model(config.device);
            return model.evaluate(encoded->profile).modelSeconds() *
                   tenants[0].fps;
        }();
    config.admission_utilization_cap = unit_util * 3.5;

    auto report = ServeScheduler(config, tenants).run();
    ASSERT_TRUE(report.hasValue());

    EXPECT_EQ(report->fleet.admitted, 4u);
    EXPECT_EQ(report->recovery.crashes, 1u);
    EXPECT_EQ(report->recovery.tenants_shed, 1u);

    // The bulk tenant is the one shed — the re-admission order
    // protects the tighter classes.
    const TenantReport &bulk = tenantNamed(*report, "D");
    EXPECT_EQ(bulk.rejection_reason,
              RejectionReason::kFailoverShed);
    EXPECT_GT(bulk.stats.shed, 0u);
    expectConservation(bulk);
    for (const ServedFrame &frame : bulk.frames) {
        if (frame.completion_s >
                report->failovers.front().at_s - 1e-9 &&
            frame.outcome != ServeOutcome::kEncoded &&
            frame.outcome != ServeOutcome::kCacheHit) {
            EXPECT_EQ(frame.outcome, ServeOutcome::kShed);
        }
    }

    // Every non-bulk tenant still completed.
    for (const char *name : {"A", "B", "C"}) {
        const TenantReport &tenant = tenantNamed(*report, name);
        EXPECT_EQ(tenant.rejection_reason, RejectionReason::kNone)
            << name;
        EXPECT_EQ(tenant.stats.served + tenant.stats.dropped,
                  tenant.stats.frames)
            << name;
    }
    const FailoverRecord &crash = report->failovers.front();
    ASSERT_EQ(crash.moves.size(), 2u);
    EXPECT_EQ(crash.moves.back().tenant, "D");
    EXPECT_EQ(crash.moves.back().to_replica, -1);
}

TEST(ServeFailoverTest, ReplicaRestartRejoinsForLaterFailovers)
{
    // Crash replica 1 with a restart delay, then crash replica 0
    // permanently: the revived replica 1 must pick the tenants up.
    std::vector<TenantSpec> tenants;
    tenants.push_back(
        makeTenant("A", 11, DeadlineClass::kInteractive, 10));
    tenants.push_back(
        makeTenant("B", 22, DeadlineClass::kStandard, 10));

    ServeConfig config;
    config.replicas = 2;
    config.quantum_s = 10.0;
    config.batch_max = 8;
    config.faults = mustParse(
        "kind=crash,replica=1,at-ms=40,dur-ms=20;"
        "kind=crash,replica=0,at-ms=100");

    auto report = ServeScheduler(config, tenants).run();
    ASSERT_TRUE(report.hasValue());
    EXPECT_EQ(report->recovery.crashes, 2u);
    EXPECT_EQ(report->recovery.tenants_shed, 0u);
    ASSERT_EQ(report->failovers.size(), 2u);
    // Second failover lands everyone back on the revived replica 1.
    for (const FailoverMove &move : report->failovers[1].moves)
        EXPECT_EQ(move.to_replica, 1) << move.tenant;
    for (const TenantReport &tenant : report->tenants) {
        expectConservation(tenant);
        EXPECT_GT(tenant.stats.served, 0u) << tenant.name;
    }
}

TEST(ServeFailoverTest, CheckpointingAloneKeepsBytesIdentical)
{
    // Checkpoints must be pure bookkeeping: same bytes as solo,
    // only the virtual clock pays.
    std::vector<TenantSpec> tenants;
    TenantSpec tenant =
        makeTenant("A", 9, DeadlineClass::kStandard, 6);
    tenant.codec = makeIntraInterV1Config();
    tenant.frames = faultVideo(6, 9);
    tenants.push_back(tenant);

    ServeConfig plain;
    plain.quantum_s = 10.0;
    auto base = ServeScheduler(plain, tenants).run();
    ASSERT_TRUE(base.hasValue());

    ServeConfig checkpointed = plain;
    checkpointed.checkpoint_interval_frames = 2;
    checkpointed.checkpoint_cost_s = 0.001;
    auto ckpt = ServeScheduler(checkpointed, tenants).run();
    ASSERT_TRUE(ckpt.hasValue());

    const TenantReport &a = tenantNamed(*base, "A");
    const TenantReport &b = tenantNamed(*ckpt, "A");
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f)
        EXPECT_EQ(a.frames[f].bitstream, b.frames[f].bitstream);
    EXPECT_EQ(b.stats.checkpoints, 3u);
    EXPECT_GT(ckpt->fleet.makespan_s, base->fleet.makespan_s);
}

}  // namespace
}  // namespace serve
}  // namespace edgepcc
