/**
 * @file
 * Encode determinism: the bitstream must not depend on how many
 * worker threads execute the data-parallel kernels, nor on run-to-
 * run scheduling. This is what makes the golden-bitstream suite
 * meaningful and the device model reproducible — if bytes drifted
 * with thread count, every CI machine would need its own goldens.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "edgepcc/core/codec_config.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace {

std::vector<VoxelCloud>
testFrames(int count)
{
    VideoSpec spec;
    spec.name = "determinism";
    spec.seed = 77;
    spec.target_points = 3000;
    spec.num_frames = count;
    const SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    for (int i = 0; i < count; ++i)
        frames.push_back(video.frame(i));
    return frames;
}

/** Encodes all frames with a fixed-size global pool. */
std::vector<std::vector<std::uint8_t>>
encodeWithThreads(const CodecConfig &config,
                  const std::vector<VoxelCloud> &frames,
                  std::size_t num_threads)
{
    ScopedGlobalPool pool(num_threads);
    VideoEncoder encoder(config);
    std::vector<std::vector<std::uint8_t>> bitstreams;
    for (const VoxelCloud &frame : frames) {
        auto encoded = encoder.encode(frame);
        EXPECT_TRUE(encoded.hasValue());
        if (!encoded)
            return {};
        bitstreams.push_back(std::move(encoded->bitstream));
    }
    return bitstreams;
}

class DeterminismTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static CodecConfig
    config()
    {
        const std::string which = GetParam();
        if (which == "intra")
            return makeIntraOnlyConfig();
        if (which == "inter-v1")
            return makeIntraInterV1Config();
        return makeCwipcLikeConfig();
    }
};

TEST_P(DeterminismTest, BitstreamIndependentOfThreadCount)
{
    const auto frames = testFrames(3);
    // 0 = inline execution (the fully serial reference), 7 = an odd
    // worker count that misaligns with typical chunk divisions.
    const auto serial = encodeWithThreads(config(), frames, 0);
    const auto threaded = encodeWithThreads(config(), frames, 7);
    ASSERT_EQ(serial.size(), frames.size());
    ASSERT_EQ(threaded.size(), frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f)
        EXPECT_EQ(serial[f], threaded[f]) << "frame " << f;
}

TEST_P(DeterminismTest, BitstreamStableAcrossRuns)
{
    const auto frames = testFrames(3);
    const auto first = encodeWithThreads(config(), frames, 4);
    const auto second = encodeWithThreads(config(), frames, 4);
    ASSERT_EQ(first.size(), frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f)
        EXPECT_EQ(first[f], second[f]) << "frame " << f;
}

INSTANTIATE_TEST_SUITE_P(Configs, DeterminismTest,
                         ::testing::Values("intra", "inter-v1",
                                           "cwipc"),
                         [](const auto &suite_info) {
                             std::string name = suite_info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(GlobalPoolOverride, RestoresDefaultOnScopeExit)
{
    ThreadPool &original = ThreadPool::global();
    {
        ScopedGlobalPool scoped(2);
        EXPECT_EQ(&ThreadPool::global(), &scoped.pool());
        EXPECT_EQ(ThreadPool::global().numThreads(), 2u);
    }
    EXPECT_EQ(&ThreadPool::global(), &original);
}

}  // namespace
}  // namespace edgepcc
