// Control case: correctly guarded access must compile cleanly under
// -Werror=thread-safety. If this file fails, the harness flags the
// toolchain (or sync.h) as broken rather than any real violation.
// Driven by tests/compile_fail/CMakeLists.txt via try_compile.
#include "edgepcc/common/sync.h"

namespace {

class Counter
{
  public:
    int
    read() const
    {
        edgepcc::MutexLock lock(mutex_);
        return value_;
    }

    void
    bump()
    {
        edgepcc::MutexLock lock(mutex_);
        bumpLocked();
    }

  private:
    void bumpLocked() EDGEPCC_REQUIRES(mutex_) { ++value_; }

    mutable edgepcc::Mutex mutex_;
    int value_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return counter.read();
}
