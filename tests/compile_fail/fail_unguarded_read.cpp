// Compile-fail case: reading an EDGEPCC_GUARDED_BY field without
// holding its mutex must be rejected by -Werror=thread-safety.
// Driven by tests/compile_fail/CMakeLists.txt via try_compile; this
// file is never part of any build target.
#include "edgepcc/common/sync.h"

namespace {

class Counter
{
  public:
    int
    read() const
    {
        return value_;  // BAD: mutex_ not held
    }

  private:
    mutable edgepcc::Mutex mutex_;
    int value_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Counter counter;
    return counter.read();
}
