// Compile-fail case: calling an EDGEPCC_REQUIRES(mutex) helper
// without holding the mutex must be rejected by
// -Werror=thread-safety. Driven by tests/compile_fail/CMakeLists.txt
// via try_compile; this file is never part of any build target.
#include "edgepcc/common/sync.h"

namespace {

class Counter
{
  public:
    void
    bump()
    {
        bumpLocked();  // BAD: mutex_ not held
    }

  private:
    void bumpLocked() EDGEPCC_REQUIRES(mutex_) { ++value_; }

    edgepcc::Mutex mutex_;
    int value_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return 0;
}
