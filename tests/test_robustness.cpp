/**
 * @file
 * Failure-injection tests: randomized corruption of valid
 * bitstreams must never crash, hang or read out of bounds — every
 * decode either fails cleanly or returns a structurally valid
 * cloud. Also the resource-exhaustion contract: the public codec
 * entry points return RESOURCE_EXHAUSTED (never throw) when an
 * allocation fails mid-encode/decode, and degenerate inputs (empty
 * or all-duplicate clouds) round-trip or fail cleanly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "edgepcc/common/rng.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/platform/arena.h"
#include "edgepcc/stream/stream_file.h"

// -----------------------------------------------------------------
// Allocation-failure injection
//
// Global operator new replacement with a thread-local single-shot
// countdown: the N-th allocation on the *armed thread* throws
// std::bad_alloc, then the hook disarms itself (so the error path —
// Status strings and all — allocates freely). Worker threads of the
// codec's thread pool are never armed; only the caller-thread
// allocation stream is attacked, which is exactly the path the
// Status-returning wrappers must cover.
// -----------------------------------------------------------------

namespace {
/** Allocations left before the injected failure; -1 = disarmed. */
thread_local std::int64_t g_alloc_countdown = -1;

struct ScopedAllocFailure {
    explicit ScopedAllocFailure(std::int64_t after)
    {
        g_alloc_countdown = after;
    }
    ~ScopedAllocFailure() { g_alloc_countdown = -1; }
    /** True when the injected failure actually fired. */
    bool
    fired() const
    {
        return g_alloc_countdown == -1;
    }
};

void *
countdownAlloc(std::size_t size)
{
    if (g_alloc_countdown >= 0) {
        if (g_alloc_countdown == 0) {
            g_alloc_countdown = -1;  // single shot, then disarm
            throw std::bad_alloc();
        }
        --g_alloc_countdown;
    }
    if (size == 0)
        size = 1;
    void *ptr = std::malloc(size);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}
}  // namespace

void *
operator new(std::size_t size)
{
    return countdownAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countdownAlloc(size);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace edgepcc {
namespace {

class RobustnessTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        VideoSpec spec;
        spec.name = "robust";
        spec.seed = 4321;
        spec.target_points = 8000;
        video_ = new SyntheticHumanVideo(spec);
        frames_.push_back(video_->frame(0));
        frames_.push_back(video_->frame(1));
    }

    static void
    TearDownTestSuite()
    {
        delete video_;
        video_ = nullptr;
        frames_.clear();
    }

    /** Decodes a (possibly corrupted) stream; on success the cloud
     *  must satisfy its invariants. */
    static void
    decodeMustNotMisbehave(VideoDecoder &decoder,
                           const std::vector<std::uint8_t> &stream)
    {
        auto decoded = decoder.decode(stream);
        if (decoded.hasValue()) {
            EXPECT_TRUE(decoded->cloud.checkInvariants());
        }
    }

    static SyntheticHumanVideo *video_;
    static std::vector<VoxelCloud> frames_;
};

SyntheticHumanVideo *RobustnessTest::video_ = nullptr;
std::vector<VoxelCloud> RobustnessTest::frames_;

TEST_F(RobustnessTest, SingleByteFlipsNeverCrash)
{
    for (const CodecConfig &config : allPaperConfigs()) {
        VideoEncoder encoder(config);
        auto encoded = encoder.encode(frames_[0]);
        ASSERT_TRUE(encoded.hasValue()) << config.name;
        Rng rng(1);
        for (int trial = 0; trial < 60; ++trial) {
            auto corrupted = encoded->bitstream;
            const std::size_t pos =
                rng.bounded(corrupted.size());
            corrupted[pos] ^= static_cast<std::uint8_t>(
                1u << rng.bounded(8));
            VideoDecoder decoder;
            decodeMustNotMisbehave(decoder, corrupted);
        }
    }
}

TEST_F(RobustnessTest, TruncationsNeverCrash)
{
    for (const CodecConfig &config : allPaperConfigs()) {
        VideoEncoder encoder(config);
        auto encoded = encoder.encode(frames_[0]);
        ASSERT_TRUE(encoded.hasValue()) << config.name;
        for (const double fraction :
             {0.0, 0.05, 0.3, 0.5, 0.9, 0.999}) {
            auto truncated = encoded->bitstream;
            truncated.resize(static_cast<std::size_t>(
                static_cast<double>(truncated.size()) *
                fraction));
            VideoDecoder decoder;
            decodeMustNotMisbehave(decoder, truncated);
        }
    }
}

TEST_F(RobustnessTest, CorruptedPFrameNeverCrashes)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    auto i_frame = encoder.encode(frames_[0]);
    ASSERT_TRUE(i_frame.hasValue());
    auto p_frame = encoder.encode(frames_[1]);
    ASSERT_TRUE(p_frame.hasValue());

    Rng rng(2);
    for (int trial = 0; trial < 60; ++trial) {
        VideoDecoder decoder;
        ASSERT_TRUE(decoder.decode(i_frame->bitstream).hasValue());
        auto corrupted = p_frame->bitstream;
        const std::size_t pos = rng.bounded(corrupted.size());
        corrupted[pos] ^=
            static_cast<std::uint8_t>(1u << rng.bounded(8));
        decodeMustNotMisbehave(decoder, corrupted);
    }
}

TEST_F(RobustnessTest, RandomGarbageNeverCrashes)
{
    Rng rng(3);
    VideoDecoder decoder;
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> garbage(
            rng.bounded(4096) + 1);
        for (auto &byte : garbage)
            byte = static_cast<std::uint8_t>(rng.bounded(256));
        decodeMustNotMisbehave(decoder, garbage);
    }
}

TEST_F(RobustnessTest, ValidHeaderGarbagePayloadNeverCrashes)
{
    // Keep the container magic intact and scramble everything
    // after it, which stresses the per-codec payload parsers.
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frames_[0]);
    ASSERT_TRUE(encoded.hasValue());
    Rng rng(4);
    for (int trial = 0; trial < 40; ++trial) {
        auto corrupted = encoded->bitstream;
        for (std::size_t i = 8; i < corrupted.size(); ++i) {
            if (rng.uniform() < 0.1) {
                corrupted[i] = static_cast<std::uint8_t>(
                    rng.bounded(256));
            }
        }
        VideoDecoder decoder;
        decodeMustNotMisbehave(decoder, corrupted);
    }
}

TEST_F(RobustnessTest, SwappedFrameOrderIsRejectedOrSafe)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    auto i_frame = encoder.encode(frames_[0]);
    auto p_frame = encoder.encode(frames_[1]);
    ASSERT_TRUE(i_frame.hasValue());
    ASSERT_TRUE(p_frame.hasValue());
    // P before I must fail cleanly.
    VideoDecoder decoder;
    EXPECT_FALSE(decoder.decode(p_frame->bitstream).hasValue());
    // And the decoder must still work afterwards.
    EXPECT_TRUE(decoder.decode(i_frame->bitstream).hasValue());
    EXPECT_TRUE(decoder.decode(p_frame->bitstream).hasValue());
}

TEST_F(RobustnessTest, ReferenceFromDifferentVideoIsSafe)
{
    // Decode a P frame against a *wrong* reference (decoder state
    // from another stream with identical frame counts): must not
    // crash; output may be garbage but structurally valid.
    VideoEncoder encoder_a(makeIntraInterV1Config());
    auto ia = encoder_a.encode(frames_[0]);
    auto pa = encoder_a.encode(frames_[1]);
    ASSERT_TRUE(ia.hasValue());
    ASSERT_TRUE(pa.hasValue());

    VideoSpec other;
    other.name = "other";
    other.seed = 999;
    other.target_points = 8000;
    SyntheticHumanVideo other_video(other);
    VideoEncoder encoder_b(makeIntraInterV1Config());
    auto ib = encoder_b.encode(other_video.frame(0));
    ASSERT_TRUE(ib.hasValue());

    VideoDecoder decoder;
    ASSERT_TRUE(decoder.decode(ib->bitstream).hasValue());
    decodeMustNotMisbehave(decoder, pa->bitstream);
}

// -----------------------------------------------------------------
// Resource exhaustion: Status, not exceptions
// -----------------------------------------------------------------

TEST_F(RobustnessTest, EncodeReturnsStatusOnAllocFailure)
{
    for (const CodecConfig &config : allPaperConfigs()) {
        bool saw_exhausted = false;
        for (const std::int64_t after :
             {std::int64_t{0}, std::int64_t{1}, std::int64_t{7},
              std::int64_t{40}, std::int64_t{200},
              std::int64_t{1000}}) {
            VideoEncoder encoder(config);
            bool fired = false;
            auto encoded = [&] {
                ScopedAllocFailure arm(after);
                auto result = encoder.encode(frames_[0]);
                fired = arm.fired();
                return result;
            }();
            if (fired) {
                saw_exhausted = true;
                ASSERT_FALSE(encoded.hasValue())
                    << config.name << " after=" << after;
                EXPECT_EQ(encoded.status().code(),
                          StatusCode::kResourceExhausted)
                    << config.name << " after=" << after;
            } else {
                EXPECT_TRUE(encoded.hasValue())
                    << config.name << " after=" << after;
            }
        }
        EXPECT_TRUE(saw_exhausted) << config.name;

        // The encoder survives the failures: a fresh clean encode
        // still succeeds on the same instance path.
        VideoEncoder encoder(config);
        {
            ScopedAllocFailure arm(0);
            (void)encoder.encode(frames_[0]);
        }
        EXPECT_TRUE(encoder.encode(frames_[0]).hasValue())
            << config.name;
    }
}

TEST_F(RobustnessTest, DecodeReturnsStatusOnAllocFailure)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    auto i_frame = encoder.encode(frames_[0]);
    auto p_frame = encoder.encode(frames_[1]);
    ASSERT_TRUE(i_frame.hasValue());
    ASSERT_TRUE(p_frame.hasValue());

    bool saw_exhausted = false;
    for (const std::int64_t after :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{7},
          std::int64_t{40}, std::int64_t{200},
          std::int64_t{1000}}) {
        VideoDecoder decoder;
        bool fired = false;
        auto decoded = [&] {
            ScopedAllocFailure arm(after);
            auto result = decoder.decode(i_frame->bitstream);
            fired = arm.fired();
            return result;
        }();
        if (fired) {
            saw_exhausted = true;
            ASSERT_FALSE(decoded.hasValue()) << "after=" << after;
            EXPECT_EQ(decoded.status().code(),
                      StatusCode::kResourceExhausted)
                << "after=" << after;
            // The decoder is still usable after the failure.
            EXPECT_TRUE(
                decoder.decode(i_frame->bitstream).hasValue());
        } else {
            EXPECT_TRUE(decoded.hasValue()) << "after=" << after;
        }
    }
    EXPECT_TRUE(saw_exhausted);
}

TEST_F(RobustnessTest, DecodePromotedReturnsStatusOnAllocFailure)
{
    VideoEncoder encoder(makeIntraInterV1Config());
    auto i_frame = encoder.encode(frames_[0]);
    auto p_frame = encoder.encode(frames_[1]);
    ASSERT_TRUE(i_frame.hasValue());
    ASSERT_TRUE(p_frame.hasValue());

    bool saw_exhausted = false;
    for (const std::int64_t after :
         {std::int64_t{0}, std::int64_t{7}, std::int64_t{40},
          std::int64_t{200}, std::int64_t{1000}}) {
        VideoDecoder decoder;  // no reference: promoted path
        bool fired = false;
        bool concealed = false;
        auto promoted = [&] {
            ScopedAllocFailure arm(after);
            auto result = decoder.decodePromoted(
                p_frame->bitstream, &frames_[0], &concealed);
            fired = arm.fired();
            return result;
        }();
        if (fired) {
            saw_exhausted = true;
            ASSERT_FALSE(promoted.hasValue()) << "after=" << after;
            EXPECT_EQ(promoted.status().code(),
                      StatusCode::kResourceExhausted)
                << "after=" << after;
        } else {
            EXPECT_TRUE(promoted.hasValue()) << "after=" << after;
        }
    }
    EXPECT_TRUE(saw_exhausted);
}

// -----------------------------------------------------------------
// Degenerate inputs
// -----------------------------------------------------------------

TEST_F(RobustnessTest, EmptyCloudReturnsCleanlyEverywhere)
{
    const VoxelCloud empty(frames_[0].gridBits());
    for (const CodecConfig &config : allPaperConfigs()) {
        VideoEncoder encoder(config);
        auto encoded = encoder.encode(empty);
        if (!encoded.hasValue()) {
            // A clean rejection is acceptable — but it must be a
            // Status, which reaching this line proves.
            continue;
        }
        VideoDecoder decoder;
        auto decoded = decoder.decode(encoded->bitstream);
        if (decoded.hasValue()) {
            EXPECT_TRUE(decoded->cloud.checkInvariants())
                << config.name;
            EXPECT_EQ(decoded->cloud.size(), 0u) << config.name;
        }
    }
}

TEST_F(RobustnessTest, AllDuplicatePointsRoundTrip)
{
    // 64 copies of one voxel: the degenerate cloud every dedup,
    // segmentation and block-match path must survive.
    VoxelCloud dupes(frames_[0].gridBits());
    for (int i = 0; i < 64; ++i)
        dupes.add(100, 200, 50, 10, 20, 30);

    for (const CodecConfig &config : allPaperConfigs()) {
        VideoEncoder encoder(config);
        auto encoded = encoder.encode(dupes);
        ASSERT_TRUE(encoded.hasValue()) << config.name;
        VideoDecoder decoder;
        auto decoded = decoder.decode(encoded->bitstream);
        ASSERT_TRUE(decoded.hasValue()) << config.name;
        EXPECT_TRUE(decoded->cloud.checkInvariants())
            << config.name;
        ASSERT_EQ(decoded->cloud.size(), 1u) << config.name;
        EXPECT_EQ(decoded->cloud.x()[0], 100) << config.name;
        EXPECT_EQ(decoded->cloud.y()[0], 200) << config.name;
        EXPECT_EQ(decoded->cloud.z()[0], 50) << config.name;
    }
}

// -----------------------------------------------------------------
// FrameArena: growth failure + steady-state reuse
// -----------------------------------------------------------------

TEST_F(RobustnessTest, ArenaGrowthFailurePropagatesAsBadAlloc)
{
    FrameArena arena(1u << 12);
    {
        ScopedAllocFailure arm(0);
        EXPECT_THROW(arena.allocate(64), std::bad_alloc);
        EXPECT_TRUE(arm.fired());
    }
    // The failed growth must leave the arena consistent: the next
    // attempt (heap healthy again) succeeds.
    EXPECT_NE(arena.allocate(64), nullptr);
}

TEST_F(RobustnessTest, ArenaSteadyStateReusesWarmBlocks)
{
    FrameArena arena;
    // Warm-up frame: carve a realistic mix of scratch sizes,
    // including one spilling past the first block.
    for (int i = 0; i < 8; ++i)
        arena.allocateArray<std::uint64_t>(40000);
    const std::size_t reserved = arena.bytesReserved();
    const std::size_t blocks = arena.upstreamBlockCount();
    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    {
        // Replay the same carve with the very next heap allocation
        // armed to fail: the warm blocks must satisfy it with zero
        // upstream traffic, or the countdown fires and throws.
        ScopedAllocFailure arm(0);
        for (int i = 0; i < 8; ++i)
            arena.allocateArray<std::uint64_t>(40000);
        EXPECT_FALSE(arm.fired());
    }
    EXPECT_EQ(arena.bytesReserved(), reserved);
    EXPECT_EQ(arena.upstreamBlockCount(), blocks);
}

TEST_F(RobustnessTest, ScopedFrameArenaRestoresPreviousBinding)
{
    EXPECT_EQ(currentFrameArena(), nullptr);
    FrameArena outer_arena;
    FrameArena inner_arena;
    {
        ScopedFrameArena outer(&outer_arena);
        EXPECT_EQ(currentFrameArena(), &outer_arena);
        {
            ScopedFrameArena inner(&inner_arena);
            EXPECT_EQ(currentFrameArena(), &inner_arena);
        }
        EXPECT_EQ(currentFrameArena(), &outer_arena);
    }
    EXPECT_EQ(currentFrameArena(), nullptr);
}

#ifdef EDGEPCC_CLI_BINARY
TEST_F(RobustnessTest, CliRejectsTruncatedStreamWithNonZeroExit)
{
    // End-to-end: a .epcv whose frame payload is cut short must
    // make `edgepcc_cli decode` print a diagnostic and exit
    // non-zero, not crash or write a bogus reconstruction.
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frames_[0]);
    ASSERT_TRUE(encoded.hasValue());

    auto truncated = encoded->bitstream;
    ASSERT_GT(truncated.size(), 16u);
    truncated.resize(truncated.size() / 3);

    const std::string dir = ::testing::TempDir();
    const std::string epcv = dir + "edgepcc_truncated.epcv";
    ASSERT_TRUE(writeStreamFile(epcv, {truncated}).isOk());

    const std::string command = std::string(EDGEPCC_CLI_BINARY) +
                                " decode " + epcv + " " + dir +
                                "edgepcc_truncated_out 2>/dev/null";
    const int exit_code = std::system(command.c_str());
    EXPECT_NE(exit_code, 0);

    // Sanity for the harness itself: a pristine stream decodes
    // with exit code 0 through the same path.
    const std::string good = dir + "edgepcc_good.epcv";
    ASSERT_TRUE(
        writeStreamFile(good, {encoded->bitstream}).isOk());
    const std::string good_command =
        std::string(EDGEPCC_CLI_BINARY) + " decode " + good +
        " " + dir + "edgepcc_good_out >/dev/null 2>&1";
    EXPECT_EQ(std::system(good_command.c_str()), 0);
}
#endif  // EDGEPCC_CLI_BINARY

}  // namespace
}  // namespace edgepcc
