/**
 * @file
 * Property-style round-trip tests: seeded random clouds pushed
 * through the full VideoEncoder/VideoDecoder under a grid of
 * configurations, asserting the codec's actual contracts —
 * lossless geometry (when configured losslessly), exact attributes
 * at quant_step 1, and quantization-bounded attribute error
 * otherwise. Complements the golden-bitstream suite: goldens pin
 * exact bytes on one workload, these pin semantics on many.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "edgepcc/core/codec_config.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {
namespace {

using VoxelKey = std::tuple<std::uint16_t, std::uint16_t, std::uint16_t>;

/** Color as a pure function of position, so merging duplicate
 *  voxels (the geometry stage keeps the first point's color) can
 *  never change the attribute associated with a coordinate. */
Color
colorAt(std::uint16_t x, std::uint16_t y, std::uint16_t z)
{
    return Color{static_cast<std::uint8_t>((x * 7 + 13) & 0xFF),
                 static_cast<std::uint8_t>((y * 11 + 41) & 0xFF),
                 static_cast<std::uint8_t>((x ^ y ^ z) & 0xFF)};
}

/**
 * Seeded random cloud on a 2^grid_bits grid. Coordinates are drawn
 * from a coarse lattice of `span` distinct values per axis, which
 * makes duplicate positions likely (exercising the dedupe path)
 * while keeping the cloud spatially coherent.
 */
VoxelCloud
randomCloud(std::uint32_t seed, std::size_t n, int grid_bits,
            std::uint32_t span)
{
    std::mt19937 rng(seed);
    const std::uint32_t grid = 1u << grid_bits;
    std::uniform_int_distribution<std::uint32_t> lattice(0, span - 1);
    VoxelCloud cloud(grid_bits);
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto x = static_cast<std::uint16_t>(
            lattice(rng) * (grid - 1) / (span - 1));
        const auto y = static_cast<std::uint16_t>(
            lattice(rng) * (grid - 1) / (span - 1));
        const auto z = static_cast<std::uint16_t>(
            lattice(rng) * (grid - 1) / (span - 1));
        const Color c = colorAt(x, y, z);
        cloud.add(x, y, z, c.r, c.g, c.b);
    }
    return cloud;
}

/** Shifts every color channel by `drift` (saturating), simulating
 *  the small temporal attribute change between video frames. */
VoxelCloud
driftColors(const VoxelCloud &cloud, int drift)
{
    VoxelCloud out = cloud;
    auto shift = [drift](std::uint8_t v) {
        const int shifted = std::clamp(v + drift, 0, 255);
        return static_cast<std::uint8_t>(shifted);
    };
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.mutableR()[i] = shift(out.r()[i]);
        out.mutableG()[i] = shift(out.g()[i]);
        out.mutableB()[i] = shift(out.b()[i]);
    }
    return out;
}

std::map<VoxelKey, Color>
voxelMap(const VoxelCloud &cloud)
{
    std::map<VoxelKey, Color> map;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        map.emplace(VoxelKey{cloud.x()[i], cloud.y()[i], cloud.z()[i]},
                    cloud.color(i));
    return map;
}

/**
 * Asserts `decoded` covers exactly the voxel set of `original`
 * (geometry lossless up to duplicate merging) with per-channel
 * attribute error at most `max_error`.
 */
void
expectRoundTrip(const VoxelCloud &original, const VoxelCloud &decoded,
                int max_error, const char *what)
{
    const auto want = voxelMap(original);
    const auto got = voxelMap(decoded);
    ASSERT_EQ(got.size(), want.size()) << what;
    int worst = 0;
    for (const auto &[key, color] : want) {
        const auto it = got.find(key);
        ASSERT_NE(it, got.end())
            << what << ": voxel (" << std::get<0>(key) << ","
            << std::get<1>(key) << "," << std::get<2>(key)
            << ") missing from decoded cloud";
        const Color d = it->second;
        worst = std::max({worst, std::abs(int(d.r) - int(color.r)),
                          std::abs(int(d.g) - int(color.g)),
                          std::abs(int(d.b) - int(color.b))});
    }
    EXPECT_LE(worst, max_error) << what;
}

/** Lossless-geometry variant of the paper's intra design: parallel
 *  Morton octree without the (lossy) tight-bbox requantization. */
CodecConfig
intraConfig(std::uint32_t quant_step, bool two_layer)
{
    CodecConfig config = makeIntraOnlyConfig();
    config.geometry.tight_bbox = false;
    config.segment.quant_step = quant_step;
    config.segment.two_layer = two_layer;
    return config;
}

CodecConfig
interConfig(double reuse_threshold, std::uint32_t quant_step)
{
    CodecConfig config = makeIntraInterV1Config();
    config.geometry.tight_bbox = false;
    config.block_match.reuse_threshold = reuse_threshold;
    config.segment.quant_step = quant_step;
    config.block_match.delta_codec = config.segment;
    return config;
}

/** Layer-1 residuals are divided by quant_step with round-to-
 *  nearest, so reconstruction error is at most ceil(q / 2). */
int
quantBound(std::uint32_t quant_step)
{
    return static_cast<int>((quant_step + 1) / 2);
}

TEST(RoundTripProperty, IntraAcrossSeedsAndQuantSteps)
{
    for (const std::uint32_t quant_step : {1u, 4u}) {
        for (const bool two_layer : {false, true}) {
            for (const std::uint32_t seed : {1u, 2u, 3u}) {
                const VoxelCloud cloud =
                    randomCloud(seed, 4000, 10, 64);
                VideoEncoder encoder(
                    intraConfig(quant_step, two_layer));
                VideoDecoder decoder;
                auto encoded = encoder.encode(cloud);
                ASSERT_TRUE(encoded.hasValue());
                auto decoded = decoder.decode(encoded->bitstream);
                ASSERT_TRUE(decoded.hasValue());
                const std::string what =
                    "seed " + std::to_string(seed) + " q" +
                    std::to_string(quant_step) +
                    (two_layer ? " 2-layer" : " 1-layer");
                expectRoundTrip(cloud, decoded->cloud,
                                quantBound(quant_step),
                                what.c_str());
            }
        }
    }
}

TEST(RoundTripProperty, IntraExactAtUnitQuantStep)
{
    // quant_step 1 makes layer 1 lossless: the decoded colors must
    // match bit-exactly, not just within a bound.
    const VoxelCloud cloud = randomCloud(7, 5000, 10, 48);
    VideoEncoder encoder(intraConfig(1, true));
    VideoDecoder decoder;
    auto encoded = encoder.encode(cloud);
    ASSERT_TRUE(encoded.hasValue());
    auto decoded = decoder.decode(encoded->bitstream);
    ASSERT_TRUE(decoded.hasValue());
    expectRoundTrip(cloud, decoded->cloud, 0, "exact intra");
}

TEST(RoundTripProperty, InterBoundedErrorAcrossThresholds)
{
    // Paper thresholds: 15.0/point = V1 (300 per ~20-pt block),
    // 60.0/point = V2 (1200). Frames share geometry and drift only
    // in color, so every decoded voxel has a unique true color.
    // Reused blocks return the reference reconstruction (off by
    // quant bound + drift); delta blocks re-quantize (off by quant
    // bound), so quantBound + drift bounds both paths.
    constexpr int kDrift = 3;
    for (const double threshold : {15.0, 60.0}) {
        for (const std::uint32_t quant_step : {1u, 4u}) {
            const VoxelCloud intra_frame =
                randomCloud(11, 4000, 10, 64);
            const VoxelCloud inter_frame =
                driftColors(intra_frame, kDrift);
            VideoEncoder encoder(
                interConfig(threshold, quant_step));
            VideoDecoder decoder;

            auto encoded_i = encoder.encode(intra_frame);
            ASSERT_TRUE(encoded_i.hasValue());
            ASSERT_EQ(encoded_i->stats.type, Frame::Type::kIntra);
            auto decoded_i = decoder.decode(encoded_i->bitstream);
            ASSERT_TRUE(decoded_i.hasValue());
            expectRoundTrip(intra_frame, decoded_i->cloud,
                            quantBound(quant_step), "I frame");

            auto encoded_p = encoder.encode(inter_frame);
            ASSERT_TRUE(encoded_p.hasValue());
            ASSERT_EQ(encoded_p->stats.type,
                      Frame::Type::kPredicted);
            auto decoded_p = decoder.decode(encoded_p->bitstream);
            ASSERT_TRUE(decoded_p.hasValue());
            const std::string what =
                "P frame, threshold " + std::to_string(threshold) +
                ", q" + std::to_string(quant_step);
            expectRoundTrip(inter_frame, decoded_p->cloud,
                            quantBound(quant_step) + kDrift,
                            what.c_str());
        }
    }
}

TEST(RoundTripProperty, InterIdenticalFramesStayWithinQuantBound)
{
    // A static scene: the P frame equals the I frame, so the
    // reference reconstruction is already within the quant bound of
    // the truth and reuse cannot add error on top.
    const VoxelCloud frame = randomCloud(23, 4000, 10, 64);
    VideoEncoder encoder(interConfig(15.0, 4));
    VideoDecoder decoder;
    for (int f = 0; f < 2; ++f) {
        auto encoded = encoder.encode(frame);
        ASSERT_TRUE(encoded.hasValue());
        auto decoded = decoder.decode(encoded->bitstream);
        ASSERT_TRUE(decoded.hasValue());
        expectRoundTrip(frame, decoded->cloud, quantBound(4),
                        f == 0 ? "I frame" : "static P frame");
    }
}

TEST(RoundTripProperty, SmallCloudsSurviveEveryConfig)
{
    // Degenerate sizes stress segment layout math (segments larger
    // than the cloud, single-point segments).
    for (const std::size_t n : {1u, 2u, 17u}) {
        const VoxelCloud cloud = randomCloud(31, n, 10, 8);
        for (const auto &config :
             {intraConfig(1, true), intraConfig(4, false)}) {
            VideoEncoder encoder(config);
            VideoDecoder decoder;
            auto encoded = encoder.encode(cloud);
            ASSERT_TRUE(encoded.hasValue()) << "n=" << n;
            auto decoded = decoder.decode(encoded->bitstream);
            ASSERT_TRUE(decoded.hasValue()) << "n=" << n;
            expectRoundTrip(cloud, decoded->cloud,
                            quantBound(config.segment.quant_step),
                            "small cloud");
        }
    }
}

}  // namespace
}  // namespace edgepcc
