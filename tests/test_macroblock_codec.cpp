/** @file Tests for the CWIPC-like macro-block inter-frame codec. */

#include "edgepcc/interframe/macroblock_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "edgepcc/common/rng.h"
#include "edgepcc/morton/morton.h"

namespace edgepcc {
namespace {

/** Morton-sorted cloud clustered on a surface patch. */
VoxelCloud
surfaceCloud(std::uint64_t seed, std::size_t n, int bits,
             int shift_x = 0, int color_shift = 0)
{
    Rng rng(seed);
    std::set<std::uint64_t> codes;
    const std::uint32_t grid = 1u << bits;
    while (codes.size() < n) {
        const auto x = static_cast<std::uint32_t>(
            (rng.bounded(grid / 2) + shift_x) % grid);
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(grid / 2));
        const std::uint32_t z = (x * 2 + y) % grid;
        codes.insert(mortonEncode(x, y, z));
    }
    VoxelCloud cloud(bits);
    for (const std::uint64_t code : codes) {
        const MortonXyz xyz = mortonDecode(code);
        const auto clampc = [](int v) {
            return static_cast<std::uint8_t>(
                std::clamp(v, 0, 255));
        };
        cloud.add(static_cast<std::uint16_t>(xyz.x),
                  static_cast<std::uint16_t>(xyz.y),
                  static_cast<std::uint16_t>(xyz.z),
                  clampc(50 + color_shift +
                         static_cast<int>(xyz.x * 100 / grid)),
                  clampc(80 + color_shift +
                         static_cast<int>(xyz.y * 90 / grid)),
                  clampc(30 + color_shift +
                         static_cast<int>(xyz.z * 110 / grid)));
    }
    return cloud;
}

TEST(RawEntropyAttr, RoundtripIsLossless)
{
    const VoxelCloud cloud = surfaceCloud(110, 3000, 7);
    const auto payload = encodeRawEntropyAttr(cloud);
    VoxelCloud decoded = cloud;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        decoded.setColor(i, Color{});
    ASSERT_TRUE(decodeRawEntropyAttrInto(payload, decoded).isOk());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        EXPECT_EQ(decoded.color(i), cloud.color(i));
}

TEST(RawEntropyAttr, SmoothContentCompresses)
{
    const VoxelCloud cloud = surfaceCloud(111, 20000, 9);
    const auto payload = encodeRawEntropyAttr(cloud);
    EXPECT_LT(payload.size(), cloud.size() * 3);
}

TEST(RawEntropyAttr, SizeMismatchRejected)
{
    const VoxelCloud cloud = surfaceCloud(112, 500, 7);
    const auto payload = encodeRawEntropyAttr(cloud);
    VoxelCloud wrong = surfaceCloud(113, 400, 7);
    EXPECT_FALSE(decodeRawEntropyAttrInto(payload, wrong).isOk());
}

TEST(MacroBlock, RejectsBadConfig)
{
    const VoxelCloud cloud = surfaceCloud(114, 200, 7);
    MacroBlockConfig bad;
    bad.mb_bits = 0;
    EXPECT_FALSE(
        encodeMacroBlockAttr(cloud, cloud, bad).hasValue());
    bad.mb_bits = 7;  // >= grid bits
    EXPECT_FALSE(
        encodeMacroBlockAttr(cloud, cloud, bad).hasValue());
}

TEST(MacroBlock, StaticSceneReusesEverything)
{
    const VoxelCloud cloud = surfaceCloud(115, 4000, 8);
    MacroBlockConfig config;
    auto encoded = encodeMacroBlockAttr(cloud, cloud, config);
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_EQ(encoded->stats.matched_blocks,
              encoded->stats.p_blocks);
    EXPECT_EQ(encoded->stats.reused_blocks,
              encoded->stats.p_blocks);

    VoxelCloud decoded = cloud;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        decoded.setColor(i, Color{});
    ASSERT_TRUE(decodeMacroBlockAttrInto(encoded->payload, cloud,
                                         decoded)
                    .isOk());
    // Same geometry -> NN correspondence is the identity.
    for (std::size_t i = 0; i < decoded.size(); ++i)
        EXPECT_EQ(decoded.color(i), cloud.color(i));
}

TEST(MacroBlock, UnmatchedBlocksFallBackToRawAttrs)
{
    // Reference covers a different x-range: most P blocks have no
    // co-located I block and must be raw coded (lossless).
    const VoxelCloud p = surfaceCloud(116, 2000, 8, 0);
    const VoxelCloud i = surfaceCloud(117, 2000, 8, 100);
    MacroBlockConfig config;
    config.reuse_threshold = 0.0;  // disallow lossy reuse
    auto encoded = encodeMacroBlockAttr(p, i, config);
    ASSERT_TRUE(encoded.hasValue());
    EXPECT_EQ(encoded->stats.reused_blocks, 0u);
    VoxelCloud decoded = p;
    for (std::size_t k = 0; k < decoded.size(); ++k)
        decoded.setColor(k, Color{});
    ASSERT_TRUE(
        decodeMacroBlockAttrInto(encoded->payload, i, decoded)
            .isOk());
    for (std::size_t k = 0; k < decoded.size(); ++k)
        EXPECT_EQ(decoded.color(k), p.color(k));
}

TEST(MacroBlock, ThresholdZeroStillDecodes)
{
    const VoxelCloud p = surfaceCloud(118, 1500, 8, 0, 5);
    const VoxelCloud i = surfaceCloud(118, 1500, 8, 0, 0);
    MacroBlockConfig config;
    config.reuse_threshold = 0.0;
    auto encoded = encodeMacroBlockAttr(p, i, config);
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud decoded = p;
    ASSERT_TRUE(
        decodeMacroBlockAttrInto(encoded->payload, i, decoded)
            .isOk());
    for (std::size_t k = 0; k < decoded.size(); ++k)
        EXPECT_EQ(decoded.color(k), p.color(k));
}

TEST(MacroBlock, HighThresholdReusesMore)
{
    const VoxelCloud i = surfaceCloud(119, 3000, 8, 0, 0);
    const VoxelCloud p = surfaceCloud(119, 3000, 8, 0, 6);
    MacroBlockConfig strict;
    strict.reuse_threshold = 1.0;
    MacroBlockConfig loose;
    loose.reuse_threshold = 500.0;
    auto a = encodeMacroBlockAttr(p, i, strict);
    auto b = encodeMacroBlockAttr(p, i, loose);
    ASSERT_TRUE(a.hasValue());
    ASSERT_TRUE(b.hasValue());
    EXPECT_LE(a->stats.reused_blocks, b->stats.reused_blocks);
    EXPECT_LE(b->payload.size(), a->payload.size());
}

TEST(MacroBlock, GeometryMismatchRejected)
{
    const VoxelCloud p = surfaceCloud(120, 1000, 8);
    auto encoded =
        encodeMacroBlockAttr(p, p, MacroBlockConfig{});
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud wrong = surfaceCloud(121, 999, 8);
    EXPECT_FALSE(
        decodeMacroBlockAttrInto(encoded->payload, p, wrong)
            .isOk());
}

TEST(MacroBlock, CorruptPayloadRejected)
{
    const VoxelCloud p = surfaceCloud(122, 800, 8);
    auto encoded =
        encodeMacroBlockAttr(p, p, MacroBlockConfig{});
    ASSERT_TRUE(encoded.hasValue());
    auto bad = encoded->payload;
    bad[0] = '?';
    VoxelCloud decoded = p;
    EXPECT_FALSE(
        decodeMacroBlockAttrInto(bad, p, decoded).isOk());
    bad = encoded->payload;
    bad.resize(bad.size() / 2);
    EXPECT_FALSE(
        decodeMacroBlockAttrInto(bad, p, decoded).isOk());
}

TEST(MacroBlock, RecordsSearchAndIcpKernels)
{
    const VoxelCloud p = surfaceCloud(123, 1200, 8);
    WorkRecorder recorder;
    auto encoded = encodeMacroBlockAttr(p, p, MacroBlockConfig{},
                                        &recorder);
    ASSERT_TRUE(encoded.hasValue());
    const auto profile = recorder.takeProfile();
    std::set<std::string> kernel_names;
    for (const auto &stage : profile.stages) {
        for (const auto &kernel : stage.kernels)
            kernel_names.insert(kernel.name);
    }
    EXPECT_TRUE(kernel_names.count("mb.tree_build"));
    EXPECT_TRUE(kernel_names.count("mb.tree_search"));
    EXPECT_TRUE(kernel_names.count("mb.icp"));
}

/** Sweep over macro-block sizes. */
class MacroBlockSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MacroBlockSweep, RoundtripAcrossBlockSizes)
{
    const int mb_bits = GetParam();
    const VoxelCloud p = surfaceCloud(
        130 + static_cast<std::uint64_t>(mb_bits), 2000, 8, 0, 3);
    const VoxelCloud i = surfaceCloud(
        130 + static_cast<std::uint64_t>(mb_bits), 2000, 8, 0, 0);
    MacroBlockConfig config;
    config.mb_bits = mb_bits;
    config.reuse_threshold = 0.0;  // lossless path
    auto encoded = encodeMacroBlockAttr(p, i, config);
    ASSERT_TRUE(encoded.hasValue());
    VoxelCloud decoded = p;
    ASSERT_TRUE(
        decodeMacroBlockAttrInto(encoded->payload, i, decoded)
            .isOk());
    for (std::size_t k = 0; k < decoded.size(); ++k)
        EXPECT_EQ(decoded.color(k), p.color(k));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, MacroBlockSweep,
                         ::testing::Values(2, 3, 4, 5, 6));

}  // namespace
}  // namespace edgepcc
