/**
 * @file
 * Loss-resilient streaming session over the chunked transport.
 *
 * Two layers:
 *
 *  - StreamReceiver: decoder-side resilience. Ingests (possibly
 *    damaged) wire bytes, reassembles chunks by frame id and slice
 *    index, reconstructs single lost chunks per FEC group from XOR
 *    parity, and runs a degradation ladder instead of aborting the
 *    stream:
 *      ok        - all slices intact, decoded normally
 *      resynced  - an intact I frame re-anchored the stream after
 *                  preceding damage
 *      concealed - frame degraded but presentable: a missing frame
 *                  frozen from the last good frame, or a P frame
 *                  whose I reference was lost decoded
 *                  geometry-promoted with borrowed attributes
 *      skipped   - nothing presentable (loss before any good frame)
 *
 *  - StreamSession: the closed loop. Encodes frames, splits each
 *    payload into MTU-sized slices, groups data chunks into
 *    XOR-parity FEC groups, ships everything through a
 *    fault-injection LossyChannel, answers receiver NACKs with
 *    bounded exponential-backoff retransmissions of the missing
 *    slices only, and feeds delivery outcomes to
 *    AdaptiveGopController so sustained loss shortens the GOP and an
 *    unrecovered loss forces a keyframe.
 *
 * Everything is deterministic given (codec config, session config,
 * input frames): the channel is seeded and no wall-clock time is
 * consulted (backoff latency is modelled, not slept).
 */

#ifndef EDGEPCC_STREAM_STREAM_SESSION_H
#define EDGEPCC_STREAM_STREAM_SESSION_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "edgepcc/common/retry.h"
#include "edgepcc/common/status.h"
#include "edgepcc/common/sync.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/lossy_channel.h"
#include "edgepcc/stream/overload_controller.h"
#include "edgepcc/stream/rate_controller.h"
#include "edgepcc/stream/redundancy_controller.h"

namespace edgepcc {

/** Per-frame result of the degradation ladder. Ignoring it hides
 *  concealed/skipped frames, so returns of this type must be read. */
enum class [[nodiscard]] FrameOutcome : std::uint8_t {
    kOk = 0,
    kResynced = 1,
    kConcealed = 2,
    kSkipped = 3,
};

const char *frameOutcomeName(FrameOutcome outcome);

/** One decoded (or degraded) frame out of the session. */
struct SessionFrame {
    std::uint32_t frame_id = 0;
    Frame::Type type = Frame::Type::kIntra;
    FrameOutcome outcome = FrameOutcome::kSkipped;
    /** Every slice arrived intact (after FEC + retransmissions). */
    bool delivered = false;
    /** Chunks resent for this frame (slice granularity). */
    int retransmits = 0;
    /** NACK round-trips spent on this frame. */
    int nack_rounds = 0;
    /** Encoded bitstream size (the frame payload). */
    std::uint64_t payload_bytes = 0;
    /** Bytes put on the wire for this frame: headers, slices,
     *  parity chunks and retransmissions included. */
    std::uint64_t wire_bytes = 0;
    /** Modelled retransmission backoff spent on this frame. */
    double backoff_s = 0.0;
    /** Encoder work profile (drives the edge device model). */
    PipelineProfile encode_profile;
    /** Decoder work profile; empty when nothing was decoded
     *  (frozen or skipped frames). */
    PipelineProfile decode_profile;
    /** Decoded or concealed output; empty when skipped. */
    VoxelCloud cloud{10};
};

/** Receiver-side FEC accounting. Groups from which no chunk at all
 *  arrived are invisible to the receiver and not counted. */
struct FecStats {
    std::size_t groups = 0;           ///< groups seen at all
    std::size_t parity_received = 0;  ///< intact parity chunks
    std::size_t recovered_chunks = 0; ///< data chunks rebuilt
    /** Groups missing exactly one chunk (data or parity). */
    std::size_t single_loss_groups = 0;
    /** Single-loss groups whose data is complete without any
     *  retransmission (parity reconstruction, or the parity itself
     *  was the lost chunk). */
    std::size_t single_loss_recovered = 0;
    /** Groups still missing data after recovery (NACK fallback). */
    std::size_t unrecovered_groups = 0;
    /** Reed-Solomon groups missing two or more data chunks. */
    std::size_t multi_loss_groups = 0;
    /** Multi-loss groups fully rebuilt from parity rows — losses
     *  that XOR parity (or NACK-free delivery) could never cover. */
    std::size_t multi_loss_recovered = 0;

    /** Fraction of single-loss groups needing no retransmission;
     *  1.0 when no group lost exactly one chunk. */
    double singleLossRecoveredFraction() const;

    /** Fraction of multi-loss RS groups recovered without any
     *  retransmission; 1.0 when no group lost >= 2 chunks. */
    double multiLossRecoveredFraction() const;
};

/** Aggregate transport + ladder accounting. */
struct SessionStats {
    std::size_t chunks_sent = 0;  ///< incl. retransmissions+parity
    std::size_t parity_sent = 0;  ///< FEC parity chunks
    std::size_t frames_delivered = 0;
    std::size_t frames_lost = 0;  ///< undelivered after retries
    std::size_t nacks = 0;
    std::size_t retransmits = 0;
    std::size_t keyframes_forced = 0;
    std::size_t frames_ok = 0;
    std::size_t frames_resynced = 0;
    std::size_t frames_concealed = 0;
    std::size_t frames_skipped = 0;
    /** Total bytes put on the wire (headers + payloads + parity). */
    std::uint64_t wire_bytes = 0;
    /** Modelled retransmission backoff, seconds. */
    double backoff_s = 0.0;

    std::size_t
    totalFrames() const
    {
        return frames_ok + frames_resynced + frames_concealed +
               frames_skipped;
    }

    /** Fraction of frames that were presentable (not skipped). */
    double okOrConcealedFraction() const;
};

/** Full session output. */
struct SessionReport {
    std::vector<SessionFrame> frames;
    SessionStats stats;
    WireScanStats wire;
    FecStats fec;
    /** Deadline-ladder accounting; enabled == false (all zeros)
     *  when no deadline was configured. */
    OverloadStats overload;
};

/**
 * Decoder-side reassembly + degradation ladder.
 *
 * Thread-safe: ingest() may run on a network thread while the
 * session thread polls hasFrame()/hasSlice()/missingFrames(). All
 * reassembly state is guarded by one internal mutex (a receiver
 * handles one stream; cross-stream parallelism uses one receiver
 * per session). decodeAll() consumes the decoder state and is
 * called once, but is serialized like everything else.
 */
class StreamReceiver
{
  public:
    StreamReceiver() = default;

    /** Scans damaged wire bytes; slices are buffered per frame
     *  (first intact copy of each slice wins), parity chunks feed
     *  FEC groups, and any group reduced to a single missing data
     *  chunk is reconstructed immediately. */
    WireScanStats ingest(const std::vector<std::uint8_t> &wire);

    /** True once every slice of `frame_id` is buffered intact. */
    bool hasFrame(std::uint32_t frame_id) const;

    /** True once slice `slice_index` of `frame_id` is buffered. */
    bool hasSlice(std::uint32_t frame_id,
                  std::uint16_t slice_index) const;

    /** NACK list: frame ids in [0, expected_frames) with at least
     *  one slice still missing. */
    std::vector<std::uint32_t> missingFrames(
        std::uint32_t expected_frames) const;

    /**
     * Decodes frames [0, expected_frames) in order, applying the
     * degradation ladder. Never fails on channel damage: every
     * frame gets a FrameOutcome. Call once after ingest; the
     * decoder state is consumed.
     */
    std::vector<SessionFrame> decodeAll(
        std::uint32_t expected_frames);

    /** Cumulative scan stats over every ingest() call (copied out;
     *  a reference would escape the lock). */
    WireScanStats wireStats() const;

    /** FEC accounting over everything ingested so far. */
    FecStats fecStats() const;

  private:
    /** Per-frame slice reassembly buffer. */
    struct SliceBuffer {
        std::uint16_t slice_count = 0;  ///< 0 until a slice arrives
        Frame::Type type = Frame::Type::kIntra;
        std::uint32_t gop_id = 0;
        std::map<std::uint16_t, std::vector<std::uint8_t>> slices;

        bool
        complete() const
        {
            return slice_count != 0 &&
                   slices.size() == slice_count;
        }
    };

    /** One FEC group's receive state (XOR or Reed-Solomon; the
     *  scheme travels in the chunk flags). Recovered chunks are
     *  buffered as slices but never inserted into `data`, so
     *  `expected - data.size()` stays the channel's original loss
     *  count for accounting. */
    struct FecGroup {
        std::uint8_t expected = 0;  ///< data chunks in the group
        bool rs = false;  ///< kChunkFlagRsFec seen on a member
        bool parity_present = false;  ///< XOR parity arrived
        bool recovered = false;
        std::vector<std::uint8_t> parity;  ///< XOR parity payload
        /** RS parity payloads keyed by parity row index. */
        std::map<int, std::vector<std::uint8_t>> parity_rows;
        std::map<std::uint8_t, ParsedChunk> data;
    };

    void bufferSliceLocked(const ParsedChunk &chunk)
        EDGEPCC_REQUIRES(mutex_);
    void tryRecoverLocked(FecGroup &group)
        EDGEPCC_REQUIRES(mutex_);
    bool frameCompleteLocked(std::uint32_t frame_id) const
        EDGEPCC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::map<std::uint32_t, SliceBuffer> by_frame_
        EDGEPCC_GUARDED_BY(mutex_);
    std::map<std::uint16_t, FecGroup> groups_
        EDGEPCC_GUARDED_BY(mutex_);
    std::size_t recovered_chunks_ EDGEPCC_GUARDED_BY(mutex_) = 0;
    VideoDecoder decoder_ EDGEPCC_GUARDED_BY(mutex_);
    WireScanStats wire_ EDGEPCC_GUARDED_BY(mutex_);
};

/** Session knobs. */
struct SessionConfig {
    ChannelSpec channel{};
    /** NACK-driven retransmission rounds per frame; each round
     *  resends only the slices still missing. */
    int max_retransmits = 2;
    /** First retransmission backoff; doubles per round. Modelled
     *  latency only — nothing sleeps. */
    double backoff_ms = 8.0;
    /** Sub-frame slicing: max payload bytes per chunk. 0 disables
     *  slicing (one chunk per frame, v1 wire layout). */
    std::size_t mtu_payload = 0;
    /** XOR-parity FEC over data chunks (see chunk_stream.h).
     *  Recovery of any single lost chunk per group without a NACK
     *  round-trip; retransmission remains the fallback. */
    FecSpec fec{};
    /** Interleave depth D: consecutive slices are striped across D
     *  concurrently open FEC groups, so a drop burst of up to D
     *  consecutive chunks costs each group at most one chunk (all
     *  recoverable from parity) instead of wiping one group.
     *  <= 1 keeps the contiguous grouping (and its exact wire
     *  bytes). Requires fec.enabled. */
    int fec_interleave = 1;
    /** Drive the FEC group size from the EWMA loss estimate:
     *  sustained loss shrinks groups (more parity exactly when
     *  recovery matters), a clean channel grows them back.
     *  Requires fec.enabled; fec.group_size seeds the controller. */
    bool adaptive_fec = false;
    AdaptiveFecConfig fec_adaptive{};
    /** Adaptive keyframe insertion under sustained loss. */
    bool adaptive_gop = true;
    AdaptiveGopConfig gop{};
    /** Force an I frame right after an unrecovered loss, so damage
     *  cannot propagate past the next frame. */
    bool keyframe_on_loss = true;
    /**
     * Unified redundancy negotiation (redundancy_controller.h):
     * when enabled (requires fec.enabled with
     * FecScheme::kReedSolomon), one controller picks (RS k/m, GOP
     * length, reuse-threshold bitrate rung) against a single wire
     * budget and SUPERSEDES adaptive_fec (rejected at validation),
     * adaptive_gop and keyframe_on_loss — GOP shortening and forced
     * keyframes then fire only on genuinely unrecoverable loss.
     */
    RedundancyConfig redundancy{};
    /** Deadline-aware encode ladder + admission control + watchdog
     *  (see overload_controller.h). Disabled by default: the clean
     *  path stays byte-identical with overload.enabled == false. */
    OverloadConfig overload{};

    /**
     * The NACK loop's bounded exponential backoff expressed as the
     * shared RetryPolicy (common/retry.h): max_retransmits rounds,
     * backoff_ms initial, doubling per round, no jitter and no
     * ceiling — bit-identical to the historical
     * `backoff_ms * 2^(round-1)` schedule. The serve-layer circuit
     * breaker reuses the same policy type for its re-probe
     * quarantine intervals.
     */
    RetryPolicy retransmitPolicy() const;
};

/**
 * Validates a SessionConfig before any chunk is built, instead of
 * the historical silent clamping. Rejected (with a descriptive
 * Status): FEC group_size < 2 or > 255, RS parity m < 1 or
 * m >= group_size, k + m past the GF(256) Cauchy bound,
 * interleaving without FEC/slicing or with lanes that don't divide
 * the group's slice budget, adaptive_fec without FEC or stacked
 * under the redundancy controller, redundancy without RS FEC, and
 * negative retry/backoff knobs. StreamSession::run calls this
 * first; serve/pipeline layers inherit the check.
 */
Status validateSessionConfig(const SessionConfig &config);

/**
 * End-to-end resilient session: encode -> slice (+FEC parity) ->
 * lossy channel (with NACK/retransmit fallback) -> receive ->
 * degradation-ladder decode.
 */
class StreamSession
{
  public:
    StreamSession(CodecConfig codec, SessionConfig session);

    /** Runs the whole stream; one SessionFrame per input frame. */
    Expected<SessionReport> run(
        const std::vector<VoxelCloud> &frames);

  private:
    CodecConfig codec_;
    SessionConfig session_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_STREAM_SESSION_H
