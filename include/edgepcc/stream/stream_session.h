/**
 * @file
 * Loss-resilient streaming session over the chunked transport.
 *
 * Two layers:
 *
 *  - StreamReceiver: decoder-side resilience. Ingests (possibly
 *    damaged) wire bytes, reassembles chunks by frame id, and runs a
 *    degradation ladder instead of aborting the stream:
 *      ok        - chunk intact, decoded normally
 *      resynced  - an intact I frame re-anchored the stream after
 *                  preceding damage
 *      concealed - frame degraded but presentable: a missing frame
 *                  frozen from the last good frame, or a P frame
 *                  whose I reference was lost decoded
 *                  geometry-promoted with borrowed attributes
 *      skipped   - nothing presentable (loss before any good frame)
 *
 *  - StreamSession: the closed loop. Encodes frames, ships chunks
 *    through a fault-injection LossyChannel, answers receiver NACKs
 *    with bounded exponential-backoff retransmissions, and feeds
 *    delivery outcomes to AdaptiveGopController so sustained loss
 *    shortens the GOP and an unrecovered loss forces a keyframe.
 *
 * Everything is deterministic given (codec config, session config,
 * input frames): the channel is seeded and no wall-clock time is
 * consulted (backoff latency is modelled, not slept).
 */

#ifndef EDGEPCC_STREAM_STREAM_SESSION_H
#define EDGEPCC_STREAM_STREAM_SESSION_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/lossy_channel.h"
#include "edgepcc/stream/rate_controller.h"

namespace edgepcc {

/** Per-frame result of the degradation ladder. */
enum class FrameOutcome : std::uint8_t {
    kOk = 0,
    kResynced = 1,
    kConcealed = 2,
    kSkipped = 3,
};

const char *frameOutcomeName(FrameOutcome outcome);

/** One decoded (or degraded) frame out of the session. */
struct SessionFrame {
    std::uint32_t frame_id = 0;
    Frame::Type type = Frame::Type::kIntra;
    FrameOutcome outcome = FrameOutcome::kSkipped;
    /** Chunk arrived intact (after retransmissions). */
    bool delivered = false;
    int retransmits = 0;
    /** Decoded or concealed output; empty when skipped. */
    VoxelCloud cloud{10};
};

/** Aggregate transport + ladder accounting. */
struct SessionStats {
    std::size_t chunks_sent = 0;  ///< incl. retransmissions
    std::size_t frames_delivered = 0;
    std::size_t frames_lost = 0;  ///< undelivered after retries
    std::size_t nacks = 0;
    std::size_t retransmits = 0;
    std::size_t keyframes_forced = 0;
    std::size_t frames_ok = 0;
    std::size_t frames_resynced = 0;
    std::size_t frames_concealed = 0;
    std::size_t frames_skipped = 0;
    /** Modelled retransmission backoff, seconds. */
    double backoff_s = 0.0;

    std::size_t
    totalFrames() const
    {
        return frames_ok + frames_resynced + frames_concealed +
               frames_skipped;
    }

    /** Fraction of frames that were presentable (not skipped). */
    double okOrConcealedFraction() const;
};

/** Full session output. */
struct SessionReport {
    std::vector<SessionFrame> frames;
    SessionStats stats;
    WireScanStats wire;
};

/** Decoder-side reassembly + degradation ladder. */
class StreamReceiver
{
  public:
    StreamReceiver() = default;

    /** Scans damaged wire bytes; chunks found are buffered (first
     *  intact copy of each frame id wins). */
    WireScanStats ingest(const std::vector<std::uint8_t> &wire);

    /** True once an intact chunk for `frame_id` is buffered. */
    bool hasFrame(std::uint32_t frame_id) const;

    /** NACK list: frame ids in [0, expected_frames) with no intact
     *  chunk buffered. */
    std::vector<std::uint32_t> missingFrames(
        std::uint32_t expected_frames) const;

    /**
     * Decodes frames [0, expected_frames) in order, applying the
     * degradation ladder. Never fails on channel damage: every
     * frame gets a FrameOutcome. Call once after ingest; the
     * decoder state is consumed.
     */
    std::vector<SessionFrame> decodeAll(
        std::uint32_t expected_frames);

    /** Cumulative scan stats over every ingest() call. */
    const WireScanStats &wireStats() const { return wire_; }

  private:
    std::map<std::uint32_t, ParsedChunk> by_frame_;
    VideoDecoder decoder_;
    WireScanStats wire_;
};

/** Session knobs. */
struct SessionConfig {
    ChannelSpec channel{};
    /** NACK-driven retransmission attempts per frame. */
    int max_retransmits = 2;
    /** First retransmission backoff; doubles per attempt. Modelled
     *  latency only — nothing sleeps. */
    double backoff_ms = 8.0;
    /** Adaptive keyframe insertion under sustained loss. */
    bool adaptive_gop = true;
    AdaptiveGopConfig gop{};
    /** Force an I frame right after an unrecovered loss, so damage
     *  cannot propagate past the next frame. */
    bool keyframe_on_loss = true;
};

/**
 * End-to-end resilient session: encode -> lossy channel (with
 * NACK/retransmit) -> receive -> degradation-ladder decode.
 */
class StreamSession
{
  public:
    StreamSession(CodecConfig codec, SessionConfig session);

    /** Runs the whole stream; one SessionFrame per input frame. */
    Expected<SessionReport> run(
        const std::vector<VoxelCloud> &frames);

  private:
    CodecConfig codec_;
    SessionConfig session_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_STREAM_SESSION_H
