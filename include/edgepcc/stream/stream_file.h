/**
 * @file
 * The .epcv stream container: a trivial on-disk framing of encoded
 * PC video frames (magic "EPCV", frame count, then length-prefixed
 * frame bitstreams). Used by edgepcc_cli and any application that
 * wants to persist or ship a whole encoded sequence.
 */

#ifndef EDGEPCC_STREAM_STREAM_FILE_H
#define EDGEPCC_STREAM_STREAM_FILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/common/status.h"

namespace edgepcc {

/** Serializes encoded frames into the .epcv byte layout. */
std::vector<std::uint8_t> packStream(
    const std::vector<std::vector<std::uint8_t>> &frames);

/** Parses a .epcv buffer back into per-frame bitstreams. */
Expected<std::vector<std::vector<std::uint8_t>>> unpackStream(
    const std::vector<std::uint8_t> &bytes);

/** Writes frames to a .epcv file. */
Status writeStreamFile(
    const std::string &path,
    const std::vector<std::vector<std::uint8_t>> &frames);

/** Reads a .epcv file. */
Expected<std::vector<std::vector<std::uint8_t>>> readStreamFile(
    const std::string &path);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_STREAM_FILE_H
