/**
 * @file
 * Deterministic fault-injection channel for transport chunks.
 *
 * Models the damage a real edge uplink inflicts on a chunked stream:
 * whole-chunk drops, tail truncation, payload bit flips, duplicate
 * delivery, and bounded reordering. All faults are driven by one
 * seeded RNG, so a (spec, chunk sequence) pair always produces the
 * same wire bytes — chaos tests and loss sweeps are reproducible
 * bit-for-bit across runs and platforms.
 */

#ifndef EDGEPCC_STREAM_LOSSY_CHANNEL_H
#define EDGEPCC_STREAM_LOSSY_CHANNEL_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/rng.h"
#include "edgepcc/stream/network_model.h"

namespace edgepcc {

/** Fault rates for one simulated channel. All rates are per-chunk
 *  probabilities in [0, 1]. */
struct ChannelSpec {
    double drop_rate = 0.0;       ///< chunk vanishes entirely
    double truncate_rate = 0.0;   ///< chunk loses a random tail
    double bit_flip_rate = 0.0;   ///< one random bit flips
    double duplicate_rate = 0.0;  ///< chunk delivered twice
    double reorder_rate = 0.0;    ///< chunk delayed past successors
    /** Max positions a reordered chunk can slip back. */
    int reorder_window = 3;
    /** Probability a drop *burst* starts at any chunk; the burst
     *  then swallows `burst_length` consecutive chunks. Models the
     *  correlated loss of a fading radio link, where independent
     *  per-chunk drops are too optimistic for FEC evaluation. */
    double burst_rate = 0.0;
    int burst_length = 4;
    std::uint64_t seed = 1;

    /** Perfect channel (the default). */
    static ChannelSpec clean();
    /** Uniform loss: drop/truncate/flip each at `loss_rate`/3. */
    static ChannelSpec lossy(double loss_rate,
                             std::uint64_t seed = 1);
    /** Pure burst loss: bursts of `burst_length` drops starting
     *  with probability `burst_rate` per chunk, nothing else. */
    static ChannelSpec bursty(double burst_rate, int burst_length,
                              std::uint64_t seed = 1);
    /** Derives fault rates from a NetworkSpec's loss/jitter. */
    static ChannelSpec fromNetwork(const NetworkSpec &network,
                                   std::uint64_t seed = 1);

    bool
    isClean() const
    {
        return drop_rate == 0.0 && truncate_rate == 0.0 &&
               bit_flip_rate == 0.0 && duplicate_rate == 0.0 &&
               reorder_rate == 0.0 && burst_rate == 0.0;
    }
};

/** Per-channel fault accounting. */
struct ChannelStats {
    std::size_t chunks_in = 0;
    std::size_t chunks_out = 0;  ///< copies actually delivered
    std::size_t dropped = 0;
    std::size_t truncated = 0;
    std::size_t bit_flipped = 0;
    std::size_t duplicated = 0;
    std::size_t reordered = 0;
    std::size_t burst_dropped = 0;  ///< drops owed to bursts
    std::size_t bursts = 0;         ///< bursts started
};

/**
 * Applies ChannelSpec faults to serialized chunks. Stateful: the
 * RNG stream advances per transmitted chunk, and reordered chunks
 * are held back across calls until flushed.
 */
class LossyChannel
{
  public:
    explicit LossyChannel(ChannelSpec spec);

    /**
     * Transmits one chunk; returns the 0..2 (possibly damaged)
     * copies that arrive now. A reordered chunk is withheld and
     * released by a later transmit()/flush().
     */
    std::vector<std::vector<std::uint8_t>> transmit(
        const std::vector<std::uint8_t> &chunk);

    /** Releases any chunks still held for reordering. */
    std::vector<std::vector<std::uint8_t>> flush();

    /**
     * Convenience: transmits every chunk, flushes, and returns the
     * concatenated wire bytes as they would hit the receiver.
     */
    std::vector<std::uint8_t> transmitAll(
        const std::vector<std::vector<std::uint8_t>> &chunks);

    const ChannelStats &stats() const { return stats_; }
    const ChannelSpec &spec() const { return spec_; }

  private:
    /** Applies in-place damage (truncate/flip); true if delivered. */
    bool damage(std::vector<std::uint8_t> &chunk);

    ChannelSpec spec_;
    Rng rng_;
    ChannelStats stats_;
    /** Chunks left to swallow in the current drop burst. */
    int burst_remaining_ = 0;
    /** Chunks held back for reordering: (release_after, bytes). */
    std::vector<std::pair<int, std::vector<std::uint8_t>>> held_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_LOSSY_CHANNEL_H
