/**
 * @file
 * Analytic network model for the transmission stage of the paper's
 * end-to-end pipeline (Fig. 1: content generation -> encoding ->
 * transmission -> decoding -> render). The paper motivates
 * compression by the infeasibility of shipping ~120 Mbit raw frames
 * in real time; this model quantifies that.
 */

#ifndef EDGEPCC_STREAM_NETWORK_MODEL_H
#define EDGEPCC_STREAM_NETWORK_MODEL_H

#include <cstdint>
#include <string>

namespace edgepcc {

/** Link parameters for the uplink between edge device and viewer. */
struct NetworkSpec {
    std::string name = "custom";
    double bandwidth_mbps = 100.0;  ///< sustained goodput
    double rtt_ms = 20.0;           ///< round-trip time
    /** Protocol efficiency (payload / wire bytes). */
    double efficiency = 0.95;

    /** Fraction of packets lost per transmission attempt [0, 1).
     *  Lost packets are retransmitted, inflating delivery time. */
    double packet_loss_rate = 0.0;
    /** Mean delay-variation added on top of the propagation delay
     *  (one-way), in milliseconds. */
    double jitter_ms = 0.0;

    /** Typical home Wi-Fi (802.11ac, mid-range). */
    static NetworkSpec wifi();
    /** Cellular LTE uplink. */
    static NetworkSpec lte();
    /** 5G mid-band uplink. */
    static NetworkSpec fiveG();

    /**
     * Seconds to deliver `bytes` (half-RTT + jitter +
     * serialization). Under loss, every byte is sent an expected
     * 1/(1 - loss) times (ARQ retransmission), so the serialization
     * term is inflated accordingly.
     */
    double transferSeconds(std::uint64_t bytes) const;

    /** One-way propagation latency: half-RTT + jitter, seconds. */
    double latencySeconds() const;

    /**
     * Loss-free serialization time for `bytes`, seconds. Use this
     * (not transferSeconds) when retransmissions are modelled
     * explicitly — e.g. the streaming session already counts every
     * resent and parity byte in its wire-byte total, so inflating
     * by 1/(1 - loss) on top would double-count the loss.
     */
    double serializationSeconds(std::uint64_t bytes) const;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_NETWORK_MODEL_H
