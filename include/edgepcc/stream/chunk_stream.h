/**
 * @file
 * Packetized transport framing for .epcv streams.
 *
 * The plain .epcv container (stream_file.h) is a clean-file format:
 * one corrupt length prefix and everything after it is unreachable.
 * For transmission over a lossy channel every encoded frame is
 * instead wrapped in one or more self-delimiting *chunks*:
 *
 *   marker 'E''P''C''K' | sequence u32 | frame_id u32 | gop_id u32 |
 *   frame_type u8 | flags u8 | payload_size u32 |
 *   [v2 extension: slice_index u16 | slice_count u16 |
 *    fec_group u16 | fec_seq u8 | fec_group_size u8] |
 *   crc32c u32 | payload bytes
 *
 * All integers little-endian. The 8-byte v2 extension is present
 * only when `flags & kChunkFlagV2`; a chunk that uses no v2 feature
 * (single-slice, no FEC) serializes to the exact v1 byte layout, so
 * old receivers keep parsing new clean streams and new receivers
 * parse v1 streams unchanged.
 *
 * The CRC32C covers the header fields after the marker plus the
 * payload, so any truncation, bit flip or splice inside a chunk is
 * detected (including a flipped kChunkFlagV2 bit — the CRC offset
 * moves, so the check fails). The fixed marker makes the stream
 * self-synchronizing: scanWire() skips damaged regions byte by byte
 * until the next marker that validates, so one bad chunk costs
 * exactly that chunk, never the rest of the stream.
 *
 * Two v2 features layer on top of the framing:
 *
 *  - Sub-frame slicing: a frame payload is split into up to 65535
 *    MTU-sized slices (`slice_index` of `slice_count`), each an
 *    independently CRC-protected chunk. A bit flip then costs one
 *    slice, not the frame.
 *  - XOR-parity FEC: every `FecSpec::group_size` data chunks form a
 *    group and emit one parity chunk (kChunkFlagParity) whose
 *    payload XORs the group's *records* (header-identifying prefix
 *    + size + payload). The receiver reconstructs any single lost
 *    data chunk per group without a NACK round-trip.
 */

#ifndef EDGEPCC_STREAM_CHUNK_STREAM_H
#define EDGEPCC_STREAM_CHUNK_STREAM_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Chunk resync marker ("EPCK"). */
inline constexpr std::uint8_t kChunkMarker[4] = {'E', 'P', 'C',
                                                 'K'};

/** Serialized v1 header size including marker and CRC. */
inline constexpr std::size_t kChunkHeaderBytes = 26;

/** Bytes added by the v2 extension (slice + FEC fields). */
inline constexpr std::size_t kChunkExtensionBytes = 8;

/** Serialized v2 header size including marker, extension and CRC. */
inline constexpr std::size_t kChunkHeaderBytesV2 =
    kChunkHeaderBytes + kChunkExtensionBytes;

/** Backstop against absurd payload sizes from damaged headers. */
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 28;

/** `fec_seq` sentinel carried by parity chunks. XOR parity always
 *  uses exactly this value; Reed-Solomon parity row `p` uses
 *  kFecParitySeq - p (see rsParitySeq). */
inline constexpr std::uint8_t kFecParitySeq = 0xff;

/** Chunk flag bits. */
enum ChunkFlags : std::uint8_t {
    kChunkFlagRetransmit = 1u << 0,  ///< NACK-driven resend
    kChunkFlagParity = 1u << 1,      ///< payload is FEC parity
    kChunkFlagFec = 1u << 2,         ///< member of an FEC group
    /** Parity-scheme bit: the chunk's FEC group uses Reed-Solomon
     *  parity (up to m losses per group) instead of XOR (one loss).
     *  Never set on XOR or v1 wires, so those stay byte-identical. */
    kChunkFlagRsFec = 1u << 3,
    kChunkFlagV2 = 1u << 7,  ///< extension fields present
};

/** Parity scheme for an FEC group. */
enum class FecScheme : std::uint8_t {
    kXor = 0,          ///< one parity chunk, single-loss recovery
    kReedSolomon = 1,  ///< m parity chunks, up-to-m-loss recovery
};

const char *fecSchemeName(FecScheme scheme);

/** FEC knob (see docs/RESILIENCE.md "Forward error correction"). */
struct FecSpec {
    bool enabled = false;
    /** Data chunks per parity group. Groups never span frames, so
     *  the last group of a frame may be smaller. */
    int group_size = 4;
    /** Parity scheme. kXor reproduces the PR 4 wire byte for byte;
     *  kReedSolomon emits `parity_chunks` Cauchy-coded parity rows
     *  per group and sets kChunkFlagRsFec on every member. */
    FecScheme scheme = FecScheme::kXor;
    /** RS parity rows per group (m). Ignored for kXor. Must satisfy
     *  1 <= m < group_size and group_size + m <= 255 (the Cauchy
     *  matrix needs k + m distinct field points and the data/parity
     *  fec_seq ranges must not collide). */
    int parity_chunks = 2;
};

/**
 * fec_seq value of Reed-Solomon parity row `row` (0-based):
 * kFecParitySeq - row, growing downward so row 0 coincides with the
 * XOR sentinel and data sequence numbers (0..k-1, k <= 255 - m)
 * can never collide with parity rows.
 */
inline constexpr std::uint8_t
rsParitySeq(int row)
{
    return static_cast<std::uint8_t>(kFecParitySeq - row);
}

/** Inverse of rsParitySeq: the parity row index of a parity
 *  chunk's fec_seq. */
inline constexpr int
rsParityRow(std::uint8_t fec_seq)
{
    return static_cast<int>(kFecParitySeq) -
           static_cast<int>(fec_seq);
}

/** Transport metadata carried by every chunk. */
struct ChunkHeader {
    std::uint32_t sequence = 0;  ///< wire send order (dedup/reorder)
    std::uint32_t frame_id = 0;  ///< capture-order frame index
    std::uint32_t gop_id = 0;    ///< id of the GOP's anchor I frame
    Frame::Type frame_type = Frame::Type::kIntra;
    std::uint8_t flags = 0;

    // v2 extension fields; serialized only when the header needs
    // them (isV2()). Defaults reproduce the v1 wire layout.
    std::uint16_t slice_index = 0;  ///< this slice within the frame
    std::uint16_t slice_count = 1;  ///< total slices of the frame
    std::uint16_t fec_group = 0;    ///< FEC group id (wraps at 64Ki)
    /** Data: index within the FEC group; parity: kFecParitySeq. */
    std::uint8_t fec_seq = 0;
    /** Number of data chunks in this FEC group (on every member). */
    std::uint8_t fec_group_size = 0;

    /** True when any v2 feature is in use; drives serialization. */
    bool
    isV2() const
    {
        return (flags & (kChunkFlagV2 | kChunkFlagParity |
                         kChunkFlagFec)) != 0 ||
               slice_index != 0 || slice_count != 1 ||
               fec_group != 0 || fec_seq != 0 ||
               fec_group_size != 0;
    }

    bool
    isParity() const
    {
        return (flags & kChunkFlagParity) != 0;
    }

    /** True when the chunk's FEC group is Reed-Solomon coded. */
    bool
    isRsFec() const
    {
        return (flags & kChunkFlagRsFec) != 0;
    }

    /** Serialized header size for this chunk's version. */
    std::size_t
    headerBytes() const
    {
        return isV2() ? kChunkHeaderBytesV2 : kChunkHeaderBytes;
    }
};

/** One chunk recovered from the wire. */
struct ParsedChunk {
    ChunkHeader header;
    std::vector<std::uint8_t> payload;
};

/** Read-only view of payload bytes owned elsewhere. */
using ByteSpan = std::span<const std::uint8_t>;

/**
 * Zero-copy send-side chunk: the payload is a view into the
 * encoder's frame bitstream (or a parity scratch buffer), NOT an
 * owned copy. Aliasing rules (docs/PERFORMANCE.md "Zero-copy
 * framing"): a ChunkView is valid only while the viewed buffer is
 * alive and unmodified — for frame slices that means until the
 * frame's send loop (including NACK retransmits) completes.
 */
struct ChunkView {
    ChunkHeader header;
    ByteSpan payload;
};

/** Scan accounting, surfaced for diagnostics and tests. */
struct WireScanStats {
    std::size_t bytes_scanned = 0;
    std::size_t bytes_skipped = 0;  ///< damaged/garbage bytes passed
    std::size_t chunks_ok = 0;
    std::size_t chunks_bad_crc = 0;
    std::size_t chunks_truncated = 0;  ///< header past buffer end
};

/**
 * Serializes one chunk into `out` (cleared first): header + CRC32C
 * + payload bytes. Emits the v1 layout unless the header uses a v2
 * feature, in which case kChunkFlagV2 is set on the wire
 * automatically. This is the send path's only payload copy — the
 * payload view flows untouched from the encoder through slicing and
 * FEC to here. Callers reuse `out` across sends so steady state
 * performs no allocation.
 */
void serializeChunkInto(const ChunkHeader &header, ByteSpan payload,
                        std::vector<std::uint8_t> &out);

/** Convenience wrapper returning a fresh wire buffer. */
std::vector<std::uint8_t> serializeChunk(
    const ChunkHeader &header,
    const std::vector<std::uint8_t> &payload);

/**
 * Scans `wire` for valid chunks (v1 and v2 layouts side by side),
 * resynchronizing on the marker after any damage. Never fails:
 * damaged regions are skipped and counted in `stats` (optional).
 * Chunks are returned in wire order, duplicates included — dedup is
 * the receiver's job.
 */
std::vector<ParsedChunk> scanWire(
    const std::vector<std::uint8_t> &wire,
    WireScanStats *stats = nullptr);

/** Concatenates serialized chunks into one wire buffer. */
std::vector<std::uint8_t> concatWire(
    const std::vector<std::vector<std::uint8_t>> &chunks);

/**
 * Splits a frame payload into MTU-sized slices. Each returned chunk
 * shares `base`'s identity fields and gets slice_index/slice_count
 * set; payload bytes are contiguous ranges of `payload`.
 * `mtu_payload == 0` (or payload <= mtu) yields one chunk with the
 * v1 layout. The slice size is raised transparently when the
 * payload would need more than 65535 slices.
 */
std::vector<ParsedChunk> sliceFramePayload(
    const ChunkHeader &base,
    const std::vector<std::uint8_t> &payload,
    std::size_t mtu_payload);

/**
 * Zero-copy variant of sliceFramePayload(): slice payloads are
 * subspans of `payload`, so no bytes move. The views obey the
 * ChunkView lifetime rules — `payload` must outlive every use of
 * the returned slices (the session keeps the encoded frame alive
 * through its NACK rounds for exactly this reason).
 */
std::vector<ChunkView> sliceFramePayloadViews(
    const ChunkHeader &base, ByteSpan payload,
    std::size_t mtu_payload);

/** Reassembles slice payloads (already in slice_index order) into
 *  the original frame payload. */
std::vector<std::uint8_t> assembleSlices(
    const std::vector<const std::vector<std::uint8_t> *> &slices);

/**
 * Builds the XOR-parity payload over one FEC group's data chunks.
 * The parity XORs fixed-layout *records* (frame_id, gop_id,
 * slice_index/count, frame_type, fec_seq, payload_size, payload,
 * zero-padded to the longest record), so the receiver can rebuild a
 * missing chunk's header fields as well as its bytes.
 */
std::vector<std::uint8_t> buildFecParity(
    const std::vector<ParsedChunk> &group);

/**
 * Zero-copy variant of buildFecParity(): XORs each view's record
 * (header prefix + payload bytes, read in place) into `parity`
 * (cleared first) with the SIMD-dispatched XOR kernel — no record
 * buffers are materialized. Callers reuse `parity` across groups.
 */
void buildFecParityInto(const std::vector<ChunkView> &group,
                        std::vector<std::uint8_t> &parity);

/**
 * Reconstructs the single missing data chunk of an FEC group from
 * the group's other `received` data chunks and the parity payload.
 * Returns nullopt when the parity is inconsistent (e.g. more than
 * one chunk was actually missing, or the sizes don't add up).
 */
std::optional<ParsedChunk> recoverFecChunk(
    const std::vector<ParsedChunk> &received,
    const std::vector<std::uint8_t> &parity_payload);

/** Size of the fixed per-chunk prefix of an FEC record (frame_id,
 *  gop_id, slice_index/count, frame_type, fec_seq, payload_size);
 *  the payload follows. XOR and RS parity both code over records so
 *  a recovery rebuilds header identity and bytes together. */
inline constexpr std::size_t kFecRecordPrefixBytes = 18;

/** Serializes a chunk's FEC-record prefix into `out`
 *  (kFecRecordPrefixBytes bytes). */
void writeFecRecordPrefix(std::uint8_t *out,
                          const ChunkHeader &header,
                          std::size_t payload_size);

/**
 * Parses a reconstructed FEC record back into a chunk, validating
 * the embedded payload_size against the record length (the slack
 * tail must be all zero — non-zero slack means the erasure algebra
 * was fed an inconsistent group) and rejecting impossible headers
 * (slice_count == 0, payload_size > kMaxChunkPayload). The
 * returned chunk carries kChunkFlagV2 | kChunkFlagFec plus
 * `extra_flags` (the RS path adds kChunkFlagRsFec).
 */
std::optional<ParsedChunk> recoverFecRecord(
    const std::vector<std::uint8_t> &record,
    std::uint8_t extra_flags = 0);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_CHUNK_STREAM_H
