/**
 * @file
 * Packetized transport framing for .epcv streams.
 *
 * The plain .epcv container (stream_file.h) is a clean-file format:
 * one corrupt length prefix and everything after it is unreachable.
 * For transmission over a lossy channel every encoded frame is
 * instead wrapped in a self-delimiting *chunk*:
 *
 *   marker 'E''P''C''K' | sequence u32 | frame_id u32 | gop_id u32 |
 *   frame_type u8 | flags u8 | payload_size u32 | crc32c u32 |
 *   payload bytes
 *
 * All integers little-endian. The CRC32C covers the header fields
 * after the marker plus the payload, so any truncation, bit flip or
 * splice inside a chunk is detected. The fixed marker makes the
 * stream self-synchronizing: scanWire() skips damaged regions byte
 * by byte until the next marker that validates, so one bad chunk
 * costs exactly that chunk, never the rest of the stream.
 */

#ifndef EDGEPCC_STREAM_CHUNK_STREAM_H
#define EDGEPCC_STREAM_CHUNK_STREAM_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Chunk resync marker ("EPCK"). */
inline constexpr std::uint8_t kChunkMarker[4] = {'E', 'P', 'C',
                                                 'K'};

/** Serialized header size including marker and CRC. */
inline constexpr std::size_t kChunkHeaderBytes = 26;

/** Backstop against absurd payload sizes from damaged headers. */
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 28;

/** Chunk flag bits. */
enum ChunkFlags : std::uint8_t {
    kChunkFlagRetransmit = 1u << 0,  ///< NACK-driven resend
};

/** Transport metadata carried by every chunk. */
struct ChunkHeader {
    std::uint32_t sequence = 0;  ///< wire send order (dedup/reorder)
    std::uint32_t frame_id = 0;  ///< capture-order frame index
    std::uint32_t gop_id = 0;    ///< id of the GOP's anchor I frame
    Frame::Type frame_type = Frame::Type::kIntra;
    std::uint8_t flags = 0;
};

/** One chunk recovered from the wire. */
struct ParsedChunk {
    ChunkHeader header;
    std::vector<std::uint8_t> payload;
};

/** Scan accounting, surfaced for diagnostics and tests. */
struct WireScanStats {
    std::size_t bytes_scanned = 0;
    std::size_t bytes_skipped = 0;  ///< damaged/garbage bytes passed
    std::size_t chunks_ok = 0;
    std::size_t chunks_bad_crc = 0;
    std::size_t chunks_truncated = 0;  ///< header past buffer end
};

/** Serializes one chunk (header + CRC32C + payload copy). */
std::vector<std::uint8_t> serializeChunk(
    const ChunkHeader &header,
    const std::vector<std::uint8_t> &payload);

/**
 * Scans `wire` for valid chunks, resynchronizing on the marker after
 * any damage. Never fails: damaged regions are skipped and counted
 * in `stats` (optional). Chunks are returned in wire order,
 * duplicates included — dedup is the receiver's job.
 */
std::vector<ParsedChunk> scanWire(
    const std::vector<std::uint8_t> &wire,
    WireScanStats *stats = nullptr);

/** Concatenates serialized chunks into one wire buffer. */
std::vector<std::uint8_t> concatWire(
    const std::vector<std::vector<std::uint8_t>> &chunks);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_CHUNK_STREAM_H
