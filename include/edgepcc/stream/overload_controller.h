/**
 * @file
 * Overload robustness: deadline-aware encode degradation ladder,
 * admission control, and a per-stage watchdog.
 *
 * The paper's premise is meeting a real-time frame budget on a
 * constrained edge device. PR 3/4 made the *decoder/transport* side
 * degrade gracefully under loss; this module does the same for the
 * *encoder* under compute overload (CPU contention, an oversized
 * frame, a pathological capture). Instead of silently running late,
 * the session sheds quality in explicit rungs:
 *
 *   r0 full            - the configured codec, untouched
 *   r1 no-entropy      - optional occupancy entropy coding skipped
 *                        (the paper's own first lever, Sec. IV-B3)
 *   r2 coarse-geometry - input requantized to a coarser voxel grid
 *                        (fewer voxels -> less work in every stage)
 *   r3 coarse-attr     - larger attribute quantization step
 *   r4 inter-only      - GOP stretched so only P frames are coded
 *                        after the anchor (I frames are the
 *                        expensive ones)
 *   r5 skip            - the frame is not encoded at all
 *
 * Transitions are driven by the *modelled* per-frame encode latency
 * (EdgeDeviceModel over the recorded profile) scaled by a seedable
 * synthetic LoadSpec, so every ladder walk is deterministic and
 * tier-1 tests can pin exact rung sequences. A deadline miss
 * descends one rung immediately; recovery is hysteretic in the
 * EWMA style of AdaptiveGopController: the controller climbs one
 * rung only after `recover_after_clean` consecutive frames whose
 * smoothed utilization leaves `recover_headroom` of the budget
 * free.
 *
 * Admission control and the watchdog live in StreamSession: frames
 * arrive on a fixed fps cadence into a bounded in-flight queue with
 * oldest-drop backpressure, and any single stage exceeding its soft
 * timeout share of the deadline trips the watchdog (one rung down,
 * stall recorded) even when the frame total still fits.
 */

#ifndef EDGEPCC_STREAM_OVERLOAD_CONTROLLER_H
#define EDGEPCC_STREAM_OVERLOAD_CONTROLLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/sync.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/platform/device_model.h"

namespace edgepcc {

/** Degradation-ladder rungs, in declared shedding order. */
enum class OverloadRung : std::uint8_t {
    kFull = 0,
    kNoEntropy = 1,
    kCoarseGeometry = 2,
    kCoarseAttr = 3,
    kInterOnly = 4,
    kSkip = 5,
};

inline constexpr int kOverloadRungCount = 6;

const char *overloadRungName(OverloadRung rung);

/**
 * Seedable synthetic load injection (the ChannelSpec analogue for
 * compute). Scales the modelled per-stage encode latency so overload
 * scenarios are reproducible bit-for-bit: a (spec, frame sequence)
 * pair always walks the same ladder.
 */
struct LoadSpec {
    /** Baseline multiplier on every stage's modelled seconds. */
    double slowdown = 1.0;

    /** Frames [burst_start, burst_start + burst_frames) get
     *  `burst_slowdown` instead of `slowdown` (CPU-contention
     *  burst). 0 frames = no burst. */
    std::uint32_t burst_start = 0;
    std::uint32_t burst_frames = 0;
    double burst_slowdown = 1.0;

    /** During the burst, stages whose name starts with
     *  `stall_stage` are additionally multiplied by `stall_factor`
     *  (models one pathological kernel, not uniform contention). */
    std::string stall_stage;
    double stall_factor = 1.0;

    /** Frames whose encode reports an injected allocation failure
     *  (exercises the Status-returning exhaustion path). */
    std::vector<std::uint32_t> alloc_failure_frames;

    /** Per-frame multiplicative jitter in [1-jitter, 1+jitter],
     *  drawn from a seeded RNG. 0 = none (fully analytic). */
    double jitter = 0.0;
    std::uint64_t seed = 1;

    /** No injected load at all (factors identically 1). */
    static LoadSpec none();
    /** The canonical overload scenario: 2x per-stage slowdown for
     *  frames [8, 20). */
    static LoadSpec burst2x();
    /** burst2x plus a 6x stall on the geometry stage (trips the
     *  per-stage watchdog before the frame total does). */
    static LoadSpec stallGeometry();

    /**
     * Parses a spec string: a preset name ("none", "burst2x",
     * "stall-geometry") or comma-separated key=value pairs
     * (slowdown, burst-start, burst-frames, burst-slowdown,
     * stall-stage, stall-factor, alloc-fail (repeatable), jitter,
     * seed), e.g. "slowdown=1.5,burst-start=4,burst-frames=8,
     * burst-slowdown=3".
     */
    static Expected<LoadSpec> parse(const std::string &text);

    /** Multiplier for `stage` of frame `frame` (jitter excluded;
     *  the session applies jitter once per frame). */
    double factorFor(std::uint32_t frame,
                     const std::string &stage) const;

    /** Seeded per-frame jitter multiplier; 1.0 when jitter == 0.
     *  Depends only on (seed, frame), not on call order. */
    double jitterFor(std::uint32_t frame) const;

    /** True when the burst window covers `frame`. */
    bool inBurst(std::uint32_t frame) const;

    /** True when an allocation failure is injected at `frame`. */
    bool allocFailsAt(std::uint32_t frame) const;

    bool isIdle() const;
};

/**
 * Which clock feeds the ladder's per-frame encode latency.
 *
 * kModelled charges the EdgeDeviceModel seconds of the recorded
 * profile (deterministic, wall-clock free — the default, and what
 * every pinned tier-1 trace uses). kWallClock charges the measured
 * host seconds recorded per stage instead, for deployments where
 * the encoder actually runs on the serving hardware; traces then
 * depend on the machine, so tests pin only the extreme deadlines.
 */
enum class OverloadBudgetSource : std::uint8_t {
    kModelled = 0,
    kWallClock = 1,
};

const char *overloadBudgetSourceName(OverloadBudgetSource source);

/** Overload-subsystem knobs (SessionConfig::overload). */
struct OverloadConfig {
    bool enabled = false;

    /** Per-frame encode budget. 0 = derive from target_fps. */
    double deadline_s = 0.0;

    /** Latency source the ladder reacts to (modelled by default). */
    OverloadBudgetSource budget_source =
        OverloadBudgetSource::kModelled;
    /** Frame cadence; also the admission arrival rate. */
    double target_fps = 30.0;

    /** In-flight frames admitted beyond the one being encoded;
     *  older frames are dropped first (stale frames are worthless
     *  in telepresence). */
    int queue_capacity = 2;

    /** EWMA smoothing for the utilization estimate (0..1]. */
    double ewma_alpha = 0.4;
    /** Smoothed utilization below this counts as headroom. */
    double recover_headroom = 0.6;
    /** Consecutive headroom frames required per one-rung climb. */
    int recover_after_clean = 3;

    /** A single stage consuming more than this fraction of the
     *  deadline trips the watchdog even if the frame total fits. */
    double stage_soft_timeout_fraction = 0.8;

    /** Grid bits removed by the coarse-geometry rung. */
    int coarse_drop_bits = 2;
    /** Attribute quant-step multiplier of the coarse-attr rung. */
    std::uint32_t coarse_quant_multiplier = 4;

    /** Synthetic load injection (none by default). */
    LoadSpec load{};

    /** Device whose modelled timings the deadline is checked
     *  against (platform/device_model.h). */
    DeviceSpec device = DeviceSpec::jetsonXavier15W();

    /** Effective per-frame budget in seconds. */
    double budgetSeconds() const;
};

/** Why the controller moved (or did not move) after a frame. */
enum class OverloadEvent : std::uint8_t {
    kNone = 0,          ///< on time, no transition
    kDeadlineMiss = 1,  ///< frame total exceeded the budget
    kStageStall = 2,    ///< one stage tripped its soft timeout
    kRecovered = 3,     ///< hysteresis climbed one rung
    kAllocFailure = 4,  ///< injected allocation failure
    kQueueDrop = 5,     ///< admission control dropped the frame
};

const char *overloadEventName(OverloadEvent event);

/** Per-frame ladder record. */
struct OverloadFrame {
    std::uint32_t frame_id = 0;
    OverloadRung rung = OverloadRung::kFull;
    OverloadEvent event = OverloadEvent::kNone;
    /** Modelled encode seconds after LoadSpec scaling; 0 for
     *  skipped/dropped frames. */
    double encode_s = 0.0;
    /** Queueing delay before encode started (admission model). */
    double queue_delay_s = 0.0;
    bool deadline_missed = false;
    /** Frames waiting when this one started encoding. */
    int queue_depth = 0;
    /** Stage that tripped the watchdog (empty otherwise). */
    std::string stalled_stage;
};

/** Aggregate overload accounting (SessionReport::overload). */
struct OverloadStats {
    bool enabled = false;
    double deadline_s = 0.0;
    std::size_t frames = 0;
    std::size_t deadline_misses = 0;
    std::size_t max_consecutive_misses = 0;
    std::size_t watchdog_stalls = 0;
    std::size_t queue_drops = 0;
    std::size_t frames_skipped = 0;  ///< skip-rung frames
    std::size_t alloc_failures = 0;
    std::size_t rung_transitions = 0;
    /** Frames encoded (or skipped) at each rung. */
    std::size_t rung_occupancy[kOverloadRungCount] = {};
    /** Modelled encode latency of non-dropped frames. */
    std::vector<double> encode_latency_s;
    /** Per-frame ladder walk, in frame order (includes dropped
     *  frames so tests can pin the exact sequence). */
    std::vector<OverloadFrame> ladder;

    double deadlineMissRate() const;
};

/**
 * The deadline ladder's state machine. Deterministic: state depends
 * only on the sequence of onFrame()/onStall() calls.
 *
 * Thread-safe: the fleet scheduler (ROADMAP item 1) feeds one
 * controller from concurrent session threads; the ladder state is
 * mutex-guarded, so each onFrame()/onStall() is an atomic
 * transition. Ordering across threads is the caller's concern.
 */
class OverloadController
{
  public:
    explicit OverloadController(OverloadConfig config);

    OverloadRung
    rung() const
    {
        MutexLock lock(mutex_);
        return rung_;
    }
    /** Immutable after construction (no lock). */
    double budgetSeconds() const { return budget_s_; }
    double
    utilization() const
    {
        MutexLock lock(mutex_);
        return ewma_utilization_;
    }

    /**
     * Records one frame's effective encode latency. Returns the
     * transition event: a miss descends one rung immediately;
     * sustained headroom climbs one rung back.
     */
    OverloadEvent onFrame(double encode_s);

    /** A stage tripped its soft timeout: descend one rung now
     *  (called instead of onFrame for that frame). */
    OverloadEvent onStall(double encode_s);

    /**
     * Derives the codec configuration for `rung` from `base`.
     * Rungs are cumulative: r3 includes r1 and r2's measures.
     * kSkip returns the kInterOnly config (nothing is encoded at
     * that rung, but a config is still needed for bookkeeping).
     */
    static CodecConfig configForRung(const CodecConfig &base,
                                     OverloadRung rung,
                                     const OverloadConfig &config);

  private:
    OverloadEvent descendLocked(OverloadEvent cause)
        EDGEPCC_REQUIRES(mutex_);

    /** config_ and budget_s_ are immutable after construction. */
    OverloadConfig config_;
    double budget_s_ = 0.0;

    mutable Mutex mutex_;
    OverloadRung rung_ EDGEPCC_GUARDED_BY(mutex_) =
        OverloadRung::kFull;
    double ewma_utilization_ EDGEPCC_GUARDED_BY(mutex_) = 0.0;
    int headroom_streak_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

/**
 * One frame's effective encode latency as the ladder (or the fleet
 * scheduler) sees it, folded over the per-stage timings.
 */
struct EffectiveLatency {
    /** Total effective seconds across all stages. */
    double total_s = 0.0;
    /** The single most expensive stage (the watchdog's subject). */
    double worst_stage_s = 0.0;
    std::string worst_stage;
};

/**
 * The per-tenant latency hook shared by StreamSession and the serve
 * scheduler: selects the budget source (modelled device seconds or
 * measured host seconds), scales each stage by the injected LoadSpec
 * and the frame's seeded jitter, and reports the worst stage for the
 * soft-timeout watchdog. Deterministic for kModelled.
 */
EffectiveLatency effectiveEncodeLatency(const PipelineTiming &timing,
                                        const OverloadConfig &config,
                                        std::uint32_t frame_id);

/**
 * Requantizes a cloud to `drop_bits` fewer grid bits, merging the
 * voxels that collapse (first color wins, matching the geometry
 * codec's dedup rule). The coarse-geometry rung's input transform.
 */
VoxelCloud coarsenCloud(const VoxelCloud &cloud, int drop_bits);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_OVERLOAD_CONTROLLER_H
