/**
 * @file
 * Unified redundancy negotiation: one controller for (bitrate,
 * GOP length, RS k/m) against a single wire budget.
 *
 * The stacked controllers it supersedes — AdaptiveFecController
 * shrinking XOR groups on EWMA loss, AdaptiveGopController halving
 * the GOP on the same signal, keyframe-on-loss firing after any
 * undelivered frame — each spend wire bytes or quality without
 * seeing what the others already spent: sustained-but-recoverable
 * loss would simultaneously buy more parity AND shorter GOPs AND
 * forced keyframes, tripling the bitrate cost of one cause. This
 * controller (opt-in via SessionConfig::redundancy) makes the three
 * trades from one model:
 *
 *  - EWMA *burst length* — not just loss rate — picks the RS parity
 *    depth m: parity must cover the losses that actually arrive
 *    together, which is the statistic XOR group-size adaptation
 *    cannot express.
 *  - The group size k follows from the parity byte share the loss
 *    estimate justifies (share = clamp(burst_safety * loss, floor,
 *    max_parity_share); k = m * (1 - share) / share): a clean
 *    channel grows k toward max_group_size (overhead -> m/(k+m)
 *    minimum), sustained loss shrinks k so the same m covers a
 *    larger fraction.
 *  - GOP halving and forced keyframes react ONLY to genuinely
 *    unrecoverable loss (a frame still incomplete after parity
 *    decode and NACK rounds). Loss that parity absorbed costs
 *    parity bytes — it must not also cost keyframes.
 *  - The encoder's payload budget is the wire budget minus the
 *    parity share actually being spent: payload_budget =
 *    wire_budget * k / (k + m). The reuse-threshold nudge (the
 *    paper's bitrate knob, same multiplicative rule as
 *    ReuseRateController) steers P-frame payloads toward that
 *    post-parity budget, so the overload/byte ladder sees the true
 *    cost of redundancy instead of discovering parity as surprise
 *    overshoot.
 *
 * Deterministic: state depends only on the feedback sequence.
 * Thread-safe like the controllers it replaces (mutex-guarded).
 */

#ifndef EDGEPCC_STREAM_REDUNDANCY_CONTROLLER_H
#define EDGEPCC_STREAM_REDUNDANCY_CONTROLLER_H

#include <cstdint>

#include "edgepcc/common/sync.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Controller knobs; defaults match the edge-link design point. */
struct RedundancyConfig {
    bool enabled = false;

    /** EWMA smoothing for the loss fraction and burst length. */
    double ewma_alpha = 0.25;

    /** Group-size (k) clamp. */
    int min_group_size = 2;
    int max_group_size = 16;

    /** Parity-depth (m) clamp. m tracks ceil(EWMA burst length). */
    int min_parity = 1;
    int max_parity = 4;

    /** Hard cap on the parity byte share m / (k + m). */
    double max_parity_share = 0.4;
    /** Loss-to-share safety margin: the target share is
     *  burst_safety * EWMA loss (clamped). */
    double burst_safety = 3.0;

    /** GOP clamp + growth cadence (halve on unrecoverable loss,
     *  grow one step per `grow_after_clean` clean frames). */
    int min_gop_size = 1;
    int max_gop_size = 12;
    int grow_after_clean = 6;

    /** Per-frame wire-byte budget the bitrate negotiation targets;
     *  0 disables the reuse-threshold coupling. */
    std::uint64_t wire_budget_bytes = 0;
    /** Multiplicative threshold adjustment strength (0..1]. */
    double rate_gain = 0.5;
    /** Reuse-threshold clamp (same units as BlockMatchConfig). */
    double min_threshold = 1.0;
    double max_threshold = 2000.0;
};

/** One negotiated operating point. */
struct RedundancyDecision {
    int group_size = 4;      ///< RS k (data chunks per group)
    int parity_chunks = 1;   ///< RS m (parity rows per group)
    int gop_size = 12;
    bool force_keyframe = false;
    /** Post-parity payload budget; 0 when coupling is off. */
    std::uint64_t payload_budget_bytes = 0;
    /** Reuse threshold for the encoder (bitrate rung); negative
     *  when coupling is off (leave the codec config untouched). */
    double reuse_threshold = -1.0;
};

class RedundancyController
{
  public:
    RedundancyController(RedundancyConfig config,
                         int initial_gop_size,
                         double initial_reuse_threshold);

    /** The current operating point. force_keyframe is sticky until
     *  consumed via consumeForcedKeyframe(). */
    RedundancyDecision decide() const;

    /** True exactly once per unrecoverable loss. */
    bool consumeForcedKeyframe();

    /**
     * Per-frame transport feedback, after parity decode and NACK
     * rounds:
     *  - `chunks_sent`/`chunks_lost`: this frame's data chunks and
     *    how many the channel ate (pre-recovery),
     *  - `max_burst`: longest run of consecutively lost chunks,
     *  - `delivered`: frame complete after parity + NACK (false =
     *    genuinely unrecoverable).
     */
    void onFrameFeedback(int chunks_sent, int chunks_lost,
                         int max_burst, bool delivered);

    /** Encoded-size feedback for the bitrate nudge (P frames only,
     *  like ReuseRateController; no-op when coupling is off). */
    void onEncodedFrame(Frame::Type type,
                        std::uint64_t payload_bytes);

    double
    estimatedLoss() const
    {
        MutexLock lock(mutex_);
        return ewma_loss_;
    }
    double
    estimatedBurstLength() const
    {
        MutexLock lock(mutex_);
        return ewma_burst_;
    }

  private:
    RedundancyDecision decideLocked() const
        EDGEPCC_REQUIRES(mutex_);

    RedundancyConfig config_;
    mutable Mutex mutex_;
    double ewma_loss_ EDGEPCC_GUARDED_BY(mutex_) = 0.0;
    double ewma_burst_ EDGEPCC_GUARDED_BY(mutex_) = 1.0;
    int gop_size_ EDGEPCC_GUARDED_BY(mutex_);
    int clean_streak_ EDGEPCC_GUARDED_BY(mutex_) = 0;
    bool force_key_ EDGEPCC_GUARDED_BY(mutex_) = false;
    double threshold_ EDGEPCC_GUARDED_BY(mutex_);
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_REDUNDANCY_CONTROLLER_H
