/**
 * @file
 * GF(256) Reed-Solomon erasure codec over FEC-group records.
 *
 * The XOR parity of PR 4 recovers exactly one lost chunk per group;
 * on the burst channels the paper's edge links actually see,
 * consecutive losses inside one group still cost a NACK round-trip.
 * This codec generalizes the parity to m rows: a group of k data
 * chunks emits m = FecSpec::parity_chunks parity chunks, and ANY
 * subset of up to m lost data chunks is recoverable from the
 * surviving rows — no retransmission.
 *
 * Code construction (docs/RESILIENCE.md "Reed-Solomon parity"):
 * parity row p is the GF(256) linear combination
 *
 *     P_p = sum_i C[p][i] * R_i ,   C[p][i] = 1 / ((k + p) ^ i)
 *
 * over the group's FEC *records* R_i (the same 18-byte prefix +
 * payload layout the XOR parity codes over, zero-padded to the
 * longest record), with the Cauchy coefficients C built from the
 * distinct field points x_p = k + p and y_i = i. Every square
 * submatrix of a Cauchy matrix is invertible, which is exactly the
 * MDS property the erasure decode needs; it holds for any
 * k + m <= 255 (validated at session setup). The inner loop is
 * `gfMulAddBytes` (platform/simd.h), dispatched scalar/SSE4/AVX2
 * with the scalar path as the byte-identical reference.
 *
 * Decode is classic erasure algebra: subtract the known data
 * records from each surviving parity row (leaving the syndromes of
 * the e missing records), then solve the e x e Cauchy subsystem by
 * Gaussian elimination over GF(256), applying the same row
 * operations to the syndrome byte rows.
 *
 * On the wire parity row p travels as fec_seq = rsParitySeq(p)
 * (0xff, 0xfe, ...) with kChunkFlagRsFec set on every group member;
 * m itself is never transmitted — the receiver decodes as soon as
 * (received data rows) + (received parity rows) >= k.
 */

#ifndef EDGEPCC_STREAM_RS_FEC_H
#define EDGEPCC_STREAM_RS_FEC_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "edgepcc/stream/chunk_stream.h"

namespace edgepcc {

/** Maximum k + m the Cauchy construction supports. */
inline constexpr int kRsMaxGroupPlusParity = 255;

/** Cauchy encode coefficient C[row][i] for a k-data group:
 *  1 / ((k + row) ^ i). Requires 0 <= i < k and k + row <= 255. */
std::uint8_t rsCoefficient(int k, int row, int i);

/**
 * Builds Reed-Solomon parity row `row` over one FEC group's data
 * chunks into `parity` (cleared first): the GF(256) combination of
 * the group's records, sized to the longest record. Callers reuse
 * `parity` across rows and groups; like buildFecParityInto the
 * payload bytes are read in place from the views, never copied.
 */
void buildRsParityInto(const std::vector<ChunkView> &group, int row,
                       std::vector<std::uint8_t> &parity);

/**
 * Recovers every missing data chunk of a k-data Reed-Solomon group
 * from the received data chunks (`data`, keyed by fec_seq) and
 * parity payloads (`parity_rows`, keyed by parity row index).
 *
 * Succeeds when at least (k - data.size()) parity rows are present
 * and the algebra checks out; the recovered chunks are returned in
 * ascending fec_seq order with validated headers (recoverFecRecord).
 * Returns nullopt on inconsistent input — fewer rows than
 * erasures, data sequence numbers outside [0, k), parity rows
 * shorter than a known record, or recovered records whose embedded
 * sizes don't fit — never fabricated data. Defensive against
 * adversarial metadata: every index is range-checked, so fuzzed
 * group compositions cannot read or write out of bounds.
 */
std::optional<std::vector<ParsedChunk>> recoverRsChunks(
    int k, const std::map<std::uint8_t, ParsedChunk> &data,
    const std::map<int, std::vector<std::uint8_t>> &parity_rows);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_RS_FEC_H
