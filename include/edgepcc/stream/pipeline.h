/**
 * @file
 * End-to-end PC video pipeline evaluation (paper Fig. 1).
 *
 * Combines capture, encode (edge device model), transmission
 * (network model), decode (viewer device model) and render into
 * per-frame latency and pipelined throughput. The paper's claim:
 * with the proposed codec the full pipeline reaches near real time
 * (~10 FPS, decode ~70 ms), where the baselines sit at seconds per
 * frame.
 */

#ifndef EDGEPCC_STREAM_PIPELINE_H
#define EDGEPCC_STREAM_PIPELINE_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/network_model.h"
#include "edgepcc/stream/stream_session.h"

namespace edgepcc {

/** Fixed-stage latencies and pipeline configuration. */
struct PipelineConfig {
    // Out-of-line so the string-bearing member constructors are not
    // inlined into every caller (GCC 12 flags the inlined cleanup
    // paths with a spurious -Wmaybe-uninitialized under -O2).
    PipelineConfig();

    /** 3D content generation (LiDAR scan / photogrammetry); the
     *  paper cites "10s of milliseconds". */
    double capture_seconds = 0.030;
    /** Render & display stage on the viewer. */
    double render_seconds = 0.012;

    NetworkSpec network = NetworkSpec::wifi();
    DeviceSpec encoder_device = DeviceSpec::jetsonXavier15W();
    DeviceSpec decoder_device = DeviceSpec::jetsonXavier15W();

    /**
     * When true, the transfer stage runs the real chunked
     * transport: frames are sliced, FEC-protected and shipped
     * through a fault-injection channel derived from `network`
     * (ChannelSpec::fromNetwork), and the reported latency uses
     * the session's actual wire bytes (parity + retransmissions
     * included) plus modelled NACK round-trips — no 1/(1 - loss)
     * inflation, the loss is simulated instead. When false the
     * analytic loss-free model is used (legacy behaviour).
     */
    bool transport = false;
    /** Transport knobs (MTU slicing, FEC, NACK retries). The
     *  channel spec inside is overwritten from `network` unless
     *  `use_session_channel` is set. */
    SessionConfig session{};
    /** Keep `session.channel` as configured instead of deriving it
     *  from `network` — lets callers inject bursty or otherwise
     *  shaped channels the analytic network spec cannot express.
     *  Latency pricing still uses `network`. */
    bool use_session_channel = false;
    /** Fault-injection seed for the transport channel. */
    std::uint64_t transport_seed = 1;
};

/** Per-frame end-to-end latency split. */
struct FrameLatency {
    Frame::Type type = Frame::Type::kIntra;
    double capture_s = 0.0;
    double encode_s = 0.0;
    double transmit_s = 0.0;
    /** Loss-recovery time: retransmission backoff plus one RTT per
     *  NACK round. Zero in the analytic (non-transport) model. */
    double recovery_s = 0.0;
    double decode_s = 0.0;
    double render_s = 0.0;
    /** Encoded frame payload size. */
    std::uint64_t bytes = 0;
    /** Actual wire bytes (headers, slices, parity, resends);
     *  equals `bytes` in the analytic model (no framing). */
    std::uint64_t wire_bytes = 0;
    /** Degradation-ladder outcome (kOk in the analytic model). */
    FrameOutcome outcome = FrameOutcome::kOk;
    int retransmits = 0;

    double
    total() const
    {
        return capture_s + encode_s + transmit_s + recovery_s +
               decode_s + render_s;
    }

    /** Slowest stage bounds the pipelined frame rate. Recovery
     *  overlaps transmission, so they count as one stage. */
    double
    bottleneckSeconds() const
    {
        double worst = capture_s;
        for (const double stage :
             {encode_s, transmit_s + recovery_s, decode_s,
              render_s}) {
            if (stage > worst)
                worst = stage;
        }
        return worst;
    }
};

/** Aggregate over a run. */
struct PipelineReport {
    std::vector<FrameLatency> frames;

    /** Transport-mode accounting; all zero when the analytic
     *  model was used (PipelineConfig::transport == false). */
    bool transport = false;
    SessionStats session;
    WireScanStats wire;
    FecStats fec;
    /** Deadline-ladder accounting (transport mode with
     *  session.overload.enabled only). */
    OverloadStats overload;

    double meanTotalSeconds() const;
    /** Sustainable FPS with stage-level pipelining. */
    double pipelinedFps() const;
    double meanBitsPerFrame() const;
    /** Mean per-frame loss-recovery seconds. */
    double meanRecoverySeconds() const;
};

/**
 * Runs `frames` through encode -> transmit -> decode and reports
 * the modelled end-to-end behaviour. The transmit stage is either
 * the analytic loss-free network model or, with
 * PipelineConfig::transport, the real chunked transport over a
 * fault-injection channel (slicing + FEC + NACK accounting).
 */
Expected<PipelineReport> evaluatePipeline(
    const std::vector<VoxelCloud> &frames,
    const CodecConfig &codec, const PipelineConfig &config);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_PIPELINE_H
