/**
 * @file
 * End-to-end PC video pipeline evaluation (paper Fig. 1).
 *
 * Combines capture, encode (edge device model), transmission
 * (network model), decode (viewer device model) and render into
 * per-frame latency and pipelined throughput. The paper's claim:
 * with the proposed codec the full pipeline reaches near real time
 * (~10 FPS, decode ~70 ms), where the baselines sit at seconds per
 * frame.
 */

#ifndef EDGEPCC_STREAM_PIPELINE_H
#define EDGEPCC_STREAM_PIPELINE_H

#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/network_model.h"

namespace edgepcc {

/** Fixed-stage latencies and pipeline configuration. */
struct PipelineConfig {
    /** 3D content generation (LiDAR scan / photogrammetry); the
     *  paper cites "10s of milliseconds". */
    double capture_seconds = 0.030;
    /** Render & display stage on the viewer. */
    double render_seconds = 0.012;

    NetworkSpec network = NetworkSpec::wifi();
    DeviceSpec encoder_device = DeviceSpec::jetsonXavier15W();
    DeviceSpec decoder_device = DeviceSpec::jetsonXavier15W();
};

/** Per-frame end-to-end latency split. */
struct FrameLatency {
    Frame::Type type = Frame::Type::kIntra;
    double capture_s = 0.0;
    double encode_s = 0.0;
    double transmit_s = 0.0;
    double decode_s = 0.0;
    double render_s = 0.0;
    std::uint64_t bytes = 0;

    double
    total() const
    {
        return capture_s + encode_s + transmit_s + decode_s +
               render_s;
    }

    /** Slowest stage bounds the pipelined frame rate. */
    double
    bottleneckSeconds() const
    {
        double worst = capture_s;
        for (const double stage :
             {encode_s, transmit_s, decode_s, render_s}) {
            if (stage > worst)
                worst = stage;
        }
        return worst;
    }
};

/** Aggregate over a run. */
struct PipelineReport {
    std::vector<FrameLatency> frames;

    double meanTotalSeconds() const;
    /** Sustainable FPS with stage-level pipelining. */
    double pipelinedFps() const;
    double meanBitsPerFrame() const;
};

/**
 * Runs `frames` through encode -> (modelled) transmit -> decode
 * and reports the modelled end-to-end behaviour.
 */
Expected<PipelineReport> evaluatePipeline(
    const std::vector<VoxelCloud> &frames,
    const CodecConfig &codec, const PipelineConfig &config);

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_PIPELINE_H
