/**
 * @file
 * Bitrate-driven control of the direct-reuse threshold.
 *
 * The paper exposes the reuse threshold as a tunable design knob
 * (Secs. V-B, VI-E): larger thresholds reuse more blocks, shrinking
 * P-frame payloads at a quality cost. This controller closes the
 * loop for streaming applications with a bandwidth budget: after
 * every P frame it nudges the threshold multiplicatively toward the
 * target payload size, clamped to a sane range.
 */

#ifndef EDGEPCC_STREAM_RATE_CONTROLLER_H
#define EDGEPCC_STREAM_RATE_CONTROLLER_H

#include <cstdint>

#include "edgepcc/common/sync.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Controller parameters. */
struct RateControllerConfig {
    /** Target compressed size per P frame, in bytes. */
    std::uint64_t target_bytes_per_frame = 250000;

    /** Multiplicative adjustment strength per frame (0..1]. */
    double gain = 0.5;

    /** Threshold clamp range (per-point mean squared distance,
     *  paper's 300..1200 block thresholds are 15..60 here). */
    double min_threshold = 1.0;
    double max_threshold = 2000.0;

    /** Initial threshold (paper V1 operating point). */
    double initial_threshold = 15.0;
};

/**
 * Multiplicative-increase/decrease controller over the reuse
 * threshold. Stateless with respect to the codec: feed it the
 * actual per-frame payload sizes and apply threshold() to the next
 * P frame's BlockMatchConfig.
 */
class ReuseRateController
{
  public:
    explicit ReuseRateController(RateControllerConfig config);

    double threshold() const { return threshold_; }

    /**
     * Records one encoded frame. Only P frames adjust the
     * threshold (I frames do not depend on it).
     */
    void onFrame(Frame::Type type, std::uint64_t encoded_bytes);

    std::uint64_t framesObserved() const { return frames_; }

  private:
    RateControllerConfig config_;
    double threshold_;
    std::uint64_t frames_ = 0;
};

/** Adaptive keyframe-insertion parameters. */
struct AdaptiveGopConfig {
    int min_gop_size = 1;
    int max_gop_size = 12;

    /** EWMA smoothing for the observed chunk-loss rate (0..1]. */
    double ewma_alpha = 0.25;

    /** Loss estimate above which the GOP is halved (losing an
     *  I frame costs a whole GOP, so sustained loss must shorten
     *  the blast radius). */
    double high_loss = 0.08;
    /** Loss estimate below which the GOP may grow back. */
    double low_loss = 0.02;
    /** Consecutive clean deliveries required per growth step. */
    int grow_after_clean = 6;
};

/**
 * Closes the loop between receiver delivery feedback and the
 * encoder's GOP length. Sustained loss shortens the GOP (bounding
 * how many P frames one lost I frame can invalidate); a clean
 * channel grows it back toward max_gop_size for compression ratio.
 * Deterministic: state depends only on the feedback sequence.
 *
 * Thread-safe: the EWMA state is mutex-guarded so delivery feedback
 * may arrive from a receiver thread while the encode loop polls
 * gopSize(). Feedback ordering across threads is the caller's
 * concern.
 */
class AdaptiveGopController
{
  public:
    AdaptiveGopController(AdaptiveGopConfig config,
                          int initial_gop_size);

    /** Records one frame's delivery outcome (post-retransmission). */
    void onFrameDelivery(bool delivered);

    int
    gopSize() const
    {
        MutexLock lock(mutex_);
        return gop_size_;
    }
    double
    estimatedLoss() const
    {
        MutexLock lock(mutex_);
        return ewma_loss_;
    }

  private:
    AdaptiveGopConfig config_;
    mutable Mutex mutex_;
    int gop_size_ EDGEPCC_GUARDED_BY(mutex_);
    double ewma_loss_ EDGEPCC_GUARDED_BY(mutex_) = 0.0;
    int clean_streak_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

/** Adaptive FEC group-size parameters. */
struct AdaptiveFecConfig {
    /** Smallest group (most parity overhead: 1 parity chunk per
     *  min_group_size data chunks). */
    int min_group_size = 2;
    /** Largest group (least overhead, weakest protection). */
    int max_group_size = 8;

    /** Loss estimate above which the group is halved (XOR parity
     *  recovers one loss per group, so high loss needs small
     *  groups for the single-loss case to stay likely). */
    double high_loss = 0.05;
    /** Loss estimate below which the group may grow back. */
    double low_loss = 0.015;
    /** Consecutive clean frames required per growth step. */
    int grow_after_clean = 4;
};

/**
 * Closes the loop between the EWMA loss estimate (produced by
 * AdaptiveGopController from delivery feedback) and the FEC group
 * size. Sustained loss shrinks groups — spending wire bytes on
 * parity exactly when retransmission round-trips are most likely —
 * and a clean channel grows them back. Deterministic: state depends
 * only on the (loss estimate, delivered) sequence.
 *
 * Thread-safe: mutex-guarded like AdaptiveGopController.
 */
class AdaptiveFecController
{
  public:
    AdaptiveFecController(AdaptiveFecConfig config,
                          int initial_group_size);

    /** Records one frame's post-retransmission outcome together
     *  with the current smoothed loss estimate. */
    void onLossEstimate(double ewma_loss, bool delivered);

    int
    groupSize() const
    {
        MutexLock lock(mutex_);
        return group_size_;
    }

  private:
    AdaptiveFecConfig config_;
    mutable Mutex mutex_;
    int group_size_ EDGEPCC_GUARDED_BY(mutex_);
    int clean_streak_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_RATE_CONTROLLER_H
