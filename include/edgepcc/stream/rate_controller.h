/**
 * @file
 * Bitrate-driven control of the direct-reuse threshold.
 *
 * The paper exposes the reuse threshold as a tunable design knob
 * (Secs. V-B, VI-E): larger thresholds reuse more blocks, shrinking
 * P-frame payloads at a quality cost. This controller closes the
 * loop for streaming applications with a bandwidth budget: after
 * every P frame it nudges the threshold multiplicatively toward the
 * target payload size, clamped to a sane range.
 */

#ifndef EDGEPCC_STREAM_RATE_CONTROLLER_H
#define EDGEPCC_STREAM_RATE_CONTROLLER_H

#include <cstdint>

#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Controller parameters. */
struct RateControllerConfig {
    /** Target compressed size per P frame, in bytes. */
    std::uint64_t target_bytes_per_frame = 250000;

    /** Multiplicative adjustment strength per frame (0..1]. */
    double gain = 0.5;

    /** Threshold clamp range (per-point mean squared distance,
     *  paper's 300..1200 block thresholds are 15..60 here). */
    double min_threshold = 1.0;
    double max_threshold = 2000.0;

    /** Initial threshold (paper V1 operating point). */
    double initial_threshold = 15.0;
};

/**
 * Multiplicative-increase/decrease controller over the reuse
 * threshold. Stateless with respect to the codec: feed it the
 * actual per-frame payload sizes and apply threshold() to the next
 * P frame's BlockMatchConfig.
 */
class ReuseRateController
{
  public:
    explicit ReuseRateController(RateControllerConfig config);

    double threshold() const { return threshold_; }

    /**
     * Records one encoded frame. Only P frames adjust the
     * threshold (I frames do not depend on it).
     */
    void onFrame(Frame::Type type, std::uint64_t encoded_bytes);

    std::uint64_t framesObserved() const { return frames_; }

  private:
    RateControllerConfig config_;
    double threshold_;
    std::uint64_t frames_ = 0;
};

}  // namespace edgepcc

#endif  // EDGEPCC_STREAM_RATE_CONTROLLER_H
