/**
 * @file
 * Carry-aware byte-oriented range coder with adaptive models.
 *
 * This is the "Entropy Encoding" stage of the baseline pipelines
 * (paper Fig. 4a/4b): the TMC13-like codec runs occupancy bytes and
 * quantized RAHT coefficients through it, and the proposed codec can
 * optionally enable it (paper Sec. IV-B3 measures that trade-off).
 *
 * The implementation is the classic LZMA-style encoder (64-bit low
 * with carry cache) paired with a Subbotin-style decoder, plus two
 * adaptive models: a 12-bit binary model and a Fenwick-tree 256-ary
 * byte model.
 */

#ifndef EDGEPCC_ENTROPY_RANGE_CODER_H
#define EDGEPCC_ENTROPY_RANGE_CODER_H

#include <array>
#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"

namespace edgepcc {

/** Range encoder emitting into a caller-owned byte vector. */
class RangeEncoder
{
  public:
    explicit RangeEncoder(std::vector<std::uint8_t> &out)
        : out_(&out)
    {
    }

    /**
     * Encodes a symbol occupying [cum, cum + freq) of [0, total).
     * total must be <= kMaxTotal and freq >= 1.
     */
    void encodeSpan(std::uint32_t cum, std::uint32_t freq,
                    std::uint32_t total);

    /**
     * Encodes one bit against a 12-bit probability-of-zero state,
     * updating the state adaptively (LZMA bit coder).
     */
    void encodeBit(std::uint16_t &prob, int bit);

    /** Flushes the final bytes; the encoder is dead afterwards. */
    void finish();

    static constexpr std::uint32_t kMaxTotal = 1u << 16;

  private:
    void shiftLow();

    std::vector<std::uint8_t> *out_;
    std::uint64_t low_ = 0;
    std::uint32_t range_ = 0xffffffffu;
    std::uint8_t cache_ = 0;
    std::uint64_t cache_size_ = 1;
};

/** Matching range decoder over a read-only byte buffer. */
class RangeDecoder
{
  public:
    RangeDecoder(const std::uint8_t *data, std::size_t size);

    explicit RangeDecoder(const std::vector<std::uint8_t> &bytes)
        : RangeDecoder(bytes.data(), bytes.size())
    {
    }

    /** The decoder only borrows the buffer; a temporary would
     *  dangle. */
    explicit RangeDecoder(std::vector<std::uint8_t> &&) = delete;

    /**
     * Returns the scaled cumulative value in [0, total); the caller
     * looks up which symbol's [cum, cum+freq) contains it, then calls
     * decodeSpan with that interval.
     */
    std::uint32_t decodeGetValue(std::uint32_t total);

    void decodeSpan(std::uint32_t cum, std::uint32_t freq);

    /** Decodes one adaptive bit (mirror of encodeBit). */
    int decodeBit(std::uint16_t &prob);

    /** True once the decoder consumed past the end (corrupt data). */
    bool overrun() const { return overrun_; }

    Status
    status() const
    {
        return overrun_ ? corruptBitstream("range decoder overrun")
                        : Status::ok();
    }

  private:
    std::uint8_t nextByte();
    void normalize();

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint32_t range_ = 0xffffffffu;
    std::uint32_t code_ = 0;
    bool overrun_ = false;
};

/** Initial probability for adaptive bit models (p(0) = 0.5). */
constexpr std::uint16_t kBitModelInit = 1024;

/**
 * Adaptive order-0 model over bytes, backed by a Fenwick tree so
 * both cumulative lookups and symbol-from-cumulative searches are
 * O(log 256).
 */
class AdaptiveByteModel
{
  public:
    AdaptiveByteModel();

    void encode(RangeEncoder &encoder, std::uint8_t symbol);
    std::uint8_t decode(RangeDecoder &decoder);

  private:
    std::uint32_t cumFreq(int symbol) const;  ///< sum of freq[0..symbol)
    int symbolFromCum(std::uint32_t cum) const;
    void update(int symbol);
    void rescale();

    std::array<std::uint32_t, 257> tree_{};  ///< 1-based Fenwick
    std::uint32_t total_ = 0;

    static constexpr std::uint32_t kIncrement = 24;
    static constexpr std::uint32_t kRescaleLimit = 1u << 15;
};

/**
 * Context-conditioned occupancy coder for octree streams.
 *
 * TMC13 codes each occupancy byte under contexts derived from the
 * already-decoded neighbourhood. This implementation keeps one
 * adaptive byte model per parent-density bucket: a node whose
 * parent is sparse (few children) draws its occupancy from a very
 * different distribution than one inside a dense region, and
 * separating the models recovers that mutual information. The
 * encoder pairs this with a per-payload mode decision against the
 * order-0 model, so enabling it can never hurt.
 */
class ContextualByteCoder
{
  public:
    static constexpr int kParentBuckets = 3;

    /** Parent-density bucket: 0 = sparse (0-2 children),
     *  1 = medium (3-5), 2 = dense (6-8). */
    static int parentBucket(std::uint8_t parent_byte);

    void encode(RangeEncoder &encoder, std::uint8_t parent_byte,
                std::uint8_t symbol);
    std::uint8_t decode(RangeDecoder &decoder,
                        std::uint8_t parent_byte);

  private:
    AdaptiveByteModel models_[kParentBuckets];
};

/** Convenience: entropy-encodes a whole buffer with an order-0
 *  adaptive byte model. */
std::vector<std::uint8_t> entropyCompress(
    const std::vector<std::uint8_t> &input);

/** Inverse of entropyCompress; `output_size` must be known (EdgePCC
 *  streams carry it in their headers). */
Expected<std::vector<std::uint8_t>> entropyDecompress(
    const std::vector<std::uint8_t> &input, std::size_t output_size);

}  // namespace edgepcc

#endif  // EDGEPCC_ENTROPY_RANGE_CODER_H
