/**
 * @file
 * Bit-granular serialization used by the fixed-width packers (the
 * proposed codec's quantized deltas, reuse pointers, headers).
 */

#ifndef EDGEPCC_ENTROPY_BITSTREAM_H
#define EDGEPCC_ENTROPY_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"

namespace edgepcc {

/** Accumulates bits LSB-first into a byte vector. */
class BitWriter
{
  public:
    /** Appends the low `count` bits of `value` (count in [0, 64]). */
    void writeBits(std::uint64_t value, int count);

    /** Pads with zero bits to the next byte boundary. */
    void alignToByte();

    /** Appends whole bytes (implies alignToByte()). */
    void writeBytes(const std::uint8_t *data, std::size_t size);

    /** Unsigned LEB128. */
    void writeVarint(std::uint64_t value);

    /** Zigzag-mapped signed LEB128. */
    void writeSignedVarint(std::int64_t value);

    std::size_t bitCount() const { return bytes_.size() * 8 - (8 - fill_) % 8; }

    /** Finalizes (aligns) and returns the buffer. */
    std::vector<std::uint8_t> take();

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    int fill_ = 8;  ///< bits already used in the last byte (8 = full)
};

/** Reads bits LSB-first from a byte buffer. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit BitReader(const std::vector<std::uint8_t> &bytes)
        : BitReader(bytes.data(), bytes.size())
    {
    }

    /** The reader only borrows the buffer; a temporary would
     *  dangle. */
    explicit BitReader(std::vector<std::uint8_t> &&) = delete;

    /** Reads `count` bits; sets the overrun flag past the end. */
    std::uint64_t readBits(int count);

    /** Skips to the next byte boundary. */
    void alignToByte();

    std::uint64_t readVarint();
    std::int64_t readSignedVarint();

    /** True once any read went past the buffer end. */
    bool overrun() const { return overrun_; }

    /** Bytes fully or partially consumed so far. */
    std::size_t byteOffset() const { return byte_; }

    Status
    status() const
    {
        return overrun_ ? corruptBitstream("bit reader overrun")
                        : Status::ok();
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t byte_ = 0;
    int bit_ = 0;
    bool overrun_ = false;
};

/** Zigzag mapping: 0,-1,1,-2,... -> 0,1,2,3,... */
inline std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/** Bits needed to represent `value` (0 -> 0 bits). */
int bitWidth(std::uint64_t value);

}  // namespace edgepcc

#endif  // EDGEPCC_ENTROPY_BITSTREAM_H
