/**
 * @file
 * Empirical CDF utility used by the Fig. 3 locality studies.
 */

#ifndef EDGEPCC_METRICS_CDF_H
#define EDGEPCC_METRICS_CDF_H

#include <vector>

namespace edgepcc {

/** Empirical CDF over a sample set. */
class EmpiricalCdf
{
  public:
    explicit EmpiricalCdf(std::vector<double> samples);

    std::size_t sampleCount() const { return samples_.size(); }

    /** Fraction of samples <= x. */
    double fractionAtOrBelow(double x) const;

    /** Value at quantile q in [0, 1]. */
    double quantile(double q) const;

    double min() const;
    double max() const;
    double mean() const;

  private:
    std::vector<double> samples_;  ///< sorted ascending
};

}  // namespace edgepcc

#endif  // EDGEPCC_METRICS_CDF_H
