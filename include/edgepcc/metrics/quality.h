/**
 * @file
 * Quality metrics matching the paper's evaluation methodology:
 * attribute PSNR over nearest-neighbour matched points and D1
 * (point-to-point) geometry PSNR, as computed by the MPEG pc_error
 * tool the paper uses.
 */

#ifndef EDGEPCC_METRICS_QUALITY_H
#define EDGEPCC_METRICS_QUALITY_H

#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Attribute distortion summary. */
struct AttrQuality {
    double mse = 0.0;   ///< mean squared error over all channels
    double psnr = 0.0;  ///< 10*log10(255^2 / mse); inf when lossless
    std::size_t matched_points = 0;
    std::size_t unmatched_points = 0;  ///< no neighbour within range
};

/**
 * Attribute PSNR of `decoded` against `original`. Every original
 * point is matched to its nearest decoded voxel (the decoded
 * geometry may be slightly displaced by lossy coding) and the RGB
 * squared error accumulated.
 */
AttrQuality attributePsnr(const VoxelCloud &original,
                          const VoxelCloud &decoded);

/** Geometry distortion summary. */
struct GeometryQuality {
    double mse = 0.0;   ///< symmetric mean squared NN distance
    double psnr = 0.0;  ///< 10*log10(peak^2/mse), peak = grid-1
};

/**
 * D1 point-to-point geometry PSNR, symmetric (max of the two
 * directional MSEs, as pc_error reports).
 */
GeometryQuality geometryPsnrD1(const VoxelCloud &original,
                               const VoxelCloud &decoded);

}  // namespace edgepcc

#endif  // EDGEPCC_METRICS_QUALITY_H
