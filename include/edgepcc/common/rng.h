/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic data (dataset generator, test fixtures, bench
 * workloads) must be reproducible across runs and platforms, so the
 * library ships its own small generators instead of relying on
 * implementation-defined std::default_random_engine behaviour.
 */

#ifndef EDGEPCC_COMMON_RNG_H
#define EDGEPCC_COMMON_RNG_H

#include <cstdint>

namespace edgepcc {

/**
 * SplitMix64: tiny, fast, well-distributed 64-bit generator.
 * Used both directly and to seed Xoshiro256**.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Xoshiro256** generator: the workhorse RNG for workload synthesis.
 *
 * Satisfies UniformRandomBitGenerator so it can be used with
 * <random> distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : state_)
            word = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    bounded(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is overkill
        // here; modulo bias is negligible for bound << 2^64.
        return (*this)() % bound;
    }

    /** Standard normal via Marsaglia polar method. */
    double gaussian();

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_RNG_H
