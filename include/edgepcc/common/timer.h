/**
 * @file
 * Wall-clock timing helper.
 */

#ifndef EDGEPCC_COMMON_TIMER_H
#define EDGEPCC_COMMON_TIMER_H

#include <chrono>

namespace edgepcc {

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto now = Clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_TIMER_H
