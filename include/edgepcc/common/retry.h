/**
 * @file
 * Shared bounded-exponential-backoff policy.
 *
 * Two independent loss-recovery loops grew the same retry shape:
 * the NACK/retransmit loop (stream_session.cpp, modelled backoff
 * doubling per round) and the serve-layer circuit breaker
 * (quarantine re-probe intervals). This policy factors the math out
 * so both sides agree on what "exponential backoff" means and tests
 * can pin one implementation.
 *
 * Deterministic: the optional jitter is drawn from a seeded
 * splitmix64 keyed by (seed, attempt), never from wall clock or a
 * shared RNG stream, so a given policy always produces the same
 * backoff sequence.
 */

#ifndef EDGEPCC_COMMON_RETRY_H
#define EDGEPCC_COMMON_RETRY_H

#include <cstdint>

namespace edgepcc {

/** Bounded exponential backoff with optional seeded jitter. */
struct RetryPolicy {
    /** Total attempts allowed (first try included). */
    int max_attempts = 3;

    /** Backoff before attempt 2 (i.e. after the first failure). */
    double initial_backoff_s = 0.008;

    /** Growth factor per further attempt. */
    double multiplier = 2.0;

    /** Ceiling on any single backoff (pre-jitter). */
    double max_backoff_s = 10.0;

    /** Fractional jitter in [0, 1): each backoff is scaled by a
     *  seeded draw from [1 - jitter, 1 + jitter]. 0 = none. */
    double jitter = 0.0;
    std::uint64_t seed = 1;

    /**
     * Backoff after `attempt` consecutive failures (1-based):
     * min(initial * multiplier^(attempt-1), max) * jitterFor(attempt).
     * Values < 1 are treated as 1.
     */
    double backoffFor(int attempt) const;

    /** Seeded jitter multiplier for one attempt; 1.0 when
     *  jitter == 0. Depends only on (seed, attempt). */
    double jitterFor(int attempt) const;

    /** Sum of backoffFor(1..attempts); the worst-case modelled
     *  latency a caller can spend before giving up. */
    double totalBackoff(int attempts) const;

    /** True once `attempts_made` attempts have been used up. */
    bool
    exhausted(int attempts_made) const
    {
        return attempts_made >= max_attempts;
    }
};

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_RETRY_H
