/**
 * @file
 * Lightweight error-reporting types used across EdgePCC.
 *
 * EdgePCC does not use exceptions on codec hot paths; fallible
 * operations return a Status (or Expected<T>) that callers must check.
 */

#ifndef EDGEPCC_COMMON_STATUS_H
#define EDGEPCC_COMMON_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace edgepcc {

/** Broad error categories, patterned after absl::StatusCode. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kFailedPrecondition,
    kDataLoss,
    kCorruptBitstream,
    kUnimplemented,
    kInternal,
    kNotFound,
    kIoError,
    kResourceExhausted,
};

/** Human-readable name for a StatusCode. */
const char *statusCodeName(StatusCode code);

/**
 * Result of a fallible operation: a code plus an optional message.
 *
 * A default-constructed Status is OK. Statuses are cheap to copy when
 * OK (no message allocation).
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == StatusCode::kOk; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Formats "CODE: message" for logs and test failures. */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/** Convenience constructors mirroring the common codes. */
Status invalidArgument(std::string message);
Status outOfRange(std::string message);
Status failedPrecondition(std::string message);
Status dataLoss(std::string message);
Status corruptBitstream(std::string message);
Status unimplemented(std::string message);
Status internalError(std::string message);
Status notFound(std::string message);
Status ioError(std::string message);
Status resourceExhausted(std::string message);

/**
 * Value-or-error wrapper for functions that produce a T.
 *
 * Modeled on std::expected (not yet available in the target
 * toolchain's standard library at C++20).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Status status) : status_(std::move(status))
    {
        assert(!status_.isOk() && "Expected from OK status needs a value");
    }

    bool hasValue() const { return value_.has_value(); }
    explicit operator bool() const { return hasValue(); }

    const Status &status() const { return status_; }

    T &value()
    {
        assert(hasValue());
        return *value_;
    }
    const T &value() const
    {
        assert(hasValue());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Moves the value out; only valid when hasValue(). */
    T takeValue()
    {
        assert(hasValue());
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

}  // namespace edgepcc

/**
 * Propagates a non-OK Status from an expression to the caller.
 * Usage: EDGEPCC_RETURN_IF_ERROR(writer.flush());
 */
#define EDGEPCC_RETURN_IF_ERROR(expr)                                       \
    do {                                                                    \
        ::edgepcc::Status edgepcc_status_ = (expr);                         \
        if (!edgepcc_status_.isOk())                                        \
            return edgepcc_status_;                                        \
    } while (false)

#endif  // EDGEPCC_COMMON_STATUS_H
