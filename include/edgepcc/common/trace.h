/**
 * @file
 * Lightweight scoped-span tracing and cross-frame stage statistics.
 *
 * Two layers of observability exist in EdgePCC:
 *  - WorkRecorder/StageProfile (work_counters.h) records *what a
 *    stage did* (kernels, ops, bytes) for the edge device model;
 *  - the Tracer here records *when spans ran* on the host, across
 *    threads, for timeline inspection and overhead-free production
 *    builds: with tracing disabled a span costs one relaxed atomic
 *    load.
 *
 * Span streams export to the chrome://tracing "traceEvents" JSON
 * format (load in chrome://tracing or https://ui.perfetto.dev), and
 * StageStatsAggregator folds per-stage samples collected over many
 * frames into p50/p95/max percentiles for BENCH_results.json (see
 * tools/bench_runner and docs/OBSERVABILITY.md for the schemas).
 */

#ifndef EDGEPCC_COMMON_TRACE_H
#define EDGEPCC_COMMON_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "edgepcc/common/sync.h"
#include "edgepcc/common/work_counters.h"

namespace edgepcc {

/**
 * One completed span. `name` must outlive the tracer; every call
 * site passes a string literal, which makes recording allocation
 * free.
 */
struct TraceEvent {
    const char *name = "";
    double start_s = 0.0;  ///< seconds on the process trace clock
    double dur_s = 0.0;
    std::uint32_t tid = 0;  ///< dense per-process thread id
};

/**
 * Process-wide span collector.
 *
 * Disabled by default. All methods are thread-safe; recording takes
 * one short mutex-protected append (spans are stage-grained — tens
 * per frame — so contention is negligible, and the mutex keeps the
 * collector trivially TSan-clean).
 */
class Tracer
{
  public:
    static Tracer &global();

    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Span verbosity. Level 0 (default) records only stage-grained
     * spans; level >= kVerbosityKernel additionally records
     * per-kernel spans (Morton batches, radix passes, GF(256)
     * parity rows, ...), which are far more numerous — keep them
     * off unless inspecting a kernel timeline. Spans opt in by
     * passing their level to ScopedTrace; the check costs one extra
     * relaxed load only while tracing is enabled.
     */
    void
    setVerbosity(int level)
    {
        verbosity_.store(level, std::memory_order_relaxed);
    }
    int
    verbosity() const
    {
        return verbosity_.load(std::memory_order_relaxed);
    }

    /** Verbosity level at which per-kernel spans record. */
    static constexpr int kVerbosityKernel = 1;

    /** Seconds on the tracer's monotonic clock. */
    static double nowSeconds();

    /** Appends one completed span (callers use ScopedTrace). */
    void record(const char *name, double start_s, double dur_s);

    /** Copies out all recorded events, in recording order. */
    std::vector<TraceEvent> events() const;

    /** Removes every recorded event. */
    void clear();

    /** Events recorded so far. */
    std::size_t eventCount() const;

    /** Dense id of the calling thread (0 = first thread seen). */
    static std::uint32_t currentThreadId();

  private:
    Tracer() = default;

    mutable Mutex mutex_;
    std::vector<TraceEvent> events_ EDGEPCC_GUARDED_BY(mutex_);
    std::atomic<bool> enabled_{false};
    std::atomic<int> verbosity_{0};
};

/**
 * RAII span: records [construction, destruction) into the global
 * tracer when tracing is enabled. `name` must be a string literal
 * (or otherwise outlive the tracer).
 */
class ScopedTrace
{
  public:
    /** `min_verbosity > 0` makes the span conditional on the
     *  tracer's verbosity knob (per-kernel spans pass
     *  Tracer::kVerbosityKernel); stage spans use the default. */
    explicit ScopedTrace(const char *name, int min_verbosity = 0)
    {
        if (Tracer::global().enabled() &&
            Tracer::global().verbosity() >= min_verbosity) {
            name_ = name;
            start_s_ = Tracer::nowSeconds();
        }
    }
    ~ScopedTrace() { stop(); }

    /** Ends the span early (idempotent; destruction is a no-op
     *  afterwards). */
    void
    stop()
    {
        if (name_ != nullptr) {
            Tracer::global().record(
                name_, start_s_, Tracer::nowSeconds() - start_s_);
            name_ = nullptr;
        }
    }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    const char *name_ = nullptr;  ///< null = tracing was disabled
    double start_s_ = 0.0;
};

/**
 * Combined hook for the hot paths: one scope both opens a
 * WorkRecorder stage (device model) and a trace span (host
 * timeline). Either side may be absent (null recorder / tracing
 * disabled) at no cost to the other.
 */
class TracedStage
{
  public:
    TracedStage(WorkRecorder *recorder, const char *name)
        : stage_(recorder, name), trace_(name)
    {
    }

  private:
    ScopedStage stage_;
    ScopedTrace trace_;
};

/** Writes events as a chrome://tracing JSON document. */
void writeChromeTrace(const std::vector<TraceEvent> &events,
                      std::ostream &out);

/** Percentile summary of a sample set. */
struct PercentileStats {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    double total = 0.0;
};

/** Summarizes `samples` (order irrelevant; empty -> zeros). */
PercentileStats computePercentiles(std::vector<double> samples);

/**
 * Folds per-stage metrics across frames into percentile summaries.
 *
 * Feed it one addProfile() (or addStage()) call per encoded/decoded
 * frame; modelled Jetson seconds are supplied by the caller because
 * the device model lives above this module (src/platform).
 *
 * Thread-safe: concurrent sessions may feed one aggregator (the
 * multi-tenant bench does); samples interleave but per-stage
 * accumulation is race-free. First-seen stage order then depends on
 * the interleaving — aggregate from one thread when a stable order
 * matters.
 */
class StageStatsAggregator
{
  public:
    struct StageSummary {
        std::string name;
        std::size_t frames = 0;          ///< samples seen
        PercentileStats host_s;          ///< measured host seconds
        PercentileStats model_s;         ///< modelled Jetson seconds
        std::uint64_t total_ops = 0;
        std::uint64_t total_bytes = 0;
    };

    StageStatsAggregator() = default;

    /** Movable so result structs can carry one by value. Locks the
     *  source; the destination is under construction and private. */
    StageStatsAggregator(StageStatsAggregator &&other) noexcept
    {
        MutexLock lock(other.mutex_);
        stages_ = std::move(other.stages_);
        order_ = std::move(other.order_);
    }
    StageStatsAggregator &
    operator=(StageStatsAggregator &&) = delete;

    /** Adds one stage sample. model_s < 0 means "not modelled". */
    void addStage(const std::string &name, double host_s,
                  double model_s, std::uint64_t ops,
                  std::uint64_t bytes);

    /** Adds every stage of one recorded frame profile. */
    void addProfile(const PipelineProfile &profile);

    /** Summaries in first-seen stage order. */
    std::vector<StageSummary> summaries() const;

    bool
    empty() const
    {
        MutexLock lock(mutex_);
        return stages_.empty();
    }

  private:
    struct Accum {
        std::vector<double> host_samples;
        std::vector<double> model_samples;
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
    };

    void addStageLocked(const std::string &name, double host_s,
                        double model_s, std::uint64_t ops,
                        std::uint64_t bytes)
        EDGEPCC_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::map<std::string, Accum> stages_
        EDGEPCC_GUARDED_BY(mutex_);
    /** First-seen insertion order. */
    std::vector<std::string> order_ EDGEPCC_GUARDED_BY(mutex_);
};

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_TRACE_H
