/**
 * @file
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78),
 * the checksum guarding every transport chunk of the resilient
 * streaming layer (edgepcc/stream/chunk_stream.h). Chosen over plain
 * CRC32 for its better burst-error detection; implemented as a
 * 4-bit-sliced table so the table stays cache-resident on edge-class
 * cores.
 */

#ifndef EDGEPCC_COMMON_CRC32C_H
#define EDGEPCC_COMMON_CRC32C_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgepcc {

/**
 * CRC32C of `size` bytes starting at `data`, with `seed` as the
 * incremental state (pass the previous return value to continue a
 * running checksum across buffers; 0 starts a fresh one).
 */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t
crc32c(const std::vector<std::uint8_t> &bytes,
       std::uint32_t seed = 0)
{
    return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_CRC32C_H
