/**
 * @file
 * GF(2^8) arithmetic for the Reed-Solomon erasure codec.
 *
 * The field is GF(256) with the primitive reduction polynomial
 * x^8 + x^4 + x^3 + x^2 + 1 (0x11d) and generator 2 — the standard
 * choice of storage erasure codes. Multiplication and inversion go
 * through log/exp tables built once at first use; the tables are
 * immutable after construction, so lookups are thread-safe and
 * allocation free.
 *
 * The bulk kernel (`dst[i] ^= coeff * src[i]` over whole parity
 * rows) does NOT live here: it is `gfMulAddBytes` in
 * platform/simd.h, dispatched scalar/SSE4/AVX2 like every other hot
 * kernel. This header is the scalar reference arithmetic those
 * kernels (and the matrix solve in stream/rs_fec.cpp) are defined
 * against.
 */

#ifndef EDGEPCC_COMMON_GF256_H
#define EDGEPCC_COMMON_GF256_H

#include <cstdint>

namespace edgepcc {

/** Log/exp tables for GF(256) over 0x11d, generator 2. */
struct Gf256Tables {
    /** exp[i] = 2^i; doubled to 510 entries so gfMul can index
     *  log[a] + log[b] without a modulo. */
    std::uint8_t exp[510];
    /** log[a] for a in [1, 255]; log[0] is unused (set to 0). */
    std::uint8_t log[256];
};

/** The process-wide tables (built on first call, then immutable). */
const Gf256Tables &gf256Tables();

/** a * b in GF(256). */
inline std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Gf256Tables &t = gf256Tables();
    return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

/** Multiplicative inverse; gfInv(0) is undefined (returns 0). */
inline std::uint8_t
gfInv(std::uint8_t a)
{
    if (a == 0)
        return 0;
    const Gf256Tables &t = gf256Tables();
    return t.exp[255 - t.log[a]];
}

/** a / b in GF(256); b == 0 is undefined (returns 0). */
inline std::uint8_t
gfDiv(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Gf256Tables &t = gf256Tables();
    return t.exp[static_cast<unsigned>(t.log[a]) + 255 -
                 t.log[b]];
}

/**
 * Bitwise reference multiply (Russian-peasant, no tables). Exists
 * so tests can cross-check the tables against the polynomial
 * definition; production code uses gfMul.
 */
std::uint8_t gfMulSlow(std::uint8_t a, std::uint8_t b);

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_GF256_H
