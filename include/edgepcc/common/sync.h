/**
 * @file
 * Annotated synchronization primitives + Clang Thread Safety
 * Analysis macros.
 *
 * Every locking site in EdgePCC goes through the `Mutex`/`MutexLock`/
 * `CondVar` wrappers below so that Clang's `-Wthread-safety` analysis
 * (enabled by the `thread-safety` CMake preset / `EDGEPCC_THREAD_SAFETY`
 * option) can prove, at compile time, that shared state is only
 * touched under its lock:
 *
 *   class Queue {
 *     public:
 *       void push(Item item) {
 *           MutexLock lock(mutex_);
 *           items_.push_back(std::move(item));   // OK: lock held
 *       }
 *     private:
 *       void drainLocked() EDGEPCC_REQUIRES(mutex_);
 *       Mutex mutex_;
 *       std::deque<Item> items_ EDGEPCC_GUARDED_BY(mutex_);
 *   };
 *
 * On non-clang compilers (and clang without the analysis) all macros
 * expand to nothing and the wrappers compile to the underlying
 * std::mutex / std::condition_variable_any operations.
 *
 * Conventions (see docs/STATIC_ANALYSIS.md for the full catalog):
 *  - shared fields carry `EDGEPCC_GUARDED_BY(mutex_)`;
 *  - internal helpers that assume the lock carry
 *    `EDGEPCC_REQUIRES(mutex_)` and a `Locked` name suffix;
 *  - public methods take `MutexLock` and never call other public
 *    locking methods of the same object (no recursive locking);
 *  - `EDGEPCC_NO_THREAD_SAFETY_ANALYSIS` is an escape hatch of last
 *    resort and is banned in `parallel/`, `common/` and `stream/`.
 */

#ifndef EDGEPCC_COMMON_SYNC_H
#define EDGEPCC_COMMON_SYNC_H

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------
// Thread-safety annotation macros (no-ops outside clang).
// ---------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define EDGEPCC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EDGEPCC_THREAD_ANNOTATION(x)  // no-op
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define EDGEPCC_CAPABILITY(x) EDGEPCC_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its constructor and
 *  releases in its destructor. */
#define EDGEPCC_SCOPED_CAPABILITY \
    EDGEPCC_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written while holding `x`. */
#define EDGEPCC_GUARDED_BY(x) EDGEPCC_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be dereferenced while holding `x`. */
#define EDGEPCC_PT_GUARDED_BY(x) \
    EDGEPCC_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock-ordering declarations (deadlock prevention). */
#define EDGEPCC_ACQUIRED_BEFORE(...) \
    EDGEPCC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EDGEPCC_ACQUIRED_AFTER(...) \
    EDGEPCC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the capability (exclusive / shared). */
#define EDGEPCC_REQUIRES(...) \
    EDGEPCC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EDGEPCC_REQUIRES_SHARED(...) \
    EDGEPCC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and does not release it. */
#define EDGEPCC_ACQUIRE(...) \
    EDGEPCC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EDGEPCC_ACQUIRE_SHARED(...) \
    EDGEPCC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases a held capability. */
#define EDGEPCC_RELEASE(...) \
    EDGEPCC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EDGEPCC_RELEASE_SHARED(...) \
    EDGEPCC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `b`. */
#define EDGEPCC_TRY_ACQUIRE(...) \
    EDGEPCC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (non-reentrancy). */
#define EDGEPCC_EXCLUDES(...) \
    EDGEPCC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held. */
#define EDGEPCC_ASSERT_CAPABILITY(x) \
    EDGEPCC_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the capability guarding it. */
#define EDGEPCC_RETURN_CAPABILITY(x) \
    EDGEPCC_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables the analysis for one function. Banned in
 *  parallel/, common/ and stream/ (enforced by edgepcc-lint). */
#define EDGEPCC_NO_THREAD_SAFETY_ANALYSIS \
    EDGEPCC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace edgepcc {

/**
 * Annotated exclusive mutex over std::mutex.
 *
 * Prefer `MutexLock` for scoped locking; the raw lock()/unlock()
 * pair exists for the rare hand-over-hand pattern and for the
 * condition-variable wait loop.
 */
class EDGEPCC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() EDGEPCC_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() EDGEPCC_RELEASE()
    {
        mutex_.unlock();
    }

    /** @return true when the lock was acquired. */
    bool
    tryLock() EDGEPCC_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/**
 * RAII scoped lock on a Mutex (the workhorse). Analysis-visible:
 * guarded fields are accessible for exactly the lifetime of the
 * MutexLock.
 */
class EDGEPCC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) EDGEPCC_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() EDGEPCC_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable bound to the annotated Mutex.
 *
 * wait() requires the mutex held (the analysis models the atomic
 * unlock-sleep-relock as "held throughout", which is sound for
 * guarded-field access: the caller re-checks its predicate under the
 * lock). Use an explicit predicate loop rather than a predicate
 * lambda — lambdas do not inherit the enclosing function's lock set:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)
 *         cond_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically releases `mutex`, sleeps, reacquires. Spurious
     *  wakeups happen: always wait in a predicate loop. */
    void
    wait(Mutex &mutex) EDGEPCC_REQUIRES(mutex)
    {
        cv_.wait(mutex.mutex_);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    // condition_variable_any waits on any BasicLockable, so the
    // annotated Mutex's std::mutex is used directly (no unique_lock
    // adoption dance).
    std::condition_variable_any cv_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_SYNC_H
