/**
 * @file
 * Minimal leveled logging for EdgePCC tools, benches and examples.
 *
 * The library itself logs sparingly (codec hot paths never log);
 * benches and examples use it for progress and reporting.
 */

#ifndef EDGEPCC_COMMON_LOG_H
#define EDGEPCC_COMMON_LOG_H

#include <sstream>
#include <string>

namespace edgepcc {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/** Global minimum level; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emits one formatted line to stderr (thread-safe). */
void logMessage(LogLevel level, const std::string &message);

namespace detail {

/** Stream-style accumulator that emits on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { logMessage(level_, stream_.str()); }

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    template <typename T>
    LogLine &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

}  // namespace edgepcc

#define EDGEPCC_LOG(level) ::edgepcc::detail::LogLine(level)
#define EDGEPCC_LOG_DEBUG EDGEPCC_LOG(::edgepcc::LogLevel::kDebug)
#define EDGEPCC_LOG_INFO EDGEPCC_LOG(::edgepcc::LogLevel::kInfo)
#define EDGEPCC_LOG_WARN EDGEPCC_LOG(::edgepcc::LogLevel::kWarn)
#define EDGEPCC_LOG_ERROR EDGEPCC_LOG(::edgepcc::LogLevel::kError)

#endif  // EDGEPCC_COMMON_LOG_H
