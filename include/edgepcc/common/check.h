/**
 * @file
 * Invariant and bitstream-validation macros.
 *
 * Two distinct failure classes exist in a codec and they must not be
 * conflated:
 *
 *  - **Untrusted input** (truncated or bit-flipped bitstreams).
 *    Rejecting it is normal operation: `EDGEPCC_CHECK*` returns a
 *    `Status` (typically `kCorruptBitstream`) carrying the failing
 *    file:line so a misbehaving stream is diagnosable in production
 *    logs. These checks are ALWAYS on, in every build type — a
 *    decoder must never trade safety for speed.
 *
 *  - **Programmer error** (broken internal invariants). These abort
 *    with a file:line report when `EDGEPCC_DCHECK_ENABLED` is
 *    defined (sanitizer presets define it; see
 *    cmake/Sanitizers.cmake) and compile to nothing in release
 *    builds. `EDGEPCC_DCHECK` is the hardened replacement for bare
 *    `assert`: it fires under the asan/ubsan/tsan test matrix where
 *    a crash is loud and attributable, instead of silently
 *    disappearing under NDEBUG.
 */

#ifndef EDGEPCC_COMMON_CHECK_H
#define EDGEPCC_COMMON_CHECK_H

#include <cstddef>
#include <string>

#include "edgepcc/common/status.h"

namespace edgepcc {

/**
 * Upper bound on any element count a decoder trusts from a stream
 * header before allocating (points, channel values, blocks). Real
 * frames are well under a million points; a corrupt varint can claim
 * 2^60 and must fail as `kCorruptBitstream`, not as an OOM abort
 * inside `std::vector::resize`.
 */
constexpr std::size_t kMaxDecodeItems = std::size_t{1} << 24;

namespace detail {

/** Builds "file:line: message" for check diagnostics. */
std::string checkMessage(const char *file, int line,
                         const char *message);

/** Prints "file:line: DCHECK failed: cond" and aborts. */
[[noreturn]] void dcheckFail(const char *file, int line,
                             const char *condition);

}  // namespace detail
}  // namespace edgepcc

/**
 * Validates data-dependent input; on failure returns `status_expr`
 * from the enclosing function (which must return `Status` or
 * `Expected<T>`). Always enabled.
 */
#define EDGEPCC_CHECK(cond, status_expr)                                    \
    do {                                                                    \
        if (!(cond)) [[unlikely]]                                           \
            return (status_expr);                                           \
    } while (false)

/**
 * Validates bitstream-derived data; on failure returns
 * `Status(kCorruptBitstream)` tagged with file:line and `message`.
 * The workhorse check at decoder entry points. Always enabled.
 */
#define EDGEPCC_CHECK_CORRUPT(cond, message)                                \
    EDGEPCC_CHECK(cond,                                                     \
                  ::edgepcc::corruptBitstream(                              \
                      ::edgepcc::detail::checkMessage(                      \
                          __FILE__, __LINE__, message)))

/**
 * Validates caller-supplied arguments; on failure returns
 * `Status(kInvalidArgument)` tagged with file:line. Always enabled.
 */
#define EDGEPCC_CHECK_ARG(cond, message)                                    \
    EDGEPCC_CHECK(cond,                                                     \
                  ::edgepcc::invalidArgument(                               \
                      ::edgepcc::detail::checkMessage(                      \
                          __FILE__, __LINE__, message)))

/**
 * Internal invariant: aborts with file:line under
 * `EDGEPCC_DCHECK_ENABLED` (the sanitizer presets), compiles to a
 * no-op otherwise. The condition is never evaluated in release
 * builds but stays type-checked.
 */
#if defined(EDGEPCC_DCHECK_ENABLED)
#define EDGEPCC_DCHECK(cond)                                                \
    ((cond) ? static_cast<void>(0)                                          \
            : ::edgepcc::detail::dcheckFail(__FILE__, __LINE__, #cond))
#else
#define EDGEPCC_DCHECK(cond)                                                \
    (true ? static_cast<void>(0) : static_cast<void>(cond))
#endif

#endif  // EDGEPCC_COMMON_CHECK_H
