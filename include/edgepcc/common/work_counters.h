/**
 * @file
 * Instrumentation that feeds the edge-device timing/energy model.
 *
 * The paper's evaluation ran on a Jetson AGX Xavier; this repository
 * runs on a host CPU. Every pipeline stage therefore records *what it
 * did* (kernels launched, work items, arithmetic ops, bytes moved,
 * parallel span), and src/platform converts those counts into modelled
 * Jetson latency and energy. Host wall-clock is recorded alongside so
 * native algorithmic speedups stay visible.
 */

#ifndef EDGEPCC_COMMON_WORK_COUNTERS_H
#define EDGEPCC_COMMON_WORK_COUNTERS_H

#include <cstdint>
#include <string>
#include <vector>

namespace edgepcc {

/** Where a kernel executes on the modelled edge device. */
enum class ExecResource {
    kCpuSequential,  ///< one ARM core, serial dependency chain
    kCpuParallel,    ///< multi-threaded across the ARM cluster
    kGpu,            ///< data-parallel kernel on the Volta GPU
};

const char *execResourceName(ExecResource resource);

/**
 * One kernel invocation (or a batch of identical invocations) as seen
 * by the device model.
 */
struct KernelWork {
    std::string name;         ///< stable id, e.g. "bm.diff_squared"
    ExecResource resource = ExecResource::kCpuSequential;
    std::uint64_t invocations = 1;  ///< number of launches (overhead)
    std::uint64_t items = 0;        ///< parallel work items
    std::uint64_t ops = 0;          ///< arithmetic ops across all items
    std::uint64_t bytes = 0;        ///< bytes read + written
};

/** One pipeline stage: a list of kernels plus measured host time. */
struct StageProfile {
    std::string name;
    std::vector<KernelWork> kernels;
    double host_seconds = 0.0;

    std::uint64_t totalOps() const;
    std::uint64_t totalBytes() const;
};

/** Profile of a full encode/decode pass. */
struct PipelineProfile {
    std::vector<StageProfile> stages;

    double hostSeconds() const;
    /** Sum of host seconds for stages whose name has the prefix. */
    double hostSecondsWithPrefix(const std::string &prefix) const;
};

/**
 * Collects StageProfiles while a codec runs.
 *
 * Codecs accept a `WorkRecorder *` (nullable; null means "don't
 * record"). Stages are opened/closed in LIFO-free, strictly
 * sequential order: beginStage() closes nothing, endStage() finalizes
 * the stage opened last. Recording is not thread-safe; parallel
 * kernels aggregate their counts locally and record once after the
 * parallel region completes.
 */
class WorkRecorder
{
  public:
    /** Opens a stage; host timing starts now. */
    void beginStage(const std::string &name);

    /** Closes the currently open stage and stores it. */
    void endStage();

    /** Adds a kernel record to the currently open stage.
     *  A standalone kernel outside any stage opens an implicit stage
     *  named after the kernel. */
    void addKernel(KernelWork work);

    const PipelineProfile &profile() const { return profile_; }
    PipelineProfile takeProfile();

    void clear();

  private:
    PipelineProfile profile_;
    bool stage_open_ = false;
    StageProfile open_stage_;
    double open_stage_start_ = 0.0;

    static double nowSeconds();
};

/** RAII helper: beginStage/endStage around a scope. */
class ScopedStage
{
  public:
    ScopedStage(WorkRecorder *recorder, const std::string &name)
        : recorder_(recorder)
    {
        if (recorder_)
            recorder_->beginStage(name);
    }
    ~ScopedStage()
    {
        if (recorder_)
            recorder_->endStage();
    }

    ScopedStage(const ScopedStage &) = delete;
    ScopedStage &operator=(const ScopedStage &) = delete;

  private:
    WorkRecorder *recorder_;
};

/** Records a kernel iff the recorder is non-null. */
inline void
recordKernel(WorkRecorder *recorder, KernelWork work)
{
    if (recorder)
        recorder->addKernel(std::move(work));
}

}  // namespace edgepcc

#endif  // EDGEPCC_COMMON_WORK_COUNTERS_H
