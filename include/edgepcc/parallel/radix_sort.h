/**
 * @file
 * LSD radix sort for 64-bit keys with a 32-bit payload.
 *
 * This is the host-side equivalent of the GPU radix sort the paper
 * uses to order points by Morton code. Keys up to `key_bits` wide are
 * sorted in 8-bit digits; the payload is typically the original point
 * index.
 */

#ifndef EDGEPCC_PARALLEL_RADIX_SORT_H
#define EDGEPCC_PARALLEL_RADIX_SORT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgepcc {

/** (Morton code, original index) pair sorted by radixSortPairs. */
struct KeyIndex {
    std::uint64_t key;
    std::uint32_t index;
};

/**
 * Stable LSD radix sort of `pairs` by key, ascending.
 *
 * @param pairs    the data to sort in place.
 * @param key_bits number of significant low bits in the keys; digits
 *                 above it are skipped. Must be in [1, 64].
 */
void radixSortPairs(std::vector<KeyIndex> &pairs, int key_bits = 64);

/** Stable LSD radix sort of raw 64-bit keys, ascending. */
void radixSortKeys(std::vector<std::uint64_t> &keys, int key_bits = 64);

/**
 * Stable LSD radix sort of parallel SoA arrays: `keys[i]` travels
 * with `values[i]`. This is the hot-path variant (the Morton order
 * stage sorts codes and the permutation directly, with no KeyIndex
 * AoS staging): histograms for every pass are built in one sweep
 * over the keys, digit extraction in the scatter is SIMD-dispatched
 * (platform/simd.h), and scratch comes from the bound FrameArena
 * (platform/arena.h) when one is active — zero heap traffic in
 * steady state — falling back to heap vectors otherwise.
 *
 * @param keys     n 64-bit keys, sorted ascending in place.
 * @param values   n 32-bit payloads, permuted alongside the keys.
 * @param n        element count.
 * @param key_bits significant low key bits, in [1, 64].
 */
void radixSortKeysValues(std::uint64_t *keys,
                         std::uint32_t *values, std::size_t n,
                         int key_bits = 64);

}  // namespace edgepcc

#endif  // EDGEPCC_PARALLEL_RADIX_SORT_H
