/**
 * @file
 * Fixed-size worker pool used as the "GPU substitute" runtime.
 *
 * The paper offloads data-parallel kernels (Morton generation, octree
 * construction, segment residuals, block matching) to a 512-core Volta
 * GPU. This repository executes the same kernels with a thread pool;
 * the device model (src/platform) charges them to the modelled GPU
 * based on their recorded work, independent of how many host threads
 * actually ran.
 */

#ifndef EDGEPCC_PARALLEL_THREAD_POOL_H
#define EDGEPCC_PARALLEL_THREAD_POOL_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "edgepcc/common/sync.h"

namespace edgepcc {

/**
 * Scheduling class for submitted tasks. High-priority tasks are
 * dispatched before any queued normal task; within a class, order is
 * FIFO. The serve layer submits interactive-tenant encodes as kHigh
 * so bulk tenants cannot head-of-line block them on a busy pool.
 */
enum class TaskPriority : std::uint8_t {
    kNormal = 0,
    kHigh = 1,
};

/**
 * A simple task-queue thread pool.
 *
 * Tasks are std::function<void()>; submission is thread-safe. The
 * pool with zero workers degenerates to inline execution, which keeps
 * single-core hosts (and deterministic tests) fast.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; 0 means "execute inline". */
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /** Enqueues a task; runs inline when the pool has no workers. */
    void submit(std::function<void()> task);

    /** Enqueues a task in the given scheduling class. */
    void submit(std::function<void()> task, TaskPriority priority);

    /**
     * Blocks until every submitted task has finished. While waiting,
     * the calling thread helps drain the queue, so `wait()` from a
     * caller that just submitted work makes progress even when all
     * workers are busy.
     *
     * Must not be called from inside a pool task: the caller's own
     * task counts as in flight, so the global counter can never
     * reach zero (use `parallelFor`, which waits on a per-call latch
     * and is safe to nest).
     */
    void wait();

    /**
     * Pops and runs one queued task on the calling thread.
     * @return false when the queue was empty.
     *
     * This is the work-stealing hook the data-parallel primitives
     * use to wait without blocking a worker (see parallel_for.h).
     */
    bool tryRunOne();

    /**
     * Process-wide default pool, sized to the host's hardware
     * concurrency minus one (0 workers on a single-core host).
     */
    static ThreadPool &global();

    /**
     * Redirects global() to `pool` (nullptr restores the default).
     * For tests and benches that need a fixed worker count (e.g. the
     * 1-vs-N-thread determinism suite); swap only while no codec is
     * running — concurrent global() users would race the redirect.
     */
    static void setGlobalOverride(ThreadPool *pool);

  private:
    void workerLoop();

    /** Pops the next task; returns false when the queue is empty. */
    bool popTaskLocked(std::function<void()> &task)
        EDGEPCC_REQUIRES(mutex_);

    /** Marks one task finished, waking waiters at zero. */
    void finishTask();

    /** Immutable after construction (no guard needed). */
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar task_available_;
    CondVar all_done_;
    std::deque<std::function<void()>> queue_
        EDGEPCC_GUARDED_BY(mutex_);
    std::deque<std::function<void()>> high_queue_
        EDGEPCC_GUARDED_BY(mutex_);
    std::size_t in_flight_ EDGEPCC_GUARDED_BY(mutex_) = 0;
    bool shutting_down_ EDGEPCC_GUARDED_BY(mutex_) = false;
};

/** RAII global-pool redirect: builds a pool of `num_threads` workers
 *  and makes it the global() pool for the enclosing scope. */
class ScopedGlobalPool
{
  public:
    explicit ScopedGlobalPool(std::size_t num_threads)
        : pool_(num_threads)
    {
        ThreadPool::setGlobalOverride(&pool_);
    }
    ~ScopedGlobalPool() { ThreadPool::setGlobalOverride(nullptr); }

    ScopedGlobalPool(const ScopedGlobalPool &) = delete;
    ScopedGlobalPool &operator=(const ScopedGlobalPool &) = delete;

    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool pool_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_PARALLEL_THREAD_POOL_H
