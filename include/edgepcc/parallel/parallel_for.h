/**
 * @file
 * Data-parallel primitives (`parallelFor`, `parallelReduce`) over the
 * thread pool. These mirror the CUDA kernels of the paper's GPU
 * implementation.
 *
 * Each call waits on its own completion latch rather than the pool's
 * global task counter, so (a) concurrent callers never wait on each
 * other's work and (b) nesting a primitive inside a pool task cannot
 * deadlock: the waiter helps drain the queue while its latch is open.
 */

#ifndef EDGEPCC_PARALLEL_PARALLEL_FOR_H
#define EDGEPCC_PARALLEL_PARALLEL_FOR_H

#include <algorithm>
#include <cstddef>
#include <latch>
#include <vector>

#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {

namespace detail {

/**
 * Blocks until `latch` opens. Runs queued pool tasks on this thread
 * while waiting, which keeps nested calls (a chunk body that itself
 * uses parallelFor) deadlock-free and puts the caller to work
 * instead of sleeping.
 */
inline void
waitHelping(std::latch &latch, ThreadPool &pool)
{
    while (!latch.try_wait()) {
        if (!pool.tryRunOne()) {
            // Queue drained: our still-open tasks are running on
            // workers; block until their count_down calls arrive.
            latch.wait();
            return;
        }
    }
}

/**
 * Chunk geometry shared by the primitives: at least `grain` items
 * per chunk, at most one chunk per (worker + caller). Returns the
 * chunk size; a single chunk means "run inline" — submitting one
 * task to the pool would pay queue overhead for zero parallelism.
 */
inline std::size_t
chunkSize(std::size_t n, std::size_t workers, std::size_t grain)
{
    const std::size_t parts = workers + 1;  // workers + caller
    return std::max<std::size_t>(std::max<std::size_t>(grain, 1),
                                 (n + parts - 1) / parts);
}

}  // namespace detail

/**
 * Applies `body(i)` for i in [begin, end) using the pool.
 *
 * The iteration space is split into contiguous chunks of at least
 * `grain` elements so per-task overhead stays negligible. `body` must
 * be safe to invoke concurrently for distinct indices. Safe to call
 * from inside another parallel primitive's body.
 */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, const Body &body,
            ThreadPool &pool = ThreadPool::global(),
            std::size_t grain = 1024)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t chunk =
        detail::chunkSize(n, pool.numThreads(), grain);
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    if (pool.numThreads() == 0 || num_chunks <= 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    std::latch latch(static_cast<std::ptrdiff_t>(num_chunks));
    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        pool.submit([lo, hi, &body, &latch] {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
            latch.count_down();
        });
    }
    detail::waitHelping(latch, pool);
}

/**
 * Chunked variant: `body(lo, hi)` is called once per chunk, which lets
 * kernels keep per-chunk accumulators without false sharing.
 */
template <typename Body>
void
parallelForChunks(std::size_t begin, std::size_t end, const Body &body,
                  ThreadPool &pool = ThreadPool::global(),
                  std::size_t grain = 1024)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t chunk =
        detail::chunkSize(n, pool.numThreads(), grain);
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    if (pool.numThreads() == 0 || num_chunks <= 1) {
        body(begin, end);
        return;
    }
    std::latch latch(static_cast<std::ptrdiff_t>(num_chunks));
    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        pool.submit([lo, hi, &body, &latch] {
            body(lo, hi);
            latch.count_down();
        });
    }
    detail::waitHelping(latch, pool);
}

/**
 * Parallel reduction: combines `identity` with `mapper(i)` over
 * [begin, end) using the associative `combine`.
 */
template <typename T, typename Mapper, typename Combine>
T
parallelReduce(std::size_t begin, std::size_t end, T identity,
               const Mapper &mapper, const Combine &combine,
               ThreadPool &pool = ThreadPool::global(),
               std::size_t grain = 4096)
{
    if (begin >= end)
        return identity;
    const std::size_t n = end - begin;
    const std::size_t chunk =
        detail::chunkSize(n, pool.numThreads(), grain);
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    if (pool.numThreads() == 0 || num_chunks <= 1) {
        T acc = identity;
        for (std::size_t i = begin; i < end; ++i)
            acc = combine(acc, mapper(i));
        return acc;
    }
    std::vector<T> partials(num_chunks, identity);
    std::latch latch(static_cast<std::ptrdiff_t>(num_chunks));
    std::size_t index = 0;
    for (std::size_t lo = begin; lo < end; lo += chunk, ++index) {
        const std::size_t hi = std::min(end, lo + chunk);
        T *slot = &partials[index];
        pool.submit(
            [lo, hi, slot, identity, &mapper, &combine, &latch] {
                T acc = identity;
                for (std::size_t i = lo; i < hi; ++i)
                    acc = combine(acc, mapper(i));
                *slot = acc;
                latch.count_down();
            });
    }
    detail::waitHelping(latch, pool);
    T result = identity;
    for (const T &partial : partials)
        result = combine(result, partial);
    return result;
}

/**
 * Exclusive prefix sum over `values` (sequential; the device model
 * charges it as a log-depth GPU scan).
 * @return total sum.
 */
template <typename T>
T
exclusiveScan(std::vector<T> &values)
{
    T running{};
    for (auto &value : values) {
        T next = running + value;
        value = running;
        running = next;
    }
    return running;
}

}  // namespace edgepcc

#endif  // EDGEPCC_PARALLEL_PARALLEL_FOR_H
