/**
 * @file
 * Data-parallel primitives (`parallelFor`, `parallelReduce`) over the
 * thread pool. These mirror the CUDA kernels of the paper's GPU
 * implementation.
 */

#ifndef EDGEPCC_PARALLEL_PARALLEL_FOR_H
#define EDGEPCC_PARALLEL_PARALLEL_FOR_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {

/**
 * Applies `body(i)` for i in [begin, end) using the pool.
 *
 * The iteration space is split into contiguous chunks of at least
 * `grain` elements so per-task overhead stays negligible. `body` must
 * be safe to invoke concurrently for distinct indices.
 */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, const Body &body,
            ThreadPool &pool = ThreadPool::global(),
            std::size_t grain = 1024)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t workers = pool.numThreads() + 1;
    std::size_t chunk = std::max(grain, (n + workers - 1) / workers);
    if (workers == 1 || n <= grain) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        pool.submit([lo, hi, &body] {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        });
    }
    pool.wait();
}

/**
 * Chunked variant: `body(lo, hi)` is called once per chunk, which lets
 * kernels keep per-chunk accumulators without false sharing.
 */
template <typename Body>
void
parallelForChunks(std::size_t begin, std::size_t end, const Body &body,
                  ThreadPool &pool = ThreadPool::global(),
                  std::size_t grain = 1024)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t workers = pool.numThreads() + 1;
    std::size_t chunk = std::max(grain, (n + workers - 1) / workers);
    if (workers == 1 || n <= grain) {
        body(begin, end);
        return;
    }
    for (std::size_t lo = begin; lo < end; lo += chunk) {
        const std::size_t hi = std::min(end, lo + chunk);
        pool.submit([lo, hi, &body] { body(lo, hi); });
    }
    pool.wait();
}

/**
 * Parallel reduction: combines `identity` with `mapper(i)` over
 * [begin, end) using the associative `combine`.
 */
template <typename T, typename Mapper, typename Combine>
T
parallelReduce(std::size_t begin, std::size_t end, T identity,
               const Mapper &mapper, const Combine &combine,
               ThreadPool &pool = ThreadPool::global(),
               std::size_t grain = 4096)
{
    if (begin >= end)
        return identity;
    const std::size_t n = end - begin;
    const std::size_t workers = pool.numThreads() + 1;
    std::size_t chunk = std::max(grain, (n + workers - 1) / workers);
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    std::vector<T> partials(num_chunks, identity);
    std::size_t index = 0;
    for (std::size_t lo = begin; lo < end; lo += chunk, ++index) {
        const std::size_t hi = std::min(end, lo + chunk);
        T *slot = &partials[index];
        pool.submit([lo, hi, slot, identity, &mapper, &combine] {
            T acc = identity;
            for (std::size_t i = lo; i < hi; ++i)
                acc = combine(acc, mapper(i));
            *slot = acc;
        });
    }
    pool.wait();
    T result = identity;
    for (const T &partial : partials)
        result = combine(result, partial);
    return result;
}

/**
 * Exclusive prefix sum over `values` (sequential; the device model
 * charges it as a log-depth GPU scan).
 * @return total sum.
 */
template <typename T>
T
exclusiveScan(std::vector<T> &values)
{
    T running{};
    for (auto &value : values) {
        T next = running + value;
        value = running;
        running = next;
    }
    return running;
}

}  // namespace edgepcc

#endif  // EDGEPCC_PARALLEL_PARALLEL_FOR_H
