/**
 * @file
 * Minimal PLY reader/writer for interop with the real 8iVFB/MVUB
 * datasets (which ship as per-frame PLY files). Supports ascii and
 * binary_little_endian files carrying float x/y/z and uchar
 * red/green/blue properties.
 */

#ifndef EDGEPCC_DATASET_PLY_IO_H
#define EDGEPCC_DATASET_PLY_IO_H

#include <string>

#include "edgepcc/common/status.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Reads a PLY point cloud (positions + colors). */
Expected<PointCloud> readPly(const std::string &path);

/** Writes a PLY point cloud; binary_little_endian when `binary`. */
Status writePly(const std::string &path, const PointCloud &cloud,
                bool binary = true);

/** Reads a PLY file and voxelizes it onto a 2^grid_bits grid. */
Expected<VoxelCloud> readPlyVoxels(const std::string &path,
                                   int grid_bits = 10);

/** Writes a voxel cloud as PLY (voxel coordinates as floats). */
Status writePlyVoxels(const std::string &path,
                      const VoxelCloud &cloud, bool binary = true);

}  // namespace edgepcc

#endif  // EDGEPCC_DATASET_PLY_IO_H
