/**
 * @file
 * Synthetic voxelized-human point-cloud video generator.
 *
 * Substitute for the 8iVFB and MVUB datasets (paper Table I), which
 * cannot be redistributed here. A parametric capsule-skeleton body
 * is sampled on its surface once (body-local samples with cached
 * colors), and every frame poses the skeleton with smooth articulated
 * motion before voxelizing onto the 1024^3 grid. This reproduces the
 * properties the paper's analysis depends on:
 *  - dense, connected surfaces -> strong spatial locality in both
 *    geometry and attributes (Fig. 3a),
 *  - frame-coherent surface samples with small inter-frame motion ->
 *    strong temporal locality (Fig. 3b),
 *  - smooth per-part color fields with mild sensor-like noise.
 *
 * Generation is fully deterministic per (spec, frame index).
 */

#ifndef EDGEPCC_DATASET_SYNTHETIC_HUMAN_H
#define EDGEPCC_DATASET_SYNTHETIC_HUMAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Parameters of one synthetic PC video. */
struct VideoSpec {
    std::string name = "synthetic";
    std::uint64_t seed = 1;
    std::size_t target_points = 100000;  ///< approx. voxels/frame
    int num_frames = 300;
    int grid_bits = 10;  ///< 1024^3, as in 8iVFB/MVUB

    /** Upper-body-only capture (MVUB-style). */
    bool upper_body_only = false;

    /** Joint swing amplitude in radians. */
    double motion_amplitude = 0.25;
    /** Swing period in frames (30 fps capture). */
    double motion_period = 45.0;
    /** Lateral sway of the whole body, in voxels. */
    double sway_voxels = 6.0;

    /** Per-frame color noise amplitude (sensor noise), in levels. */
    double color_noise = 2.0;

    /** Amplitude of the smooth spatio-temporal shading drift
     *  (exposure/shading re-estimation between frames), levels. */
    double shading_drift = 7.0;
};

/** Deterministic frame generator for one VideoSpec. */
class SyntheticHumanVideo
{
  public:
    explicit SyntheticHumanVideo(VideoSpec spec);

    const VideoSpec &spec() const { return spec_; }

    /** Number of frames in the video. */
    int numFrames() const { return spec_.num_frames; }

    /**
     * Generates frame `index` (deduplicated voxel cloud on the
     * spec's grid). The actual voxel count tracks target_points
     * within a few percent.
     */
    VoxelCloud frame(int index) const;

  private:
    struct Sample {
        int part = 0;
        // Surface parameterization: 0 = cylinder side,
        // 1 = cap at p0, 2 = cap at p1.
        int region = 0;
        float t = 0.0f;      ///< axial parameter for the side
        float dir[3] = {0.0f, 0.0f, 0.0f};  ///< cap direction
        float theta = 0.0f;  ///< angular parameter for the side
        Color color;
    };

    void buildSamples();

    VideoSpec spec_;
    double height_ = 900.0;  ///< body height in voxels (calibrated)
    std::vector<Sample> samples_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_DATASET_SYNTHETIC_HUMAN_H
