/**
 * @file
 * The six evaluation videos (paper Table I), as synthetic stand-ins.
 *
 * Names, frame counts and per-frame point counts mirror the 8iVFB
 * and MVUB videos the paper uses; an optional scale factor shrinks
 * the point counts (and proportionally the synthetic body) so bench
 * runs on small hosts stay fast. Frame counts are not scaled —
 * benches choose how many frames to encode.
 */

#ifndef EDGEPCC_DATASET_CATALOGUE_H
#define EDGEPCC_DATASET_CATALOGUE_H

#include <vector>

#include "edgepcc/dataset/synthetic_human.h"

namespace edgepcc {

/** Table I rows: name, #frames, #points/frame, dataset family. */
struct CatalogueEntry {
    const char *name;
    int num_frames;
    std::size_t points_per_frame;
    bool upper_body_only;  ///< MVUB videos are upper-body captures
};

/** The paper's six videos. */
std::vector<CatalogueEntry> paperCatalogue();

/**
 * Builds the VideoSpec for one catalogue entry at the given scale
 * (0 < scale <= 1; target points = points_per_frame * scale).
 */
VideoSpec makeVideoSpec(const CatalogueEntry &entry,
                        double scale = 1.0);

/** Specs for all six videos at one scale. */
std::vector<VideoSpec> paperVideoSpecs(double scale = 1.0);

/**
 * Reads the workload scale from the EDGEPCC_SCALE environment
 * variable (default `fallback`, clamped to (0, 1]).
 */
double workloadScaleFromEnv(double fallback = 0.15);

/** Frames per video from EDGEPCC_FRAMES (default `fallback`). */
int framesFromEnv(int fallback = 3);

}  // namespace edgepcc

#endif  // EDGEPCC_DATASET_CATALOGUE_H
