/**
 * @file
 * Umbrella header: everything a typical EdgePCC application needs.
 *
 * Fine-grained headers remain available for code that wants smaller
 * include surfaces (see README "Architecture" for the module map).
 */

#ifndef EDGEPCC_EDGEPCC_H
#define EDGEPCC_EDGEPCC_H

#include "edgepcc/common/status.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/catalogue.h"
#include "edgepcc/dataset/ply_io.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/geometry/point_cloud.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/chunk_stream.h"
#include "edgepcc/stream/lossy_channel.h"
#include "edgepcc/stream/pipeline.h"
#include "edgepcc/stream/rate_controller.h"
#include "edgepcc/stream/stream_file.h"
#include "edgepcc/stream/stream_session.h"

#endif  // EDGEPCC_EDGEPCC_H
