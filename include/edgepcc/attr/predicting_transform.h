/**
 * @file
 * Predicting Transform attribute codec — the second of G-PCC's
 * three attribute methods (paper Sec. II-B3: RAHT, Predicting
 * Transform, Lifting Transform; the latter two are based on
 * hierarchical nearest-neighbour interpolation).
 *
 * Points are organized into levels of detail (LODs) by dyadic
 * subsampling of the Morton order: LOD 0 is every 2^L-th point,
 * each finer LOD doubles the density. Attributes are coded
 * coarse-to-fine; every finer point is predicted by
 * inverse-distance-weighted interpolation of its flanking
 * already-coded points, and only the quantized residual is stored
 * (entropy coded per channel). The decoder replays the identical
 * traversal from the decoded geometry.
 *
 * The Lifting Transform shares this LOD structure and adds an
 * update operator; EdgePCC implements the predicting variant (the
 * paper's TMC13 configuration uses RAHT, so this codec serves as an
 * additional baseline/ablation point, see bench/ablation_attr).
 *
 * Like RAHT, prediction is inherently sequential across LODs — the
 * device model charges it to one CPU core.
 */

#ifndef EDGEPCC_ATTR_PREDICTING_TRANSFORM_H
#define EDGEPCC_ATTR_PREDICTING_TRANSFORM_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Predicting-transform configuration. */
struct PredictingConfig {
    /** Uniform residual quantization step. */
    double qstep = 4.0;

    /** Number of LOD doublings (base LOD = every 2^levels-th
     *  point). Clamped so the base LOD keeps >= 1 point. */
    int lod_levels = 8;

    /** Maximum prediction neighbours (flanking coded points). */
    int num_neighbors = 3;
};

/**
 * Encodes the colors of a Morton-sorted, duplicate-free cloud.
 */
Expected<std::vector<std::uint8_t>> encodePredicting(
    const VoxelCloud &sorted_cloud, const PredictingConfig &config,
    WorkRecorder *recorder = nullptr);

/** Decodes predicting-transform attributes into `cloud`. */
Status decodePredictingInto(const std::vector<std::uint8_t> &payload,
                            VoxelCloud &cloud,
                            WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_ATTR_PREDICTING_TRANSFORM_H
