/**
 * @file
 * Morton-segment "Base + Deltas" attribute codec — the paper's
 * intra-frame attribute proposal (Sec. IV-C).
 *
 * Points arrive sorted by Morton code, so contiguous ranges
 * ("segments", the paper's macro blocks) are spatially compact and
 * their attributes similar (Fig. 3a). Each segment stores one base
 * value (the mid-range, the paper's "Mid") per channel plus
 * quantized residuals. A second, lossless layer re-applies the same
 * base+residual idea to the quantized residuals and bit-packs them
 * with a per-segment width — this is the paper's "2-layer encoder"
 * (Sec. VI-B). Every step is a data-parallel kernel.
 *
 * The codec is generic over int32 channels so the inter-frame path
 * can reuse it on signed block deltas ("treat the obtained delta
 * values as new attributes", Sec. VI-B).
 */

#ifndef EDGEPCC_ATTR_SEGMENT_CODEC_H
#define EDGEPCC_ATTR_SEGMENT_CODEC_H

#include <array>
#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"

namespace edgepcc {

/** Three equally-long channels of attribute values. */
using AttrChannels = std::array<std::vector<std::int32_t>, 3>;

/** Segment codec configuration. */
struct SegmentCodecConfig {
    /**
     * Number of segments. 0 = auto: one segment per ~24 points,
     * which reproduces the paper's 30000-block design point at
     * 8iVFB frame sizes.
     */
    std::uint32_t num_segments = 0;

    /** Residual quantization step (1 = lossless layer 1). The
     *  default lands near the paper's ~48.5 dB intra operating
     *  point. */
    std::uint32_t quant_step = 4;

    /** Enable the second (lossless) re-encoding layer. */
    bool two_layer = true;
};

/** Resolved segmentation geometry. */
struct SegmentLayout {
    std::uint32_t num_segments = 0;
    std::uint32_t points_per_segment = 0;  ///< last segment may be short

    std::size_t
    begin(std::uint32_t segment) const
    {
        return static_cast<std::size_t>(segment) *
               points_per_segment;
    }
    std::size_t
    end(std::uint32_t segment, std::size_t n) const
    {
        const std::size_t e = begin(segment) + points_per_segment;
        return e < n ? e : n;
    }
};

/** Computes the segmentation for n points under `config`. */
SegmentLayout makeSegmentLayout(std::size_t n,
                                const SegmentCodecConfig &config);

/**
 * Encodes three attribute channels. Values may be any int32 range
 * (colors use [0,255]; inter-frame deltas are signed).
 */
Expected<std::vector<std::uint8_t>> encodeSegmentAttr(
    const AttrChannels &channels, const SegmentCodecConfig &config,
    WorkRecorder *recorder = nullptr);

/** Decodes a segment-codec payload back to three channels. */
Expected<AttrChannels> decodeSegmentAttr(
    const std::vector<std::uint8_t> &payload,
    WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_ATTR_SEGMENT_CODEC_H
