/**
 * @file
 * Region-Adaptive Hierarchical Transform (RAHT) attribute codec —
 * the TMC13-like baseline (de Queiroz & Chou, paper Sec. IV-C1).
 *
 * RAHT walks the octree bottom-up: at each of the 3*depth dyadic
 * sub-levels, sibling nodes (equal `code >> 1`) are combined with the
 * weighted orthonormal butterfly of paper Eq. 1. The high-pass
 * coefficient is quantized and entropy coded; the low-pass proceeds
 * upward as the merged node's attribute. The layer-by-layer data
 * dependency is what makes this stage sequential — the device model
 * charges it to one CPU core, which is where the baseline's ~2.6 s
 * attribute latency comes from.
 *
 * The decoder replays the merge structure from the decoded geometry
 * (codes and weights only), then runs the inverse butterflies
 * top-down. Geometry must be coded losslessly for RAHT decode to
 * reproduce the structure, which matches the TMC13 configuration the
 * paper evaluates.
 */

#ifndef EDGEPCC_ATTR_RAHT_H
#define EDGEPCC_ATTR_RAHT_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** RAHT configuration. */
struct RahtConfig {
    /** Uniform quantization step for transform coefficients. The
     *  default lands near the paper's TMC13 operating point
     *  (~55 dB attribute PSNR). */
    double qstep = 4.0;
};

/**
 * Encodes the colors of a Morton-sorted, duplicate-free voxel cloud.
 * The cloud must be the `sorted_cloud` emitted by geometry encoding
 * so encoder and decoder agree on the leaf order.
 */
Expected<std::vector<std::uint8_t>> encodeRaht(
    const VoxelCloud &sorted_cloud, const RahtConfig &config,
    WorkRecorder *recorder = nullptr);

/**
 * Decodes RAHT attributes into `cloud` (which carries the decoded
 * geometry, in sorted order). Fails when the payload's point count
 * disagrees with the cloud.
 */
Status decodeRahtInto(const std::vector<std::uint8_t> &payload,
                      VoxelCloud &cloud,
                      WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_ATTR_RAHT_H
