/**
 * @file
 * Runtime SIMD dispatch shim for the hot kernels.
 *
 * Every vectorized kernel in the codebase (Morton encode/decode,
 * radix digit extraction, segment min/max scans, CRC32C, XOR-FEC)
 * is compiled in up to three variants — scalar, SSE4.2, AVX2 — and
 * selects one at runtime through this shim. The contract
 * (docs/PERFORMANCE.md "Dispatch shim"):
 *
 *  - The scalar fallback is ALWAYS built and is the reference
 *    implementation; SIMD variants must be byte-identical to it.
 *  - The active level is chosen once, on first use: the highest ISA
 *    the CPU supports, clamped down by the `EDGEPCC_SIMD`
 *    environment variable (`scalar`, `sse4` or `avx2`) when set.
 *    `EDGEPCC_SIMD` can only lower the level — asking for an ISA the
 *    host lacks silently clamps to what the host can run, so the
 *    same invocation works on any machine.
 *  - Kernels read `activeSimdLevel()` per call (a relaxed atomic
 *    load); they never re-detect.
 *  - Tests that need to force a level mid-process (the env variable
 *    is read only once) use `setSimdLevelForTesting()`.
 *
 * Adding an ISA = one enum value, one detection line, one name, and
 * a new `case` in each dispatching kernel; see docs/PERFORMANCE.md.
 *
 * The implementation lives in src/common/simd_dispatch.cpp (not
 * src/platform/) so that edgepcc::common kernels — CRC32C guards
 * every transport chunk — can dispatch without a library cycle:
 * platform already links against common.
 */

#ifndef EDGEPCC_PLATFORM_SIMD_H
#define EDGEPCC_PLATFORM_SIMD_H

#include <cstddef>
#include <cstdint>

// x86 target-attribute multiversioning is available on GCC/Clang;
// everything else (other arches, MSVC) gets the scalar fallback.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define EDGEPCC_SIMD_X86 1
#else
#define EDGEPCC_SIMD_X86 0
#endif

namespace edgepcc {

/** Instruction-set tiers, ordered so `<` means "subset of". */
enum class SimdLevel : int {
    kScalar = 0,  ///< portable reference path, always built
    kSse4 = 1,    ///< SSE4.2 (incl. hardware CRC32C)
    kAvx2 = 2,    ///< AVX2 256-bit integer ops
};

/** Display name: "scalar", "sse4" or "avx2". */
const char *simdLevelName(SimdLevel level);

/** Parses a level name; returns false (and leaves `out` untouched)
 *  on anything else. */
bool simdLevelFromName(const char *name, SimdLevel *out);

/** Highest level the host CPU supports (detected once, cached). */
SimdLevel detectSimdLevel();

/**
 * The level every kernel dispatches on: min(detected host level,
 * `EDGEPCC_SIMD` when set), frozen at first call. Test overrides via
 * setSimdLevelForTesting() take precedence.
 */
SimdLevel activeSimdLevel();

/**
 * Test-only override of the active level, clamped to what the host
 * supports; returns the level actually applied. Passing a level the
 * host lacks therefore applies (and returns) a lower one — tests
 * should iterate levels up to detectSimdLevel(). Not for production
 * use: kernels assume the level never rises mid-frame.
 */
SimdLevel setSimdLevelForTesting(SimdLevel level);

/** Removes the test override; dispatch returns to the startup
 *  (detected + EDGEPCC_SIMD) level. */
void clearSimdLevelForTesting();

/**
 * dst[i] ^= src[i] for `n` bytes, dispatched (AVX2: 32 B/step,
 * SSE4: 16 B/step). The XOR-parity FEC inner loop. `dst` and `src`
 * must not overlap.
 */
void xorBytes(std::uint8_t *dst, const std::uint8_t *src,
              std::size_t n);

/**
 * dst[i] ^= coeff * src[i] in GF(256) (polynomial 0x11d) for `n`
 * bytes — the Reed-Solomon parity/recovery inner loop. Dispatched:
 * scalar goes through the common/gf256.h log/exp tables; SSE4/AVX2
 * split each byte into nibbles and resolve both products with
 * PSHUFB lookups into two 16-entry product tables derived from
 * `coeff`. coeff == 0 is a no-op, coeff == 1 degenerates to
 * xorBytes. `dst` and `src` must not overlap.
 */
void gfMulAddBytes(std::uint8_t *dst, const std::uint8_t *src,
                   std::uint8_t coeff, std::size_t n);

}  // namespace edgepcc

#endif  // EDGEPCC_PLATFORM_SIMD_H
