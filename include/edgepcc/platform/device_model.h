/**
 * @file
 * Analytic edge-device timing and energy model.
 *
 * The paper evaluates on an NVIDIA Jetson AGX Xavier (8 Carmel CPU
 * cores + 512-core Volta GPU) and reports wall-clock latency and
 * rail energy per frame. This repository executes the same
 * algorithms on a host CPU, so Jetson-scale numbers are produced by
 * a model instead: every pipeline stage records KernelWork (ops,
 * bytes, items, launches), and this module converts those counts
 * into seconds and joules using per-kernel effective throughputs
 * and energies calibrated once against the paper's reported stage
 * latencies (see calibration.cpp for the anchor of every value).
 *
 * Latency:  t = ops / throughput(kernel) + launches * overhead
 *           (GPU kernels only pay launch overhead; CPU-parallel
 *           kernels divide by the modelled thread count.)
 * Energy:   E = t * (board_idle + rail(resource)) + ops * e_dyn(kernel)
 *
 * The 10 W power mode scales all throughputs down by the paper's
 * measured 1.29x latency factor (Sec. VI-C).
 */

#ifndef EDGEPCC_PLATFORM_DEVICE_MODEL_H
#define EDGEPCC_PLATFORM_DEVICE_MODEL_H

#include <string>
#include <unordered_map>
#include <vector>

#include "edgepcc/common/work_counters.h"

namespace edgepcc {

/** Modelled device parameters. */
struct DeviceSpec {
    std::string name;

    /** Global throughput scale (10 W mode = 1/1.29). */
    double throughput_scale = 1.0;

    /** Threads used by kCpuParallel kernels (paper: 4 for CWIPC). */
    int cpu_parallel_threads = 4;

    /** Per-launch overhead for GPU kernels (seconds). */
    double gpu_launch_overhead_s = 30e-6;

    /** Power rails in watts (board idle + active rail by resource). */
    double board_idle_w = 1.0;
    double cpu_seq_active_w = 1.687;  ///< paper: TMC13 CPU power
    double cpu_par_active_w = 3.622;  ///< paper: CWIPC 4-thread power
    double gpu_active_w = 2.375;      ///< GPU rail + host coordination

    /** Jetson AGX Xavier in the paper's 15 W compute mode. */
    static DeviceSpec jetsonXavier15W();
    /** 10 W mode: throughputs scaled by 1/1.29 (paper Sec. VI-C). */
    static DeviceSpec jetsonXavier10W();

    double activeRailW(ExecResource resource) const;
};

/**
 * Per-kernel effective throughputs (ops/s) and dynamic energies
 * (J/op). Lookup is by exact kernel name with per-resource
 * fallbacks. All values are for the 15 W Xavier; DeviceSpec scaling
 * applies on top.
 */
class KernelCostTable
{
  public:
    struct Cost {
        double ops_per_second = 0.0;
        double joules_per_op = 0.0;
    };

    /** The paper-anchored calibration (see calibration.cpp). */
    static const KernelCostTable &calibrated();

    Cost costFor(const std::string &kernel_name,
                 ExecResource resource) const;

    /** Registers/overrides one kernel's cost. */
    void set(const std::string &kernel_name, Cost cost);

    void
    setDefault(ExecResource resource, Cost cost)
    {
        defaults_[static_cast<int>(resource)] = cost;
    }

  private:
    std::unordered_map<std::string, Cost> by_name_;
    Cost defaults_[3];
};

/** Modelled results for one kernel. */
struct KernelTiming {
    std::string name;
    ExecResource resource = ExecResource::kCpuSequential;
    double seconds = 0.0;
    double joules = 0.0;
};

/** Modelled results for one pipeline stage. */
struct StageTiming {
    std::string name;
    double model_seconds = 0.0;
    double host_seconds = 0.0;
    double joules = 0.0;
    std::vector<KernelTiming> kernels;
};

/** Modelled results for a whole pipeline run. */
struct PipelineTiming {
    std::vector<StageTiming> stages;

    double modelSeconds() const;
    double hostSeconds() const;
    double joules() const;

    /** Sums model seconds over stages matching a name prefix. */
    double modelSecondsWithPrefix(const std::string &prefix) const;
    double joulesWithPrefix(const std::string &prefix) const;
};

/** Applies a DeviceSpec + KernelCostTable to recorded profiles. */
class EdgeDeviceModel
{
  public:
    explicit EdgeDeviceModel(
        DeviceSpec spec = DeviceSpec::jetsonXavier15W(),
        const KernelCostTable &table = KernelCostTable::calibrated())
        : spec_(std::move(spec)), table_(&table)
    {
    }

    const DeviceSpec &spec() const { return spec_; }

    KernelTiming evaluateKernel(const KernelWork &work) const;
    StageTiming evaluateStage(const StageProfile &stage) const;
    PipelineTiming evaluate(const PipelineProfile &profile) const;

  private:
    DeviceSpec spec_;
    const KernelCostTable *table_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_PLATFORM_DEVICE_MODEL_H
