/**
 * @file
 * Per-frame bump allocator for hot-kernel scratch memory.
 *
 * The SoA kernel refactor (docs/PERFORMANCE.md "Memory layout")
 * replaced per-call `std::vector` scratch with arena-backed arrays:
 * the encoder/decoder owns one `FrameArena`, resets it at the start
 * of every frame, and kernels carve scratch out of it through the
 * thread-local binding below. After the first frame the arena's
 * blocks are warm, so steady-state encode performs zero scratch
 * heap allocations.
 *
 * Lifetime rules (enforced by convention, documented in
 * docs/PERFORMANCE.md):
 *
 *  - Arena memory is valid until the next `reset()` — i.e. for the
 *    current frame only. Nothing arena-backed may escape the
 *    encode/decode call that allocated it.
 *  - `reset()` keeps the blocks; `release()` returns them to the
 *    heap (used by tests and by long-idle sessions).
 *  - All upstream memory comes from `::operator new`, so the
 *    countdown-allocation-failure contract from the overload work
 *    (tests/test_robustness.cpp) covers arena growth too: an
 *    exhausted heap surfaces as std::bad_alloc, which the
 *    encode/decode entry points turn into kResourceExhausted.
 *  - A FrameArena is single-threaded. Kernels that parallelize must
 *    carve scratch on the calling thread before fanning out.
 */

#ifndef EDGEPCC_PLATFORM_ARENA_H
#define EDGEPCC_PLATFORM_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgepcc {

/** Chunked bump allocator; see the file comment for the contract. */
class FrameArena
{
  public:
    /** Default granularity of upstream blocks (grown geometrically;
     *  oversized requests get a dedicated block). */
    static constexpr std::size_t kDefaultBlockBytes = 1u << 20;

    explicit FrameArena(
        std::size_t block_bytes = kDefaultBlockBytes);
    ~FrameArena();

    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;
    FrameArena(FrameArena &&other) noexcept;
    FrameArena &operator=(FrameArena &&other) noexcept;

    /**
     * `bytes` of storage aligned to `align` (a power of two), valid
     * until the next reset(). Throws std::bad_alloc only when a
     * fresh upstream block cannot be obtained.
     */
    void *allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t));

    /** Typed scratch array of `count` Ts (T trivially destructible;
     *  contents uninitialized). */
    template <typename T>
    T *
    allocateArray(std::size_t count)
    {
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /** Recycles all blocks for the next frame (no heap traffic). */
    void reset();

    /** Returns every block to the heap. */
    void release();

    /** Bytes handed out since the last reset(). */
    std::size_t bytesUsed() const { return bytes_used_; }

    /** Total bytes currently reserved from the heap. */
    std::size_t bytesReserved() const { return bytes_reserved_; }

    /** Number of upstream `::operator new` block allocations over
     *  the arena's lifetime — the steady-state-zero-alloc tests pin
     *  this. */
    std::size_t upstreamBlockCount() const { return blocks_.size(); }

  private:
    struct Block {
        std::uint8_t *data = nullptr;
        std::size_t size = 0;
    };

    Block &growFor(std::size_t bytes);

    std::vector<Block> blocks_;
    std::size_t block_bytes_;
    std::size_t active_ = 0;  ///< index of the block being bumped
    std::size_t cursor_ = 0;  ///< offset into the active block
    std::size_t bytes_used_ = 0;
    std::size_t bytes_reserved_ = 0;
};

/**
 * The frame arena bound to this thread, or nullptr outside an
 * encode/decode frame. Kernels use this to pick arena scratch over
 * heap vectors without threading a parameter through every layer.
 */
FrameArena *currentFrameArena();

/** RAII binding of `arena` as the thread's current frame arena
 *  (restores the previous binding on destruction). The encoder and
 *  decoder entry points bind their member arena around each frame. */
class ScopedFrameArena
{
  public:
    explicit ScopedFrameArena(FrameArena *arena);
    ~ScopedFrameArena();

    ScopedFrameArena(const ScopedFrameArena &) = delete;
    ScopedFrameArena &operator=(const ScopedFrameArena &) = delete;

  private:
    FrameArena *previous_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_PLATFORM_ARENA_H
