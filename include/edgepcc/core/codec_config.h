/**
 * @file
 * Codec configuration and the five evaluated designs.
 *
 * Paper Sec. VI-B evaluates:
 *   TMC13        - sequential octree geometry (lossless) + RAHT,
 *                  both entropy coded; intra only.
 *   CWIPC        - sequential octree geometry + raw entropy-coded
 *                  attributes; P frames use macro-block motion
 *                  estimation on 4 CPU threads.
 *   Intra-Only   - proposed: parallel Morton octree + segment
 *                  Base+Delta attributes, no entropy coding.
 *   Intra-Inter-V1 - Intra-Only plus Morton-window block matching,
 *                  reuse threshold 300 (quality-oriented).
 *   Intra-Inter-V2 - same with threshold 1200 (ratio-oriented).
 */

#ifndef EDGEPCC_CORE_CODEC_CONFIG_H
#define EDGEPCC_CORE_CODEC_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/attr/predicting_transform.h"
#include "edgepcc/attr/raht.h"
#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/interframe/block_matcher.h"
#include "edgepcc/interframe/macroblock_codec.h"
#include "edgepcc/octree/geometry_codec.h"

namespace edgepcc {

/** Intra-frame attribute coding modes. */
enum class AttrMode : std::uint8_t {
    kRaht = 0,        ///< TMC13-like transform coding
    kSegment = 1,     ///< proposed Morton-segment Base+Delta
    kRawEntropy = 2,  ///< CWIPC-like raw entropy coding
    kPredicting = 3,  ///< G-PCC Predicting Transform (LOD-based)
};

/** Inter-frame (P-frame) attribute coding modes. */
enum class InterMode : std::uint8_t {
    kNone = 0,        ///< every frame coded intra
    kBlockMatch = 1,  ///< proposed Morton-window matching
    kMacroBlock = 2,  ///< CWIPC-like MB motion estimation
};

/** Full codec configuration. */
struct CodecConfig {
    std::string name = "custom";

    GeometryConfig geometry{};
    AttrMode attr_mode = AttrMode::kSegment;
    InterMode inter_mode = InterMode::kNone;

    RahtConfig raht{};
    PredictingConfig predicting{};
    SegmentCodecConfig segment{};
    BlockMatchConfig block_match{};
    MacroBlockConfig macro_block{};

    /** GOP length for inter modes; 3 = the paper's IPP pattern. */
    int gop_size = 3;
};

/** The five designs of paper Sec. VI-B. */
CodecConfig makeTmc13LikeConfig();
CodecConfig makeCwipcLikeConfig();
CodecConfig makeIntraOnlyConfig();
CodecConfig makeIntraInterV1Config();
CodecConfig makeIntraInterV2Config();

/** All five, in the paper's presentation order. */
std::vector<CodecConfig> allPaperConfigs();

}  // namespace edgepcc

#endif  // EDGEPCC_CORE_CODEC_CONFIG_H
