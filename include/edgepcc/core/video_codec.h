/**
 * @file
 * Stateful frame-by-frame video encoder/decoder (the library's main
 * public API).
 *
 * Frames are fed in capture order; the encoder applies the
 * configured GOP pattern (IPP in the paper), keeps the reconstructed
 * I frame as the inter-prediction reference, and emits one
 * self-contained bitstream per frame. Every encode/decode call also
 * returns the recorded PipelineProfile so callers can run the edge
 * device model over it.
 */

#ifndef EDGEPCC_CORE_VIDEO_CODEC_H
#define EDGEPCC_CORE_VIDEO_CODEC_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/geometry/point_cloud.h"
#include "edgepcc/platform/arena.h"

namespace edgepcc {

/** Per-frame encoder statistics. */
struct FrameStats {
    Frame::Type type = Frame::Type::kIntra;
    std::size_t num_input_points = 0;
    std::size_t num_voxels = 0;
    std::uint64_t raw_bytes = 0;       ///< 15 B/point accounting
    std::uint64_t geometry_bytes = 0;
    std::uint64_t attr_bytes = 0;
    std::uint64_t total_bytes = 0;     ///< full container size
    BlockMatchStats block_match{};     ///< valid for kBlockMatch P
    MacroBlockStats macro_block{};     ///< valid for kMacroBlock P

    double
    compressionRatio() const
    {
        return total_bytes == 0
                   ? 0.0
                   : static_cast<double>(raw_bytes) /
                         static_cast<double>(total_bytes);
    }
};

/** One encoded frame. */
struct EncodedFrame {
    std::vector<std::uint8_t> bitstream;
    FrameStats stats;
    PipelineProfile profile;
};

/** One decoded frame. */
struct DecodedFrame {
    VoxelCloud cloud{10};
    Frame::Type type = Frame::Type::kIntra;
    PipelineProfile profile;
};

/** Frame-by-frame encoder. */
class VideoEncoder
{
  public:
    explicit VideoEncoder(CodecConfig config);

    const CodecConfig &config() const { return config_; }

    /**
     * Encodes the next frame of the stream. Frame type follows the
     * GOP pattern; inter coding silently falls back to intra when
     * no reference exists yet.
     */
    Expected<EncodedFrame> encode(const VoxelCloud &cloud);

    /** Restarts the GOP (next frame is an I frame). */
    void reset();

    /**
     * Forces the next frame to be an I frame and restarts the GOP
     * phase there. Loss-recovery hook: re-anchors the stream after
     * the receiver reports an unrecoverable reference loss.
     */
    void forceKeyframe();

    /**
     * Changes the GOP length from the next GOP boundary on (values
     * < 1 are clamped to 1). Used by adaptive keyframe insertion to
     * shorten GOPs under sustained channel loss.
     */
    void setGopSize(int gop_size);

    /**
     * Replaces the coding configuration without resetting the GOP
     * phase or the prediction reference. The overload ladder swaps
     * degraded configurations mid-stream with this; callers that
     * change the voxel grid must also forceKeyframe() so the next
     * reference matches the new grid.
     */
    void updateCoding(const CodecConfig &config);

    /**
     * Snapshot of the complete mutable encoder state: coding
     * configuration, GOP phase and the inter-prediction reference.
     * Two encoders with equal snapshots produce byte-identical
     * bitstreams for equal inputs. The serve-layer reference cache
     * stores the post-encode snapshot next to each cached frame so a
     * follower stream can adopt the frame, restore the state, and
     * keep encoding exactly as if it had done the work itself.
     */
    struct StateSnapshot {
        CodecConfig config;
        std::uint32_t frame_counter = 0;
        VoxelCloud reference{10};
        bool has_reference = false;
    };

    StateSnapshot snapshotState() const;
    void restoreState(const StateSnapshot &state);

  private:
    Expected<EncodedFrame> encodeImpl(const VoxelCloud &cloud);

    CodecConfig config_;
    std::uint32_t frame_counter_ = 0;
    VoxelCloud reference_{10};
    bool has_reference_ = false;
    /** Per-frame kernel scratch; reset (blocks retained) at the
     *  start of every encode, bound thread-locally for the call.
     *  Deliberately absent from StateSnapshot: scratch carries no
     *  coding state, so byte-identity across snapshot/restore is
     *  unaffected. */
    FrameArena arena_;
};

/** Frame-by-frame decoder (mirrors VideoEncoder's state machine). */
class VideoDecoder
{
  public:
    VideoDecoder() = default;

    Expected<DecodedFrame> decode(
        const std::vector<std::uint8_t> &bitstream);

    /**
     * Degraded decode for loss resilience: always reconstructs the
     * frame's (self-contained) geometry; intra attribute payloads
     * decode normally, while inter payloads — whose I-frame
     * reference may be lost or stale — are *concealed* by borrowing
     * colors from `conceal_source` (typically the last good decoded
     * frame; pass nullptr for neutral gray). Never touches the
     * decoder's reference state on the concealed path, so a later
     * intact I frame resynchronizes cleanly. `attr_concealed` (may
     * be null) reports whether concealment was applied.
     */
    Expected<DecodedFrame> decodePromoted(
        const std::vector<std::uint8_t> &bitstream,
        const VoxelCloud *conceal_source,
        bool *attr_concealed = nullptr);

    /** True once an intra frame has been decoded (P frames are
     *  decodable against it). */
    bool hasReference() const { return has_reference_; }

    void reset();

  private:
    Expected<DecodedFrame> decodeImpl(
        const std::vector<std::uint8_t> &bitstream);
    Expected<DecodedFrame> decodePromotedImpl(
        const std::vector<std::uint8_t> &bitstream,
        const VoxelCloud *conceal_source, bool *attr_concealed);

    VoxelCloud reference_{10};
    bool has_reference_ = false;
    /** Per-frame kernel scratch (see VideoEncoder::arena_). */
    FrameArena arena_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_CORE_VIDEO_CODEC_H
