/**
 * @file
 * Morton-window block matching — the paper's inter-frame attribute
 * compression proposal (Sec. V).
 *
 * Both the P-frame and the reference I-frame are already sorted by
 * Morton code (a by-product of geometry compression), so temporally
 * corresponding content sits at similar *positions in the sorted
 * order*. Each P-segment therefore only searches a small window of
 * candidate I-segments around its scaled position — no tree
 * traversal, no ICP. Candidates are scored with the 2-norm attribute
 * distance of paper Eq. 2 (the Diff_Squared / Squared_Sum kernels of
 * Fig. 9); blocks whose best match clears the reuse threshold are
 * stored as a pointer, the rest store per-point deltas that are
 * re-encoded with the intra segment codec.
 *
 * The reuse threshold is the quality/ratio knob: the paper's
 * Intra-Inter-V1 uses 300 and V2 uses 1200 (block totals at K~20
 * points per block; this implementation normalizes per point).
 */

#ifndef EDGEPCC_INTERFRAME_BLOCK_MATCHER_H
#define EDGEPCC_INTERFRAME_BLOCK_MATCHER_H

#include <cstdint>
#include <vector>

#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Inter-frame block matcher configuration. */
struct BlockMatchConfig {
    /** Number of P-frame blocks; 0 = auto (one per ~16 points,
     *  the paper's 50000-block design point at 8iVFB sizes). */
    std::uint32_t num_blocks = 0;

    /** Candidate I-blocks examined per P-block (paper: 100). */
    std::uint32_t candidate_window = 100;

    /**
     * Mean per-point squared attribute distance below which a block
     * is direct-reused. Paper thresholds 300 (V1) and 1200 (V2) are
     * block totals at ~20 points/block, i.e. 15.0 and 60.0 here.
     */
    double reuse_threshold = 15.0;

    /** Codec for the post-intra-encoded delta blocks. */
    SegmentCodecConfig delta_codec{};
};

/** Encoder statistics surfaced to benches and EXPERIMENTS.md. */
struct BlockMatchStats {
    std::uint32_t num_blocks = 0;
    std::uint32_t reused_blocks = 0;
    std::uint64_t delta_points = 0;

    double
    reuseFraction() const
    {
        return num_blocks == 0
                   ? 0.0
                   : static_cast<double>(reused_blocks) /
                         static_cast<double>(num_blocks);
    }
};

/** Inter-frame attribute encoding result. */
struct InterAttrEncoded {
    std::vector<std::uint8_t> payload;
    BlockMatchStats stats;
};

/**
 * Encodes the attributes of `p_sorted` against the reconstructed
 * reference frame `i_reference`. Both clouds must be Morton-sorted
 * and duplicate-free (geometry-stage outputs).
 */
Expected<InterAttrEncoded> encodeInterAttr(
    const VoxelCloud &p_sorted, const VoxelCloud &i_reference,
    const BlockMatchConfig &config, WorkRecorder *recorder = nullptr);

/**
 * Decodes inter-coded attributes into `p_cloud` (carrying decoded
 * P geometry) using the same reference the encoder used.
 */
Status decodeInterAttrInto(const std::vector<std::uint8_t> &payload,
                           const VoxelCloud &i_reference,
                           VoxelCloud &p_cloud,
                           WorkRecorder *recorder = nullptr);

/**
 * Loss concealment: paints `cloud`'s attributes from the nearest
 * Morton-order voxel of `reference` (both clouds Morton-sorted, the
 * geometry-stage output order). Used by the resilient stream session
 * when a P frame's inter payload references an I frame that never
 * arrived — the decoded geometry is kept and the colors borrowed
 * from the last good frame, the same spatial-locality bet the reuse
 * pointers make. Falls back to neutral gray when `reference` is
 * empty.
 */
void concealAttrFromReference(const VoxelCloud &reference,
                              VoxelCloud &cloud);

}  // namespace edgepcc

#endif  // EDGEPCC_INTERFRAME_BLOCK_MATCHER_H
