/**
 * @file
 * Macro-block motion-compensated inter-frame codec — the CWIPC-like
 * baseline (Mekuria et al.; paper Secs. V-A2 and VI-B).
 *
 * The reference implementation builds a macro-block tree per frame,
 * finds the spatially co-located I-frame block for every P-frame
 * block by traversing the I-MB tree, aligns the block pair with an
 * ICP-style iterative translation estimate, and reuses the I-block
 * when the post-alignment attribute distance is small. Unmatched
 * blocks fall back to entropy-coded raw attributes (the paper notes
 * CWIPC applies only entropy coding to attributes). The per-block
 * traversal plus ICP on a small CPU thread pool is what makes this
 * baseline take ~5.9 s per P frame; the device model charges it
 * accordingly (4 CPU threads, matching the paper's setup).
 */

#ifndef EDGEPCC_INTERFRAME_MACROBLOCK_CODEC_H
#define EDGEPCC_INTERFRAME_MACROBLOCK_CODEC_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** CWIPC-like configuration. */
struct MacroBlockConfig {
    /** log2 of the macro-block side in voxels (4 -> 16^3 blocks). */
    int mb_bits = 4;

    /** ICP-style alignment iterations per matched block pair. */
    int icp_iterations = 3;

    /**
     * Mean per-point squared attribute distance (after alignment)
     * below which a P block is replaced by its motion-compensated
     * I block.
     */
    double reuse_threshold = 18.0;

    /** CPU threads the reference codec uses (paper: 4). */
    int num_threads = 4;
};

/** Encoder statistics. */
struct MacroBlockStats {
    std::uint32_t p_blocks = 0;
    std::uint32_t matched_blocks = 0;  ///< co-located I block existed
    std::uint32_t reused_blocks = 0;   ///< motion-compensated reuse
    std::uint64_t icp_point_ops = 0;   ///< correspondence searches
};

/** Inter-frame encoding result. */
struct MacroBlockEncoded {
    std::vector<std::uint8_t> payload;
    MacroBlockStats stats;
};

/**
 * Encodes P-frame attributes against the reconstructed I frame.
 * Both clouds must be Morton-sorted and duplicate-free.
 */
Expected<MacroBlockEncoded> encodeMacroBlockAttr(
    const VoxelCloud &p_sorted, const VoxelCloud &i_reference,
    const MacroBlockConfig &config, WorkRecorder *recorder = nullptr);

/** Decodes macro-block coded attributes into `p_cloud`. */
Status decodeMacroBlockAttrInto(
    const std::vector<std::uint8_t> &payload,
    const VoxelCloud &i_reference, VoxelCloud &p_cloud,
    WorkRecorder *recorder = nullptr);

/**
 * CWIPC's intra attribute path: raw per-channel entropy coding (no
 * transform). Also used for the baseline's I frames.
 */
std::vector<std::uint8_t> encodeRawEntropyAttr(
    const VoxelCloud &sorted_cloud, WorkRecorder *recorder = nullptr);

Status decodeRawEntropyAttrInto(
    const std::vector<std::uint8_t> &payload, VoxelCloud &cloud,
    WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_INTERFRAME_MACROBLOCK_CODEC_H
