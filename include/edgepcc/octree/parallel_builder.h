/**
 * @file
 * Morton-code-assisted parallel octree construction (the paper's
 * intra-frame geometry proposal, Sec. IV-B).
 *
 * Because the points are sorted by Morton code, the topographic
 * structure of the final tree is known up front: the nodes of level l
 * are exactly the distinct values of `code >> 3*(depth-l)`. Each
 * level is therefore derived from the sorted leaf codes with
 * data-parallel run-boundary detection — no point-by-point update and
 * no locks. The result keeps the paper's "code array / parent array"
 * form, and paper Algorithm 1 merges them into occupancy bytes.
 */

#ifndef EDGEPCC_OCTREE_PARALLEL_BUILDER_H
#define EDGEPCC_OCTREE_PARALLEL_BUILDER_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/octree/octree.h"

namespace edgepcc {

/**
 * Builds the flat level-ordered octree from sorted leaf Morton
 * codes.
 *
 * @param sorted_codes leaf codes in ascending order; duplicates are
 *                     collapsed (the builder uniquifies them).
 * @param depth        octree depth (grid bits).
 * @param recorder     optional instrumentation sink.
 * @returns kInvalidArgument when codes are empty or not sorted.
 */
Expected<FlatOctree> buildParallelOctree(
    const std::vector<std::uint64_t> &sorted_codes, int depth,
    WorkRecorder *recorder = nullptr);

/**
 * Paper Algorithm 1: merges the code/parent arrays into per-branch
 * occupancy bytes, ordered breadth-first (level by level, codes
 * ascending within a level). Runs as a data-parallel kernel over all
 * non-root nodes.
 */
std::vector<std::uint8_t> occupancyFromFlatOctree(
    const FlatOctree &tree, WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_OCTREE_PARALLEL_BUILDER_H
