/**
 * @file
 * Geometry compression: voxel cloud -> occupancy bitstream -> voxel
 * cloud.
 *
 * Two encode paths exist, matching paper Fig. 4a vs 4c:
 *  - kSequential: PCL/TMC13-style point-by-point octree insertion and
 *    depth-first serialization. Lossless. Charged to one CPU core.
 *  - kParallelMorton: the proposed pipeline — optional tight-cuboid
 *    renormalization, one-shot Morton code generation, radix sort,
 *    parallel level construction, Algorithm-1 occupancy merge,
 *    breadth-first stream. The renormalization is what makes the
 *    paper's variant slightly lossy (Fig. 5's P0 moving to -0.43);
 *    disable `tight_bbox` for a lossless parallel path.
 *
 * Entropy coding of the occupancy stream is optional in both paths
 * (the paper ships with it disabled for a ~2x geometry-size cost and
 * ~100 ms saving, Sec. IV-B3).
 */

#ifndef EDGEPCC_OCTREE_GEOMETRY_CODEC_H
#define EDGEPCC_OCTREE_GEOMETRY_CODEC_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"
#include "edgepcc/morton/morton_order.h"

namespace edgepcc {

/** Geometry encoder configuration. */
struct GeometryConfig {
    enum class Builder : std::uint8_t {
        kSequential = 0,
        kParallelMorton = 1,
    };

    Builder builder = Builder::kParallelMorton;
    /** Run the occupancy stream through the adaptive range coder. */
    bool entropy_coding = false;
    /** Condition the range coder on each node's parent occupancy
     *  (TMC13-style context modelling; implies entropy_coding). */
    bool contextual_entropy = false;
    /** Renormalize coordinates to the tight bounding cuboid before
     *  coding (parallel builder only; introduces sub-voxel error). */
    bool tight_bbox = true;
};

/** Output of geometry encoding. */
struct GeometryEncoded {
    std::vector<std::uint8_t> payload;

    /** Unique voxels actually coded (after dedup). */
    std::size_t num_voxels = 0;
    int depth = 0;

    /**
     * The cloud the attribute stage must consume: deduplicated,
     * (requantized if tight_bbox) and permuted into the coded Morton
     * order, colors carried along. The i-th decoded voxel corresponds
     * to the i-th entry here.
     */
    VoxelCloud sorted_cloud;
};

/**
 * Encodes the geometry of `cloud`.
 *
 * Duplicate voxels are merged (first color wins; EdgePCC inputs are
 * deduplicated by construction, this is a safety net).
 *
 * @returns kInvalidArgument for empty clouds.
 */
Expected<GeometryEncoded> encodeGeometry(
    const VoxelCloud &cloud, const GeometryConfig &config,
    WorkRecorder *recorder = nullptr);

/**
 * Decodes a geometry payload back to a voxel cloud (colors zeroed),
 * in the same order as GeometryEncoded::sorted_cloud.
 */
Expected<VoxelCloud> decodeGeometry(
    const std::vector<std::uint8_t> &payload,
    WorkRecorder *recorder = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_OCTREE_GEOMETRY_CODEC_H
