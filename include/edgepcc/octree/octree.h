/**
 * @file
 * Shared octree definitions.
 *
 * All octrees in EdgePCC span the full voxel grid: the root covers
 * [0, 2^depth)^3 and level `depth` cells are single voxels. A branch
 * node's occupancy byte has bit c set when child octant c (the low 3
 * Morton bits of the child's code) is occupied.
 */

#ifndef EDGEPCC_OCTREE_OCTREE_H
#define EDGEPCC_OCTREE_OCTREE_H

#include <cstdint>
#include <vector>

namespace edgepcc {

/** Traversal/serialization order of occupancy bytes. */
enum class OctreeOrder : std::uint8_t {
    kBreadthFirst = 0,  ///< level by level, codes ascending
    kDepthFirst = 1,    ///< pre-order, children by ascending octant
};

/**
 * Flat level-ordered octree produced by the parallel builder,
 * matching the paper's "code array / parent array" output (Fig. 5).
 *
 * Nodes are stored root first, then level 1, ..., then the leaves;
 * within a level, codes ascend. `parent[i]` indexes into `codes`
 * (-1 for the root). `level_offsets[l]` is the index of the first
 * node of level l, with a final sentinel equal to codes.size().
 */
struct FlatOctree {
    std::vector<std::uint64_t> codes;
    std::vector<std::int32_t> parent;
    std::vector<std::uint32_t> level_offsets;
    int depth = 0;

    std::size_t numNodes() const { return codes.size(); }

    std::size_t
    numNodesAtLevel(int level) const
    {
        return level_offsets[level + 1] - level_offsets[level];
    }

    /** Leaves = nodes at the deepest level (unique voxels). */
    std::size_t numLeaves() const { return numNodesAtLevel(depth); }

    /** Branch nodes = every node above the leaf level. */
    std::size_t
    numBranchNodes() const
    {
        return numNodes() - numLeaves();
    }
};

}  // namespace edgepcc

#endif  // EDGEPCC_OCTREE_OCTREE_H
