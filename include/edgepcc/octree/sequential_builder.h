/**
 * @file
 * PCL/TMC13-style sequential octree construction.
 *
 * This is the baseline the paper profiles in Fig. 2: points are
 * inserted one at a time, each insert walking from the root to the
 * leaf level while creating missing children. The global tree is
 * unknown until the last point lands, which is exactly the
 * "sequential update" dependency the proposal removes. The recorded
 * work is charged to one ARM core by the device model.
 */

#ifndef EDGEPCC_OCTREE_SEQUENTIAL_BUILDER_H
#define EDGEPCC_OCTREE_SEQUENTIAL_BUILDER_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Pointer-based octree produced by point-by-point insertion. */
class PointerOctree
{
  public:
    struct Node {
        std::array<std::int32_t, 8> children;
        std::uint8_t occupancy = 0;

        Node() { children.fill(-1); }
    };

    explicit PointerOctree(int depth) : depth_(depth)
    {
        nodes_.emplace_back();  // root
    }

    int depth() const { return depth_; }
    const std::vector<Node> &nodes() const { return nodes_; }
    std::size_t numNodes() const { return nodes_.size(); }

    /**
     * Inserts one voxel, creating intermediate nodes as needed.
     * @returns number of levels walked (the modelled serial work).
     */
    int insert(std::uint16_t x, std::uint16_t y, std::uint16_t z);

    /** Number of distinct voxels inserted. */
    std::size_t numLeaves() const { return num_leaves_; }

  private:
    int depth_;
    std::vector<Node> nodes_;
    std::size_t num_leaves_ = 0;
};

/**
 * Builds the pointer octree by sequential insertion, recording the
 * per-point walk cost for the device model.
 */
PointerOctree buildSequentialOctree(const VoxelCloud &cloud,
                                    WorkRecorder *recorder = nullptr);

/**
 * Serializes a pointer octree depth-first (pre-order, octants
 * ascending), one occupancy byte per branch node — the baseline's
 * sequential "Octree Serialization" stage.
 *
 * @param contexts when non-null, receives each emitted byte's
 *        parent occupancy byte (0 for the root), aligned with the
 *        returned stream — the input to contextual entropy coding.
 */
std::vector<std::uint8_t> serializeDepthFirst(
    const PointerOctree &tree, WorkRecorder *recorder = nullptr,
    std::vector<std::uint8_t> *contexts = nullptr);

}  // namespace edgepcc

#endif  // EDGEPCC_OCTREE_SEQUENTIAL_BUILDER_H
