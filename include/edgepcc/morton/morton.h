/**
 * @file
 * Morton (Z-order) encoding for 3D voxel coordinates.
 *
 * The Morton code is the backbone of both proposals in the paper: it
 * linearizes the 3D grid while preserving spatial locality, which
 * (1) fixes the octree's topographic structure up front so nodes can
 * be built in parallel, and (2) clusters spatially-adjacent points so
 * attribute similarity can be exploited by simple segmentation.
 *
 * Encoding interleaves the bits of (x, y, z) as ...z1y1x1 z0y0x0, so
 * the low 3 bits select the octant within the parent voxel and
 * `code >> 3` is the parent's code — exactly the property paper
 * Algorithm 1 relies on.
 */

#ifndef EDGEPCC_MORTON_MORTON_H
#define EDGEPCC_MORTON_MORTON_H

#include <cstddef>
#include <cstdint>

namespace edgepcc {

/** Maximum bits per axis that fit a 64-bit Morton code. */
constexpr int kMaxMortonBitsPerAxis = 21;

/** Spreads the low 21 bits of `v` so they occupy every 3rd bit. */
std::uint64_t mortonExpandBits(std::uint32_t v);

/** Inverse of mortonExpandBits. */
std::uint32_t mortonCompactBits(std::uint64_t v);

/** Interleaves (x, y, z) into a Morton code. x gets bit 0. */
inline std::uint64_t
mortonEncode(std::uint32_t x, std::uint32_t y, std::uint32_t z)
{
    return mortonExpandBits(x) | (mortonExpandBits(y) << 1) |
           (mortonExpandBits(z) << 2);
}

/** Decoded voxel coordinates. */
struct MortonXyz {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t z = 0;

    bool
    operator==(const MortonXyz &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
};

/** Recovers (x, y, z) from a Morton code. */
inline MortonXyz
mortonDecode(std::uint64_t code)
{
    return MortonXyz{mortonCompactBits(code),
                     mortonCompactBits(code >> 1),
                     mortonCompactBits(code >> 2)};
}

/**
 * Octree level (from the root) at which two codes diverge, for a
 * tree of `depth` levels: 0 means different root children, depth-1
 * means siblings at the leaf level, `depth` means identical codes.
 */
int mortonCommonLevel(std::uint64_t a, std::uint64_t b, int depth);

/**
 * Encodes `n` SoA voxel coordinates into `codes`, dispatched over
 * the active SIMD level (platform/simd.h): AVX2 interleaves four
 * points per step, SSE4 two, scalar one. Byte-identical to calling
 * mortonEncode() per point. Inputs may not alias the output.
 */
void mortonEncodeBatch(const std::uint16_t *x,
                       const std::uint16_t *y,
                       const std::uint16_t *z, std::size_t n,
                       std::uint64_t *codes);

/**
 * Decodes `n` Morton codes into SoA coordinate arrays, dispatched
 * like mortonEncodeBatch(). Byte-identical to mortonDecode() per
 * code. Outputs may not alias the input.
 */
void mortonDecodeBatch(const std::uint64_t *codes, std::size_t n,
                       std::uint32_t *x, std::uint32_t *y,
                       std::uint32_t *z);

}  // namespace edgepcc

#endif  // EDGEPCC_MORTON_MORTON_H
