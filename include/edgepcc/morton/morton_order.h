/**
 * @file
 * Morton-code generation and ordering for whole voxel clouds.
 *
 * This is the shared "Morton Code Generation" + sort stage of the
 * paper's pipelines (Fig. 4c/4d): its output feeds the parallel
 * octree builder, the intra-frame attribute codec, and the
 * inter-frame block matcher.
 */

#ifndef EDGEPCC_MORTON_MORTON_ORDER_H
#define EDGEPCC_MORTON_MORTON_ORDER_H

#include <cstdint>
#include <vector>

#include "edgepcc/common/work_counters.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Result of sorting a cloud into Morton order. */
struct MortonOrder {
    /** Sorted Morton codes, one per point (duplicates possible). */
    std::vector<std::uint64_t> codes;
    /** perm[k] = original index of the k-th point in sorted order. */
    std::vector<std::uint32_t> perm;
    /** Octree depth implied by the cloud's grid (gridBits). */
    int depth = 0;
};

/**
 * Computes per-point Morton codes (data-parallel kernel) and sorts
 * them with the radix sort (GPU-substitute kernel).
 *
 * @param recorder optional instrumentation sink for the device model.
 */
MortonOrder computeMortonOrder(const VoxelCloud &cloud,
                               WorkRecorder *recorder = nullptr);

/**
 * Materializes the cloud permuted into Morton order. Shares the
 * order's permutation so attribute kernels can stream sequentially.
 */
VoxelCloud applyOrder(const VoxelCloud &cloud,
                      const MortonOrder &order,
                      WorkRecorder *recorder = nullptr);

/** True when `codes` is non-decreasing. */
bool isSorted(const std::vector<std::uint64_t> &codes);

}  // namespace edgepcc

#endif  // EDGEPCC_MORTON_MORTON_ORDER_H
