/**
 * @file
 * Small vector math used by the dataset generator and metrics.
 */

#ifndef EDGEPCC_GEOMETRY_VEC3_H
#define EDGEPCC_GEOMETRY_VEC3_H

#include <cmath>
#include <cstdint>

namespace edgepcc {

/** 3-component float vector. */
struct Vec3f {
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Vec3f() = default;
    Vec3f(float x_in, float y_in, float z_in)
        : x(x_in), y(y_in), z(z_in)
    {
    }

    Vec3f operator+(const Vec3f &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3f operator-(const Vec3f &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3f operator*(float s) const { return {x * s, y * s, z * s}; }
    Vec3f operator/(float s) const { return {x / s, y / s, z / s}; }

    Vec3f &
    operator+=(const Vec3f &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    float dot(const Vec3f &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    Vec3f
    cross(const Vec3f &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    float squaredNorm() const { return dot(*this); }
    float norm() const { return std::sqrt(squaredNorm()); }

    Vec3f
    normalized() const
    {
        const float n = norm();
        return n > 0.0f ? (*this) / n : Vec3f{};
    }
};

inline Vec3f
operator*(float s, const Vec3f &v)
{
    return v * s;
}

/** 8-bit RGB attribute triple. */
struct Color {
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;

    bool
    operator==(const Color &o) const
    {
        return r == o.r && g == o.g && b == o.b;
    }
};

}  // namespace edgepcc

#endif  // EDGEPCC_GEOMETRY_VEC3_H
