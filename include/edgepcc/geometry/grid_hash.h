/**
 * @file
 * Spatial hash over voxel coordinates for nearest-neighbour queries.
 *
 * Used by the quality metrics (attribute PSNR must match each source
 * voxel with its nearest decoded voxel when geometry coding is lossy)
 * and by tests.
 */

#ifndef EDGEPCC_GEOMETRY_GRID_HASH_H
#define EDGEPCC_GEOMETRY_GRID_HASH_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/**
 * Hash-grid index over a VoxelCloud.
 *
 * Cells are single voxels; a query expands cubic shells around the
 * target until a hit is found or the radius limit is reached.
 */
class GridHash
{
  public:
    /** Builds the index over `cloud`; the cloud must outlive it. */
    explicit GridHash(const VoxelCloud &cloud);

    /** Index of a voxel exactly at (x,y,z), if present. */
    std::optional<std::size_t> findExact(std::uint16_t x,
                                         std::uint16_t y,
                                         std::uint16_t z) const;

    /**
     * Index of the nearest voxel to (x,y,z) within max_radius
     * (Chebyshev shells, exact L2 selection inside the shell).
     * @returns nullopt when nothing is within range.
     */
    std::optional<std::size_t> findNearest(std::uint16_t x,
                                           std::uint16_t y,
                                           std::uint16_t z,
                                           int max_radius = 4) const;

    std::size_t size() const { return cloud_->size(); }

  private:
    static std::uint64_t
    key(std::uint32_t x, std::uint32_t y, std::uint32_t z)
    {
        return (static_cast<std::uint64_t>(x) << 42) |
               (static_cast<std::uint64_t>(y) << 21) |
               static_cast<std::uint64_t>(z);
    }

    const VoxelCloud *cloud_;
    // Voxel key -> first index; duplicate voxels chain through next_.
    std::unordered_map<std::uint64_t, std::uint32_t> map_;
    std::vector<std::uint32_t> next_;
};

}  // namespace edgepcc

#endif  // EDGEPCC_GEOMETRY_GRID_HASH_H
