/**
 * @file
 * Float-cloud to voxel-grid quantization.
 */

#ifndef EDGEPCC_GEOMETRY_VOXELIZER_H
#define EDGEPCC_GEOMETRY_VOXELIZER_H

#include <cstdint>

#include "edgepcc/common/status.h"
#include "edgepcc/geometry/point_cloud.h"

namespace edgepcc {

/** Mapping between float space and the voxel grid. */
struct VoxelGridTransform {
    Vec3f origin;       ///< float position of voxel (0,0,0)
    float scale = 1.0f; ///< float units per voxel step (cubic grid)

    Vec3f
    toFloat(std::uint16_t x, std::uint16_t y, std::uint16_t z) const
    {
        return origin + Vec3f(static_cast<float>(x),
                              static_cast<float>(y),
                              static_cast<float>(z)) *
                            scale;
    }
};

/** Result of voxelization. */
struct VoxelizeResult {
    VoxelCloud cloud;
    VoxelGridTransform transform;
    std::size_t merged_points = 0;  ///< inputs merged into one voxel
};

/**
 * Quantizes a float cloud onto a 2^grid_bits cubic grid.
 *
 * The grid covers the cloud's bounding cube (max extent over the
 * three axes). Points landing on the same voxel are merged and their
 * colors averaged, matching how the 8iVFB/MVUB datasets were
 * produced. Duplicate-free output is sorted by no particular order.
 *
 * @returns kInvalidArgument for an empty cloud or grid_bits outside
 *          [1, 16].
 */
Expected<VoxelizeResult> voxelize(const PointCloud &cloud,
                                  int grid_bits);

}  // namespace edgepcc

#endif  // EDGEPCC_GEOMETRY_VOXELIZER_H
