/**
 * @file
 * Point-cloud containers.
 *
 * Two representations exist:
 *  - PointCloud: raw float positions + RGB, as captured (PLY input,
 *    dataset generator output before voxelization).
 *  - VoxelCloud: integer voxel coordinates on a 2^bits grid + RGB,
 *    the representation every codec in this library consumes. The
 *    datasets the paper evaluates (8iVFB, MVUB) ship pre-voxelized on
 *    a 1024^3 grid.
 */

#ifndef EDGEPCC_GEOMETRY_POINT_CLOUD_H
#define EDGEPCC_GEOMETRY_POINT_CLOUD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "edgepcc/geometry/vec3.h"

namespace edgepcc {

/** Axis-aligned bounding box over float positions. */
struct AABB {
    Vec3f min{1e30f, 1e30f, 1e30f};
    Vec3f max{-1e30f, -1e30f, -1e30f};

    bool valid() const { return min.x <= max.x; }

    void
    expand(const Vec3f &p)
    {
        if (p.x < min.x) min.x = p.x;
        if (p.y < min.y) min.y = p.y;
        if (p.z < min.z) min.z = p.z;
        if (p.x > max.x) max.x = p.x;
        if (p.y > max.y) max.y = p.y;
        if (p.z > max.z) max.z = p.z;
    }

    Vec3f extent() const { return max - min; }

    bool
    contains(const Vec3f &p) const
    {
        return p.x >= min.x && p.x <= max.x && p.y >= min.y &&
               p.y <= max.y && p.z >= min.z && p.z <= max.z;
    }
};

/** Raw float point cloud (AoS positions + colors). */
class PointCloud
{
  public:
    std::size_t size() const { return positions_.size(); }
    bool empty() const { return positions_.empty(); }

    void
    reserve(std::size_t n)
    {
        positions_.reserve(n);
        colors_.reserve(n);
    }

    void
    add(const Vec3f &position, const Color &color)
    {
        positions_.push_back(position);
        colors_.push_back(color);
    }

    const std::vector<Vec3f> &positions() const { return positions_; }
    const std::vector<Color> &colors() const { return colors_; }
    std::vector<Vec3f> &mutablePositions() { return positions_; }
    std::vector<Color> &mutableColors() { return colors_; }

    /** Bounding box over all positions (invalid when empty). */
    AABB boundingBox() const;

  private:
    std::vector<Vec3f> positions_;
    std::vector<Color> colors_;
};

/**
 * Voxelized point cloud on a 2^gridBits cube, stored SoA so the
 * data-parallel kernels stream each component contiguously.
 *
 * Invariant: all coordinate values are < (1 << gridBits), and the six
 * component vectors have equal length.
 */
class VoxelCloud
{
  public:
    explicit VoxelCloud(int grid_bits = 10) : grid_bits_(grid_bits) {}

    int gridBits() const { return grid_bits_; }
    std::uint32_t gridSize() const { return 1u << grid_bits_; }

    std::size_t size() const { return x_.size(); }
    bool empty() const { return x_.empty(); }

    void
    reserve(std::size_t n)
    {
        x_.reserve(n);
        y_.reserve(n);
        z_.reserve(n);
        r_.reserve(n);
        g_.reserve(n);
        b_.reserve(n);
    }

    void
    add(std::uint16_t x, std::uint16_t y, std::uint16_t z,
        std::uint8_t r, std::uint8_t g, std::uint8_t b)
    {
        x_.push_back(x);
        y_.push_back(y);
        z_.push_back(z);
        r_.push_back(r);
        g_.push_back(g);
        b_.push_back(b);
    }

    void
    resize(std::size_t n)
    {
        x_.resize(n);
        y_.resize(n);
        z_.resize(n);
        r_.resize(n);
        g_.resize(n);
        b_.resize(n);
    }

    const std::vector<std::uint16_t> &x() const { return x_; }
    const std::vector<std::uint16_t> &y() const { return y_; }
    const std::vector<std::uint16_t> &z() const { return z_; }
    const std::vector<std::uint8_t> &r() const { return r_; }
    const std::vector<std::uint8_t> &g() const { return g_; }
    const std::vector<std::uint8_t> &b() const { return b_; }

    std::vector<std::uint16_t> &mutableX() { return x_; }
    std::vector<std::uint16_t> &mutableY() { return y_; }
    std::vector<std::uint16_t> &mutableZ() { return z_; }
    std::vector<std::uint8_t> &mutableR() { return r_; }
    std::vector<std::uint8_t> &mutableG() { return g_; }
    std::vector<std::uint8_t> &mutableB() { return b_; }

    Color
    color(std::size_t i) const
    {
        return Color{r_[i], g_[i], b_[i]};
    }

    void
    setColor(std::size_t i, const Color &c)
    {
        r_[i] = c.r;
        g_[i] = c.g;
        b_[i] = c.b;
    }

    /** Raw (uncompressed) size in bytes at the paper's 15 B/point
     *  accounting: 3 x 4-byte coordinates + 3 x 1-byte colors. */
    std::uint64_t
    rawBytes() const
    {
        return static_cast<std::uint64_t>(size()) * 15u;
    }

    /** True when every coordinate is inside the grid and the SoA
     *  vectors are consistent; used by tests and input validation. */
    bool checkInvariants() const;

  private:
    int grid_bits_;
    std::vector<std::uint16_t> x_, y_, z_;
    std::vector<std::uint8_t> r_, g_, b_;
};

/** One frame of a PC video: a voxel cloud plus stream metadata. */
struct Frame {
    enum class Type { kIntra, kPredicted };

    VoxelCloud cloud;
    std::uint32_t index = 0;
    Type type = Type::kIntra;
};

}  // namespace edgepcc

#endif  // EDGEPCC_GEOMETRY_POINT_CLOUD_H
