/**
 * @file
 * Per-tenant circuit breaker for the serve fleet.
 *
 * A tenant whose frames repeatedly fault (injected memory
 * exhaustion, poisoned input) would otherwise keep consuming
 * schedule slots: every round it gets selected, every encode
 * fails, and the whole fleet pays. The breaker quarantines such
 * tenants with the classic three-state machine:
 *
 *   closed     - requests flow; consecutive faults are counted.
 *                `failure_threshold` consecutive faults trip the
 *                breaker open.
 *   open       - requests are denied until the quarantine expires.
 *                The quarantine length comes from the shared
 *                RetryPolicy (common/retry.h): it grows
 *                exponentially with each consecutive trip
 *                (seeded jitter optional), so a persistently
 *                poisoned stream backs off harder and harder.
 *   half-open  - the first request after the quarantine is allowed
 *                through as a probe. Success closes the breaker
 *                (and resets the backoff); failure re-opens it at
 *                the next backoff step.
 *
 * Time is the scheduler's *virtual* device clock, never wall time,
 * so breaker traces are deterministic and pinnable. The scheduler
 * drives the breaker serially at selection/settle time; no
 * internal locking is needed.
 */

#ifndef EDGEPCC_SERVE_CIRCUIT_BREAKER_H
#define EDGEPCC_SERVE_CIRCUIT_BREAKER_H

#include <cstddef>
#include <cstdint>

#include "edgepcc/common/retry.h"

namespace edgepcc {
namespace serve {

enum class BreakerState : std::uint8_t {
    kClosed = 0,
    kOpen = 1,
    kHalfOpen = 2,
};

const char *breakerStateName(BreakerState state);

/** Breaker knobs (ServeConfig::breaker, shared by all tenants). */
struct CircuitBreakerConfig {
    bool enabled = true;

    /** Consecutive per-frame faults that trip the breaker open. */
    int failure_threshold = 3;

    /** Quarantine schedule: backoffFor(n) is the open interval
     *  after the n-th consecutive trip. max_attempts is not used —
     *  a breaker never gives up, it only backs off further. */
    RetryPolicy reprobe{/*max_attempts=*/0,
                        /*initial_backoff_s=*/0.050,
                        /*multiplier=*/2.0,
                        /*max_backoff_s=*/2.0,
                        /*jitter=*/0.0,
                        /*seed=*/1};
};

class CircuitBreaker
{
  public:
    explicit CircuitBreaker(CircuitBreakerConfig config);

    BreakerState state() const { return state_; }

    /**
     * Gate for one service request at virtual time `now_s`.
     * Closed: allowed. Open: denied until the quarantine expires,
     * at which point the breaker half-opens and admits exactly one
     * probe. Half-open: denied while the probe is outstanding.
     * The decision must be acted on — an allowed request must be
     * followed by onSuccess() or onFailure().
     */
    [[nodiscard]] bool allowRequest(double now_s);

    /** The allowed request completed cleanly: close, reset the
     *  consecutive-failure count and the backoff schedule. */
    void onSuccess();

    /**
     * The allowed request faulted at virtual time `now_s`. In
     * half-open state this re-opens immediately at the next
     * backoff step; in closed state it counts toward
     * failure_threshold.
     */
    void onFailure(double now_s);

    int consecutiveFailures() const { return consecutive_failures_; }
    /** Total times the breaker tripped open (stats). */
    std::size_t trips() const { return trips_; }
    /** End of the current quarantine (meaningful while open). */
    double openUntil() const { return open_until_s_; }

  private:
    void tripLocked(double now_s);

    CircuitBreakerConfig config_;
    BreakerState state_ = BreakerState::kClosed;
    int consecutive_failures_ = 0;
    /** Consecutive trips without an intervening success; drives
     *  the exponential quarantine schedule. */
    int open_streak_ = 0;
    std::size_t trips_ = 0;
    double open_until_s_ = 0.0;
};

}  // namespace serve
}  // namespace edgepcc

#endif  // EDGEPCC_SERVE_CIRCUIT_BREAKER_H
