/**
 * @file
 * Multi-tenant edge serving: fair-share session scheduling over a
 * small fleet of modelled device replicas (ROADMAP item 1).
 *
 * The paper sizes the pipeline so a single edge device carries one
 * session; the "millions of users" north star needs the next axis —
 * many concurrent sessions sharing a few devices. This module
 * multiplexes N tenant streams over the shared ThreadPool and
 * `replicas` copies of the modelled device:
 *
 *  - Admission control + placement: each tenant's device utilization
 *    is estimated by probe-encoding its first frame against the
 *    device model; tenants are admitted in deadline-class priority
 *    order (interactive first, then standard, then bulk; earlier
 *    arrivals first within a class) and placed on the least-loaded
 *    replica that still fits under the per-replica utilization cap.
 *
 *  - Deficit-round-robin (DRR) scheduling on each replica's virtual
 *    clock: every round, each backlogged tenant's deficit is topped
 *    up by quantum_s * weight (clamped to one quantum, so unused
 *    grants do not accumulate) and a tenant with positive deficit
 *    contributes its oldest frame to the round's batch. Costs are
 *    charged *post-paid* — the modelled encode seconds are deducted
 *    after the encode — so a tenant can overdraw by at most one
 *    frame's cost, and repays the overdraft by sitting out rounds.
 *    Invariant (pinned by tests): deficit stays within
 *    [-max_frame_cost, quantum_s * weight]. Replicas take rounds in
 *    virtual-clock order (lowest clock first, ties by index), so the
 *    fleet-wide trace is deterministic.
 *
 *  - Batched encode: the frames co-scheduled in one round form a
 *    batch (at most one per tenant, so tasks never share an
 *    encoder); the tenants run concurrently on the shared
 *    ThreadPool, interactive tenants at TaskPriority::kHigh.
 *    Virtual device time advances by the modelled cost of every
 *    frame plus one batch overhead, so schedules are deterministic
 *    and wall-clock free.
 *
 *  - Reference cache: see reference_cache.h. Identical
 *    popular-content streams share encode work without ever
 *    diverging from their solo-run bytes.
 *
 *  - Fault tolerance (fault_injector.h, circuit_breaker.h): seeded
 *    device faults — transient stalls, thermal derates, memory
 *    exhaustion windows, hard crashes — are injected on the virtual
 *    clock. A crash loses every encoder state on that replica; its
 *    tenants fail over to surviving replicas by re-admission in
 *    deadline-class priority order, each restored from its latest
 *    checkpoint (periodic VideoEncoder::StateSnapshot) and resumed
 *    with a forced keyframe so the stream stays decodable. Tenants
 *    that no longer fit anywhere are shed — bulk classes first, by
 *    construction of the re-admission order — with every remaining
 *    frame accounted, never silently corrupted. Tenants whose
 *    frames repeatedly fault are quarantined by a per-tenant
 *    circuit breaker whose re-probe schedule is the shared
 *    RetryPolicy. The whole recovery schedule is a pure function of
 *    (configs, frames, fault spec): re-runs produce identical
 *    recovery traces (recoveryTraceString).
 *
 * Byte-identity invariant: a tenant's bitstream depends only on its
 * own codec config and the sequence of frames actually fed to its
 * encoder — never on interleaving. When no frames are dropped by
 * backpressure, a tenant's bitstreams under any mix are
 * byte-identical to its solo run (a tier-1 acceptance test). With
 * replicas == 1 and no faults the scheduler reduces exactly to the
 * single-device scheduler: output is byte-identical to it.
 */

#ifndef EDGEPCC_SERVE_SERVE_SCHEDULER_H
#define EDGEPCC_SERVE_SERVE_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/common/status.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/geometry/point_cloud.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/serve/circuit_breaker.h"
#include "edgepcc/serve/fault_injector.h"
#include "edgepcc/serve/reference_cache.h"
#include "edgepcc/stream/overload_controller.h"

namespace edgepcc {
namespace serve {

/**
 * Per-tenant service class. Orders admission (interactive is
 * admitted first when the device cannot hold everyone), sets the
 * per-frame completion budget (frame period times the class slack),
 * and maps to ThreadPool priority (interactive encodes are kHigh).
 */
enum class DeadlineClass : std::uint8_t {
    kInteractive = 0,
    kStandard = 1,
    kBulk = 2,
};

inline constexpr int kDeadlineClassCount = 3;

const char *deadlineClassName(DeadlineClass deadline_class);

/** Completion-budget multiplier on the frame period (1x, 2x, 4x). */
double deadlineClassSlack(DeadlineClass deadline_class);

/** One tenant stream offered to the scheduler. */
struct TenantSpec {
    std::string name;
    CodecConfig codec;
    std::vector<VoxelCloud> frames;

    /** Capture cadence; frame f arrives at offset + f / fps. */
    double fps = 30.0;
    double arrival_offset_s = 0.0;

    DeadlineClass deadline_class = DeadlineClass::kStandard;

    /** DRR quantum multiplier (share of the device). */
    double weight = 1.0;

    /** Arrived-unserved frames admitted beyond the one being
     *  encoded; older frames are dropped first (same backpressure
     *  rule as StreamSession). */
    int queue_capacity = 2;

    /** Poisoned input: these per-tenant frame indices fault at
     *  dispatch (kFaulted) instead of encoding — the deterministic
     *  stand-in for a tenant whose payloads crash the encoder.
     *  Feeds the per-tenant circuit breaker. */
    std::vector<std::uint32_t> fault_frames;
};

/** Fleet-level scheduler knobs. */
struct ServeConfig {
    /** Device whose modelled timings everything is charged to. */
    DeviceSpec device = DeviceSpec::jetsonXavier15W();

    /** Identical device replicas sharing the tenant load. Each has
     *  its own virtual clock, DRR state and encoder placements. */
    int replicas = 1;

    /** Base DRR quantum in device seconds (scaled per tenant by
     *  weight). */
    double quantum_s = 0.004;

    /** Max frames co-scheduled in one batch (one per tenant; the
     *  round-robin cursor carries across rounds, so a cut batch
     *  resumes where it stopped). */
    int batch_max = 4;

    /** Dispatch overhead charged once per encode batch. */
    double batch_overhead_s = 0.0002;

    /** Admission stops when the summed estimated utilization of the
     *  tenants placed on a replica would exceed this (per replica). */
    double admission_utilization_cap = 1.0;

    bool cache_enabled = true;
    std::size_t cache_capacity = 64;
    /** Device seconds charged for serving a frame from the cache. */
    double cache_hit_cost_s = 0.0001;

    /** Optional injected compute load (LoadSpec semantics from the
     *  overload subsystem, keyed by per-tenant frame index). */
    LoadSpec load{};

    /** Injected device faults (fault_injector.h). Events must name
     *  replicas < `replicas`. Empty = no faults. */
    DeviceFaultSpec faults{};

    /** Checkpoint every k-th served frame of each tenant
     *  (VideoEncoder::StateSnapshot + stream key), so failover can
     *  restore instead of restarting the stream cold. 0 = off (the
     *  default keeps no-fault runs byte-identical). */
    int checkpoint_interval_frames = 0;
    /** Device seconds charged per checkpoint (clock + fleet busy
     *  time, like batch overhead; not billed to the tenant). */
    double checkpoint_cost_s = 0.0;

    /** Per-tenant circuit breaker (circuit_breaker.h). With no
     *  faults breakers stay closed and change nothing. */
    CircuitBreakerConfig breaker{};
};

/** Why a served frame left the scheduler the way it did. */
enum class ServeOutcome : std::uint8_t {
    kEncoded = 0,      ///< encoded on the device
    kCacheHit = 1,     ///< adopted from the reference cache
    kDropped = 2,      ///< shed by queue backpressure, never encoded
    kFaulted = 3,      ///< dispatch faulted (oom window / poisoned)
    kQuarantined = 4,  ///< shed while the tenant's breaker was open
    kShed = 5,         ///< shed by failover capacity loss
};

const char *serveOutcomeName(ServeOutcome outcome);

/** Why a tenant was rejected (or partially shed). */
enum class RejectionReason : std::uint8_t {
    kNone = 0,  ///< admitted and never shed
    /** The per-replica utilization cap was already committed. */
    kAdmissionCap = 1,
    /** The tenant alone exceeds one replica's capacity. */
    kExceedsDeviceCapacity = 2,
    /** Admitted, but shed during failover: no surviving replica had
     *  capacity left. */
    kFailoverShed = 3,
};

const char *rejectionReasonName(RejectionReason reason);

/** One frame's service record. */
struct ServedFrame {
    std::uint32_t frame_id = 0;
    ServeOutcome outcome = ServeOutcome::kEncoded;

    double arrival_s = 0.0;     ///< virtual capture time
    double start_s = 0.0;       ///< batch dispatch time
    double completion_s = 0.0;  ///< service completion time
    /** Device seconds charged (encode cost or cache-hit cost). */
    double cost_s = 0.0;
    bool deadline_missed = false;

    /** Encoded bytes (also filled on cache hits; empty on drops). */
    std::vector<std::uint8_t> bitstream;
    FrameStats stats{};

    /** OK unless outcome == kFaulted; then the attributable
     *  resource-exhaustion status ("serve: tenant 'B' frame 7:
     *  ..."). */
    Status fault_status;
};

/** Per-tenant aggregate accounting. */
struct TenantStats {
    std::size_t frames = 0;  ///< frames offered
    std::size_t served = 0;  ///< encoded + cache hits
    std::size_t encoded = 0;
    std::size_t cache_hits = 0;
    std::size_t dropped = 0;
    std::size_t deadline_misses = 0;
    std::size_t faulted = 0;      ///< dispatches that faulted
    std::size_t quarantined = 0;  ///< shed while breaker open
    std::size_t shed = 0;         ///< shed by failover
    std::size_t checkpoints = 0;

    /** Device seconds charged to this tenant. */
    double device_s = 0.0;
    /** Per-frame completion budget (class slack / fps). */
    double deadline_s = 0.0;

    /** Observed DRR deficit extremes (the fairness invariant). */
    double min_deficit_s = 0.0;
    double max_deficit_s = 0.0;
    /** Largest single charged frame cost (the overdraft bound). */
    double max_frame_cost_s = 0.0;

    /** arrival -> completion latency of every served frame. */
    std::vector<double> latency_s;
};

/** One tenant's full report. */
struct TenantReport {
    std::string name;
    DeadlineClass deadline_class = DeadlineClass::kStandard;
    double weight = 1.0;

    bool admitted = false;
    /** kNone when admitted and fully served; kFailoverShed when the
     *  tenant was admitted but lost its replica without a
     *  replacement. */
    RejectionReason rejection_reason = RejectionReason::kNone;
    /** Probe-estimated share of one replica (cost * fps). */
    double estimated_utilization = 0.0;
    /** Final placement (initial placement unless failed over). */
    int replica = 0;

    /** Served/dropped frames in frame order. */
    std::vector<ServedFrame> frames;
    TenantStats stats;
};

/** Fleet-level accounting. */
struct FleetStats {
    std::size_t sessions = 0;
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::size_t replicas = 1;

    double device_busy_s = 0.0;
    double makespan_s = 0.0;
    std::size_t rounds = 0;
    std::size_t batches = 0;
    std::size_t batched_frames = 0;

    double utilization() const;
    /** Sessions one such device sustains at full utilization. */
    double sessionsPerDevice() const;
};

/** One tenant's journey through one failover. */
struct FailoverMove {
    std::string tenant;
    int from_replica = 0;
    /** Destination replica, or -1 when the tenant was shed. */
    int to_replica = -1;
    /** Encoder state restored from a checkpoint (else cold reset;
     *  either way the next frame is a forced keyframe). */
    bool restored_from_checkpoint = false;
    /** Frames the checkpoint had served when taken (0 if none). */
    std::uint32_t checkpoint_frames = 0;
    /** First frame index to serve after the failover. */
    std::uint32_t resume_frame = 0;
};

/** One replica crash and the resulting tenant moves, in order. */
struct FailoverRecord {
    int replica = 0;
    double at_s = 0.0;  ///< crash detection time (virtual)
    std::vector<FailoverMove> moves;
};

/** Fault-tolerance accounting (ServeReport::recovery). */
struct RecoveryStats {
    std::size_t crashes = 0;
    std::size_t failovers = 0;  ///< tenants moved to a new replica
    std::size_t tenants_shed = 0;
    std::size_t checkpoints = 0;
    std::size_t breaker_trips = 0;
    std::size_t faulted_frames = 0;
    std::size_t quarantined_frames = 0;

    /** Mean over failed-over tenants of (first post-failover
     *  completion - crash time), in device seconds; 0 when no
     *  tenant recovered. */
    double mttr_s = 0.0;
    /** Slowest single tenant recovery, device seconds. */
    double worst_recovery_s = 0.0;
};

/** One service event, in device (virtual-time) order. */
struct ServeTraceEntry {
    std::string tenant;
    std::uint32_t frame_id = 0;
    ServeOutcome outcome = ServeOutcome::kEncoded;
    bool deadline_missed = false;
    int replica = 0;
};

/** The scheduler's full output. */
struct ServeReport {
    std::vector<TenantReport> tenants;  ///< input order
    FleetStats fleet;
    CacheStats cache;
    RecoveryStats recovery;
    std::vector<FailoverRecord> failovers;
    std::vector<ServeTraceEntry> trace;

    /** Jain fairness index over admitted tenants' weighted device
     *  share (1.0 = perfectly fair). */
    double fairness_index = 1.0;
};

/**
 * Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
 * shares; 1.0 for empty or all-zero input.
 */
double jainFairnessIndex(const std::vector<double> &shares);

/**
 * Renders the device-order service trace as one pinnable string:
 * "<tenant><frame>" per event, '*' = cache hit, '-' = dropped,
 * '~' = faulted, '^' = quarantined, '#' = failover-shed,
 * '!' = deadline missed, e.g. "A0 B0 B1* C0! A3- B2~ C4#".
 */
std::string traceString(const ServeReport &report);

/**
 * Renders the recovery schedule as one pinnable string, one segment
 * per crash: "crash r<replica> @<microseconds>us: <moves>", where a
 * move is "<tenant>->r<replica>" (suffix "+ckpt" when restored from
 * a checkpoint) or "<tenant>->shed"; segments joined by "; ".
 * Empty when nothing crashed. Byte-identical across re-runs of the
 * same scenario (the determinism acceptance test).
 */
std::string recoveryTraceString(const ServeReport &report);

/** Multiplexes N tenant streams over a fleet of modelled device
 *  replicas. */
class ServeScheduler
{
  public:
    ServeScheduler(ServeConfig config,
                   std::vector<TenantSpec> tenants);

    /**
     * Admits, schedules and encodes every tenant stream to
     * completion, surviving any injected device faults.
     * Deterministic: depends only on the configs, frames and fault
     * spec, never on wall clock or thread interleaving.
     */
    Expected<ServeReport> run();

  private:
    ServeConfig config_;
    std::vector<TenantSpec> tenants_;
};

}  // namespace serve
}  // namespace edgepcc

#endif  // EDGEPCC_SERVE_SERVE_SCHEDULER_H
