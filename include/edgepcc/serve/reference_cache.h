/**
 * @file
 * Content-addressed encode cache for the multi-tenant serve layer.
 *
 * Popular content is popular: when several tenants stream the same
 * sequence (a broadcast hologram, a shared scene), their encoders
 * walk through identical states and would produce byte-identical
 * bitstreams. The cache exploits that: each tenant maintains a
 * running *stream key* — a hash chain over its codec configuration
 * and every cloud it has fed to its encoder — and looks the key up
 * before encoding. A hit returns the cached bitstream together with
 * the encoder-state snapshot taken right after the original encode,
 * so the follower adopts the frame, restores the state, and later
 * frames (shared or not) still encode exactly as a solo run would.
 *
 * The key covers the *entire* encode history, so two tenants can
 * only ever hit the same entry when their encoders are in provably
 * identical states; byte-identity with a solo session is preserved
 * by construction, cache on or off.
 *
 * Thread-safe (Mutex-guarded LRU); the scheduler nevertheless
 * performs lookups and inserts on its own thread, in tenant visit
 * order, so hit/miss accounting is deterministic.
 */

#ifndef EDGEPCC_SERVE_REFERENCE_CACHE_H
#define EDGEPCC_SERVE_REFERENCE_CACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "edgepcc/common/sync.h"
#include "edgepcc/core/video_codec.h"

namespace edgepcc {
namespace serve {

/** Aggregate cache accounting (ServeReport::cache). */
struct CacheStats {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    /** Device seconds the hits did not have to spend encoding. */
    double saved_device_s = 0.0;

    double
    hitRate() const
    {
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(lookups);
    }
};

/** LRU cache entry: one encoded frame plus the encoder state that
 *  followed it. */
struct CacheEntry {
    std::vector<std::uint8_t> bitstream;
    FrameStats stats;
    VideoEncoder::StateSnapshot state_after;
    /** Modelled device seconds the original encode cost. */
    double device_cost_s = 0.0;
};

class ReferenceCache
{
  public:
    explicit ReferenceCache(std::size_t capacity);

    /** Looks up a stream key; null on miss. Counts the lookup. */
    std::shared_ptr<const CacheEntry> find(std::uint64_t key);

    /** Inserts an entry (LRU-evicting at capacity); a key that is
     *  already present only refreshes its recency. */
    void insert(std::uint64_t key, CacheEntry entry);

    /** Credits the device seconds a hit avoided. */
    void recordSavings(double device_s);

    CacheStats stats() const;

  private:
    void touchLocked(std::uint64_t key) EDGEPCC_REQUIRES(mutex_);

    const std::size_t capacity_;

    mutable Mutex mutex_;
    /** Keys in recency order, most recent first. */
    std::list<std::uint64_t> lru_ EDGEPCC_GUARDED_BY(mutex_);
    struct Slot {
        std::list<std::uint64_t>::iterator lru_pos;
        std::shared_ptr<const CacheEntry> entry;
    };
    std::unordered_map<std::uint64_t, Slot> map_
        EDGEPCC_GUARDED_BY(mutex_);
    CacheStats stats_ EDGEPCC_GUARDED_BY(mutex_);
};

/** FNV-1a over raw bytes, the serve layer's hashing primitive. */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** Content digest of a voxel cloud (grid + coordinates + colors). */
std::uint64_t cloudDigest(const VoxelCloud &cloud);

/** Digest of every bitstream-affecting codec parameter; the stream
 *  key's chain anchor. */
std::uint64_t codecConfigDigest(const CodecConfig &config);

/** Folds one frame digest into a running stream key. */
std::uint64_t chainStreamKey(std::uint64_t key,
                             std::uint64_t frame_digest);

}  // namespace serve
}  // namespace edgepcc

#endif  // EDGEPCC_SERVE_REFERENCE_CACHE_H
