/**
 * @file
 * Deterministic device-fault injection for the serve fleet.
 *
 * The overload subsystem injects *compute load* (LoadSpec); this
 * module injects *device faults* at the replica/virtual-clock level
 * so the fleet scheduler's failover machinery can be exercised and
 * pinned the same way ladder walks and DRR traces are:
 *
 *   stall     - transient unavailability: the replica's virtual
 *               clock jumps by duration_s before the next batch
 *               dispatches (a GC pause, a driver hiccup). One-shot.
 *   throttle  - thermal capacity derate: while the replica clock is
 *               inside [at_s, at_s + duration_s), every modelled
 *               encode cost is multiplied by `derate`.
 *   oom       - memory exhaustion: frames dispatched inside the
 *               window fault with kResourceExhausted (attributable
 *               per tenant + frame) instead of encoding. Feeds the
 *               per-tenant circuit breakers.
 *   crash     - hard crash/reset: fires once the replica clock
 *               passes at_s (evaluated at batch boundaries). All
 *               encoder state on the replica is lost; tenants fail
 *               over (serve_scheduler.h). duration_s > 0 restores
 *               the replica — empty — after that delay; 0 is a
 *               permanent loss.
 *
 * Faults are pure functions of the spec and the virtual clock —
 * never of wall time — so every recovery schedule is deterministic
 * and re-runs produce identical traces.
 */

#ifndef EDGEPCC_SERVE_FAULT_INJECTOR_H
#define EDGEPCC_SERVE_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "edgepcc/common/status.h"

namespace edgepcc {
namespace serve {

enum class DeviceFaultKind : std::uint8_t {
    kTransientStall = 0,
    kThermalThrottle = 1,
    kMemoryExhaustion = 2,
    kCrash = 3,
};

const char *deviceFaultKindName(DeviceFaultKind kind);

/** One injected fault on one replica. */
struct DeviceFaultEvent {
    DeviceFaultKind kind = DeviceFaultKind::kTransientStall;
    int replica = 0;
    /** Virtual device seconds at which the fault begins. */
    double at_s = 0.0;
    /** Window length (throttle/oom), stall length (stall), or
     *  restart delay (crash; 0 = permanent). */
    double duration_s = 0.0;
    /** Cost multiplier while a throttle window is active. */
    double derate = 2.0;
};

/** A full fault scenario (ServeConfig::faults). */
struct DeviceFaultSpec {
    std::vector<DeviceFaultEvent> events;

    /** No faults at all. */
    static DeviceFaultSpec none();
    /** Canonical failover scenario: permanently crash replica 1 at
     *  t = 60 ms. */
    static DeviceFaultSpec crashSecondary();
    /** Thermal brown-out: 2.5x derate on replica 0 for
     *  t in [40 ms, 140 ms). */
    static DeviceFaultSpec thermalBrownout();

    /**
     * Parses a spec string: a preset name ("none",
     * "crash-secondary", "thermal-brownout") or ';'-separated
     * events of comma-separated key=value pairs with keys
     * kind (stall|throttle|oom|crash), replica, at-ms, dur-ms,
     * derate — e.g.
     * "kind=crash,replica=1,at-ms=60;kind=throttle,at-ms=20,dur-ms=40,derate=2".
     */
    static Expected<DeviceFaultSpec> parse(const std::string &text);

    bool isIdle() const { return events.empty(); }

    /** Canonical key=value rendering (round-trips through parse);
     *  "none" when idle. Used by the bench JSON. */
    std::string toString() const;
};

/**
 * Per-run stateful view of a DeviceFaultSpec: one-shot events
 * (stalls, crashes) are consumed exactly once, window events
 * (throttle, oom) are pure queries. The scheduler consults it only
 * at batch boundaries on each replica's virtual clock, which is
 * what keeps fault delivery deterministic.
 */
class DeviceFaultInjector
{
  public:
    explicit DeviceFaultInjector(DeviceFaultSpec spec);

    /** Product of the derates of every throttle window active on
     *  `replica` at `now_s` (1.0 outside all windows). */
    double costMultiplier(int replica, double now_s) const;

    /** True when an oom window covers (replica, now_s): frames
     *  dispatched now must fault instead of encoding. */
    bool memoryExhausted(int replica, double now_s) const;

    /** Sum of the not-yet-consumed transient stalls due on
     *  `replica` at or before `now_s`; marks them consumed. */
    double consumeStall(int replica, double now_s);

    /** Index of the first unfired crash due on `replica` at or
     *  before `now_s` (marks it fired), or -1. */
    int consumeCrash(int replica, double now_s);

    const DeviceFaultEvent &
    event(std::size_t index) const
    {
        return spec_.events[index];
    }

    const DeviceFaultSpec &spec() const { return spec_; }

  private:
    DeviceFaultSpec spec_;
    std::vector<bool> consumed_;
};

}  // namespace serve
}  // namespace edgepcc

#endif  // EDGEPCC_SERVE_FAULT_INJECTOR_H
