file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_cli.dir/edgepcc_cli.cpp.o"
  "CMakeFiles/edgepcc_cli.dir/edgepcc_cli.cpp.o.d"
  "edgepcc_cli"
  "edgepcc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
