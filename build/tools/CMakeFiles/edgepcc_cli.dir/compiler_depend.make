# Empty compiler generated dependencies file for edgepcc_cli.
# This may be replaced when dependencies are built.
