
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/network_model.cpp" "src/stream/CMakeFiles/edgepcc_stream.dir/network_model.cpp.o" "gcc" "src/stream/CMakeFiles/edgepcc_stream.dir/network_model.cpp.o.d"
  "/root/repo/src/stream/pipeline.cpp" "src/stream/CMakeFiles/edgepcc_stream.dir/pipeline.cpp.o" "gcc" "src/stream/CMakeFiles/edgepcc_stream.dir/pipeline.cpp.o.d"
  "/root/repo/src/stream/rate_controller.cpp" "src/stream/CMakeFiles/edgepcc_stream.dir/rate_controller.cpp.o" "gcc" "src/stream/CMakeFiles/edgepcc_stream.dir/rate_controller.cpp.o.d"
  "/root/repo/src/stream/stream_file.cpp" "src/stream/CMakeFiles/edgepcc_stream.dir/stream_file.cpp.o" "gcc" "src/stream/CMakeFiles/edgepcc_stream.dir/stream_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edgepcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/edgepcc_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgepcc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/edgepcc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/interframe/CMakeFiles/edgepcc_interframe.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/edgepcc_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/edgepcc_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/edgepcc_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/edgepcc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
