file(REMOVE_RECURSE
  "libedgepcc_stream.a"
)
