file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_stream.dir/network_model.cpp.o"
  "CMakeFiles/edgepcc_stream.dir/network_model.cpp.o.d"
  "CMakeFiles/edgepcc_stream.dir/pipeline.cpp.o"
  "CMakeFiles/edgepcc_stream.dir/pipeline.cpp.o.d"
  "CMakeFiles/edgepcc_stream.dir/rate_controller.cpp.o"
  "CMakeFiles/edgepcc_stream.dir/rate_controller.cpp.o.d"
  "CMakeFiles/edgepcc_stream.dir/stream_file.cpp.o"
  "CMakeFiles/edgepcc_stream.dir/stream_file.cpp.o.d"
  "libedgepcc_stream.a"
  "libedgepcc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
