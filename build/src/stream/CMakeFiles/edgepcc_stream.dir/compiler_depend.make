# Empty compiler generated dependencies file for edgepcc_stream.
# This may be replaced when dependencies are built.
