file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_core.dir/presets.cpp.o"
  "CMakeFiles/edgepcc_core.dir/presets.cpp.o.d"
  "CMakeFiles/edgepcc_core.dir/video_codec.cpp.o"
  "CMakeFiles/edgepcc_core.dir/video_codec.cpp.o.d"
  "libedgepcc_core.a"
  "libedgepcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
