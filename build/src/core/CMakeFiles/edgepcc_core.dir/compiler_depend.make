# Empty compiler generated dependencies file for edgepcc_core.
# This may be replaced when dependencies are built.
