file(REMOVE_RECURSE
  "libedgepcc_core.a"
)
