
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/grid_hash.cpp" "src/geometry/CMakeFiles/edgepcc_geometry.dir/grid_hash.cpp.o" "gcc" "src/geometry/CMakeFiles/edgepcc_geometry.dir/grid_hash.cpp.o.d"
  "/root/repo/src/geometry/point_cloud.cpp" "src/geometry/CMakeFiles/edgepcc_geometry.dir/point_cloud.cpp.o" "gcc" "src/geometry/CMakeFiles/edgepcc_geometry.dir/point_cloud.cpp.o.d"
  "/root/repo/src/geometry/voxelizer.cpp" "src/geometry/CMakeFiles/edgepcc_geometry.dir/voxelizer.cpp.o" "gcc" "src/geometry/CMakeFiles/edgepcc_geometry.dir/voxelizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
