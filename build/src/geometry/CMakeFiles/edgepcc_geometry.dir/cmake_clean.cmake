file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_geometry.dir/grid_hash.cpp.o"
  "CMakeFiles/edgepcc_geometry.dir/grid_hash.cpp.o.d"
  "CMakeFiles/edgepcc_geometry.dir/point_cloud.cpp.o"
  "CMakeFiles/edgepcc_geometry.dir/point_cloud.cpp.o.d"
  "CMakeFiles/edgepcc_geometry.dir/voxelizer.cpp.o"
  "CMakeFiles/edgepcc_geometry.dir/voxelizer.cpp.o.d"
  "libedgepcc_geometry.a"
  "libedgepcc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
