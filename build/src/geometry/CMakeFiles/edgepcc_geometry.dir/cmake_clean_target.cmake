file(REMOVE_RECURSE
  "libedgepcc_geometry.a"
)
