# Empty compiler generated dependencies file for edgepcc_geometry.
# This may be replaced when dependencies are built.
