file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_common.dir/log.cpp.o"
  "CMakeFiles/edgepcc_common.dir/log.cpp.o.d"
  "CMakeFiles/edgepcc_common.dir/rng.cpp.o"
  "CMakeFiles/edgepcc_common.dir/rng.cpp.o.d"
  "CMakeFiles/edgepcc_common.dir/status.cpp.o"
  "CMakeFiles/edgepcc_common.dir/status.cpp.o.d"
  "CMakeFiles/edgepcc_common.dir/work_counters.cpp.o"
  "CMakeFiles/edgepcc_common.dir/work_counters.cpp.o.d"
  "libedgepcc_common.a"
  "libedgepcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
