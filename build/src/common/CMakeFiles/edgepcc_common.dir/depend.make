# Empty dependencies file for edgepcc_common.
# This may be replaced when dependencies are built.
