file(REMOVE_RECURSE
  "libedgepcc_common.a"
)
