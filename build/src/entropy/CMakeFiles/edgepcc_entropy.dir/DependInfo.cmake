
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/entropy/bitstream.cpp" "src/entropy/CMakeFiles/edgepcc_entropy.dir/bitstream.cpp.o" "gcc" "src/entropy/CMakeFiles/edgepcc_entropy.dir/bitstream.cpp.o.d"
  "/root/repo/src/entropy/range_coder.cpp" "src/entropy/CMakeFiles/edgepcc_entropy.dir/range_coder.cpp.o" "gcc" "src/entropy/CMakeFiles/edgepcc_entropy.dir/range_coder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
