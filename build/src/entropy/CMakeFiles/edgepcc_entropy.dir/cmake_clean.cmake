file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_entropy.dir/bitstream.cpp.o"
  "CMakeFiles/edgepcc_entropy.dir/bitstream.cpp.o.d"
  "CMakeFiles/edgepcc_entropy.dir/range_coder.cpp.o"
  "CMakeFiles/edgepcc_entropy.dir/range_coder.cpp.o.d"
  "libedgepcc_entropy.a"
  "libedgepcc_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
