file(REMOVE_RECURSE
  "libedgepcc_entropy.a"
)
