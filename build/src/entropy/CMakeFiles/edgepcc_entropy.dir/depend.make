# Empty dependencies file for edgepcc_entropy.
# This may be replaced when dependencies are built.
