file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_dataset.dir/catalogue.cpp.o"
  "CMakeFiles/edgepcc_dataset.dir/catalogue.cpp.o.d"
  "CMakeFiles/edgepcc_dataset.dir/ply_io.cpp.o"
  "CMakeFiles/edgepcc_dataset.dir/ply_io.cpp.o.d"
  "CMakeFiles/edgepcc_dataset.dir/synthetic_human.cpp.o"
  "CMakeFiles/edgepcc_dataset.dir/synthetic_human.cpp.o.d"
  "libedgepcc_dataset.a"
  "libedgepcc_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
