# Empty compiler generated dependencies file for edgepcc_dataset.
# This may be replaced when dependencies are built.
