file(REMOVE_RECURSE
  "libedgepcc_dataset.a"
)
