
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/catalogue.cpp" "src/dataset/CMakeFiles/edgepcc_dataset.dir/catalogue.cpp.o" "gcc" "src/dataset/CMakeFiles/edgepcc_dataset.dir/catalogue.cpp.o.d"
  "/root/repo/src/dataset/ply_io.cpp" "src/dataset/CMakeFiles/edgepcc_dataset.dir/ply_io.cpp.o" "gcc" "src/dataset/CMakeFiles/edgepcc_dataset.dir/ply_io.cpp.o.d"
  "/root/repo/src/dataset/synthetic_human.cpp" "src/dataset/CMakeFiles/edgepcc_dataset.dir/synthetic_human.cpp.o" "gcc" "src/dataset/CMakeFiles/edgepcc_dataset.dir/synthetic_human.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgepcc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/edgepcc_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/edgepcc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
