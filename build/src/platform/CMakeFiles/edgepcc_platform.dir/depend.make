# Empty dependencies file for edgepcc_platform.
# This may be replaced when dependencies are built.
