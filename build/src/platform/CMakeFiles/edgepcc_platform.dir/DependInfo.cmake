
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/calibration.cpp" "src/platform/CMakeFiles/edgepcc_platform.dir/calibration.cpp.o" "gcc" "src/platform/CMakeFiles/edgepcc_platform.dir/calibration.cpp.o.d"
  "/root/repo/src/platform/device_model.cpp" "src/platform/CMakeFiles/edgepcc_platform.dir/device_model.cpp.o" "gcc" "src/platform/CMakeFiles/edgepcc_platform.dir/device_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
