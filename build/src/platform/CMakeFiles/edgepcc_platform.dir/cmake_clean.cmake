file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_platform.dir/calibration.cpp.o"
  "CMakeFiles/edgepcc_platform.dir/calibration.cpp.o.d"
  "CMakeFiles/edgepcc_platform.dir/device_model.cpp.o"
  "CMakeFiles/edgepcc_platform.dir/device_model.cpp.o.d"
  "libedgepcc_platform.a"
  "libedgepcc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
