file(REMOVE_RECURSE
  "libedgepcc_platform.a"
)
