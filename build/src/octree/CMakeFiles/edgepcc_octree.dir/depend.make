# Empty dependencies file for edgepcc_octree.
# This may be replaced when dependencies are built.
