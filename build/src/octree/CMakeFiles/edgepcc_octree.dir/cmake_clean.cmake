file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_octree.dir/geometry_codec.cpp.o"
  "CMakeFiles/edgepcc_octree.dir/geometry_codec.cpp.o.d"
  "CMakeFiles/edgepcc_octree.dir/parallel_builder.cpp.o"
  "CMakeFiles/edgepcc_octree.dir/parallel_builder.cpp.o.d"
  "CMakeFiles/edgepcc_octree.dir/sequential_builder.cpp.o"
  "CMakeFiles/edgepcc_octree.dir/sequential_builder.cpp.o.d"
  "libedgepcc_octree.a"
  "libedgepcc_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
