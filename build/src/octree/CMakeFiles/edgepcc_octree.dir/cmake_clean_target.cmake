file(REMOVE_RECURSE
  "libedgepcc_octree.a"
)
