file(REMOVE_RECURSE
  "libedgepcc_metrics.a"
)
