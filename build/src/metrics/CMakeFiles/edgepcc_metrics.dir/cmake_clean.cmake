file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_metrics.dir/cdf.cpp.o"
  "CMakeFiles/edgepcc_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/edgepcc_metrics.dir/quality.cpp.o"
  "CMakeFiles/edgepcc_metrics.dir/quality.cpp.o.d"
  "libedgepcc_metrics.a"
  "libedgepcc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
