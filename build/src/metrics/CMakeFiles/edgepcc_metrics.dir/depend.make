# Empty dependencies file for edgepcc_metrics.
# This may be replaced when dependencies are built.
