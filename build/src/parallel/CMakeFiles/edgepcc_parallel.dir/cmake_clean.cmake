file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_parallel.dir/radix_sort.cpp.o"
  "CMakeFiles/edgepcc_parallel.dir/radix_sort.cpp.o.d"
  "CMakeFiles/edgepcc_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/edgepcc_parallel.dir/thread_pool.cpp.o.d"
  "libedgepcc_parallel.a"
  "libedgepcc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
