# Empty dependencies file for edgepcc_parallel.
# This may be replaced when dependencies are built.
