file(REMOVE_RECURSE
  "libedgepcc_parallel.a"
)
