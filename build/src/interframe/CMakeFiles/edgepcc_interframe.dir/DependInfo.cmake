
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interframe/block_matcher.cpp" "src/interframe/CMakeFiles/edgepcc_interframe.dir/block_matcher.cpp.o" "gcc" "src/interframe/CMakeFiles/edgepcc_interframe.dir/block_matcher.cpp.o.d"
  "/root/repo/src/interframe/macroblock_codec.cpp" "src/interframe/CMakeFiles/edgepcc_interframe.dir/macroblock_codec.cpp.o" "gcc" "src/interframe/CMakeFiles/edgepcc_interframe.dir/macroblock_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attr/CMakeFiles/edgepcc_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/edgepcc_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgepcc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/edgepcc_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/edgepcc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
