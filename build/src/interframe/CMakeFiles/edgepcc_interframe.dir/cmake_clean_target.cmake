file(REMOVE_RECURSE
  "libedgepcc_interframe.a"
)
