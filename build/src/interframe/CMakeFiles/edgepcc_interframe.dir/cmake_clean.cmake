file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_interframe.dir/block_matcher.cpp.o"
  "CMakeFiles/edgepcc_interframe.dir/block_matcher.cpp.o.d"
  "CMakeFiles/edgepcc_interframe.dir/macroblock_codec.cpp.o"
  "CMakeFiles/edgepcc_interframe.dir/macroblock_codec.cpp.o.d"
  "libedgepcc_interframe.a"
  "libedgepcc_interframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_interframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
