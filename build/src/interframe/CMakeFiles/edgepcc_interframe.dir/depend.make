# Empty dependencies file for edgepcc_interframe.
# This may be replaced when dependencies are built.
