
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/morton/morton.cpp" "src/morton/CMakeFiles/edgepcc_morton.dir/morton.cpp.o" "gcc" "src/morton/CMakeFiles/edgepcc_morton.dir/morton.cpp.o.d"
  "/root/repo/src/morton/morton_order.cpp" "src/morton/CMakeFiles/edgepcc_morton.dir/morton_order.cpp.o" "gcc" "src/morton/CMakeFiles/edgepcc_morton.dir/morton_order.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgepcc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/edgepcc_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
