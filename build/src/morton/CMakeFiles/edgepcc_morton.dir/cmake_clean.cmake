file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_morton.dir/morton.cpp.o"
  "CMakeFiles/edgepcc_morton.dir/morton.cpp.o.d"
  "CMakeFiles/edgepcc_morton.dir/morton_order.cpp.o"
  "CMakeFiles/edgepcc_morton.dir/morton_order.cpp.o.d"
  "libedgepcc_morton.a"
  "libedgepcc_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
