file(REMOVE_RECURSE
  "libedgepcc_morton.a"
)
