# Empty compiler generated dependencies file for edgepcc_morton.
# This may be replaced when dependencies are built.
