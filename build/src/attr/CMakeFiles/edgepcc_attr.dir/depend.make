# Empty dependencies file for edgepcc_attr.
# This may be replaced when dependencies are built.
