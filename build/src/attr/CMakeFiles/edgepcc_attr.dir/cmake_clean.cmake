file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_attr.dir/predicting_transform.cpp.o"
  "CMakeFiles/edgepcc_attr.dir/predicting_transform.cpp.o.d"
  "CMakeFiles/edgepcc_attr.dir/raht.cpp.o"
  "CMakeFiles/edgepcc_attr.dir/raht.cpp.o.d"
  "CMakeFiles/edgepcc_attr.dir/segment_codec.cpp.o"
  "CMakeFiles/edgepcc_attr.dir/segment_codec.cpp.o.d"
  "libedgepcc_attr.a"
  "libedgepcc_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
