file(REMOVE_RECURSE
  "libedgepcc_attr.a"
)
