file(REMOVE_RECURSE
  "CMakeFiles/edge_profiler.dir/edge_profiler.cpp.o"
  "CMakeFiles/edge_profiler.dir/edge_profiler.cpp.o.d"
  "edge_profiler"
  "edge_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
