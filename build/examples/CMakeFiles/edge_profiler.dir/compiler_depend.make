# Empty compiler generated dependencies file for edge_profiler.
# This may be replaced when dependencies are built.
