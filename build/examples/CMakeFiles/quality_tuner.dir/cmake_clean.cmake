file(REMOVE_RECURSE
  "CMakeFiles/quality_tuner.dir/quality_tuner.cpp.o"
  "CMakeFiles/quality_tuner.dir/quality_tuner.cpp.o.d"
  "quality_tuner"
  "quality_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
