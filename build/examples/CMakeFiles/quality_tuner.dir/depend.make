# Empty dependencies file for quality_tuner.
# This may be replaced when dependencies are built.
