# Empty dependencies file for telepresence_stream.
# This may be replaced when dependencies are built.
