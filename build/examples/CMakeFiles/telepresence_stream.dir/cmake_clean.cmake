file(REMOVE_RECURSE
  "CMakeFiles/telepresence_stream.dir/telepresence_stream.cpp.o"
  "CMakeFiles/telepresence_stream.dir/telepresence_stream.cpp.o.d"
  "telepresence_stream"
  "telepresence_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telepresence_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
