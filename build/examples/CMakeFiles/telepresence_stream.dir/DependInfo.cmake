
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/telepresence_stream.cpp" "examples/CMakeFiles/telepresence_stream.dir/telepresence_stream.cpp.o" "gcc" "examples/CMakeFiles/telepresence_stream.dir/telepresence_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edgepcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/edgepcc_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/edgepcc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/edgepcc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/edgepcc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/interframe/CMakeFiles/edgepcc_interframe.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/edgepcc_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/edgepcc_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/edgepcc_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/edgepcc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/edgepcc_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgepcc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgepcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
