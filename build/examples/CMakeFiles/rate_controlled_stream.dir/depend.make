# Empty dependencies file for rate_controlled_stream.
# This may be replaced when dependencies are built.
