file(REMOVE_RECURSE
  "CMakeFiles/rate_controlled_stream.dir/rate_controlled_stream.cpp.o"
  "CMakeFiles/rate_controlled_stream.dir/rate_controlled_stream.cpp.o.d"
  "rate_controlled_stream"
  "rate_controlled_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_controlled_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
