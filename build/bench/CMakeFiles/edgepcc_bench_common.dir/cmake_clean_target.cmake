file(REMOVE_RECURSE
  "libedgepcc_bench_common.a"
)
