file(REMOVE_RECURSE
  "CMakeFiles/edgepcc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/edgepcc_bench_common.dir/bench_common.cpp.o.d"
  "libedgepcc_bench_common.a"
  "libedgepcc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgepcc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
