# Empty dependencies file for edgepcc_bench_common.
# This may be replaced when dependencies are built.
