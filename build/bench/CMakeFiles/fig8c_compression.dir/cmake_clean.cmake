file(REMOVE_RECURSE
  "CMakeFiles/fig8c_compression.dir/fig8c_compression.cpp.o"
  "CMakeFiles/fig8c_compression.dir/fig8c_compression.cpp.o.d"
  "fig8c_compression"
  "fig8c_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
