# Empty compiler generated dependencies file for fig8b_energy.
# This may be replaced when dependencies are built.
