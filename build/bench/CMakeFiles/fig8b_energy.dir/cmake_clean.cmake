file(REMOVE_RECURSE
  "CMakeFiles/fig8b_energy.dir/fig8b_energy.cpp.o"
  "CMakeFiles/fig8b_energy.dir/fig8b_energy.cpp.o.d"
  "fig8b_energy"
  "fig8b_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
