# Empty dependencies file for fig10b_sensitivity.
# This may be replaced when dependencies are built.
