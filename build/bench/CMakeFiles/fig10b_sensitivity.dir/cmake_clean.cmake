file(REMOVE_RECURSE
  "CMakeFiles/fig10b_sensitivity.dir/fig10b_sensitivity.cpp.o"
  "CMakeFiles/fig10b_sensitivity.dir/fig10b_sensitivity.cpp.o.d"
  "fig10b_sensitivity"
  "fig10b_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
