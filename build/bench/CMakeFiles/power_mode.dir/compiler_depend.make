# Empty compiler generated dependencies file for power_mode.
# This may be replaced when dependencies are built.
