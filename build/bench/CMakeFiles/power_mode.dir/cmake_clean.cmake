file(REMOVE_RECURSE
  "CMakeFiles/power_mode.dir/power_mode.cpp.o"
  "CMakeFiles/power_mode.dir/power_mode.cpp.o.d"
  "power_mode"
  "power_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
