file(REMOVE_RECURSE
  "CMakeFiles/decode_latency.dir/decode_latency.cpp.o"
  "CMakeFiles/decode_latency.dir/decode_latency.cpp.o.d"
  "decode_latency"
  "decode_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
