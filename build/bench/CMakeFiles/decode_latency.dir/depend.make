# Empty dependencies file for decode_latency.
# This may be replaced when dependencies are built.
