file(REMOVE_RECURSE
  "CMakeFiles/endtoend_pipeline.dir/endtoend_pipeline.cpp.o"
  "CMakeFiles/endtoend_pipeline.dir/endtoend_pipeline.cpp.o.d"
  "endtoend_pipeline"
  "endtoend_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
