# Empty compiler generated dependencies file for endtoend_pipeline.
# This may be replaced when dependencies are built.
