file(REMOVE_RECURSE
  "CMakeFiles/fig3_locality.dir/fig3_locality.cpp.o"
  "CMakeFiles/fig3_locality.dir/fig3_locality.cpp.o.d"
  "fig3_locality"
  "fig3_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
