# Empty compiler generated dependencies file for ablation_attr.
# This may be replaced when dependencies are built.
