file(REMOVE_RECURSE
  "CMakeFiles/ablation_attr.dir/ablation_attr.cpp.o"
  "CMakeFiles/ablation_attr.dir/ablation_attr.cpp.o.d"
  "ablation_attr"
  "ablation_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
