file(REMOVE_RECURSE
  "CMakeFiles/fig8a_latency.dir/fig8a_latency.cpp.o"
  "CMakeFiles/fig8a_latency.dir/fig8a_latency.cpp.o.d"
  "fig8a_latency"
  "fig8a_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
