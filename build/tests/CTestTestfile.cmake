# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_block_matcher[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_codec[1]_include.cmake")
include("/root/repo/build/tests/test_macroblock_codec[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_octree[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_raht[1]_include.cmake")
include("/root/repo/build/tests/test_range_coder[1]_include.cmake")
include("/root/repo/build/tests/test_segment_codec[1]_include.cmake")
include("/root/repo/build/tests/test_predicting_transform[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_status[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_video_codec[1]_include.cmake")
include("/root/repo/build/tests/test_work_counters[1]_include.cmake")
