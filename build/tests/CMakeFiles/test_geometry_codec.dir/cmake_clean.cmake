file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_codec.dir/test_geometry_codec.cpp.o"
  "CMakeFiles/test_geometry_codec.dir/test_geometry_codec.cpp.o.d"
  "test_geometry_codec"
  "test_geometry_codec.pdb"
  "test_geometry_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
