# Empty compiler generated dependencies file for test_geometry_codec.
# This may be replaced when dependencies are built.
