# Empty dependencies file for test_block_matcher.
# This may be replaced when dependencies are built.
