file(REMOVE_RECURSE
  "CMakeFiles/test_block_matcher.dir/test_block_matcher.cpp.o"
  "CMakeFiles/test_block_matcher.dir/test_block_matcher.cpp.o.d"
  "test_block_matcher"
  "test_block_matcher.pdb"
  "test_block_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
