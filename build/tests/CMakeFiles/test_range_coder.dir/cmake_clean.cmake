file(REMOVE_RECURSE
  "CMakeFiles/test_range_coder.dir/test_range_coder.cpp.o"
  "CMakeFiles/test_range_coder.dir/test_range_coder.cpp.o.d"
  "test_range_coder"
  "test_range_coder.pdb"
  "test_range_coder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_coder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
