file(REMOVE_RECURSE
  "CMakeFiles/test_predicting_transform.dir/test_predicting_transform.cpp.o"
  "CMakeFiles/test_predicting_transform.dir/test_predicting_transform.cpp.o.d"
  "test_predicting_transform"
  "test_predicting_transform.pdb"
  "test_predicting_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicting_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
