# Empty dependencies file for test_macroblock_codec.
# This may be replaced when dependencies are built.
