file(REMOVE_RECURSE
  "CMakeFiles/test_macroblock_codec.dir/test_macroblock_codec.cpp.o"
  "CMakeFiles/test_macroblock_codec.dir/test_macroblock_codec.cpp.o.d"
  "test_macroblock_codec"
  "test_macroblock_codec.pdb"
  "test_macroblock_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macroblock_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
