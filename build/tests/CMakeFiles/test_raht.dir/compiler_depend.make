# Empty compiler generated dependencies file for test_raht.
# This may be replaced when dependencies are built.
