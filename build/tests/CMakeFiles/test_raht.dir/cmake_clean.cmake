file(REMOVE_RECURSE
  "CMakeFiles/test_raht.dir/test_raht.cpp.o"
  "CMakeFiles/test_raht.dir/test_raht.cpp.o.d"
  "test_raht"
  "test_raht.pdb"
  "test_raht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
