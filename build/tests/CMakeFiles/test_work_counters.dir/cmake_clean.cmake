file(REMOVE_RECURSE
  "CMakeFiles/test_work_counters.dir/test_work_counters.cpp.o"
  "CMakeFiles/test_work_counters.dir/test_work_counters.cpp.o.d"
  "test_work_counters"
  "test_work_counters.pdb"
  "test_work_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
