# Empty dependencies file for test_work_counters.
# This may be replaced when dependencies are built.
