file(REMOVE_RECURSE
  "CMakeFiles/test_segment_codec.dir/test_segment_codec.cpp.o"
  "CMakeFiles/test_segment_codec.dir/test_segment_codec.cpp.o.d"
  "test_segment_codec"
  "test_segment_codec.pdb"
  "test_segment_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segment_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
