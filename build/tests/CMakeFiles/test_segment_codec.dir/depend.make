# Empty dependencies file for test_segment_codec.
# This may be replaced when dependencies are built.
