file(REMOVE_RECURSE
  "CMakeFiles/test_video_codec.dir/test_video_codec.cpp.o"
  "CMakeFiles/test_video_codec.dir/test_video_codec.cpp.o.d"
  "test_video_codec"
  "test_video_codec.pdb"
  "test_video_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
