# Empty dependencies file for test_video_codec.
# This may be replaced when dependencies are built.
