/**
 * @file
 * Regenerates the golden-bitstream conformance files. Run via
 * tools/regen_golden.sh; see tools/golden_spec.h for what a golden
 * file pins down.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/stream/stream_file.h"

#include "golden_spec.h"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        (void)std::fprintf(stderr, "usage: golden_gen <output_dir>\n");
        return 2;
    }
    const std::string out_dir = argv[1];

    using namespace edgepcc;
    const VideoSpec spec = golden::goldenVideoSpec();
    const SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    for (int i = 0; i < golden::kGoldenFrames; ++i)
        frames.push_back(video.frame(i));

    for (const golden::GoldenCase &item : golden::goldenCases()) {
        VideoEncoder encoder(item.config);
        std::vector<std::vector<std::uint8_t>> bitstreams;
        for (const VoxelCloud &frame : frames) {
            auto encoded = encoder.encode(frame);
            if (!encoded) {
                (void)std::fprintf(stderr, "golden_gen: %s: %s\n",
                             item.config.name.c_str(),
                             encoded.status().message().c_str());
                return 1;
            }
            bitstreams.push_back(std::move(encoded->bitstream));
        }
        const std::string path = out_dir + "/" + item.file;
        const Status status = writeStreamFile(path, bitstreams);
        if (!status.isOk()) {
            (void)std::fprintf(stderr, "golden_gen: %s: %s\n",
                         path.c_str(), status.message().c_str());
            return 1;
        }
        std::uint64_t total = 0;
        for (const auto &bitstream : bitstreams)
            total += bitstream.size();
        (void)std::fprintf(stderr, "wrote %s (%d frames, %llu bytes)\n",
                     path.c_str(), golden::kGoldenFrames,
                     static_cast<unsigned long long>(total));
    }
    return 0;
}
