/**
 * @file
 * Perf-regression bench driver.
 *
 * Runs a fixed synthetic-human workload through one codec
 * configuration and emits a machine-readable BENCH_results.json:
 * per-stage latency percentiles (measured host + modelled Jetson),
 * end-to-end fps, compressed bytes/point, and PSNR. Every perf PR
 * records its trajectory by diffing two such files with
 * tools/compare_bench.py (see docs/OBSERVABILITY.md for the
 * schema).
 *
 * Usage:
 *   bench_runner [--config v1|v2|intra|tmc13|cwipc] [--frames N]
 *                [--points N] [--seed N] [--threads N]
 *                [--out FILE] [--trace FILE] [--measure-overhead]
 *                [--loss R] [--channel-seed N]
 *                [--network wifi|lte|5g] [--mtu N] [--fec-group K]
 *                [--deadline-ms MS] [--load-spec SPEC]
 *                [--sessions N]
 *
 * With --loss R the same workload additionally runs through the
 * loss-resilient StreamSession over a ChannelSpec::lossy(R) channel
 * and a "resilience" section (ladder outcome counts, retransmission
 * cost, concealed-frame quality) is added to the JSON. The section
 * also carries a "modes" comparison: the full network-aware
 * pipeline (paper Fig. 9 — capture -> encode -> transfer incl.
 * loss recovery -> decode -> render) evaluated once with pure
 * NACK/retransmission and once with XOR-parity FEC enabled, over a
 * channel derived from the selected --network profile at the given
 * loss rate.
 *
 * With --deadline-ms MS the workload additionally runs through the
 * deadline-aware overload ladder (stream/overload_controller.h)
 * under the synthetic load of --load-spec, and an "overload" JSON
 * section (rung occupancy, deadline-miss rate, modelled encode
 * latency percentiles incl. p99) is added. Fully deterministic:
 * the ladder walks modelled Jetson seconds, not host time.
 *
 * With --sessions N a fleet of N tenant streams (deadline classes
 * cycled, content shared in pairs so the reference cache engages)
 * runs through the multi-tenant ServeScheduler and a "serve" JSON
 * section is added: sessions per device, per-tenant latency
 * percentiles incl. the worst-tenant p99, the Jain fairness index
 * and cache hit accounting. Deterministic for the same reason the
 * overload section is: the fleet runs on the virtual device clock.
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/common/crc32c.h"
#include "edgepcc/common/rng.h"
#include "edgepcc/common/timer.h"
#include "edgepcc/common/trace.h"
#include "edgepcc/core/codec_config.h"
#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/parallel/radix_sort.h"
#include "edgepcc/parallel/thread_pool.h"
#include "edgepcc/platform/arena.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/platform/simd.h"
#include "edgepcc/serve/fault_injector.h"
#include "edgepcc/serve/serve_scheduler.h"
#include "edgepcc/stream/overload_controller.h"
#include "edgepcc/stream/pipeline.h"
#include "edgepcc/stream/stream_session.h"

namespace {

using namespace edgepcc;

/** One encode+decode pass over the workload. */
struct RunMetrics {
    StageStatsAggregator stages;
    std::vector<double> enc_host_s;
    std::vector<double> dec_host_s;
    std::vector<double> enc_model_s;
    std::vector<double> dec_model_s;
    std::uint64_t compressed_bytes = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t points = 0;
    double attr_psnr_db = 0.0;  ///< mean over frames
    double geom_psnr_db = 0.0;

    double
    meanEncodeHostSeconds() const
    {
        double sum = 0.0;
        for (const double s : enc_host_s)
            sum += s;
        return enc_host_s.empty()
                   ? 0.0
                   : sum / static_cast<double>(enc_host_s.size());
    }

    double
    totalEncodeHostSeconds() const
    {
        double sum = 0.0;
        for (const double s : enc_host_s)
            sum += s;
        return sum;
    }
};

/** Caps lossless-infinite PSNR for JSON (inf is not valid JSON). */
double
jsonPsnr(double psnr)
{
    return psnr > 999.0 ? 999.0 : psnr;
}

/** One transport mode's end-to-end (Fig. 9 style) numbers. */
struct ModeMetrics {
    PercentileStats e2e_latency_s;  ///< capture..render incl. recovery
    double transmit_s_mean = 0.0;
    double recovery_s_mean = 0.0;
    std::uint64_t wire_bytes = 0;
    std::size_t retransmits = 0;
    std::size_t parity_sent = 0;
    std::size_t fec_recovered_chunks = 0;
    double fec_single_loss_recovered_fraction = 1.0;
    double fec_multi_loss_recovered_fraction = 1.0;
    double ok_or_concealed_fraction = 0.0;
};

/** Lossy-channel session results (present only with --loss). */
struct ResilienceMetrics {
    bool enabled = false;
    double loss_rate = 0.0;
    std::uint64_t channel_seed = 1;
    SessionStats stats;
    WireScanStats wire;
    /** Mean attribute PSNR of concealed frames vs the originals;
     *  negative when no frame was concealed. */
    double concealed_attr_psnr_db = -1.0;

    /** FEC-vs-NACK end-to-end comparison over --network. */
    std::string network_name;
    std::size_t mtu_payload = 0;
    int fec_group_size = 0;
    /** RS mode (present only with --fec-scheme rs). */
    bool rs_enabled = false;
    int fec_parity = 0;
    double burst_rate = 0.0;
    int burst_length = 0;
    ModeMetrics nack;
    ModeMetrics fec;
    ModeMetrics rs;
};

/** Channel shaping shared by all modes of one comparison. */
struct ModeChannel {
    /** > 0 replaces the network-derived channel with a pure burst
     *  channel (burst_rate per-chunk start probability). */
    double burst_rate = 0.0;
    int burst_length = 4;
};

/** Network-aware end-to-end evaluation of one transport mode. */
Expected<ModeMetrics>
runMode(const std::vector<VoxelCloud> &frames,
        const CodecConfig &config, const NetworkSpec &network,
        std::size_t mtu_payload, bool fec_enabled,
        int fec_group_size, FecScheme fec_scheme, int fec_parity,
        const ModeChannel &shape, std::uint64_t channel_seed)
{
    PipelineConfig pipe;
    pipe.network = network;
    pipe.transport = true;
    pipe.transport_seed = channel_seed;
    pipe.session.mtu_payload = mtu_payload;
    pipe.session.fec.enabled = fec_enabled;
    pipe.session.fec.group_size = fec_group_size;
    pipe.session.fec.scheme = fec_scheme;
    pipe.session.fec.parity_chunks = fec_parity;
    if (shape.burst_rate > 0.0) {
        // Same bursty channel for every mode in the comparison, so
        // nack-vs-xor-vs-rs differ only in the recovery scheme.
        pipe.use_session_channel = true;
        pipe.session.channel = ChannelSpec::bursty(
            shape.burst_rate, shape.burst_length, channel_seed);
    }

    auto report = evaluatePipeline(frames, config, pipe);
    if (!report)
        return report.status();

    ModeMetrics mode;
    std::vector<double> totals;
    totals.reserve(report->frames.size());
    double transmit_sum = 0.0;
    double recovery_sum = 0.0;
    for (const FrameLatency &frame : report->frames) {
        totals.push_back(frame.total());
        transmit_sum += frame.transmit_s;
        recovery_sum += frame.recovery_s;
    }
    const double n =
        report->frames.empty()
            ? 1.0
            : static_cast<double>(report->frames.size());
    mode.e2e_latency_s = computePercentiles(totals);
    mode.transmit_s_mean = transmit_sum / n;
    mode.recovery_s_mean = recovery_sum / n;
    mode.wire_bytes = report->session.wire_bytes;
    mode.retransmits = report->session.retransmits;
    mode.parity_sent = report->session.parity_sent;
    mode.fec_recovered_chunks = report->fec.recovered_chunks;
    mode.fec_single_loss_recovered_fraction =
        report->fec.singleLossRecoveredFraction();
    mode.fec_multi_loss_recovered_fraction =
        report->fec.multiLossRecoveredFraction();
    mode.ok_or_concealed_fraction =
        report->session.okOrConcealedFraction();
    return mode;
}

Expected<ResilienceMetrics>
runResilience(const std::vector<VoxelCloud> &frames,
              const CodecConfig &config, double loss_rate,
              std::uint64_t channel_seed)
{
    SessionConfig session;
    session.channel = ChannelSpec::lossy(loss_rate, channel_seed);

    StreamSession stream(config, session);
    auto report = stream.run(frames);
    if (!report)
        return report.status();

    ResilienceMetrics metrics;
    metrics.enabled = true;
    metrics.loss_rate = loss_rate;
    metrics.channel_seed = channel_seed;
    metrics.stats = report->stats;
    metrics.wire = report->wire;

    double psnr_sum = 0.0;
    std::size_t concealed = 0;
    for (std::size_t f = 0; f < report->frames.size(); ++f) {
        if (report->frames[f].outcome !=
            FrameOutcome::kConcealed)
            continue;
        psnr_sum +=
            attributePsnr(frames[f], report->frames[f].cloud)
                .psnr;
        ++concealed;
    }
    if (concealed > 0)
        metrics.concealed_attr_psnr_db =
            psnr_sum / static_cast<double>(concealed);
    return metrics;
}

/** Deadline-ladder results (present only with --deadline-ms). */
struct OverloadBenchMetrics {
    bool enabled = false;
    double deadline_ms = 0.0;
    std::string load_spec;
    OverloadStats stats;
    /** Modelled encode latency of non-dropped frames. */
    PercentileStats encode_latency;
};

/**
 * Runs the workload through the overload-armed session on a clean
 * channel: the only stressor is the injected LoadSpec, so the rung
 * walk and miss rate are deterministic and comparable across runs.
 */
Expected<OverloadBenchMetrics>
runOverload(const std::vector<VoxelCloud> &frames,
            const CodecConfig &config, double deadline_ms,
            const std::string &load_spec)
{
    auto load = LoadSpec::parse(load_spec);
    if (!load)
        return load.status();

    SessionConfig session;
    session.adaptive_gop = false;  // isolate the deadline ladder
    session.overload.enabled = true;
    session.overload.deadline_s = deadline_ms * 1e-3;
    session.overload.load = *load;

    StreamSession stream(config, session);
    auto report = stream.run(frames);
    if (!report)
        return report.status();

    OverloadBenchMetrics metrics;
    metrics.enabled = true;
    metrics.deadline_ms = deadline_ms;
    metrics.load_spec = load_spec;
    metrics.stats = report->overload;
    metrics.encode_latency =
        computePercentiles(report->overload.encode_latency_s);
    return metrics;
}

/** Multi-tenant fleet results (present only with --sessions). */
struct ServeBenchMetrics {
    bool enabled = false;
    int sessions = 0;
    /** Canonical fault-spec string for the JSON recovery section. */
    std::string faults = "none";
    serve::ServeReport report;
    /** arrival..completion percentiles per admitted tenant, in
     *  report order. */
    std::vector<PercentileStats> tenant_latency;
    double worst_tenant_p99_s = 0.0;
};

/**
 * Runs a fleet of `sessions` tenant streams over the serve
 * scheduler. Deadline classes cycle interactive/standard/bulk;
 * consecutive tenant pairs share a content seed so the reference
 * cache sees realistic popular-content reuse. Deterministic: the
 * fleet is scheduled on the virtual device clock.
 */
Expected<ServeBenchMetrics>
runServe(const CodecConfig &config, int sessions,
         std::uint64_t seed, int frames, std::size_t points,
         int replicas, const serve::DeviceFaultSpec &faults)
{
    std::vector<serve::TenantSpec> tenants;
    tenants.reserve(static_cast<std::size_t>(sessions));
    for (int t = 0; t < sessions; ++t) {
        serve::TenantSpec tenant;
        tenant.name = "tenant-" + std::to_string(t);
        tenant.codec = config;
        VideoSpec spec;
        spec.name = "serve-bench";
        spec.seed = seed * 1000 +
                    static_cast<std::uint64_t>(t / 2);
        spec.target_points = points;
        const SyntheticHumanVideo video(spec);
        tenant.frames.reserve(static_cast<std::size_t>(frames));
        for (int f = 0; f < frames; ++f)
            tenant.frames.push_back(video.frame(f));
        tenant.deadline_class = static_cast<serve::DeadlineClass>(
            t % serve::kDeadlineClassCount);
        tenant.weight = 1.0 + static_cast<double>(t % 2);
        tenant.arrival_offset_s = 0.004 * static_cast<double>(t);
        // The bench gates tail latency and fairness across a fixed
        // tenant set, so admit everyone and report utilization
        // instead of shedding.
        tenant.queue_capacity = 64;
        tenants.push_back(std::move(tenant));
    }

    serve::ServeConfig fleet;
    fleet.admission_utilization_cap = 1e9;
    fleet.replicas = replicas;
    fleet.faults = faults;
    // Checkpointing only matters once faults can lose encoder
    // state; zero cost keeps the no-crash schedule identical.
    if (!faults.isIdle())
        fleet.checkpoint_interval_frames = 2;
    serve::ServeScheduler scheduler(fleet, std::move(tenants));
    auto report = scheduler.run();
    if (!report)
        return report.status();

    ServeBenchMetrics metrics;
    metrics.enabled = true;
    metrics.sessions = sessions;
    metrics.faults = faults.toString();
    metrics.report = std::move(*report);
    for (const serve::TenantReport &tenant :
         metrics.report.tenants) {
        metrics.tenant_latency.push_back(
            computePercentiles(tenant.stats.latency_s));
        metrics.worst_tenant_p99_s =
            std::max(metrics.worst_tenant_p99_s,
                     metrics.tenant_latency.back().p99);
    }
    return metrics;
}

Expected<RunMetrics>
runWorkload(const std::vector<VoxelCloud> &frames,
            const CodecConfig &config, const EdgeDeviceModel &model,
            bool collect_stages)
{
    VideoEncoder encoder(config);
    VideoDecoder decoder;
    RunMetrics metrics;

    for (const VoxelCloud &frame : frames) {
        WallTimer enc_timer;
        auto encoded = encoder.encode(frame);
        const double enc_host = enc_timer.seconds();
        if (!encoded)
            return encoded.status();

        WallTimer dec_timer;
        auto decoded = decoder.decode(encoded->bitstream);
        const double dec_host = dec_timer.seconds();
        if (!decoded)
            return decoded.status();

        const PipelineTiming enc_timing =
            model.evaluate(encoded->profile);
        const PipelineTiming dec_timing =
            model.evaluate(decoded->profile);

        metrics.enc_host_s.push_back(enc_host);
        metrics.dec_host_s.push_back(dec_host);
        metrics.enc_model_s.push_back(enc_timing.modelSeconds());
        metrics.dec_model_s.push_back(dec_timing.modelSeconds());
        metrics.compressed_bytes += encoded->bitstream.size();
        metrics.raw_bytes += frame.rawBytes();
        metrics.points += frame.size();

        if (collect_stages) {
            for (std::size_t i = 0;
                 i < encoded->profile.stages.size(); ++i) {
                const StageProfile &stage =
                    encoded->profile.stages[i];
                metrics.stages.addStage(
                    stage.name, stage.host_seconds,
                    enc_timing.stages[i].model_seconds,
                    stage.totalOps(), stage.totalBytes());
            }
            for (std::size_t i = 0;
                 i < decoded->profile.stages.size(); ++i) {
                const StageProfile &stage =
                    decoded->profile.stages[i];
                metrics.stages.addStage(
                    stage.name, stage.host_seconds,
                    dec_timing.stages[i].model_seconds,
                    stage.totalOps(), stage.totalBytes());
            }
            metrics.attr_psnr_db +=
                attributePsnr(frame, decoded->cloud).psnr;
            metrics.geom_psnr_db +=
                geometryPsnrD1(frame, decoded->cloud).psnr;
        }
    }
    if (collect_stages && !frames.empty()) {
        metrics.attr_psnr_db /=
            static_cast<double>(frames.size());
        metrics.geom_psnr_db /=
            static_cast<double>(frames.size());
    }
    return metrics;
}

// -----------------------------------------------------------------
// Dispatched-kernel micro-bench (the "kernels" JSON section; see
// docs/PERFORMANCE.md "Reading the kernel bench")
// -----------------------------------------------------------------

/** One dispatched kernel, measured under the active ISA and again
 *  under forced-scalar dispatch on identical inputs. */
struct KernelBenchResult {
    std::string name;
    std::size_t points = 0;  ///< items per rep (bytes for the
                             ///< byte-stream kernels)
    double p50_ns_per_point = 0.0;
    double p95_ns_per_point = 0.0;
    double scalar_p50_ns_per_point = 0.0;

    double
    speedupVsScalar() const
    {
        return p50_ns_per_point > 0.0
                   ? scalar_p50_ns_per_point / p50_ns_per_point
                   : 0.0;
    }
};

struct KernelBenchMetrics {
    std::string simd_level;  ///< ISA the non-scalar pass ran on
    std::vector<KernelBenchResult> kernels;

    /** Geometric mean of the per-kernel speedups — the number the
     *  >=2x SIMD acceptance gate pins. */
    double
    aggregateSpeedup() const
    {
        if (kernels.empty())
            return 0.0;
        double log_sum = 0.0;
        for (const KernelBenchResult &k : kernels)
            log_sum += std::log(
                std::max(k.speedupVsScalar(), 1e-9));
        return std::exp(log_sum /
                        static_cast<double>(kernels.size()));
    }
};

/** Defeats dead-code elimination of the timed kernels. */
volatile std::uint64_t g_kernel_sink = 0;

/** Runs fn() `reps` times after one warm-up; ns/point stats. */
PercentileStats
timeKernel(int reps, std::size_t points,
           const std::function<void()> &fn)
{
    fn();  // warm-up: page in buffers, settle dispatch
    std::vector<double> ns_per_point;
    ns_per_point.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        fn();
        ns_per_point.push_back(timer.seconds() * 1e9 /
                               static_cast<double>(points));
    }
    return computePercentiles(ns_per_point);
}

/**
 * Micro-benches every SIMD-dispatched kernel on fixed synthetic
 * inputs, once under the active dispatch level and once under
 * forced scalar. Runs with a bound FrameArena like a real frame, so
 * the arena-scratch paths are the ones measured.
 */
KernelBenchMetrics
runKernelBench()
{
    constexpr std::size_t kPoints = 1u << 17;
    // Cache-resident on purpose: at DRAM-bound sizes every ISA
    // saturates the memory bus and the numbers measure the machine,
    // not the kernel.
    constexpr std::size_t kBytes = 256u << 10;
    constexpr int kReps = 15;

    KernelBenchMetrics metrics;
    metrics.simd_level = simdLevelName(activeSimdLevel());

    FrameArena arena;
    ScopedFrameArena bind(&arena);

    Rng rng(20260809);
    std::vector<std::uint16_t> x(kPoints), y(kPoints), z(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
        x[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
        y[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
        z[i] = static_cast<std::uint16_t>(rng.bounded(1u << 16));
    }
    std::vector<std::uint64_t> codes(kPoints);
    mortonEncodeBatch(x.data(), y.data(), z.data(), kPoints,
                      codes.data());
    std::vector<std::uint32_t> dx(kPoints), dy(kPoints),
        dz(kPoints);
    std::vector<std::uint64_t> work_keys(kPoints);
    std::vector<std::uint32_t> work_vals(kPoints);
    AttrChannels channels;
    for (auto &channel : channels) {
        channel.resize(kPoints);
        for (std::size_t i = 0; i < kPoints; ++i)
            channel[i] =
                static_cast<std::int32_t>(rng.bounded(256));
    }
    const SegmentCodecConfig seg_config{};
    std::vector<std::uint8_t> bytes(kBytes);
    for (std::size_t i = 0; i < kBytes; ++i)
        bytes[i] = static_cast<std::uint8_t>(rng.bounded(256));
    std::vector<std::uint8_t> xor_acc(kBytes, 0);

    struct Kernel {
        const char *name;
        std::size_t points;
        std::function<void()> fn;
    };
    const Kernel kernels[] = {
        {"morton.encode", kPoints,
         [&] {
             mortonEncodeBatch(x.data(), y.data(), z.data(),
                               kPoints, codes.data());
             g_kernel_sink = g_kernel_sink + codes[kPoints - 1];
         }},
        {"morton.decode", kPoints,
         [&] {
             mortonDecodeBatch(codes.data(), kPoints, dx.data(),
                               dy.data(), dz.data());
             g_kernel_sink = g_kernel_sink + dx[kPoints - 1];
         }},
        {"radix.sort", kPoints,
         [&] {
             // The copy-in is timed for both ISA passes alike, so
             // the speedup ratio is undistorted.
             std::copy(codes.begin(), codes.end(),
                       work_keys.begin());
             for (std::size_t i = 0; i < kPoints; ++i)
                 work_vals[i] = static_cast<std::uint32_t>(i);
             radixSortKeysValues(work_keys.data(),
                                 work_vals.data(), kPoints, 48);
             g_kernel_sink = g_kernel_sink + work_keys[kPoints - 1];
         }},
        {"residual.pack", kPoints,
         [&] {
             arena.reset();
             auto payload =
                 encodeSegmentAttr(channels, seg_config);
             g_kernel_sink =
                 g_kernel_sink +
                 (payload.hasValue() ? payload->size() : 0);
         }},
        {"crc32c", kBytes,
         [&] {
             g_kernel_sink =
                 g_kernel_sink + crc32c(bytes.data(), kBytes);
         }},
        {"fec.xor", kBytes,
         [&] {
             xorBytes(xor_acc.data(), bytes.data(), kBytes);
             g_kernel_sink = g_kernel_sink + xor_acc[kBytes - 1];
         }},
    };

    for (const Kernel &kernel : kernels) {
        KernelBenchResult result;
        result.name = kernel.name;
        result.points = kernel.points;
        const PercentileStats active =
            timeKernel(kReps, kernel.points, kernel.fn);
        result.p50_ns_per_point = active.p50;
        result.p95_ns_per_point = active.p95;
        setSimdLevelForTesting(SimdLevel::kScalar);
        const PercentileStats scalar =
            timeKernel(kReps, kernel.points, kernel.fn);
        clearSimdLevelForTesting();
        result.scalar_p50_ns_per_point = scalar.p50;
        metrics.kernels.push_back(result);
    }
    return metrics;
}

void
writeStats(std::FILE *out, const char *key,
           const PercentileStats &stats, const char *trailer)
{
    (void)std::fprintf(out,
                 "    \"%s\": {\"mean\": %.9g, \"p50\": %.9g, "
                 "\"p95\": %.9g, \"p99\": %.9g, \"max\": %.9g}%s\n",
                 key, stats.mean, stats.p50, stats.p95, stats.p99,
                 stats.max, trailer);
}

int
writeResults(const std::string &path, const CodecConfig &config,
             const VideoSpec &spec, int frames, std::size_t threads,
             const RunMetrics &metrics, double overhead_fraction,
             std::size_t trace_events,
             const KernelBenchMetrics &kernel_bench,
             const ResilienceMetrics &resilience,
             const OverloadBenchMetrics &overload,
             const ServeBenchMetrics &serve_bench)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        (void)std::fprintf(stderr, "bench_runner: cannot write %s\n",
                     path.c_str());
        return 1;
    }

    const double enc_host_total = [&] {
        double sum = 0.0;
        for (const double s : metrics.enc_host_s)
            sum += s;
        return sum;
    }();
    const double host_fps =
        enc_host_total > 0.0
            ? static_cast<double>(frames) / enc_host_total
            : 0.0;
    // Modelled pipelined fps is bounded by the slowest of encode
    // and decode on the modelled device.
    const PercentileStats enc_model =
        computePercentiles(metrics.enc_model_s);
    const PercentileStats dec_model =
        computePercentiles(metrics.dec_model_s);
    const double model_bottleneck =
        enc_model.mean > dec_model.mean ? enc_model.mean
                                        : dec_model.mean;
    const double model_fps =
        model_bottleneck > 0.0 ? 1.0 / model_bottleneck : 0.0;

    (void)std::fprintf(out, "{\n");
    (void)std::fprintf(out, "  \"schema\": \"edgepcc-bench-v1\",\n");
    (void)std::fprintf(out, "  \"workload\": {\n");
    (void)std::fprintf(out, "    \"config\": \"%s\",\n",
                 config.name.c_str());
    (void)std::fprintf(out, "    \"frames\": %d,\n", frames);
    (void)std::fprintf(out, "    \"target_points\": %zu,\n",
                 spec.target_points);
    (void)std::fprintf(out, "    \"seed\": %" PRIu64 ",\n", spec.seed);
    (void)std::fprintf(out, "    \"grid_bits\": %d,\n", spec.grid_bits);
    (void)std::fprintf(out, "    \"threads\": %zu\n", threads);
    (void)std::fprintf(out, "  },\n");
    (void)std::fprintf(out, "  \"end_to_end\": {\n");
    writeStats(out, "encode_host_s",
               computePercentiles(metrics.enc_host_s), ",");
    writeStats(out, "decode_host_s",
               computePercentiles(metrics.dec_host_s), ",");
    writeStats(out, "encode_model_s", enc_model, ",");
    writeStats(out, "decode_model_s", dec_model, ",");
    (void)std::fprintf(out, "    \"host_fps\": %.9g,\n", host_fps);
    (void)std::fprintf(out, "    \"model_fps\": %.9g,\n", model_fps);
    (void)std::fprintf(out, "    \"points\": %" PRIu64 ",\n",
                 metrics.points);
    (void)std::fprintf(out, "    \"raw_bytes\": %" PRIu64 ",\n",
                 metrics.raw_bytes);
    (void)std::fprintf(out, "    \"compressed_bytes\": %" PRIu64 ",\n",
                 metrics.compressed_bytes);
    (void)std::fprintf(out, "    \"bytes_per_point\": %.9g,\n",
                 metrics.points > 0
                     ? static_cast<double>(
                           metrics.compressed_bytes) /
                           static_cast<double>(metrics.points)
                     : 0.0);
    (void)std::fprintf(out, "    \"compression_ratio\": %.9g,\n",
                 metrics.compressed_bytes > 0
                     ? static_cast<double>(metrics.raw_bytes) /
                           static_cast<double>(
                               metrics.compressed_bytes)
                     : 0.0);
    (void)std::fprintf(out, "    \"attr_psnr_db\": %.9g,\n",
                 jsonPsnr(metrics.attr_psnr_db));
    (void)std::fprintf(out, "    \"geom_psnr_db\": %.9g\n",
                 jsonPsnr(metrics.geom_psnr_db));
    (void)std::fprintf(out, "  },\n");

    (void)std::fprintf(out, "  \"stages\": [\n");
    const auto summaries = metrics.stages.summaries();
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto &stage = summaries[i];
        (void)std::fprintf(out, "    {\"name\": \"%s\", \"frames\": %zu,",
                     stage.name.c_str(), stage.frames);
        (void)std::fprintf(out,
                     " \"host_s\": {\"mean\": %.9g, \"p50\": %.9g,"
                     " \"p95\": %.9g, \"max\": %.9g},",
                     stage.host_s.mean, stage.host_s.p50,
                     stage.host_s.p95, stage.host_s.max);
        (void)std::fprintf(out,
                     " \"model_s\": {\"mean\": %.9g, \"p50\": %.9g,"
                     " \"p95\": %.9g, \"max\": %.9g},",
                     stage.model_s.mean, stage.model_s.p50,
                     stage.model_s.p95, stage.model_s.max);
        (void)std::fprintf(out,
                     " \"ops\": %" PRIu64 ", \"bytes\": %" PRIu64
                     "}%s\n",
                     stage.total_ops, stage.total_bytes,
                     i + 1 < summaries.size() ? "," : "");
    }
    (void)std::fprintf(out, "  ],\n");

    (void)std::fprintf(out, "  \"kernels\": {\n");
    (void)std::fprintf(out, "    \"simd_level\": \"%s\",\n",
                 kernel_bench.simd_level.c_str());
    (void)std::fprintf(out,
                 "    \"aggregate_speedup_vs_scalar\": %.9g,\n",
                 kernel_bench.aggregateSpeedup());
    (void)std::fprintf(out, "    \"items\": [\n");
    for (std::size_t i = 0; i < kernel_bench.kernels.size(); ++i) {
        const KernelBenchResult &k = kernel_bench.kernels[i];
        (void)std::fprintf(
            out,
            "      {\"name\": \"%s\", \"points\": %zu, "
            "\"p50_ns_per_point\": %.9g, "
            "\"p95_ns_per_point\": %.9g, "
            "\"scalar_p50_ns_per_point\": %.9g, "
            "\"speedup_vs_scalar\": %.9g}%s\n",
            k.name.c_str(), k.points, k.p50_ns_per_point,
            k.p95_ns_per_point, k.scalar_p50_ns_per_point,
            k.speedupVsScalar(),
            i + 1 < kernel_bench.kernels.size() ? "," : "");
    }
    (void)std::fprintf(out, "    ]\n");
    (void)std::fprintf(out, "  },\n");
    if (resilience.enabled) {
        const SessionStats &s = resilience.stats;
        (void)std::fprintf(out, "  \"resilience\": {\n");
        (void)std::fprintf(out, "    \"loss_rate\": %.9g,\n",
                     resilience.loss_rate);
        (void)std::fprintf(out, "    \"channel_seed\": %" PRIu64 ",\n",
                     resilience.channel_seed);
        (void)std::fprintf(out, "    \"frames_ok\": %zu,\n",
                     s.frames_ok);
        (void)std::fprintf(out, "    \"frames_resynced\": %zu,\n",
                     s.frames_resynced);
        (void)std::fprintf(out, "    \"frames_concealed\": %zu,\n",
                     s.frames_concealed);
        (void)std::fprintf(out, "    \"frames_skipped\": %zu,\n",
                     s.frames_skipped);
        (void)std::fprintf(out,
                     "    \"ok_or_concealed_fraction\": %.9g,\n",
                     s.okOrConcealedFraction());
        (void)std::fprintf(out, "    \"frames_lost\": %zu,\n",
                     s.frames_lost);
        (void)std::fprintf(out, "    \"retransmits\": %zu,\n",
                     s.retransmits);
        (void)std::fprintf(out, "    \"keyframes_forced\": %zu,\n",
                     s.keyframes_forced);
        (void)std::fprintf(out, "    \"backoff_s\": %.9g,\n",
                     s.backoff_s);
        (void)std::fprintf(out, "    \"chunks_bad_crc\": %zu,\n",
                     resilience.wire.chunks_bad_crc);
        (void)std::fprintf(out, "    \"chunks_truncated\": %zu,\n",
                     resilience.wire.chunks_truncated);
        (void)std::fprintf(out, "    \"wire_bytes_skipped\": %zu,\n",
                     resilience.wire.bytes_skipped);
        (void)std::fprintf(out, "    \"network\": \"%s\",\n",
                     resilience.network_name.c_str());
        (void)std::fprintf(out, "    \"mtu_payload\": %zu,\n",
                     resilience.mtu_payload);
        (void)std::fprintf(out, "    \"fec_group_size\": %d,\n",
                     resilience.fec_group_size);
        (void)std::fprintf(out, "    \"fec_scheme\": \"%s\",\n",
                     resilience.rs_enabled ? "rs" : "xor");
        (void)std::fprintf(out, "    \"fec_parity\": %d,\n",
                     resilience.fec_parity);
        (void)std::fprintf(out, "    \"burst_rate\": %.9g,\n",
                     resilience.burst_rate);
        (void)std::fprintf(out, "    \"burst_length\": %d,\n",
                     resilience.burst_length);
        (void)std::fprintf(out, "    \"modes\": {\n");
        const auto write_mode = [out](const char *name,
                                      const ModeMetrics &m,
                                      const char *trailer) {
            (void)std::fprintf(out, "      \"%s\": {\n", name);
            (void)std::fprintf(
                out,
                "        \"e2e_latency_s\": {\"mean\": %.9g, "
                "\"p50\": %.9g, \"p95\": %.9g, \"max\": %.9g},\n",
                m.e2e_latency_s.mean, m.e2e_latency_s.p50,
                m.e2e_latency_s.p95, m.e2e_latency_s.max);
            (void)std::fprintf(out,
                         "        \"transmit_s_mean\": %.9g,\n",
                         m.transmit_s_mean);
            (void)std::fprintf(out,
                         "        \"recovery_s_mean\": %.9g,\n",
                         m.recovery_s_mean);
            (void)std::fprintf(out,
                         "        \"wire_bytes\": %" PRIu64 ",\n",
                         m.wire_bytes);
            (void)std::fprintf(out, "        \"retransmits\": %zu,\n",
                         m.retransmits);
            (void)std::fprintf(out, "        \"parity_sent\": %zu,\n",
                         m.parity_sent);
            (void)std::fprintf(out,
                         "        \"fec_recovered_chunks\": %zu,\n",
                         m.fec_recovered_chunks);
            (void)std::fprintf(
                out,
                "        \"fec_single_loss_recovered_fraction\": "
                "%.9g,\n",
                m.fec_single_loss_recovered_fraction);
            (void)std::fprintf(
                out,
                "        \"fec_multi_loss_recovered_fraction\": "
                "%.9g,\n",
                m.fec_multi_loss_recovered_fraction);
            (void)std::fprintf(
                out,
                "        \"ok_or_concealed_fraction\": %.9g\n",
                m.ok_or_concealed_fraction);
            (void)std::fprintf(out, "      }%s\n", trailer);
        };
        write_mode("nack", resilience.nack, ",");
        write_mode("fec", resilience.fec,
                   resilience.rs_enabled ? "," : "");
        if (resilience.rs_enabled)
            write_mode("rs", resilience.rs, "");
        (void)std::fprintf(out, "    },\n");
        if (resilience.concealed_attr_psnr_db >= 0.0)
            (void)std::fprintf(
                out, "    \"concealed_attr_psnr_db\": %.9g\n",
                jsonPsnr(resilience.concealed_attr_psnr_db));
        else
            (void)std::fprintf(
                out, "    \"concealed_attr_psnr_db\": null\n");
        (void)std::fprintf(out, "  },\n");
    }
    if (overload.enabled) {
        const OverloadStats &s = overload.stats;
        (void)std::fprintf(out, "  \"overload\": {\n");
        (void)std::fprintf(out, "    \"deadline_ms\": %.9g,\n",
                     overload.deadline_ms);
        (void)std::fprintf(out, "    \"load_spec\": \"%s\",\n",
                     overload.load_spec.c_str());
        (void)std::fprintf(out, "    \"frames\": %zu,\n", s.frames);
        (void)std::fprintf(out, "    \"deadline_misses\": %zu,\n",
                     s.deadline_misses);
        (void)std::fprintf(out, "    \"deadline_miss_rate\": %.9g,\n",
                     s.deadlineMissRate());
        (void)std::fprintf(out,
                     "    \"max_consecutive_misses\": %zu,\n",
                     s.max_consecutive_misses);
        (void)std::fprintf(out, "    \"watchdog_stalls\": %zu,\n",
                     s.watchdog_stalls);
        (void)std::fprintf(out, "    \"queue_drops\": %zu,\n",
                     s.queue_drops);
        (void)std::fprintf(out, "    \"frames_skipped\": %zu,\n",
                     s.frames_skipped);
        (void)std::fprintf(out, "    \"alloc_failures\": %zu,\n",
                     s.alloc_failures);
        (void)std::fprintf(out, "    \"rung_transitions\": %zu,\n",
                     s.rung_transitions);
        (void)std::fprintf(out, "    \"rung_occupancy\": {");
        for (int r = 0; r < kOverloadRungCount; ++r)
            (void)std::fprintf(
                out, "\"%s\": %zu%s",
                overloadRungName(static_cast<OverloadRung>(r)),
                s.rung_occupancy[r],
                r + 1 < kOverloadRungCount ? ", " : "");
        (void)std::fprintf(out, "},\n");
        writeStats(out, "encode_latency_s",
                   overload.encode_latency, "");
        (void)std::fprintf(out, "  },\n");
    }
    if (serve_bench.enabled) {
        const serve::ServeReport &fleet = serve_bench.report;
        (void)std::fprintf(out, "  \"serve\": {\n");
        (void)std::fprintf(out, "    \"sessions\": %d,\n",
                     serve_bench.sessions);
        (void)std::fprintf(out, "    \"admitted\": %zu,\n",
                     fleet.fleet.admitted);
        (void)std::fprintf(out, "    \"rejected\": %zu,\n",
                     fleet.fleet.rejected);
        (void)std::fprintf(out, "    \"makespan_s\": %.9g,\n",
                     fleet.fleet.makespan_s);
        (void)std::fprintf(out, "    \"device_busy_s\": %.9g,\n",
                     fleet.fleet.device_busy_s);
        (void)std::fprintf(out, "    \"utilization\": %.9g,\n",
                     fleet.fleet.utilization());
        (void)std::fprintf(out,
                     "    \"sessions_per_device\": %.9g,\n",
                     fleet.fleet.sessionsPerDevice());
        (void)std::fprintf(out, "    \"fairness_index\": %.9g,\n",
                     fleet.fairness_index);
        (void)std::fprintf(out,
                     "    \"worst_tenant_p99_s\": %.9g,\n",
                     serve_bench.worst_tenant_p99_s);
        (void)std::fprintf(
            out,
            "    \"cache\": {\"lookups\": %zu, \"hits\": %zu, "
            "\"misses\": %zu, \"hit_rate\": %.9g, "
            "\"saved_device_s\": %.9g},\n",
            fleet.cache.lookups, fleet.cache.hits,
            fleet.cache.misses, fleet.cache.hitRate(),
            fleet.cache.saved_device_s);
        // Always present so compare_bench.py can gate fault runs
        // and confirm clean runs stayed clean.
        const serve::RecoveryStats &rec = fleet.recovery;
        (void)std::fprintf(out, "    \"recovery\": {\n");
        (void)std::fprintf(out, "      \"replicas\": %zu,\n",
                     fleet.fleet.replicas);
        (void)std::fprintf(out, "      \"faults\": \"%s\",\n",
                     serve_bench.faults.c_str());
        (void)std::fprintf(out, "      \"crashes\": %zu,\n",
                     rec.crashes);
        (void)std::fprintf(out, "      \"failovers\": %zu,\n",
                     rec.failovers);
        (void)std::fprintf(out, "      \"tenants_shed\": %zu,\n",
                     rec.tenants_shed);
        (void)std::fprintf(out, "      \"checkpoints\": %zu,\n",
                     rec.checkpoints);
        (void)std::fprintf(out, "      \"breaker_trips\": %zu,\n",
                     rec.breaker_trips);
        (void)std::fprintf(out, "      \"faulted_frames\": %zu,\n",
                     rec.faulted_frames);
        (void)std::fprintf(out,
                     "      \"quarantined_frames\": %zu,\n",
                     rec.quarantined_frames);
        (void)std::fprintf(out, "      \"mttr_s\": %.9g,\n",
                     rec.mttr_s);
        (void)std::fprintf(out, "      \"worst_recovery_s\": %.9g\n",
                     rec.worst_recovery_s);
        (void)std::fprintf(out, "    },\n");
        (void)std::fprintf(out, "    \"tenants\": {\n");
        for (std::size_t t = 0; t < fleet.tenants.size(); ++t) {
            const serve::TenantReport &tenant = fleet.tenants[t];
            const PercentileStats &lat =
                serve_bench.tenant_latency[t];
            (void)std::fprintf(
                out,
                "      \"%s\": {\"class\": \"%s\", "
                "\"replica\": %d, "
                "\"served\": %zu, \"dropped\": %zu, "
                "\"faulted\": %zu, \"quarantined\": %zu, "
                "\"shed\": %zu, "
                "\"cache_hits\": %zu, \"deadline_misses\": %zu, "
                "\"latency_s\": {\"mean\": %.9g, \"p50\": %.9g, "
                "\"p95\": %.9g, \"p99\": %.9g, \"max\": %.9g}}%s\n",
                tenant.name.c_str(),
                serve::deadlineClassName(tenant.deadline_class),
                tenant.replica,
                tenant.stats.served, tenant.stats.dropped,
                tenant.stats.faulted, tenant.stats.quarantined,
                tenant.stats.shed,
                tenant.stats.cache_hits,
                tenant.stats.deadline_misses, lat.mean, lat.p50,
                lat.p95, lat.p99, lat.max,
                t + 1 < fleet.tenants.size() ? "," : "");
        }
        (void)std::fprintf(out, "    }\n");
        (void)std::fprintf(out, "  },\n");
    }
    (void)std::fprintf(out, "  \"trace\": {\n");
    (void)std::fprintf(out, "    \"events\": %zu,\n", trace_events);
    // NaN = measurement failed; slightly negative values are real
    // (noise around zero overhead) and worth keeping.
    if (std::isnan(overhead_fraction))
        (void)std::fprintf(out, "    \"overhead_fraction\": null\n");
    else
        (void)std::fprintf(out, "    \"overhead_fraction\": %.9g\n",
                     overhead_fraction);
    (void)std::fprintf(out, "  }\n");
    (void)std::fprintf(out, "}\n");
    std::fclose(out);
    return 0;
}

CodecConfig
configByName(const std::string &name, bool *ok)
{
    *ok = true;
    if (name == "tmc13")
        return makeTmc13LikeConfig();
    if (name == "cwipc")
        return makeCwipcLikeConfig();
    if (name == "intra")
        return makeIntraOnlyConfig();
    if (name == "v1")
        return makeIntraInterV1Config();
    if (name == "v2")
        return makeIntraInterV2Config();
    *ok = false;
    return CodecConfig{};
}

NetworkSpec
networkByName(const std::string &name, bool *ok)
{
    *ok = true;
    if (name == "wifi")
        return NetworkSpec::wifi();
    if (name == "lte")
        return NetworkSpec::lte();
    if (name == "5g")
        return NetworkSpec::fiveG();
    *ok = false;
    return NetworkSpec{};
}

int
usage()
{
    (void)std::fprintf(
        stderr,
        "usage: bench_runner [--config tmc13|cwipc|intra|v1|v2]\n"
        "                    [--frames N] [--points N] [--seed N]\n"
        "                    [--threads N] [--out FILE]\n"
        "                    [--trace FILE] [--trace-verbosity N]\n"
        "                    [--measure-overhead]\n"
        "                    [--loss R] [--channel-seed N]\n"
        "                    [--network wifi|lte|5g] [--mtu N]\n"
        "                    [--fec-group K] [--deadline-ms MS]\n"
        "                    [--load-spec SPEC] [--sessions N]\n"
        "\n"
        "  --trace-verbosity N  span detail for --trace: 0 (default)\n"
        "                    stage-grained only, >= 1 adds the\n"
        "                    per-kernel spans (stream.rs_encode,\n"
        "                    stream.rs_decode,\n"
        "                    stream.redundancy_decide)\n"
        "  --loss R          run the loss-resilient session at\n"
        "                    chunk-loss rate R and add a\n"
        "                    \"resilience\" JSON section, including\n"
        "                    an end-to-end FEC-vs-NACK comparison\n"
        "                    over the --network profile\n"
        "  --network NAME    link profile for the end-to-end modes\n"
        "                    (default wifi)\n"
        "  --mtu N           slice frame payloads into N-byte\n"
        "                    chunks in the modes comparison\n"
        "                    (default 1200)\n"
        "  --fec-group K     FEC group size: K data chunks per\n"
        "                    parity group (default 4, min 2)\n"
        "  --fec-scheme S    xor (default) or rs: with rs, a third\n"
        "                    \"rs\" entry joins the modes comparison\n"
        "                    using Reed-Solomon parity\n"
        "  --fec-parity M    RS parity rows per group (default 2,\n"
        "                    must be < --fec-group)\n"
        "  --burst-rate R    replace the modes-comparison channel\n"
        "                    with a pure burst channel: bursts of\n"
        "                    --burst-length drops start with\n"
        "                    probability R per chunk (default off)\n"
        "  --burst-length L  chunks swallowed per burst (default 4)\n"
        "  --deadline-ms MS  run the deadline-aware overload ladder\n"
        "                    with a per-frame encode budget of MS\n"
        "                    milliseconds and add an \"overload\"\n"
        "                    JSON section\n"
        "  --load-spec SPEC  synthetic load for the overload run: a\n"
        "                    preset (none|burst2x|stall-geometry) or\n"
        "                    key=value pairs (default none)\n"
        "  --sessions N      run N tenant streams through the\n"
        "                    multi-tenant serve scheduler and add a\n"
        "                    \"serve\" JSON section (per-tenant\n"
        "                    latency percentiles, fairness index,\n"
        "                    cache hit accounting)\n"
        "  --replicas N      size of the device fleet for the serve\n"
        "                    run (default 1)\n"
        "  --faults SPEC     inject device faults into the serve\n"
        "                    run: a preset (none|crash-secondary|\n"
        "                    thermal-brownout) or ';'-separated\n"
        "                    kind=stall|throttle|oom|crash events\n"
        "                    with replica=/at-ms=/dur-ms=/derate=\n"
        "                    fields; recovery results land in the\n"
        "                    serve section's \"recovery\" object\n");
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "v1";
    std::string out_path = "BENCH_results.json";
    std::string trace_path;
    int trace_verbosity = 0;
    int frames = 8;
    std::size_t points = 20000;
    std::uint64_t seed = 1;
    long threads = -1;
    bool measure_overhead = false;
    double loss_rate = -1.0;
    std::uint64_t channel_seed = 1;
    std::string network_name = "wifi";
    std::size_t mtu_payload = 1200;
    int fec_group = 4;
    std::string fec_scheme_name = "xor";
    int fec_parity = 2;
    double burst_rate = 0.0;
    int burst_length = 4;
    double deadline_ms = -1.0;
    std::string load_spec = "none";
    int sessions = 0;
    int replicas = 1;
    std::string faults_spec = "none";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--config") {
            const char *v = next();
            if (!v)
                return usage();
            config_name = v;
        } else if (arg == "--frames") {
            const char *v = next();
            if (!v)
                return usage();
            frames = std::atoi(v);
        } else if (arg == "--points") {
            const char *v = next();
            if (!v)
                return usage();
            points = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return usage();
            seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return usage();
            threads = std::atol(v);
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return usage();
            out_path = v;
        } else if (arg == "--trace") {
            const char *v = next();
            if (!v)
                return usage();
            trace_path = v;
        } else if (arg == "--trace-verbosity") {
            const char *v = next();
            if (!v)
                return usage();
            trace_verbosity = std::atoi(v);
        } else if (arg == "--measure-overhead") {
            measure_overhead = true;
        } else if (arg == "--loss") {
            const char *v = next();
            if (!v)
                return usage();
            loss_rate = std::atof(v);
        } else if (arg == "--channel-seed") {
            const char *v = next();
            if (!v)
                return usage();
            channel_seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--network") {
            const char *v = next();
            if (!v)
                return usage();
            network_name = v;
        } else if (arg == "--mtu") {
            const char *v = next();
            if (!v)
                return usage();
            mtu_payload = static_cast<std::size_t>(std::atoll(v));
        } else if (arg == "--fec-group") {
            const char *v = next();
            if (!v)
                return usage();
            fec_group = std::atoi(v);
        } else if (arg == "--fec-scheme") {
            const char *v = next();
            if (!v)
                return usage();
            fec_scheme_name = v;
        } else if (arg == "--fec-parity") {
            const char *v = next();
            if (!v)
                return usage();
            fec_parity = std::atoi(v);
        } else if (arg == "--burst-rate") {
            const char *v = next();
            if (!v)
                return usage();
            burst_rate = std::atof(v);
        } else if (arg == "--burst-length") {
            const char *v = next();
            if (!v)
                return usage();
            burst_length = std::atoi(v);
        } else if (arg == "--deadline-ms") {
            const char *v = next();
            if (!v)
                return usage();
            deadline_ms = std::atof(v);
        } else if (arg == "--load-spec") {
            const char *v = next();
            if (!v)
                return usage();
            load_spec = v;
        } else if (arg == "--sessions") {
            const char *v = next();
            if (!v)
                return usage();
            sessions = std::atoi(v);
        } else if (arg == "--replicas") {
            const char *v = next();
            if (!v)
                return usage();
            replicas = std::atoi(v);
        } else if (arg == "--faults") {
            const char *v = next();
            if (!v)
                return usage();
            faults_spec = v;
        } else {
            return usage();
        }
    }
    if (loss_rate > 1.0) {
        (void)std::fprintf(stderr,
                     "bench_runner: --loss must be in [0, 1]\n");
        return 2;
    }
    if (fec_group < 2) {
        (void)std::fprintf(stderr,
                     "bench_runner: --fec-group must be >= 2\n");
        return 2;
    }
    if (fec_scheme_name != "xor" && fec_scheme_name != "rs") {
        (void)std::fprintf(stderr,
                     "bench_runner: --fec-scheme must be xor or "
                     "rs\n");
        return 2;
    }
    if (fec_parity < 1 || fec_parity >= fec_group) {
        (void)std::fprintf(stderr,
                     "bench_runner: --fec-parity must be in "
                     "[1, --fec-group)\n");
        return 2;
    }
    if (burst_rate < 0.0 || burst_rate > 1.0 || burst_length < 1) {
        (void)std::fprintf(stderr,
                     "bench_runner: --burst-rate in [0, 1], "
                     "--burst-length >= 1\n");
        return 2;
    }
    if (sessions < 0) {
        (void)std::fprintf(stderr,
                     "bench_runner: --sessions must be >= 1\n");
        return 2;
    }
    if (replicas < 1) {
        (void)std::fprintf(stderr,
                     "bench_runner: --replicas must be >= 1\n");
        return 2;
    }
    if ((replicas > 1 || faults_spec != "none") && sessions < 1) {
        (void)std::fprintf(stderr,
                     "bench_runner: --replicas/--faults require "
                     "--sessions\n");
        return 2;
    }
    auto parsed_faults = serve::DeviceFaultSpec::parse(faults_spec);
    if (!parsed_faults) {
        (void)std::fprintf(stderr, "bench_runner: %s\n",
                     parsed_faults.status().message().c_str());
        return 2;
    }
    if (deadline_ms != -1.0 && deadline_ms <= 0.0) {
        (void)std::fprintf(stderr,
                     "bench_runner: --deadline-ms must be > 0\n");
        return 2;
    }
    if (load_spec != "none" && deadline_ms < 0.0) {
        (void)std::fprintf(stderr,
                     "bench_runner: --load-spec requires "
                     "--deadline-ms\n");
        return 2;
    }
    if (deadline_ms > 0.0) {
        // Reject a malformed spec before the bench runs, not after.
        auto parsed = LoadSpec::parse(load_spec);
        if (!parsed) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         parsed.status().message().c_str());
            return 2;
        }
    }
    bool network_ok = false;
    NetworkSpec network = networkByName(network_name, &network_ok);
    if (!network_ok) {
        (void)std::fprintf(stderr,
                     "bench_runner: unknown network '%s'\n",
                     network_name.c_str());
        return usage();
    }
    if (frames < 1 || points < 1) {
        (void)std::fprintf(stderr,
                     "bench_runner: --frames and --points must be "
                     "positive\n");
        return 2;
    }

    bool config_ok = false;
    const CodecConfig config = configByName(config_name, &config_ok);
    if (!config_ok) {
        (void)std::fprintf(stderr, "bench_runner: unknown config '%s'\n",
                     config_name.c_str());
        return usage();
    }

    std::unique_ptr<ScopedGlobalPool> pool_override;
    if (threads >= 0) {
        // --threads N means "N workers"; 0 = fully sequential.
        pool_override = std::make_unique<ScopedGlobalPool>(
            static_cast<std::size_t>(threads));
    }
    const std::size_t worker_count =
        ThreadPool::global().numThreads();

    VideoSpec spec;
    spec.name = "bench-human";
    spec.seed = seed;
    spec.target_points = points;
    spec.num_frames = frames;

    const SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> cloud_frames;
    cloud_frames.reserve(static_cast<std::size_t>(frames));
    for (int i = 0; i < frames; ++i)
        cloud_frames.push_back(video.frame(i));

    const EdgeDeviceModel model;

    // Warmup pass (thread-pool spin-up, page faults) — not counted.
    {
        auto warm = runWorkload({cloud_frames.front()}, config,
                                model, false);
        if (!warm) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         warm.status().message().c_str());
            return 1;
        }
    }

    Tracer::global().clear();
    Tracer::global().setEnabled(!trace_path.empty());
    Tracer::global().setVerbosity(trace_verbosity);
    auto metrics =
        runWorkload(cloud_frames, config, model, true);
    Tracer::global().setEnabled(false);
    if (!metrics) {
        (void)std::fprintf(stderr, "bench_runner: %s\n",
                     metrics.status().message().c_str());
        return 1;
    }
    // Stash the main-run spans; the resilience session spans (the
    // stream.* kernels behind --trace-verbosity) are appended below
    // and the file is written once, after both captures.
    std::vector<TraceEvent> trace_capture =
        Tracer::global().events();

    // Tracing overhead: the identical workload with spans off vs
    // on, alternated so slow host drift (frequency scaling, cache
    // state) hits both modes equally, and compared on the best
    // pass of each mode — the minimum is the noise-robust estimate
    // of true cost. Acceptance bar for the span layer: < 2% of
    // encode time. Always measured so every BENCH_results.json
    // carries trace.overhead_fraction; --measure-overhead upgrades
    // to a 3-pass best-of for lower noise.
    double overhead_fraction =
        std::numeric_limits<double>::quiet_NaN();
    {
        const int overhead_passes = measure_overhead ? 3 : 1;
        double off_best = 0.0, on_best = 0.0;
        bool failed = false;
        for (int pass = 0;
             pass < overhead_passes && !failed; ++pass) {
            for (const bool traced : {false, true}) {
                Tracer::global().clear();
                Tracer::global().setEnabled(traced);
                auto run =
                    runWorkload(cloud_frames, config, model, false);
                Tracer::global().setEnabled(false);
                if (!run) {
                    failed = true;
                    break;
                }
                const double total = run->totalEncodeHostSeconds();
                double &best = traced ? on_best : off_best;
                if (pass == 0 || total < best)
                    best = total;
            }
        }
        if (!failed && off_best > 0.0) {
            const double per_frame =
                1.0 / static_cast<double>(cloud_frames.size());
            overhead_fraction = on_best / off_best - 1.0;
            (void)std::fprintf(
                stderr,
                "tracing overhead: %.2f%% of encode time "
                "(best-of-%d: off %.3f ms, on %.3f ms per frame)\n",
                overhead_fraction * 100.0, overhead_passes,
                off_best * per_frame * 1e3,
                on_best * per_frame * 1e3);
        }
    }

    ResilienceMetrics resilience;
    if (loss_rate >= 0.0) {
        // Trace the session runs too: the stream-layer spans
        // (stream.rs_encode / stream.rs_decode /
        // stream.redundancy_decide at kernel verbosity) only fire
        // inside the resilient sessions, not the codec-only run.
        Tracer::global().clear();
        Tracer::global().setEnabled(!trace_path.empty());
        auto run = runResilience(cloud_frames, config, loss_rate,
                                 channel_seed);
        if (!run) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         run.status().message().c_str());
            return 1;
        }
        resilience = *run;
        (void)std::fprintf(
            stderr,
            "resilience at loss %.3g: ok %zu, resynced %zu, "
            "concealed %zu, skipped %zu (%zu retransmits)\n",
            loss_rate, resilience.stats.frames_ok,
            resilience.stats.frames_resynced,
            resilience.stats.frames_concealed,
            resilience.stats.frames_skipped,
            resilience.stats.retransmits);

        // Fig.-9-style end-to-end comparison: the same network
        // profile at the requested loss rate, with and without
        // FEC. Recovery latency (NACK RTTs + backoff) is part of
        // the reported per-frame total.
        network.packet_loss_rate = loss_rate;
        resilience.network_name = network.name;
        resilience.mtu_payload = mtu_payload;
        resilience.fec_group_size = fec_group;
        resilience.rs_enabled = fec_scheme_name == "rs";
        resilience.fec_parity = fec_parity;
        resilience.burst_rate = burst_rate;
        resilience.burst_length = burst_length;
        ModeChannel shape;
        shape.burst_rate = burst_rate;
        shape.burst_length = burst_length;
        auto nack_mode =
            runMode(cloud_frames, config, network, mtu_payload,
                    /*fec_enabled=*/false, fec_group,
                    FecScheme::kXor, fec_parity, shape,
                    channel_seed);
        auto fec_mode =
            runMode(cloud_frames, config, network, mtu_payload,
                    /*fec_enabled=*/true, fec_group,
                    FecScheme::kXor, fec_parity, shape,
                    channel_seed);
        if (!nack_mode || !fec_mode) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         (!nack_mode ? nack_mode.status()
                                     : fec_mode.status())
                             .message()
                             .c_str());
            return 1;
        }
        resilience.nack = *nack_mode;
        resilience.fec = *fec_mode;
        if (resilience.rs_enabled) {
            auto rs_mode = runMode(
                cloud_frames, config, network, mtu_payload,
                /*fec_enabled=*/true, fec_group,
                FecScheme::kReedSolomon, fec_parity, shape,
                channel_seed);
            if (!rs_mode) {
                (void)std::fprintf(
                    stderr, "bench_runner: %s\n",
                    rs_mode.status().message().c_str());
                return 1;
            }
            resilience.rs = *rs_mode;
            (void)std::fprintf(
                stderr,
                "rs mode p50 %.1f ms (%zu retransmits, %zu "
                "chunks recovered, multi-loss recovery %.0f%%)\n",
                resilience.rs.e2e_latency_s.p50 * 1e3,
                resilience.rs.retransmits,
                resilience.rs.fec_recovered_chunks,
                resilience.rs.fec_multi_loss_recovered_fraction *
                    100.0);
        }
        (void)std::fprintf(
            stderr,
            "end-to-end over %s at loss %.3g: nack p50 %.1f ms "
            "(%zu retransmits), fec p50 %.1f ms (%zu retransmits, "
            "%zu chunks recovered, single-loss recovery %.0f%%)\n",
            network.name.c_str(), loss_rate,
            resilience.nack.e2e_latency_s.p50 * 1e3,
            resilience.nack.retransmits,
            resilience.fec.e2e_latency_s.p50 * 1e3,
            resilience.fec.retransmits,
            resilience.fec.fec_recovered_chunks,
            resilience.fec.fec_single_loss_recovered_fraction *
                100.0);
        Tracer::global().setEnabled(false);
        const auto session_events = Tracer::global().events();
        trace_capture.insert(trace_capture.end(),
                             session_events.begin(),
                             session_events.end());
    }

    const std::size_t trace_events = trace_capture.size();
    if (!trace_path.empty()) {
        std::ofstream trace_out(trace_path);
        writeChromeTrace(trace_capture, trace_out);
        if (!trace_out) {
            (void)std::fprintf(stderr,
                         "bench_runner: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
    }

    OverloadBenchMetrics overload;
    if (deadline_ms > 0.0) {
        auto run = runOverload(cloud_frames, config, deadline_ms,
                               load_spec);
        if (!run) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         run.status().message().c_str());
            return 1;
        }
        overload = *run;
        const OverloadStats &s = overload.stats;
        (void)std::fprintf(
            stderr,
            "overload at %.3g ms deadline (%s): miss rate %.3g "
            "(max %zu consecutive), %zu queue drops, %zu skipped, "
            "encode p99 %.2f ms\n",
            deadline_ms, load_spec.c_str(), s.deadlineMissRate(),
            s.max_consecutive_misses, s.queue_drops,
            s.frames_skipped, overload.encode_latency.p99 * 1e3);
    }

    ServeBenchMetrics serve_bench;
    if (sessions > 0) {
        // Smaller clouds per tenant: the fleet runs N whole
        // streams, and the serve gates track scheduling tails, not
        // single-stream cost (the end_to_end section covers that).
        const std::size_t tenant_points =
            std::max<std::size_t>(points / 4, 1000);
        auto run = runServe(config, sessions, seed, frames,
                            tenant_points, replicas,
                            *parsed_faults);
        if (!run) {
            (void)std::fprintf(stderr, "bench_runner: %s\n",
                         run.status().message().c_str());
            return 1;
        }
        serve_bench = std::move(*run);
        (void)std::fprintf(
            stderr,
            "serve with %d sessions on %d replica(s): %.2f "
            "sessions/device, fairness %.3f, worst-tenant p99 "
            "%.2f ms, cache hit rate %.2f\n",
            sessions, replicas,
            serve_bench.report.fleet.sessionsPerDevice(),
            serve_bench.report.fairness_index,
            serve_bench.worst_tenant_p99_s * 1e3,
            serve_bench.report.cache.hitRate());
        const serve::RecoveryStats &rec =
            serve_bench.report.recovery;
        if (rec.crashes > 0)
            (void)std::fprintf(
                stderr,
                "recovery after %zu crash(es): %zu failovers, %zu "
                "shed, mttr %.2f ms (worst %.2f ms)\n",
                rec.crashes, rec.failovers, rec.tenants_shed,
                rec.mttr_s * 1e3, rec.worst_recovery_s * 1e3);
    }

    const KernelBenchMetrics kernel_bench = runKernelBench();
    (void)std::fprintf(
        stderr,
        "kernels on %s: aggregate speedup vs scalar %.2fx\n",
        kernel_bench.simd_level.c_str(),
        kernel_bench.aggregateSpeedup());

    const int rc = writeResults(out_path, config, spec, frames,
                                worker_count, *metrics,
                                overhead_fraction, trace_events,
                                kernel_bench, resilience, overload,
                                serve_bench);
    if (rc == 0)
        (void)std::fprintf(stderr, "wrote %s (%d frames, config %s)\n",
                     out_path.c_str(), frames,
                     config.name.c_str());
    return rc;
}
