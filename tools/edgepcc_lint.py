#!/usr/bin/env python3
"""EdgePCC project-invariant checker.

Enforces repository conventions that neither the compiler nor
clang-tidy can express, using regex and light brace matching (no
libclang dependency, so it runs anywhere Python does):

  return-status    public decode*/encode*/parse* entry points return
                   Status or Expected, and no call to one is
                   discarded as a bare statement; boolean safety
                   gates in MUST_USE_NAMES (circuit-breaker
                   allowRequest) are held to the same no-discard
                   rule
  decoder-check    decoder/parser entry points validate input with
                   the EDGEPCC_CHECK macro family or an explicit
                   corruptBitstream/invalidArgument early return
                   (the contract in docs/HARDENING.md)
  naked-alloc      no naked `new` / `malloc` outside src/platform/
                   and test code (codec code uses containers; the
                   only raw allocations live behind the platform
                   arena)
  trace-span       every .cpp in the hot-path directories (octree/,
                   morton/, attr/, entropy/, stream/, serve/) opens
                   at least one trace span (ScopedTrace) or
                   work-counter stage (ScopedStage) so profiles
                   stay complete
  hot-memcpy       no naked `memcpy` in hot-path .cpp files: bulk
                   byte movement there goes through the span-based
                   framing APIs or the SIMD-dispatched kernels
                   (docs/PERFORMANCE.md); the ratchet baseline
                   carries the blessed lane-load idioms
  include-hygiene  public headers that name a pinned std:: symbol
                   include the owning standard header directly
                   (transitive includes rot; see the SYMBOL_HEADERS
                   table)

Findings already recorded in tools/edgepcc_lint_baseline.json are
ratcheted: they do not fail the build, but new ones do. Fix new
findings, or — for deliberate exceptions — suppress a single line
with a trailing or preceding comment:

    // edgepcc-lint: allow(<rule>)

Suppressions are forbidden in src|include paths under parallel/,
common/ and stream/ sync-sensitive code per docs/STATIC_ANALYSIS.md;
CI greps for them.

Usage:
  python3 tools/edgepcc_lint.py                # lint the repo
  python3 tools/edgepcc_lint.py --json         # machine-readable
  python3 tools/edgepcc_lint.py --update-baseline
  python3 tools/edgepcc_lint.py --self-test    # run built-in cases

Exit codes: 0 clean (or baseline-covered), 1 new findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, asdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "edgepcc_lint_baseline.json")

HOT_PATH_DIRS = ("octree", "morton", "attr", "entropy", "stream",
                 "serve")

# Directories whose code is linted at all (repo-relative).
LINT_ROOTS = ("include", "src", "tools", "tests", "bench", "examples", "fuzz")

# naked-alloc exemptions: the platform arena owns raw allocation, and
# test/bench/tool code may allocate to exercise failure paths.
ALLOC_EXEMPT_PREFIXES = (
    "src/platform/",
    "include/edgepcc/platform/",
    "tests/",
    "bench/",
    "tools/",
    "fuzz/",
    "examples/",
)

# include-hygiene: pinned std:: symbol -> owning header. Deliberately
# short and unambiguous; symbols like std::size_t that several
# headers provide are excluded.
SYMBOL_HEADERS = {
    "std::string": "<string>",
    "std::vector": "<vector>",
    "std::map": "<map>",
    "std::unordered_map": "<unordered_map>",
    "std::deque": "<deque>",
    "std::optional": "<optional>",
    "std::function": "<functional>",
    "std::atomic": "<atomic>",
    "std::thread": "<thread>",
    "std::mutex": "<mutex>",
    "std::condition_variable": "<condition_variable>",
    "std::condition_variable_any": "<condition_variable>",
    "std::uint8_t": "<cstdint>",
    "std::uint16_t": "<cstdint>",
    "std::uint32_t": "<cstdint>",
    "std::uint64_t": "<cstdint>",
    "std::int32_t": "<cstdint>",
    "std::int64_t": "<cstdint>",
}

# return-status: safety-gate calls whose boolean result MUST drive a
# branch — discarding one silently bypasses the gate (a circuit
# breaker probed but never consulted). These are flagged as bare
# discarded statements even though they do not return Status.
MUST_USE_NAMES = ("allowRequest",)

SUPPRESS_RE = re.compile(r"//\s*edgepcc-lint:\s*allow\(([a-z-]+)\)")

RULES = (
    "return-status",
    "decoder-check",
    "naked-alloc",
    "trace-span",
    "hot-memcpy",
    "include-hygiene",
)


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 = whole file
    message: str
    # Line-independent identity so baselines survive unrelated edits.
    fingerprint: str


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line
    structure so line numbers stay valid."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(
                "".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed_lines(raw_lines: list[str], rule: str) -> set[int]:
    """1-based line numbers covered by an allow(<rule>) comment on
    the same or the preceding line."""
    covered: set[int] = set()
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m and m.group(1) == rule:
            covered.add(idx)
            covered.add(idx + 1)
    return covered


ENTRY_NAME_RE = re.compile(r"\b((?:decode|encode|parse)[A-Za-z0-9_]*)\s*\(")


def find_function_defs(clean: str):
    """Yields (name, def_line, body) for free/method definitions whose
    name matches the entry-point pattern. Light brace matching; good
    enough for this codebase's formatting."""
    for m in ENTRY_NAME_RE.finditer(clean):
        name = m.group(1)
        # Find the matching ')' of the parameter list, then require
        # '{' (a definition) rather than ';' (a declaration/call).
        depth = 0
        i = m.end() - 1
        n = len(clean)
        while i < n:
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        j = i + 1
        while j < n and clean[j] in " \t\r\n":
            j += 1
        # Skip trailing qualifiers (const, noexcept, attributes).
        qual = re.match(
            r"(?:const|noexcept|override|final|\s|EDGEPCC_\w+\([^)]*\)|"
            r"EDGEPCC_\w+)*", clean[j:])
        j += qual.end() if qual else 0
        if j >= n or clean[j] != "{":
            continue
        # Only treat it as a *definition* if the token before the
        # name is not '.', '->', or an identifier char (call sites).
        k = m.start() - 1
        while k >= 0 and clean[k] in " \t":
            k -= 1
        if k >= 0 and (clean[k].isalnum() or clean[k] in "._>&"):
            # "x.decodeFoo(" or "->decodeFoo(" → call, not def.
            # "&decodeFoo(" never a def either.
            if not (clean[k] == ":" or clean[k] == "\n"):
                continue
        depth = 0
        end = j
        while end < n:
            if clean[end] == "{":
                depth += 1
            elif clean[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        def_line = clean.count("\n", 0, m.start()) + 1
        yield name, def_line, clean[j:end + 1], clean[:m.start()]


def def_returns_status(before: str) -> bool:
    """True if the text leading up to a definition names Status or
    Expected as the return type (same line or the line above)."""
    tail = before.rsplit("\n", 2)
    context = " ".join(tail[-2:]) if len(tail) >= 2 else before
    return bool(re.search(r"\b(Status|Expected)\b", context))


def collect_known_returns(files: dict[str, str]) -> dict[str, set[bool]]:
    """Maps every entry-point-named definition in `files` to the set
    of observed returns-Status booleans (names collide across
    classes, so a set)."""
    known: dict[str, set[bool]] = {}
    for text in files.values():
        clean = strip_comments_and_strings(text)
        for name, _line, _body, before in find_function_defs(clean):
            known.setdefault(name, set()).add(def_returns_status(before))
    return known


def rule_return_status(path, raw, clean, raw_lines, known_returns):
    """Entry points return Status/Expected; no discarded bare calls."""
    findings = []
    # Definition check: library code only. Test/bench helpers named
    # decode*/encode* are not public entry points.
    if path.startswith(("src/", "include/")):
        for name, line, _body, before in find_function_defs(clean):
            if def_returns_status(before):
                continue
            findings.append(Finding(
                "return-status", path, line,
                f"{name}() is a decode/encode/parse entry point but "
                "does not return Status or Expected",
                f"{path}:return-status:{name}"))
    # Discarded bare calls: a whole statement that is just a call to
    # an entry-point-named function. Skip continuation lines (the
    # previous statement has not ended) and calls whose definitions
    # are all known to return something other than Status/Expected.
    lines = clean.splitlines()
    prev_tail = ""  # last non-blank character seen before this line
    for idx, line_text in enumerate(lines, start=1):
        at_stmt_start = prev_tail in ("", ";", "{", "}", ":")
        stripped = line_text.rstrip()
        if stripped:
            prev_tail = stripped[-1]
        if not at_stmt_start:
            continue
        must_use = "|".join(re.escape(n) for n in MUST_USE_NAMES)
        m = re.match(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->))?"
            r"((?:decode|encode|parse)[A-Za-z0-9_]*|" + must_use +
            r")\s*\(.*\)\s*;\s*$",
            line_text)
        if not m:
            continue
        if line_text.count("(") != line_text.count(")"):
            continue
        returns = known_returns.get(m.group(1))
        if m.group(1) not in MUST_USE_NAMES and \
                returns is not None and True not in returns:
            continue  # returns void/value everywhere it is defined
        findings.append(Finding(
            "return-status", path, idx,
            f"result of {m.group(1)}() is discarded",
            f"{path}:return-status:discard:{m.group(1)}"))
    return findings


def rule_decoder_check(path, raw, clean, raw_lines):
    """Decoder/parser entry points uphold the docs/HARDENING.md
    contract: validate input via EDGEPCC_CHECK* or an explicit
    corrupt/invalid early return."""
    if not path.endswith(".cpp") or not path.startswith("src/"):
        return []
    findings = []
    for name, line, body, _before in find_function_defs(clean):
        if not name.startswith(("decode", "parse")):
            continue
        if re.search(
                r"EDGEPCC_CHECK|corruptBitstream|invalidArgument|"
                r"EDGEPCC_RETURN_IF_ERROR", body):
            continue
        # Thin wrappers that immediately delegate to another checked
        # entry point satisfy the contract transitively.
        if re.search(r"\breturn\s+\w*(decode|parse)", body,
                     re.IGNORECASE):
            continue
        findings.append(Finding(
            "decoder-check", path, line,
            f"{name}() decodes untrusted input without an "
            "EDGEPCC_CHECK/corruptBitstream validation "
            "(docs/HARDENING.md contract)",
            f"{path}:decoder-check:{name}"))
    return findings


def rule_naked_alloc(path, raw, clean, raw_lines):
    if not path.startswith(("src/", "include/")):
        return []
    if path.startswith(ALLOC_EXEMPT_PREFIXES):
        return []
    findings = []
    for idx, line_text in enumerate(clean.splitlines(), start=1):
        if re.match(r"\s*#\s*include", line_text):
            continue
        if re.search(r"\bnew\b", line_text) and \
                not re.search(r"\boperator\b", line_text):
            findings.append(Finding(
                "naked-alloc", path, idx,
                "naked `new` outside platform/ (use containers or "
                "the platform arena)",
                f"{path}:naked-alloc:new:{idx}"))
        if re.search(r"\bmalloc\s*\(", line_text):
            findings.append(Finding(
                "naked-alloc", path, idx,
                "naked `malloc` outside platform/",
                f"{path}:naked-alloc:malloc:{idx}"))
    return findings


def rule_trace_span(path, raw, clean, raw_lines):
    m = re.match(r"src/([a-z_]+)/[^/]+\.cpp$", path)
    if not m or m.group(1) not in HOT_PATH_DIRS:
        return []
    if re.search(r"\bScopedTrace\b|\bScopedStage\b|\bTracedStage\b",
                 clean):
        return []
    return [Finding(
        "trace-span", path, 0,
        "hot-path translation unit opens no trace span "
        "(ScopedTrace/TracedStage) or work stage (ScopedStage); "
        "profiles of this stage will be blind",
        f"{path}:trace-span")]


def rule_hot_memcpy(path, raw, clean, raw_lines):
    m = re.match(r"src/([a-z_]+)/[^/]+\.cpp$", path)
    if not m or m.group(1) not in HOT_PATH_DIRS:
        return []
    findings = []
    for idx, line_text in enumerate(clean.splitlines(), start=1):
        if re.match(r"\s*#\s*include", line_text):
            continue
        if re.search(r"\bmemcpy\s*\(", line_text):
            findings.append(Finding(
                "hot-memcpy", path, idx,
                "naked `memcpy` in a hot-path kernel (move bytes "
                "through the span-based framing APIs or the "
                "dispatched SIMD kernels; see docs/PERFORMANCE.md)",
                f"{path}:hot-memcpy:{idx}"))
    return findings


def rule_include_hygiene(path, raw, clean, raw_lines):
    if not (path.startswith("include/") and path.endswith(".h")):
        return []
    included = set(re.findall(r'#\s*include\s*(<[^>]+>|"[^"]+")', raw))
    findings = []
    reported = set()
    for symbol, header in SYMBOL_HEADERS.items():
        if header in reported:
            continue
        if not re.search(re.escape(symbol) + r"\b", clean):
            continue
        if header in included:
            continue
        first = 0
        sym_re = re.compile(re.escape(symbol) + r"\b")
        for idx, line_text in enumerate(clean.splitlines(), start=1):
            if sym_re.search(line_text):
                first = idx
                break
        reported.add(header)
        findings.append(Finding(
            "include-hygiene", path, first,
            f"uses {symbol} but does not include {header} directly",
            f"{path}:include-hygiene:{header}"))
    return findings


RULE_FUNCS = {
    "return-status": rule_return_status,
    "decoder-check": rule_decoder_check,
    "naked-alloc": rule_naked_alloc,
    "trace-span": rule_trace_span,
    "hot-memcpy": rule_hot_memcpy,
    "include-hygiene": rule_include_hygiene,
}


def lint_file(repo_rel: str, text: str,
              known_returns: dict[str, set[bool]] | None = None
              ) -> list[Finding]:
    if known_returns is None:
        known_returns = collect_known_returns({repo_rel: text})
    raw_lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    findings: list[Finding] = []
    for rule, func in RULE_FUNCS.items():
        covered = suppressed_lines(raw_lines, rule)
        if rule == "return-status":
            produced = func(repo_rel, text, clean, raw_lines,
                            known_returns)
        else:
            produced = func(repo_rel, text, clean, raw_lines)
        for f in produced:
            if f.line in covered:
                continue
            findings.append(f)
    return findings


def iter_source_files(root: str):
    for lint_root in LINT_ROOTS:
        base = os.path.join(root, lint_root)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith((".h", ".cpp", ".cc", ".hpp")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def load_baseline(path: str) -> set[str]:
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return set(data.get("fingerprints", []))


def save_baseline(path: str, findings: list[Finding]) -> None:
    data = {
        "comment": "Ratcheted edgepcc_lint findings. Entries here "
                   "pre-date the rule or are deliberate; do not add "
                   "to this file to silence new findings — fix them "
                   "or use a line suppression with justification.",
        "fingerprints": sorted({f.fingerprint for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


# ---------------------------------------------------------------- self-test

SELF_TEST_CASES = [
    # (rule, path, source, expected_finding_count)
    ("return-status", "src/octree/bad_codec.cpp",
     "std::vector<int>\ndecodeThing(const Payload &p)\n{\n    return {};\n}\n",
     1),
    ("return-status", "src/octree/good_codec.cpp",
     "Expected<int>\ndecodeThing(const Payload &p)\n{\n"
     "    EDGEPCC_CHECK_CORRUPT(!p.empty(), \"empty\");\n    return 1;\n}\n",
     0),
    ("return-status", "src/core/discard.cpp",
     "void run(Codec &c)\n{\n    c.decodeFrame(payload);\n}\n",
     1),
    ("return-status", "src/core/used.cpp",
     "void run(Codec &c)\n{\n    auto r = c.decodeFrame(payload);\n"
     "    (void)r;\n}\n",
     0),
    ("decoder-check", "src/entropy/bad_parse.cpp",
     "Expected<Header>\nparseHeader(const Bytes &b)\n{\n"
     "    Header h;\n    h.depth = b[0];\n    return h;\n}\n",
     1),
    ("decoder-check", "src/entropy/good_parse.cpp",
     "Expected<Header>\nparseHeader(const Bytes &b)\n{\n"
     "    EDGEPCC_CHECK_CORRUPT(b.size() >= 4, \"short header\");\n"
     "    Header h;\n    return h;\n}\n",
     0),
    ("naked-alloc", "src/attr/bad_alloc.cpp",
     "void f()\n{\n    int *p = new int[32];\n"
     "    void *q = malloc(64);\n}\n",
     2),
    ("naked-alloc", "src/platform/arena.cpp",
     "void f()\n{\n    void *q = malloc(64);\n}\n",
     0),
    ("naked-alloc", "src/attr/commented.cpp",
     "void f()\n{\n    // a new approach, no malloc(here)\n}\n",
     0),
    ("trace-span", "src/morton/bad_unit.cpp",
     "void f()\n{\n}\n",
     1),
    ("trace-span", "src/morton/good_unit.cpp",
     "void f()\n{\n    ScopedTrace trace(\"morton.f\");\n}\n",
     0),
    ("trace-span", "src/platform/not_hot.cpp",
     "void f()\n{\n}\n",
     0),
    ("hot-memcpy", "src/stream/bad_copy.cpp",
     "void f(uint8_t *dst, const uint8_t *src)\n{\n"
     "    std::memcpy(dst, src, 64);\n}\n",
     1),
    ("hot-memcpy", "src/platform/allowed_copy.cpp",
     "void f(uint8_t *dst, const uint8_t *src)\n{\n"
     "    std::memcpy(dst, src, 64);\n}\n",
     0),
    ("hot-memcpy", "src/stream/commented_copy.cpp",
     "void f()\n{\n    // memcpy(would, be, bad)\n}\n",
     0),
    ("include-hygiene", "include/edgepcc/x/bad_header.h",
     "#include <cstdint>\nnamespace e {\nstd::vector<int> v();\n}\n",
     1),
    ("include-hygiene", "include/edgepcc/x/good_header.h",
     "#include <vector>\nnamespace e {\nstd::vector<int> v();\n}\n",
     0),
    ("return-status", "src/core/suppressed.cpp",
     "void run(Codec &c)\n{\n    // edgepcc-lint: allow(return-status)\n"
     "    c.decodeFrame(payload);\n}\n",
     0),
    # MUST_USE_NAMES: a circuit-breaker gate probed but never
    # consulted is flagged even though allowRequest returns bool.
    ("return-status", "src/serve/breaker_discard.cpp",
     "void run(CircuitBreaker &b)\n{\n    b.allowRequest(now_s);\n}\n",
     1),
    ("return-status", "src/serve/breaker_used.cpp",
     "void run(CircuitBreaker &b)\n{\n"
     "    if (!b.allowRequest(now_s))\n        return;\n}\n",
     0),
]


def run_self_test() -> int:
    failures = 0
    for rule, path, source, expected in SELF_TEST_CASES:
        found = [f for f in lint_file(path, source) if f.rule == rule]
        if len(found) != expected:
            failures += 1
            print(f"SELF-TEST FAIL [{rule}] {path}: expected "
                  f"{expected} finding(s), got {len(found)}:")
            for f in found:
                print(f"  {f.path}:{f.line}: {f.message}")
    total = len(SELF_TEST_CASES)
    if failures:
        print(f"self-test: {failures}/{total} cases failed")
        return 1
    print(f"self-test: all {total} cases passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="EdgePCC project-invariant checker")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole repo)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignore baseline")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    if args.paths:
        rel_paths = [
            os.path.relpath(os.path.abspath(p), REPO_ROOT)
            .replace(os.sep, "/")
            for p in args.paths
        ]
    else:
        rel_paths = list(iter_source_files(REPO_ROOT))

    texts: dict[str, str] = {}
    for rel in rel_paths:
        full = os.path.join(REPO_ROOT, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                texts[rel] = f.read()
        except OSError as exc:
            print(f"error: cannot read {rel}: {exc}", file=sys.stderr)
            return 2

    # Return types are resolved repo-wide so the discard check knows
    # which entry points actually produce a Status/Expected.
    known_returns = collect_known_returns(texts)
    findings: list[Finding] = []
    for rel, text in texts.items():
        findings.extend(lint_file(rel, text, known_returns))

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) -> "
              f"{os.path.relpath(args.baseline, REPO_ROOT)}")
        return 0

    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    new = [f for f in findings if f.fingerprint not in baseline]
    stale = baseline - {f.fingerprint for f in findings}

    if args.json:
        print(json.dumps({
            "new": [asdict(f) for f in new],
            "baselined": len(findings) - len(new),
            "stale_baseline_entries": sorted(stale),
        }, indent=2))
    else:
        for f in sorted(new, key=lambda f: (f.path, f.line)):
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if stale:
            print(f"note: {len(stale)} baseline entr"
                  f"{'y is' if len(stale) == 1 else 'ies are'} stale "
                  "(fixed findings); run --update-baseline to shrink "
                  "the ratchet")
        covered = len(findings) - len(new)
        print(f"edgepcc_lint: {len(new)} new finding(s), "
              f"{covered} baseline-covered, "
              f"{len(rel_paths)} file(s) checked")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
