/**
 * @file
 * EdgePCC command-line tool.
 *
 * Subcommands:
 *   synth   <out_prefix>            generate synthetic PLY frames
 *   encode  <out.epcv> <in.ply...>  compress frames into a stream
 *   decode  <in.epcv> <out_prefix>  decompress to PLY frames
 *   info    <in.epcv>               inspect a stream
 *   metrics <ref.ply> <test.ply>    PSNR between two clouds
 *
 * Run `edgepcc_cli help` for the full flag reference.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/catalogue.h"
#include "edgepcc/dataset/ply_io.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/platform/device_model.h"
#include "edgepcc/stream/stream_file.h"

namespace {

using namespace edgepcc;

/** Tiny flag parser: --key value and --flag. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0) {
                    options_[arg.substr(2)] = argv[++i];
                } else {
                    options_[arg.substr(2)] = "true";
                }
            } else {
                positional_.push_back(arg);
            }
        }
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = options_.find(key);
        return it != options_.end() ? it->second : fallback;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = options_.find(key);
        return it != options_.end() ? std::atof(it->second.c_str())
                                    : fallback;
    }

    int
    getInt(const std::string &key, int fallback) const
    {
        const auto it = options_.find(key);
        return it != options_.end() ? std::atoi(it->second.c_str())
                                    : fallback;
    }

    bool
    has(const std::string &key) const
    {
        return options_.count(key) > 0;
    }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

Expected<CodecConfig>
codecFromName(const std::string &name)
{
    if (name == "tmc13")
        return makeTmc13LikeConfig();
    if (name == "cwipc")
        return makeCwipcLikeConfig();
    if (name == "intra")
        return makeIntraOnlyConfig();
    if (name == "v1")
        return makeIntraInterV1Config();
    if (name == "v2")
        return makeIntraInterV2Config();
    return invalidArgument(
        "unknown codec '" + name +
        "' (expected tmc13|cwipc|intra|v1|v2)");
}

// ----- subcommands -------------------------------------------------

int
cmdSynth(const Args &args)
{
    if (args.positional().empty()) {
        (void)std::fprintf(stderr,
                     "usage: edgepcc_cli synth <out_prefix> "
                     "[--video NAME] [--frames N] [--scale S] "
                     "[--points N] [--ascii]\n");
        return 2;
    }
    const std::string prefix = args.positional()[0];
    const std::string video_name =
        args.get("video", "Redandblack");
    const int frames = args.getInt("frames", 3);
    const double scale = args.getDouble("scale", 0.1);

    VideoSpec spec;
    bool found = false;
    for (const CatalogueEntry &entry : paperCatalogue()) {
        if (video_name == entry.name) {
            spec = makeVideoSpec(entry, scale);
            found = true;
            break;
        }
    }
    if (!found) {
        spec.name = video_name;
        spec.seed = 12345;
        spec.target_points = 80000;
    }
    if (args.has("points")) {
        spec.target_points = static_cast<std::size_t>(
            args.getInt("points", 80000));
    }

    SyntheticHumanVideo video(spec);
    for (int f = 0; f < frames; ++f) {
        const VoxelCloud cloud = video.frame(f);
        char path[512];
        (void)std::snprintf(path, sizeof(path), "%s_%04d.ply",
                      prefix.c_str(), f);
        const Status status =
            writePlyVoxels(path, cloud, !args.has("ascii"));
        if (!status.isOk()) {
            (void)std::fprintf(stderr, "%s\n",
                         status.toString().c_str());
            return 1;
        }
        (void)std::printf("wrote %s (%zu points)\n", path, cloud.size());
    }
    return 0;
}

int
cmdEncode(const Args &args)
{
    if (args.positional().size() < 2) {
        (void)std::fprintf(stderr,
                     "usage: edgepcc_cli encode <out.epcv> "
                     "<in.ply...> [--codec tmc13|cwipc|intra|v1|"
                     "v2] [--grid-bits N] [--profile]\n");
        return 2;
    }
    auto codec = codecFromName(args.get("codec", "v1"));
    if (!codec) {
        (void)std::fprintf(stderr, "%s\n",
                     codec.status().toString().c_str());
        return 2;
    }
    const int grid_bits = args.getInt("grid-bits", 10);

    VideoEncoder encoder(*codec);
    const EdgeDeviceModel model;
    std::vector<std::vector<std::uint8_t>> stream;
    std::uint64_t raw_total = 0, coded_total = 0;

    for (std::size_t i = 1; i < args.positional().size(); ++i) {
        const std::string &path = args.positional()[i];
        auto cloud = readPlyVoxels(path, grid_bits);
        if (!cloud) {
            (void)std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         cloud.status().toString().c_str());
            return 1;
        }
        auto encoded = encoder.encode(*cloud);
        if (!encoded) {
            (void)std::fprintf(stderr, "%s: encode failed: %s\n",
                         path.c_str(),
                         encoded.status().toString().c_str());
            return 1;
        }
        raw_total += encoded->stats.raw_bytes;
        coded_total += encoded->stats.total_bytes;
        (void)std::printf(
            "%s: %zu pts -> %zu bytes (%s)", path.c_str(),
            cloud->size(), encoded->bitstream.size(),
            encoded->stats.type == Frame::Type::kPredicted ? "P"
                                                           : "I");
        if (args.has("profile")) {
            const PipelineTiming timing =
                model.evaluate(encoded->profile);
            (void)std::printf("  [%s: %.1f ms, %.3f J]",
                        model.spec().name.c_str(),
                        timing.modelSeconds() * 1e3,
                        timing.joules());
        }
        (void)std::printf("\n");
        stream.push_back(std::move(encoded->bitstream));
    }

    const Status status =
        writeStreamFile(args.positional()[0], stream);
    if (!status.isOk()) {
        (void)std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    (void)std::printf("%s: %zu frames, %.2fx compression\n",
                args.positional()[0].c_str(), stream.size(),
                coded_total > 0
                    ? static_cast<double>(raw_total) /
                          static_cast<double>(coded_total)
                    : 0.0);
    return 0;
}

int
cmdDecode(const Args &args)
{
    if (args.positional().size() != 2) {
        (void)std::fprintf(stderr,
                     "usage: edgepcc_cli decode <in.epcv> "
                     "<out_prefix> [--ascii]\n");
        return 2;
    }
    auto stream = readStreamFile(args.positional()[0]);
    if (!stream) {
        (void)std::fprintf(stderr, "%s\n",
                     stream.status().toString().c_str());
        return 1;
    }
    VideoDecoder decoder;
    for (std::size_t f = 0; f < stream->size(); ++f) {
        auto decoded = decoder.decode((*stream)[f]);
        if (!decoded) {
            (void)std::fprintf(stderr, "frame %zu: %s\n", f,
                         decoded.status().toString().c_str());
            return 1;
        }
        char path[512];
        (void)std::snprintf(path, sizeof(path), "%s_%04zu.ply",
                      args.positional()[1].c_str(), f);
        const Status status = writePlyVoxels(
            path, decoded->cloud, !args.has("ascii"));
        if (!status.isOk()) {
            (void)std::fprintf(stderr, "%s\n",
                         status.toString().c_str());
            return 1;
        }
        (void)std::printf("wrote %s (%zu points, %s frame)\n", path,
                    decoded->cloud.size(),
                    decoded->type == Frame::Type::kPredicted
                        ? "P"
                        : "I");
    }
    return 0;
}

int
cmdInfo(const Args &args)
{
    if (args.positional().size() != 1) {
        (void)std::fprintf(stderr, "usage: edgepcc_cli info <in.epcv>\n");
        return 2;
    }
    auto stream = readStreamFile(args.positional()[0]);
    if (!stream) {
        (void)std::fprintf(stderr, "%s\n",
                     stream.status().toString().c_str());
        return 1;
    }
    (void)std::printf("%s: %zu frames\n", args.positional()[0].c_str(),
                stream->size());
    VideoDecoder decoder;
    for (std::size_t f = 0; f < stream->size(); ++f) {
        auto decoded = decoder.decode((*stream)[f]);
        if (!decoded) {
            (void)std::printf("  frame %4zu: %8zu bytes  (undecodable: "
                        "%s)\n",
                        f, (*stream)[f].size(),
                        decoded.status().toString().c_str());
            continue;
        }
        (void)std::printf("  frame %4zu: %8zu bytes  %c  %8zu points\n",
                    f, (*stream)[f].size(),
                    decoded->type == Frame::Type::kPredicted
                        ? 'P'
                        : 'I',
                    decoded->cloud.size());
    }
    return 0;
}

int
cmdMetrics(const Args &args)
{
    if (args.positional().size() != 2) {
        (void)std::fprintf(stderr,
                     "usage: edgepcc_cli metrics <ref.ply> "
                     "<test.ply> [--grid-bits N]\n");
        return 2;
    }
    const int grid_bits = args.getInt("grid-bits", 10);
    auto ref = readPlyVoxels(args.positional()[0], grid_bits);
    auto test = readPlyVoxels(args.positional()[1], grid_bits);
    if (!ref || !test) {
        (void)std::fprintf(stderr, "%s\n",
                     (!ref ? ref.status() : test.status())
                         .toString()
                         .c_str());
        return 1;
    }
    const AttrQuality attr = attributePsnr(*ref, *test);
    const GeometryQuality geom = geometryPsnrD1(*ref, *test);
    (void)std::printf("points: ref=%zu test=%zu\n", ref->size(),
                test->size());
    (void)std::printf("attribute PSNR : %.2f dB (mse %.4f, %zu matched, "
                "%zu unmatched)\n",
                attr.psnr, attr.mse, attr.matched_points,
                attr.unmatched_points);
    (void)std::printf("geometry  PSNR : %.2f dB (D1 mse %.6f)\n",
                geom.psnr, geom.mse);
    return 0;
}

int
cmdHelp()
{
    (void)std::printf(
        "EdgePCC CLI — Morton-parallel point cloud compression\n\n"
        "  edgepcc_cli synth  <out_prefix> [--video NAME] "
        "[--frames N] [--scale S] [--points N] [--ascii]\n"
        "  edgepcc_cli encode <out.epcv> <in.ply...> "
        "[--codec tmc13|cwipc|intra|v1|v2] [--grid-bits N] "
        "[--profile]\n"
        "  edgepcc_cli decode <in.epcv> <out_prefix> [--ascii]\n"
        "  edgepcc_cli info   <in.epcv>\n"
        "  edgepcc_cli metrics <ref.ply> <test.ply> "
        "[--grid-bits N]\n\n"
        "Codecs: tmc13 (baseline intra), cwipc (baseline inter),\n"
        "        intra / v1 / v2 (the paper's proposed designs).\n");
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string command = argv[1];
    const Args args(argc, argv, 2);
    if (command == "synth")
        return cmdSynth(args);
    if (command == "encode")
        return cmdEncode(args);
    if (command == "decode")
        return cmdDecode(args);
    if (command == "info")
        return cmdInfo(args);
    if (command == "metrics")
        return cmdMetrics(args);
    return cmdHelp();
}
