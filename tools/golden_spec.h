/**
 * @file
 * The golden-bitstream conformance workload, shared by
 * tools/golden_gen (writes the .epcv files under tests/golden) and
 * tests/test_golden_bitstream.cpp (asserts the encoder still
 * produces those exact bytes).
 *
 * Changing anything here — or any code on the encode path — in a way
 * that shifts the bitstream requires regenerating the goldens with
 * tools/regen_golden.sh, which turns an intentional format change
 * into an explicit, reviewable diff.
 *
 * The cases stay on integer-only code paths (segment codec, block
 * matcher, raw entropy, range coder) so the bytes are reproducible
 * across optimization levels and sanitizer builds; RAHT's
 * double-precision butterflies are covered by the round-trip
 * property suite instead.
 */

#ifndef EDGEPCC_TOOLS_GOLDEN_SPEC_H
#define EDGEPCC_TOOLS_GOLDEN_SPEC_H

#include <string>
#include <vector>

#include "edgepcc/core/codec_config.h"
#include "edgepcc/dataset/synthetic_human.h"

namespace edgepcc::golden {

/** Frames per golden stream: one IPP group. */
constexpr int kGoldenFrames = 3;

/** The deterministic source video every golden case encodes. */
inline VideoSpec
goldenVideoSpec()
{
    VideoSpec spec;
    spec.name = "golden-human";
    spec.seed = 42;
    spec.target_points = 1500;
    spec.num_frames = kGoldenFrames;
    return spec;
}

/** One golden case: a codec config and its .epcv file name. */
struct GoldenCase {
    std::string file;  ///< e.g. "golden_intra_only.epcv"
    CodecConfig config;
};

inline std::vector<GoldenCase>
goldenCases()
{
    return {
        {"golden_intra_only.epcv", makeIntraOnlyConfig()},
        {"golden_intra_inter_v1.epcv", makeIntraInterV1Config()},
        {"golden_cwipc.epcv", makeCwipcLikeConfig()},
    };
}

}  // namespace edgepcc::golden

#endif  // EDGEPCC_TOOLS_GOLDEN_SPEC_H
