#!/usr/bin/env bash
# Regenerates tests/golden/*.epcv after an intentional bitstream
# format change, so the change lands as an explicit, reviewable diff
# alongside the code that caused it.
#
# Goldens are produced by the default (RelWithDebInfo) build on the
# project's pinned toolchain; a differing libm/compiler may shift the
# synthetic workload and require regenerating in that environment.
#
# Usage: tools/regen_golden.sh [build_dir]

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -d "$build_dir" ]; then
    cmake --preset default -S "$repo_root"
fi
cmake --build "$build_dir" --target golden_gen -j "$(nproc)"

mkdir -p "$repo_root/tests/golden"
"$build_dir/tools/golden_gen" "$repo_root/tests/golden"

echo "golden files regenerated; review the diff with: git diff --stat tests/golden"
