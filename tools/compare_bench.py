#!/usr/bin/env python3
"""Diff two bench_runner result files and flag perf regressions.

Usage:
    compare_bench.py OLD.json NEW.json [--latency-tol 0.10]
                     [--ratio-tol 0.02] [--host]
    compare_bench.py --self-test

Exit codes: 0 = no regression, 1 = regression detected,
2 = usage or schema error.

Latency comparisons default to the *modelled* Jetson seconds
(deterministic: derived from recorded ops/bytes, immune to CI host
noise). Pass --host to additionally gate on measured host p50s when
comparing runs from the same machine. Compression ratio and PSNR are
always compared. See docs/OBSERVABILITY.md for the JSON schema.
"""

import argparse
import copy
import json
import sys

SCHEMA = "edgepcc-bench-v1"

# Deadline-miss rate is gated on an absolute increase (a baseline
# rate of 0 has no meaningful relative change): more than 5 points
# of extra misses under the same load spec is a regression.
MISS_RATE_TOL = 0.05

# The Jain fairness index lives in (0, 1], so it too is gated on an
# absolute drop: losing more than 0.05 of the index for the same
# tenant mix means some tenant's share collapsed.
FAIRNESS_TOL = 0.05


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"compare_bench: cannot read {path}: {err}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"compare_bench: {path}: unsupported schema "
            f"{doc.get('schema')!r} (want {SCHEMA!r})"
        )
    return doc


def rel_change(old, new):
    if old == 0:
        return 0.0
    return (new - old) / old


def compare(old, new, latency_tol, ratio_tol, check_host):
    """Returns (regressions, report_lines)."""
    regressions = []
    lines = []

    def check_latency(label, old_val, new_val):
        change = rel_change(old_val, new_val)
        mark = ""
        if old_val > 0 and change > latency_tol:
            mark = "  << REGRESSION"
            regressions.append(
                f"{label}: {old_val:.6g}s -> {new_val:.6g}s "
                f"(+{change * 100:.1f}%, tol "
                f"{latency_tol * 100:.0f}%)"
            )
        lines.append(
            f"  {label:<34} {old_val:>12.6g} {new_val:>12.6g} "
            f"{change * 100:>+8.1f}%{mark}"
        )

    oe, ne = old["end_to_end"], new["end_to_end"]
    lines.append(
        f"  {'metric':<34} {'old':>12} {'new':>12} {'change':>9}"
    )
    check_latency(
        "encode_model_s.p50",
        oe["encode_model_s"]["p50"],
        ne["encode_model_s"]["p50"],
    )
    check_latency(
        "decode_model_s.p50",
        oe["decode_model_s"]["p50"],
        ne["decode_model_s"]["p50"],
    )
    if check_host:
        check_latency(
            "encode_host_s.p50",
            oe["encode_host_s"]["p50"],
            ne["encode_host_s"]["p50"],
        )
        check_latency(
            "decode_host_s.p50",
            oe["decode_host_s"]["p50"],
            ne["decode_host_s"]["p50"],
        )

    old_stages = {s["name"]: s for s in old.get("stages", [])}
    for stage in new.get("stages", []):
        ref = old_stages.get(stage["name"])
        if ref is None:
            lines.append(f"  stage {stage['name']}: new (no baseline)")
            continue
        check_latency(
            f"stage {stage['name']} model p50",
            ref["model_s"]["p50"],
            stage["model_s"]["p50"],
        )

    # SIMD kernel micro-bench (host ns/point, see
    # docs/PERFORMANCE.md). Host-measured, so only gated when both
    # runs dispatched on the same ISA — a changed simd_level is a
    # different experiment (reported, not gated).
    old_kernels = old.get("kernels", {})
    new_kernels = new.get("kernels", {})
    if old_kernels and new_kernels:
        old_level = old_kernels.get("simd_level")
        new_level = new_kernels.get("simd_level")
        if old_level != new_level:
            lines.append(
                f"  kernels: simd_level changed "
                f"({old_level} -> {new_level}), not gated"
            )
        else:
            old_items = {
                k["name"]: k for k in old_kernels.get("items", [])
            }
            for item in new_kernels.get("items", []):
                ref = old_items.get(item["name"])
                if ref is None:
                    lines.append(
                        f"  kernel {item['name']}: new "
                        f"(no baseline)"
                    )
                    continue
                check_latency(
                    f"kernel {item['name']} p50 ns/pt",
                    ref["p50_ns_per_point"],
                    item["p50_ns_per_point"],
                )
    elif new_kernels:
        lines.append("  kernels: new (no baseline)")

    ratio_change = rel_change(
        oe["compression_ratio"], ne["compression_ratio"]
    )
    mark = ""
    if ratio_change < -ratio_tol:
        mark = "  << REGRESSION"
        regressions.append(
            f"compression_ratio: {oe['compression_ratio']:.4g} -> "
            f"{ne['compression_ratio']:.4g} "
            f"({ratio_change * 100:+.1f}%, tol "
            f"-{ratio_tol * 100:.0f}%)"
        )
    lines.append(
        f"  {'compression_ratio':<34} "
        f"{oe['compression_ratio']:>12.6g} "
        f"{ne['compression_ratio']:>12.6g} "
        f"{ratio_change * 100:>+8.1f}%{mark}"
    )

    for key in ("attr_psnr_db", "geom_psnr_db"):
        drop = oe[key] - ne[key]
        note = "  (quality drop >0.5 dB)" if drop > 0.5 else ""
        lines.append(
            f"  {key:<34} {oe[key]:>12.6g} {ne[key]:>12.6g} "
            f"{-drop:>+8.1f}dB{note}"
        )

    # Network-aware end-to-end latency (resilience "modes"):
    # capture..render including loss recovery, per transport mode.
    # Present only when both runs used --loss; modes that exist in
    # just one run are reported but not gated.
    old_modes = old.get("resilience", {}).get("modes", {})
    new_modes = new.get("resilience", {}).get("modes", {})
    for mode in sorted(new_modes):
        if mode not in old_modes:
            lines.append(f"  mode {mode}: new (no baseline)")
            continue
        check_latency(
            f"resilience.{mode} e2e p50",
            old_modes[mode]["e2e_latency_s"]["p50"],
            new_modes[mode]["e2e_latency_s"]["p50"],
        )
        check_latency(
            f"resilience.{mode} recovery mean",
            old_modes[mode]["recovery_s_mean"],
            new_modes[mode]["recovery_s_mean"],
        )
        # FEC recovery effectiveness: the fraction of multi-loss
        # groups the decoder solved without retransmission. A drop
        # of more than 5 points is a resilience regression even if
        # latency stayed flat (NACKs may be masking it).
        key = "fec_multi_loss_recovered_fraction"
        if key in old_modes[mode] and key in new_modes[mode]:
            old_frac = old_modes[mode][key]
            new_frac = new_modes[mode][key]
            if new_frac < old_frac - 0.05:
                regressions.append(
                    f"resilience.{mode} multi-loss recovery "
                    f"{old_frac:.2f} -> {new_frac:.2f}"
                )
            lines.append(
                f"  resilience.{mode} multi-loss recovered "
                f"{old_frac:>8.2f} {new_frac:>12.2f}"
            )

    # Overload ladder (--deadline-ms runs): modelled p99 encode
    # latency under injected load, plus the deadline-miss rate.
    # Present only when both runs used --deadline-ms; a section in
    # just one run is reported but not gated.
    old_ol = old.get("overload", {})
    new_ol = new.get("overload", {})
    if old_ol and new_ol:
        check_latency(
            "overload encode p99",
            old_ol["encode_latency_s"]["p99"],
            new_ol["encode_latency_s"]["p99"],
        )
        old_rate = old_ol["deadline_miss_rate"]
        new_rate = new_ol["deadline_miss_rate"]
        delta = new_rate - old_rate
        mark = ""
        if delta > MISS_RATE_TOL:
            mark = "  << REGRESSION"
            regressions.append(
                f"overload deadline_miss_rate: {old_rate:.4g} -> "
                f"{new_rate:.4g} (+{delta:.4g} absolute, tol "
                f"{MISS_RATE_TOL:.2g})"
            )
        lines.append(
            f"  {'overload deadline_miss_rate':<34} "
            f"{old_rate:>12.6g} {new_rate:>12.6g} "
            f"{delta:>+8.4f} {mark}"
        )
    elif new_ol:
        lines.append("  overload: new (no baseline)")

    # Multi-tenant fleet (--sessions runs): the worst tenant's p99
    # completion latency on the virtual device clock, plus the Jain
    # fairness index. Present only when both runs used --sessions; a
    # section in just one run is reported but not gated.
    old_sv = old.get("serve", {})
    new_sv = new.get("serve", {})
    if old_sv and new_sv:
        check_latency(
            "serve worst_tenant_p99",
            old_sv["worst_tenant_p99_s"],
            new_sv["worst_tenant_p99_s"],
        )
        old_fair = old_sv["fairness_index"]
        new_fair = new_sv["fairness_index"]
        drop = old_fair - new_fair
        mark = ""
        if drop > FAIRNESS_TOL:
            mark = "  << REGRESSION"
            regressions.append(
                f"serve fairness_index: {old_fair:.4g} -> "
                f"{new_fair:.4g} (-{drop:.4g} absolute, tol "
                f"{FAIRNESS_TOL:.2g})"
            )
        lines.append(
            f"  {'serve fairness_index':<34} "
            f"{old_fair:>12.6g} {new_fair:>12.6g} "
            f"{-drop:>+8.4f} {mark}"
        )

        # Fault-injection runs (--faults): recovery quality is only
        # comparable when both runs survived the same number of
        # crashes; otherwise the fault spec changed and the numbers
        # describe different experiments (reported, not gated).
        old_rec = old_sv.get("recovery", {})
        new_rec = new_sv.get("recovery", {})
        old_crashes = old_rec.get("crashes", 0)
        new_crashes = new_rec.get("crashes", 0)
        if old_crashes != new_crashes:
            if old_rec or new_rec:
                lines.append(
                    f"  serve recovery: crash count changed "
                    f"({old_crashes} -> {new_crashes}), not gated"
                )
        elif old_crashes > 0:
            check_latency(
                "serve recovery mttr",
                old_rec["mttr_s"],
                new_rec["mttr_s"],
            )
            old_shed = old_rec["tenants_shed"]
            new_shed = new_rec["tenants_shed"]
            mark = ""
            if new_shed > old_shed:
                mark = "  << REGRESSION"
                regressions.append(
                    f"serve recovery tenants_shed: {old_shed} -> "
                    f"{new_shed} (same crash count must not shed "
                    f"more tenants)"
                )
            lines.append(
                f"  {'serve recovery tenants_shed':<34} "
                f"{old_shed:>12} {new_shed:>12} "
                f"{new_shed - old_shed:>+9}{mark}"
            )
    elif new_sv:
        lines.append("  serve: new (no baseline)")

    return regressions, lines


def self_test():
    """Verifies the detector on a synthetic 20% slowdown."""
    base = {
        "schema": SCHEMA,
        "end_to_end": {
            "encode_model_s": {"p50": 0.050},
            "decode_model_s": {"p50": 0.030},
            "encode_host_s": {"p50": 0.020},
            "decode_host_s": {"p50": 0.010},
            "compression_ratio": 8.0,
            "attr_psnr_db": 48.5,
            "geom_psnr_db": 70.0,
        },
        "stages": [
            {"name": "geom.morton", "model_s": {"p50": 0.004}},
            {"name": "attr.segment", "model_s": {"p50": 0.006}},
        ],
        "kernels": {
            "simd_level": "avx2",
            "aggregate_speedup_vs_scalar": 2.4,
            "items": [
                {
                    "name": "morton.encode",
                    "p50_ns_per_point": 1.8,
                },
                {
                    "name": "crc32c",
                    "p50_ns_per_point": 0.14,
                },
            ],
        },
        "resilience": {
            "modes": {
                "nack": {
                    "e2e_latency_s": {"p50": 0.063},
                    "recovery_s_mean": 0.0079,
                },
                "fec": {
                    "e2e_latency_s": {"p50": 0.050},
                    "recovery_s_mean": 0.0009,
                },
                "rs": {
                    "e2e_latency_s": {"p50": 0.048},
                    "recovery_s_mean": 0.0004,
                    "fec_multi_loss_recovered_fraction": 0.95,
                },
            },
        },
        "overload": {
            "deadline_miss_rate": 0.10,
            "encode_latency_s": {"p99": 0.0042},
        },
        "serve": {
            "worst_tenant_p99_s": 0.085,
            "fairness_index": 0.97,
            "recovery": {
                "crashes": 1,
                "failovers": 3,
                "tenants_shed": 0,
                "mttr_s": 0.016,
                "worst_recovery_s": 0.021,
            },
        },
    }
    identical, _ = compare(base, base, 0.10, 0.02, True)
    assert not identical, "identical runs must not regress"

    slow = copy.deepcopy(base)
    slow["end_to_end"]["encode_model_s"]["p50"] *= 1.20
    found, _ = compare(base, slow, 0.10, 0.02, False)
    assert found, "20% encode slowdown must be flagged"

    stage_slow = copy.deepcopy(base)
    stage_slow["stages"][1]["model_s"]["p50"] *= 1.20
    found, _ = compare(base, stage_slow, 0.10, 0.02, False)
    assert found, "20% stage slowdown must be flagged"

    shrunk = copy.deepcopy(base)
    shrunk["end_to_end"]["compression_ratio"] *= 0.95
    found, _ = compare(base, shrunk, 0.10, 0.02, False)
    assert found, "5% compression-ratio loss must be flagged"

    within_tol = copy.deepcopy(base)
    within_tol["end_to_end"]["encode_model_s"]["p50"] *= 1.05
    found, _ = compare(base, within_tol, 0.10, 0.02, False)
    assert not found, "5% slowdown is within the 10% tolerance"

    kernel_slow = copy.deepcopy(base)
    kernel_slow["kernels"]["items"][0]["p50_ns_per_point"] *= 1.20
    found, _ = compare(base, kernel_slow, 0.10, 0.02, False)
    assert found, "20% kernel p50 slowdown must be flagged"

    kernel_within = copy.deepcopy(base)
    kernel_within["kernels"]["items"][0][
        "p50_ns_per_point"] *= 1.05
    found, _ = compare(base, kernel_within, 0.10, 0.02, False)
    assert not found, "5% kernel slowdown is within the tolerance"

    level_changed = copy.deepcopy(kernel_slow)
    level_changed["kernels"]["simd_level"] = "scalar"
    found, _ = compare(base, level_changed, 0.10, 0.02, False)
    assert not found, "changed simd_level is reported, not gated"

    no_kernels = copy.deepcopy(base)
    del no_kernels["kernels"]
    found, _ = compare(no_kernels, base, 0.10, 0.02, False)
    assert not found, "kernels without a baseline are not gated"

    e2e_slow = copy.deepcopy(base)
    e2e_slow["resilience"]["modes"]["fec"]["e2e_latency_s"][
        "p50"] *= 1.20
    found, _ = compare(base, e2e_slow, 0.10, 0.02, False)
    assert found, "20% FEC end-to-end slowdown must be flagged"

    recovery_slow = copy.deepcopy(base)
    recovery_slow["resilience"]["modes"]["nack"][
        "recovery_s_mean"] *= 1.50
    found, _ = compare(base, recovery_slow, 0.10, 0.02, False)
    assert found, "50% recovery-time growth must be flagged"

    rs_slow = copy.deepcopy(base)
    rs_slow["resilience"]["modes"]["rs"]["e2e_latency_s"][
        "p50"] *= 1.20
    found, _ = compare(base, rs_slow, 0.10, 0.02, False)
    assert found, "20% RS end-to-end slowdown must be flagged"

    rs_weaker = copy.deepcopy(base)
    rs_weaker["resilience"]["modes"]["rs"][
        "fec_multi_loss_recovered_fraction"] = 0.70
    found, _ = compare(base, rs_weaker, 0.10, 0.02, False)
    assert found, "multi-loss recovery drop must be flagged"

    rs_jitter = copy.deepcopy(base)
    rs_jitter["resilience"]["modes"]["rs"][
        "fec_multi_loss_recovered_fraction"] = 0.92
    found, _ = compare(base, rs_jitter, 0.10, 0.02, False)
    assert not found, "3pt recovery jitter is within tolerance"

    no_resilience = copy.deepcopy(base)
    del no_resilience["resilience"]
    found, _ = compare(no_resilience, no_resilience, 0.10, 0.02,
                       False)
    assert not found, "runs without --loss must still compare"
    found, _ = compare(no_resilience, base, 0.10, 0.02, False)
    assert not found, "new modes without a baseline are not gated"

    missier = copy.deepcopy(base)
    missier["overload"]["deadline_miss_rate"] = 0.20
    found, _ = compare(base, missier, 0.10, 0.02, False)
    assert found, "+10pt deadline-miss rate must be flagged"

    slightly_missier = copy.deepcopy(base)
    slightly_missier["overload"]["deadline_miss_rate"] = 0.13
    found, _ = compare(base, slightly_missier, 0.10, 0.02, False)
    assert not found, "+3pt miss rate is within the 5pt tolerance"

    p99_slow = copy.deepcopy(base)
    p99_slow["overload"]["encode_latency_s"]["p99"] *= 1.20
    found, _ = compare(base, p99_slow, 0.10, 0.02, False)
    assert found, "20% overload p99 slowdown must be flagged"

    no_overload = copy.deepcopy(base)
    del no_overload["overload"]
    found, _ = compare(no_overload, base, 0.10, 0.02, False)
    assert not found, "overload without a baseline is not gated"

    tail_slow = copy.deepcopy(base)
    tail_slow["serve"]["worst_tenant_p99_s"] *= 1.20
    found, _ = compare(base, tail_slow, 0.10, 0.02, False)
    assert found, "20% worst-tenant p99 slowdown must be flagged"

    unfair = copy.deepcopy(base)
    unfair["serve"]["fairness_index"] = 0.89
    found, _ = compare(base, unfair, 0.10, 0.02, False)
    assert found, "0.08 fairness-index drop must be flagged"

    slightly_unfair = copy.deepcopy(base)
    slightly_unfair["serve"]["fairness_index"] = 0.94
    found, _ = compare(base, slightly_unfair, 0.10, 0.02, False)
    assert not found, "0.03 fairness drop is within the tolerance"

    no_serve = copy.deepcopy(base)
    del no_serve["serve"]
    found, _ = compare(no_serve, base, 0.10, 0.02, False)
    assert not found, "serve without a baseline is not gated"

    slow_recovery = copy.deepcopy(base)
    slow_recovery["serve"]["recovery"]["mttr_s"] *= 1.20
    found, _ = compare(base, slow_recovery, 0.10, 0.02, False)
    assert found, "20% MTTR growth must be flagged"

    sheds_more = copy.deepcopy(base)
    sheds_more["serve"]["recovery"]["tenants_shed"] = 1
    found, _ = compare(base, sheds_more, 0.10, 0.02, False)
    assert found, "extra shed tenant at same crash count is flagged"

    different_faults = copy.deepcopy(base)
    different_faults["serve"]["recovery"]["crashes"] = 2
    different_faults["serve"]["recovery"]["mttr_s"] *= 3.0
    found, _ = compare(base, different_faults, 0.10, 0.02, False)
    assert not found, "changed crash count is reported, not gated"

    clean_runs = copy.deepcopy(base)
    clean_runs["serve"]["recovery"]["crashes"] = 0
    clean_runs["serve"]["recovery"]["mttr_s"] = 0.0
    found, _ = compare(clean_runs, clean_runs, 0.10, 0.02, False)
    assert not found, "fault-free runs have nothing to gate"

    print("compare_bench self-test: PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("old", nargs="?")
    parser.add_argument("new", nargs="?")
    parser.add_argument("--latency-tol", type=float, default=0.10)
    parser.add_argument("--ratio-tol", type=float, default=0.02)
    parser.add_argument(
        "--host",
        action="store_true",
        help="also gate on measured host p50s (same-machine runs)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.old or not args.new:
        parser.print_usage(sys.stderr)
        sys.exit(2)

    old, new = load(args.old), load(args.new)
    regressions, lines = compare(
        old, new, args.latency_tol, args.ratio_tol, args.host
    )
    print(f"compare_bench: {args.old} -> {args.new}")
    print("\n".join(lines))
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for regression in regressions:
            print(f"  - {regression}")
        sys.exit(1)
    print("\nno regressions")
    sys.exit(0)


if __name__ == "__main__":
    main()
