#!/usr/bin/env bash
# Runs clang-tidy over every translation unit using the `tidy` CMake
# preset's compile_commands.json, then ratchets the findings against
# tools/tidy_baseline.txt: a finding whose `file:check` fingerprint
# is baselined does not fail the run, a new one does. This lets new
# checks land with their pre-existing fallout recorded instead of
# blocking, while still catching regressions in clean files (see
# docs/STATIC_ANALYSIS.md).
#
# Usage:
#   tools/run_tidy.sh                 # analyze src/ tools/ tests/ bench/
#   tools/run_tidy.sh src/attr       # restrict to a subtree
#   tools/run_tidy.sh --if-available # exit 0 (skip) when clang-tidy
#                                    # is not installed instead of 127
#   tools/run_tidy.sh --update-baseline  # rewrite the baseline from
#                                    # this run's findings (full runs
#                                    # only — a restricted run would
#                                    # drop entries for unseen files)
#
# Exit codes: 0 clean/skipped, 1 new findings, 127 clang-tidy missing.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tidy"
baseline="${repo_root}/tools/tidy_baseline.txt"

soft_skip=0
update_baseline=0
paths=()
for arg in "$@"; do
    case "$arg" in
        --if-available) soft_skip=1 ;;
        --update-baseline) update_baseline=1 ;;
        *) paths+=("$arg") ;;
    esac
done
if [ "${#paths[@]}" -eq 0 ]; then
    paths=(src tools tests bench)
fi

tidy_bin=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
        tidy_bin="$candidate"
        break
    fi
done
if [ -z "$tidy_bin" ]; then
    if [ "$soft_skip" -eq 1 ]; then
        echo "run_tidy: clang-tidy not installed; skipping." >&2
        exit 0
    fi
    echo "run_tidy: clang-tidy not found on PATH." >&2
    exit 127
fi

# A compile database is required; configure the tidy preset without
# CMAKE_CXX_CLANG_TIDY (we drive clang-tidy ourselves for better
# parallelism and output control).
if [ ! -f "${build_dir}/compile_commands.json" ]; then
    cmake -S "$repo_root" -B "$build_dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DEDGEPCC_BUILD_BENCHES=ON \
        -DEDGEPCC_BUILD_EXAMPLES=OFF >/dev/null
fi

mapfile -t sources < <(
    for path in "${paths[@]}"; do
        find "${repo_root}/${path}" -name '*.cpp' 2>/dev/null
    done | sort -u
)
if [ "${#sources[@]}" -eq 0 ]; then
    echo "run_tidy: no sources under: ${paths[*]}" >&2
    exit 1
fi

echo "run_tidy: ${tidy_bin} over ${#sources[@]} files..."
jobs="$(nproc 2>/dev/null || echo 2)"
report="${repo_root}/tidy-report.txt"
: > "$report"

printf '%s\n' "${sources[@]}" |
    xargs -P "$jobs" -I {} "$tidy_bin" -p "$build_dir" \
        --quiet {} 2>/dev/null |
    tee -a "$report"

# Fingerprints: repo-relative `file:check`, line-independent so the
# baseline survives unrelated edits. One entry covers every instance
# of that check in that file.
fingerprints="${repo_root}/tidy-fingerprints.txt"
grep -E "(warning|error):.*\[[a-z0-9.,-]+\]$" "$report" |
    sed -E "s|^${repo_root}/||" |
    sed -E 's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): .*\[([a-z0-9.,-]+)\]$|\1:\3|' |
    sort -u > "$fingerprints"

if [ "$update_baseline" -eq 1 ]; then
    {
        echo "# Ratcheted clang-tidy findings (file:check), one per line."
        echo "# Regenerate with tools/run_tidy.sh --update-baseline."
        echo "# Do not add entries by hand to silence new findings."
        cat "$fingerprints"
    } > "$baseline"
    echo "run_tidy: baseline updated ($(wc -l < "$fingerprints") entries)."
    exit 0
fi

touch "$baseline"
new_findings="$(grep -v '^#' "$baseline" |
    comm -23 "$fingerprints" /dev/stdin)"
if [ -n "$new_findings" ]; then
    echo "run_tidy: NEW findings (not in tools/tidy_baseline.txt):" >&2
    echo "$new_findings" >&2
    echo "run_tidy: full report in ${report}" >&2
    exit 1
fi
if [ -s "$fingerprints" ]; then
    echo "run_tidy: $(wc -l < "$fingerprints") baseline-covered finding group(s), no new ones."
else
    echo "run_tidy: clean."
fi
