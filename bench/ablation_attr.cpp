/**
 * @file
 * Ablation across G-PCC's attribute coding families (paper Sec.
 * II-B3 lists RAHT, Predicting Transform and Lifting Transform;
 * the proposal replaces them with the Morton-segment codec).
 *
 * Compares, on one frame: RAHT (TMC13's configuration), the
 * Predicting Transform, and the proposed segment Base+Delta codec —
 * attribute latency (modelled), compressed attribute size, PSNR.
 * The expected shape: the transforms compress better, the segment
 * codec is an order of magnitude faster at a modest size cost,
 * which is exactly the trade the paper makes.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const EdgeDeviceModel model;
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack

    (void)std::printf("Ablation: attribute codec family "
                "(video=%s, scale=%.2f)\n\n",
                spec.name.c_str(), scale);
    (void)std::printf("%-26s %12s %12s %12s\n", "Attribute codec",
                "attr [ms]", "attr [MB]", "aPSNR [dB]");
    bench::printRule(68);

    CodecConfig raht = makeTmc13LikeConfig();
    raht.name = "RAHT (TMC13)";

    CodecConfig predicting = makeTmc13LikeConfig();
    predicting.name = "Predicting Transform";
    predicting.attr_mode = AttrMode::kPredicting;
    predicting.predicting.qstep = 1.6;

    CodecConfig segment = makeIntraOnlyConfig();
    segment.name = "Segment Base+Delta";
    // Use the TMC13 geometry so only the attribute stage differs.
    segment.geometry = raht.geometry;

    for (const CodecConfig &config : {raht, predicting, segment}) {
        const bench::VideoRunResult r =
            bench::runVideo(spec, config, 1, model);
        (void)std::printf("%-26s %12.1f %12.4f %12.1f\n",
                    config.name.c_str(),
                    r.enc_attr_model_s * 1e3, r.attr_mb,
                    r.attr_psnr_db);
    }
    bench::printRule(68);
    (void)std::printf("\nExpected shape: the sequential transforms "
                "(RAHT / Predicting) compress the\nattributes "
                "hardest; the proposed data-parallel segment codec "
                "trades a larger\nstream for a ~49x attribute "
                "speedup (paper Sec. IV-C2).\n");
    return 0;
}
