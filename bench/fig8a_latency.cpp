/**
 * @file
 * Reproduces paper Fig. 8a: per-video encode latency (with the
 * geometry/attribute split) for the five designs.
 *
 * Paper anchors at full scale (per frame): TMC13 ~4152 ms
 * (1552 geometry + 2600 attributes), CWIPC ~4229 ms, Intra-Only
 * ~95 ms (42 + 53), Intra-Inter-V1 ~124 ms (41 + 83),
 * Intra-Inter-V2 ~121 ms (43 + 78). Headline speedups: 43.7x over
 * TMC13 (intra) and ~34-35x over CWIPC (combined).
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const EdgeDeviceModel model;

    (void)std::printf("Fig. 8a: encode latency per frame "
                "(scale=%.2f, frames=%d, device=%s)\n\n",
                scale, frames, model.spec().name.c_str());
    (void)std::printf("%-13s %-15s %11s %11s %11s %12s\n", "Video",
                "Design", "geom [ms]", "attr [ms]", "total [ms]",
                "host [ms]");
    bench::printRule(80);

    double tmc13_total = 0.0, cwipc_total = 0.0;
    double intra_total = 0.0, v1_total = 0.0, v2_total = 0.0;
    int videos = 0;

    for (const VideoSpec &spec : paperVideoSpecs(scale)) {
        for (const CodecConfig &config : allPaperConfigs()) {
            const bench::VideoRunResult r =
                bench::runVideo(spec, config, frames, model);
            (void)std::printf("%-13s %-15s %11.1f %11.1f %11.1f %12.1f\n",
                        r.video.c_str(), r.config.c_str(),
                        r.enc_geom_model_s * 1e3,
                        r.enc_attr_model_s * 1e3,
                        r.enc_model_s * 1e3, r.enc_host_s * 1e3);
            if (r.config == "TMC13")
                tmc13_total += r.enc_model_s;
            else if (r.config == "CWIPC")
                cwipc_total += r.enc_model_s;
            else if (r.config == "Intra-Only")
                intra_total += r.enc_model_s;
            else if (r.config == "Intra-Inter-V1")
                v1_total += r.enc_model_s;
            else if (r.config == "Intra-Inter-V2")
                v2_total += r.enc_model_s;
        }
        bench::printRule(80);
        ++videos;
    }

    if (videos > 0 && intra_total > 0.0) {
        (void)std::printf("\nGeomean-free summary (mean over %d "
                    "videos):\n",
                    videos);
        (void)std::printf("  Intra-Only speedup vs TMC13 : %6.1fx "
                    "(paper: 43.7x)\n",
                    tmc13_total / intra_total);
        (void)std::printf("  V1 speedup vs CWIPC         : %6.1fx "
                    "(paper: ~34x)\n",
                    cwipc_total / v1_total);
        (void)std::printf("  V2 speedup vs CWIPC         : %6.1fx "
                    "(paper: ~35x)\n",
                    cwipc_total / v2_total);
    }
    return 0;
}
