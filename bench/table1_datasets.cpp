/**
 * @file
 * Reproduces paper Table I: the six evaluation videos.
 *
 * Prints the paper's frame/point counts next to the synthetic
 * stand-ins actually generated at the current EDGEPCC_SCALE.
 */

#include <cstdio>

#include "bench_common.h"
#include "edgepcc/dataset/synthetic_human.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();

    (void)std::printf("Table I: videos in the 8iVFB and MVUB datasets "
                "(synthetic stand-ins, scale=%.2f)\n",
                scale);
    bench::printRule(86);
    (void)std::printf("%-14s %8s %15s %15s %15s %8s\n", "Video",
                "#Frames", "#Points(paper)", "#Points(target)",
                "#Points(built)", "family");
    bench::printRule(86);

    for (const CatalogueEntry &entry : paperCatalogue()) {
        const VideoSpec spec = makeVideoSpec(entry, scale);
        const SyntheticHumanVideo video(spec);
        const VoxelCloud frame = video.frame(0);
        (void)std::printf("%-14s %8d %15zu %15zu %15zu %8s\n",
                    entry.name, entry.num_frames,
                    entry.points_per_frame, spec.target_points,
                    frame.size(),
                    entry.upper_body_only ? "MVUB" : "8iVFB");
    }
    bench::printRule(86);
    (void)std::printf("All videos captured at 30 fps, voxelized to "
                "1024^3 (paper Sec. VI-A2).\n");
    return 0;
}
