/**
 * @file
 * Shared driver for the paper-reproduction benches: runs one codec
 * configuration over one synthetic video and aggregates the metrics
 * every figure/table needs (modelled Jetson latency & energy, host
 * wall-clock, compressed sizes, PSNR, reuse statistics).
 *
 * Workload size is controlled by EDGEPCC_SCALE (fraction of the
 * paper's per-frame point counts, default 0.12) and EDGEPCC_FRAMES
 * (frames per video, default 3 = one IPP group). EXPERIMENTS.md
 * records a full-scale (EDGEPCC_SCALE=1) run.
 */

#ifndef EDGEPCC_BENCH_BENCH_COMMON_H
#define EDGEPCC_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/catalogue.h"
#include "edgepcc/platform/device_model.h"

namespace edgepcc::bench {

/** Default workload knobs shared by all benches. */
double defaultScale();
int defaultFrames();

/** Generates (and caches per process) the frames of one video. */
const std::vector<VoxelCloud> &framesFor(const VideoSpec &spec,
                                         int num_frames);

/** Aggregated result of encoding+decoding one video. */
struct VideoRunResult {
    std::string video;
    std::string config;
    int frames = 0;

    // Modelled Jetson latency, averaged per frame (seconds).
    double enc_model_s = 0.0;
    double enc_geom_model_s = 0.0;
    double enc_attr_model_s = 0.0;
    double dec_model_s = 0.0;

    // Host wall-clock per frame (seconds).
    double enc_host_s = 0.0;
    double dec_host_s = 0.0;

    // Modelled energy per frame (joules).
    double enc_energy_j = 0.0;

    // Sizes per frame.
    double raw_mb = 0.0;
    double compressed_mb = 0.0;
    double geometry_mb = 0.0;
    double attr_mb = 0.0;

    // Quality (averaged over frames).
    double attr_psnr_db = 0.0;
    double geom_psnr_db = 0.0;

    // Inter statistics (averaged over P frames; 0 when intra).
    double reuse_fraction = 0.0;
    int p_frames = 0;

    double
    compressionRatio() const
    {
        return compressed_mb > 0.0 ? raw_mb / compressed_mb : 0.0;
    }
};

/**
 * Encodes `frames` frames of `spec` with `config`, decodes them,
 * and aggregates metrics under `model`.
 */
VideoRunResult runVideo(const VideoSpec &spec,
                        const CodecConfig &config, int num_frames,
                        const EdgeDeviceModel &model);

/** Caps infinite PSNR values for table printing. */
double printablePsnr(double psnr);

/** Prints a horizontal rule sized to `width`. */
void printRule(int width);

}  // namespace edgepcc::bench

#endif  // EDGEPCC_BENCH_BENCH_COMMON_H
