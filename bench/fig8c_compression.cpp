/**
 * @file
 * Reproduces paper Fig. 8c: compressed size and attribute PSNR for
 * the five designs.
 *
 * Paper anchors: TMC13 compresses to ~8% of raw at ~55 dB; CWIPC
 * to ~14% at ~47.8 dB; Intra-Only to ~17% at 48.5 dB (geometry 19%
 * / attributes 81% of the compressed stream); V1 to ~12% at
 * ~42.4 dB; V2 to ~10% at ~39.5 dB. Geometry PSNR stays "excellent"
 * (>70 dB) everywhere.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const EdgeDeviceModel model;

    (void)std::printf("Fig. 8c: compression efficiency "
                "(scale=%.2f, frames=%d)\n\n",
                scale, frames);
    (void)std::printf("%-13s %-15s %10s %9s %9s %10s %10s %10s\n",
                "Video", "Design", "size [MB]", "of raw",
                "geom%%", "attr%%", "aPSNR dB", "gPSNR dB");
    bench::printRule(94);

    for (const VideoSpec &spec : paperVideoSpecs(scale)) {
        for (const CodecConfig &config : allPaperConfigs()) {
            const bench::VideoRunResult r =
                bench::runVideo(spec, config, frames, model);
            const double of_raw =
                r.raw_mb > 0.0 ? r.compressed_mb / r.raw_mb : 0.0;
            const double payload =
                r.geometry_mb + r.attr_mb;
            (void)std::printf(
                "%-13s %-15s %10.3f %8.1f%% %8.1f%% %9.1f%% "
                "%10.1f %10.1f\n",
                r.video.c_str(), r.config.c_str(),
                r.compressed_mb, of_raw * 100.0,
                payload > 0.0 ? 100.0 * r.geometry_mb / payload
                              : 0.0,
                payload > 0.0 ? 100.0 * r.attr_mb / payload : 0.0,
                r.attr_psnr_db, r.geom_psnr_db);
        }
        bench::printRule(94);
    }
    (void)std::printf("\nPaper anchors: TMC13 ~8%% of raw @55 dB | "
                "CWIPC ~14%% @47.8 dB | Intra-Only ~17%%\n@48.5 dB "
                "(19%%/81%% geom/attr split) | V1 ~12%% @42.4 dB | "
                "V2 ~10%% @39.5 dB.\nCompression ratio: intra 5.95 "
                "-> inter 10.43 (Sec. I).\n");
    return 0;
}
