/**
 * @file
 * Reproduces the paper's smartphone-validity check (Sec. VI-C):
 * switching the Xavier from the 15 W to the 10 W compute mode
 * makes the Loot encode 1.29x slower, and the ~4 W power draw
 * stays below a phone's 10 W peak discharge budget.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[2], scale);  // Loot

    const EdgeDeviceModel mode15(DeviceSpec::jetsonXavier15W());
    const EdgeDeviceModel mode10(DeviceSpec::jetsonXavier10W());

    (void)std::printf("Power-mode study (video=%s, scale=%.2f)\n\n",
                spec.name.c_str(), scale);
    (void)std::printf("%-15s %12s %12s %8s %12s %12s\n", "Design",
                "15W [ms]", "10W [ms]", "ratio", "15W [W]",
                "10W [W]");
    bench::printRule(78);
    for (const CodecConfig &config : allPaperConfigs()) {
        const bench::VideoRunResult fast =
            bench::runVideo(spec, config, frames, mode15);
        const bench::VideoRunResult slow =
            bench::runVideo(spec, config, frames, mode10);
        (void)std::printf(
            "%-15s %12.1f %12.1f %8.2f %12.2f %12.2f\n",
            config.name.c_str(), fast.enc_model_s * 1e3,
            slow.enc_model_s * 1e3,
            fast.enc_model_s > 0.0
                ? slow.enc_model_s / fast.enc_model_s
                : 0.0,
            fast.enc_model_s > 0.0
                ? fast.enc_energy_j / fast.enc_model_s
                : 0.0,
            slow.enc_model_s > 0.0
                ? slow.enc_energy_j / slow.enc_model_s
                : 0.0);
    }
    bench::printRule(78);
    (void)std::printf("\nPaper anchor: 10 W mode latency = 1.29x the "
                "15 W latency; the proposal's ~4 W\naverage draw "
                "fits a smartphone's 10 W peak discharge power.\n");
    return 0;
}
