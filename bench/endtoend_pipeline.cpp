/**
 * @file
 * Reproduces the paper's end-to-end claim (Sec. I / Fig. 1): with
 * the proposed codec the full capture -> encode -> transmit ->
 * decode -> render pipeline approaches real time (~10 FPS; decode
 * ~70 ms), while the baselines are stuck at seconds per frame.
 * Also quantifies the motivation: a raw 1M-point frame is ~120 Mbit
 * and cannot be streamed at 30-60 fps.
 */

#include <cstdio>

#include "bench_common.h"
#include "edgepcc/stream/pipeline.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack
    const auto &cloud_frames = bench::framesFor(spec, frames);

    PipelineConfig pipe;
    pipe.network = NetworkSpec::wifi();

    // Motivation numbers (paper Sec. II-A).
    const double raw_bits =
        static_cast<double>(cloud_frames[0].rawBytes()) * 8.0;
    (void)std::printf("End-to-end pipeline (video=%s, scale=%.2f, "
                "network=%s)\n",
                spec.name.c_str(), scale,
                pipe.network.name.c_str());
    (void)std::printf("raw frame: %.1f Mbit -> %.0f ms on this link "
                "(30 fps needs <33 ms)\n\n",
                raw_bits / 1e6,
                pipe.network.transferSeconds(
                    cloud_frames[0].rawBytes()) *
                    1e3);

    (void)std::printf("%-15s %9s %9s %9s %9s %10s %8s\n", "Design",
                "enc[ms]", "tx[ms]", "dec[ms]", "e2e[ms]",
                "Mbit/s@30", "FPS");
    bench::printRule(78);
    for (const CodecConfig &config : allPaperConfigs()) {
        auto report =
            evaluatePipeline(cloud_frames, config, pipe);
        if (!report) {
            (void)std::fprintf(stderr, "%s failed: %s\n",
                         config.name.c_str(),
                         report.status().toString().c_str());
            continue;
        }
        double enc = 0.0, tx = 0.0, dec = 0.0;
        for (const FrameLatency &frame : report->frames) {
            enc += frame.encode_s;
            tx += frame.transmit_s;
            dec += frame.decode_s;
        }
        const double inv =
            1.0 / static_cast<double>(report->frames.size());
        (void)std::printf("%-15s %9.1f %9.1f %9.1f %9.1f %10.2f %8.2f\n",
                    config.name.c_str(), enc * inv * 1e3,
                    tx * inv * 1e3, dec * inv * 1e3,
                    report->meanTotalSeconds() * 1e3,
                    report->meanBitsPerFrame() * 30.0 / 1e6,
                    report->pipelinedFps());
    }
    bench::printRule(78);
    (void)std::printf("\nPaper anchors at full scale: proposed decode "
                "~70 ms -> ~10 FPS end-to-end;\nbaselines need "
                "seconds per frame. Encode latency is the "
                "bottleneck stage for\nevery design.\n");
    return 0;
}
