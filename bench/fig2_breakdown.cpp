/**
 * @file
 * Reproduces paper Fig. 2 (right): latency breakdown of the prior
 * (TMC13/PCL-style) compression pipeline on one PC frame.
 *
 * Paper anchors at full scale: octree construction ~1 s,
 * serialization ~0.5 s (geometry total 1552 ms), RAHT + quantize +
 * entropy ~2600 ms; whole pipeline ~4.1 s.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "edgepcc/core/codec_config.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack
    const VoxelCloud &frame = bench::framesFor(spec, 1)[0];

    const EdgeDeviceModel model;
    VideoEncoder encoder(makeTmc13LikeConfig());
    auto encoded = encoder.encode(frame);
    if (!encoded) {
        (void)std::fprintf(stderr, "encode failed: %s\n",
                     encoded.status().toString().c_str());
        return 1;
    }
    const PipelineTiming timing = model.evaluate(encoded->profile);

    (void)std::printf("Fig. 2: latency breakdown of the prior PCC "
                "pipeline (TMC13-like)\n");
    (void)std::printf("video=%s  points=%zu  scale=%.2f  device=%s\n\n",
                spec.name.c_str(), frame.size(), scale,
                model.spec().name.c_str());
    bench::printRule(74);
    (void)std::printf("%-28s %14s %14s\n", "Stage", "model [ms]",
                "host [ms]");
    bench::printRule(74);
    for (const StageTiming &stage : timing.stages) {
        (void)std::printf("%-28s %14.1f %14.1f\n", stage.name.c_str(),
                    stage.model_seconds * 1e3,
                    stage.host_seconds * 1e3);
    }
    bench::printRule(74);
    (void)std::printf("%-28s %14.1f %14.1f\n", "total",
                timing.modelSeconds() * 1e3,
                timing.hostSeconds() * 1e3);
    (void)std::printf("%-28s %14.1f\n", "geometry subtotal",
                timing.modelSecondsWithPrefix("geom.") * 1e3);
    (void)std::printf("%-28s %14.1f\n", "attribute subtotal",
                (timing.modelSeconds() -
                 timing.modelSecondsWithPrefix("geom.")) *
                    1e3);
    (void)std::printf("\nPaper anchors at full scale: octree build ~1000 "
                "ms, serialization ~500 ms,\nRAHT+quant+entropy "
                "~2600 ms, total ~4100 ms. Model values scale "
                "~linearly with\npoint count (current scale %.2f "
                "of the paper's frame size).\n",
                scale);
    return 0;
}
