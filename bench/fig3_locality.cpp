/**
 * @file
 * Reproduces paper Fig. 3: the spatio-temporal locality study that
 * motivates both proposals.
 *
 * (a) Spatial locality: one Morton-sorted frame is partitioned into
 *     10 / 10^2 / 10^4 / 10^5 segments; the CDF of the per-segment
 *     red-channel range (max-min) must shift left as segments get
 *     finer.
 * (b) Temporal locality: an I frame and the following P frame are
 *     partitioned into 20 vs 1000 blocks; per P-block we report the
 *     best- and worst-matching candidate I-block attribute deltas.
 *     Finer partitions must show smaller deltas and a tighter
 *     best/worst gap.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "edgepcc/metrics/cdf.h"
#include "edgepcc/morton/morton_order.h"

namespace {

using namespace edgepcc;

/** Per-segment red-channel range over a sorted cloud. */
std::vector<double>
segmentRanges(const VoxelCloud &sorted, std::size_t segments)
{
    const std::size_t n = sorted.size();
    const std::size_t k = (n + segments - 1) / segments;
    std::vector<double> ranges;
    for (std::size_t lo = 0; lo < n; lo += k) {
        const std::size_t hi = std::min(n, lo + k);
        std::uint8_t mn = 255, mx = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            mn = std::min(mn, sorted.r()[i]);
            mx = std::max(mx, sorted.r()[i]);
        }
        ranges.push_back(static_cast<double>(mx - mn));
    }
    return ranges;
}

/** Mean abs red delta between a P block and one I block. */
double
blockDelta(const VoxelCloud &p, std::size_t p_lo, std::size_t p_hi,
           const VoxelCloud &i, std::size_t i_lo, std::size_t i_hi)
{
    const std::size_t k =
        std::min(p_hi - p_lo, i_hi - i_lo);
    if (k == 0)
        return 255.0;
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
        sum += std::abs(static_cast<double>(p.r()[p_lo + j]) -
                        static_cast<double>(i.r()[i_lo + j]));
    }
    return sum / static_cast<double>(k);
}

void
printCdfRow(const char *label, const EmpiricalCdf &cdf)
{
    (void)std::printf("%-26s", label);
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        (void)std::printf(" %8.1f", cdf.quantile(q));
    (void)std::printf("\n");
}

}  // namespace

int
main()
{
    const double scale = bench::defaultScale();
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);
    const auto &frames = bench::framesFor(spec, 2);

    const MortonOrder order0 = computeMortonOrder(frames[0]);
    const VoxelCloud i_frame = applyOrder(frames[0], order0);
    const MortonOrder order1 = computeMortonOrder(frames[1]);
    const VoxelCloud p_frame = applyOrder(frames[1], order1);

    (void)std::printf("Fig. 3a: CDF of per-segment attribute range "
                "(red channel, Morton-sorted frame)\n");
    (void)std::printf("video=%s points=%zu\n\n", spec.name.c_str(),
                i_frame.size());
    (void)std::printf("%-26s", "segments \\ quantile");
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        (void)std::printf(" %7.0f%%", q * 100);
    (void)std::printf("\n");
    bench::printRule(82);
    for (const std::size_t segments :
         {std::size_t{10}, std::size_t{100}, std::size_t{10000},
          std::size_t{100000}}) {
        const std::size_t clamped =
            std::min(segments, i_frame.size());
        EmpiricalCdf cdf(segmentRanges(i_frame, clamped));
        char label[64];
        (void)std::snprintf(label, sizeof(label), "%zu blocks",
                      segments);
        printCdfRow(label, cdf);
    }
    (void)std::printf("\nExpected shape (paper): more/finer segments "
                "push the CDF toward the y-axis\n(smaller "
                "per-block delta = richer spatial locality).\n\n");

    // ---- Fig. 3b: temporal locality -----------------------------
    (void)std::printf("Fig. 3b: best/worst matched-block deltas between "
                "I and P frames\n\n");
    (void)std::printf("%-26s", "partition / statistic");
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        (void)std::printf(" %7.0f%%", q * 100);
    (void)std::printf("\n");
    bench::printRule(82);

    for (const std::size_t blocks :
         {std::size_t{20}, std::size_t{1000}}) {
        const std::size_t np = p_frame.size();
        const std::size_t ni = i_frame.size();
        const std::size_t kp = (np + blocks - 1) / blocks;
        const std::size_t i_blocks = (ni + kp - 1) / kp;
        std::vector<double> best, worst;
        for (std::size_t pb = 0; pb * kp < np; ++pb) {
            const std::size_t p_lo = pb * kp;
            const std::size_t p_hi = std::min(np, p_lo + kp);
            // Candidate window of +-4 blocks around the scaled
            // position.
            const std::size_t center =
                std::min(i_blocks - 1, pb * i_blocks /
                                           std::max<std::size_t>(
                                               1, blocks));
            double best_delta = 1e30, worst_delta = 0.0;
            for (std::size_t c = center >= 4 ? center - 4 : 0;
                 c <= std::min(i_blocks - 1, center + 4); ++c) {
                const std::size_t i_lo = c * kp;
                const std::size_t i_hi =
                    std::min(ni, i_lo + kp);
                const double delta = blockDelta(
                    p_frame, p_lo, p_hi, i_frame, i_lo, i_hi);
                best_delta = std::min(best_delta, delta);
                worst_delta = std::max(worst_delta, delta);
            }
            best.push_back(best_delta);
            worst.push_back(worst_delta);
        }
        char label[64];
        (void)std::snprintf(label, sizeof(label), "%zu blocks (best)",
                      blocks);
        printCdfRow(label, EmpiricalCdf(std::move(best)));
        (void)std::snprintf(label, sizeof(label), "%zu blocks (worst)",
                      blocks);
        printCdfRow(label, EmpiricalCdf(std::move(worst)));
    }
    (void)std::printf("\nExpected shape (paper): 1000-block partitions "
                "sit left of 20-block ones, and\ntheir best/worst "
                "gap is narrower. Blocks left of a chosen x=alpha "
                "threshold are\ndirect-reuse candidates (Sec. "
                "III-B).\n");
    return 0;
}
