/**
 * @file
 * Reproduces paper Fig. 10b: the direct-reuse sensitivity study.
 *
 * Sweeping the block-match reuse threshold trades compression
 * ratio against attribute PSNR: the paper reports ~31% reuse with
 * PSNR slightly below intra-only up to ~83% reuse at ~38 dB, with
 * compression ratio improving monotonically.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const EdgeDeviceModel model;
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack

    (void)std::printf("Fig. 10b: PSNR vs compression ratio as the "
                "direct-reuse fraction grows\n");
    (void)std::printf("video=%s scale=%.2f frames=%d\n\n",
                spec.name.c_str(), scale, frames);
    (void)std::printf("%12s %12s %14s %12s %12s\n",
                "threshold", "reuse [%]", "ratio (raw/out)",
                "aPSNR [dB]", "enc [ms]");
    bench::printRule(68);

    // Thresholds are per-point mean squared distances; the paper's
    // 300/1200 block thresholds at ~20 pts/block sit at 15/60.
    double last_ratio = 0.0;
    for (const double threshold :
         {1.0, 4.0, 15.0, 60.0, 150.0, 400.0, 1200.0}) {
        CodecConfig config = makeIntraInterV1Config();
        config.name = "sweep";
        config.block_match.reuse_threshold = threshold;
        const bench::VideoRunResult r =
            bench::runVideo(spec, config, frames, model);
        (void)std::printf("%12.0f %12.1f %14.2f %12.1f %12.1f\n",
                    threshold, 100.0 * r.reuse_fraction,
                    r.compressionRatio(), r.attr_psnr_db,
                    r.enc_model_s * 1e3);
        last_ratio = r.compressionRatio();
    }
    (void)last_ratio;
    bench::printRule(68);
    (void)std::printf("\nExpected shape (paper): compression ratio "
                "rises and PSNR falls as the reuse\nfraction "
                "grows (31%% -> 83%% reuse, PSNR down to ~38 "
                "dB).\n");
    return 0;
}
