/**
 * @file
 * Reproduces the paper's decode-latency claim (Sec. IV-B3 /
 * VI-C): decoding one frame of the proposed stream (geometry +
 * attributes) takes ~70 ms on the Xavier, enabling ~10 FPS
 * end-to-end.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const EdgeDeviceModel model;
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack

    (void)std::printf("Decode latency per frame "
                "(video=%s, scale=%.2f)\n\n",
                spec.name.c_str(), scale);
    (void)std::printf("%-15s %14s %14s %16s\n", "Design",
                "decode [ms]", "host [ms]", "encode [ms]");
    bench::printRule(64);
    for (const CodecConfig &config : allPaperConfigs()) {
        const bench::VideoRunResult r =
            bench::runVideo(spec, config, frames, model);
        (void)std::printf("%-15s %14.1f %14.1f %16.1f\n",
                    r.config.c_str(), r.dec_model_s * 1e3,
                    r.dec_host_s * 1e3, r.enc_model_s * 1e3);
    }
    bench::printRule(64);
    (void)std::printf("\nPaper anchor: ~70 ms/frame decode for the "
                "proposed stream at full scale\n(Redandblack), "
                "i.e. decode is faster than encode and supports "
                "~10 FPS\nend-to-end.\n");
    return 0;
}
