/**
 * @file
 * Reproduces the entropy-coding ablation of paper Sec. IV-B3: the
 * proposed geometry pipeline with entropy coding is ~0.1x larger
 * than TMC13 but pays ~100 ms of sequential coding; discarding it
 * (the shipped configuration) keeps the 42 ms geometry latency at
 * ~0.5x larger output than TMC13.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = 1;
    const EdgeDeviceModel model;
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack

    (void)std::printf("Ablation: geometry entropy coding "
                "(video=%s, scale=%.2f)\n\n",
                spec.name.c_str(), scale);
    (void)std::printf("%-26s %11s %11s %11s %13s\n", "Design",
                "geom [ms]", "geom [MB]", "total [MB]",
                "vs TMC13 tot");
    bench::printRule(78);

    // TMC13's compressed size is the reference point.
    const bench::VideoRunResult tmc13 = bench::runVideo(
        spec, makeTmc13LikeConfig(), frames, model);

    CodecConfig with_context = makeIntraOnlyConfig();
    with_context.name = "Intra (contextual AC)";
    with_context.geometry.contextual_entropy = true;
    CodecConfig with_entropy = makeIntraOnlyConfig();
    with_entropy.name = "Intra (order-0 AC)";
    with_entropy.geometry.entropy_coding = true;
    CodecConfig without_entropy = makeIntraOnlyConfig();
    without_entropy.name = "Intra (entropy OFF)";

    for (const CodecConfig &config :
         {makeTmc13LikeConfig(), with_context, with_entropy,
          without_entropy}) {
        const bench::VideoRunResult r =
            bench::runVideo(spec, config, frames, model);
        (void)std::printf("%-26s %11.1f %11.4f %11.4f %12.2fx\n",
                    config.name.c_str(),
                    r.enc_geom_model_s * 1e3, r.geometry_mb,
                    r.compressed_mb,
                    tmc13.compressed_mb > 0.0
                        ? r.compressed_mb / tmc13.compressed_mb
                        : 0.0);
    }
    bench::printRule(78);
    (void)std::printf("\nPaper anchors: entropy ON is ~0.1x larger than "
                "TMC13 but costs ~100 ms extra;\nentropy OFF "
                "(shipped) keeps 42 ms geometry at ~0.5x larger "
                "output (Sec. IV-B3).\n");
    return 0;
}
