/**
 * @file
 * Reproduces paper Fig. 8b: per-frame energy for the five designs.
 *
 * Paper anchors at full scale: TMC13 11.3 J, CWIPC 19.8 J,
 * Intra-Only 0.38 J, Intra-Inter-V1 0.52 J, Intra-Inter-V2 0.50 J
 * per frame; headline savings 96.6% vs TMC13 and ~97% vs CWIPC.
 * Rail powers come straight from the paper (TMC13 CPU 1687 mW,
 * CWIPC CPU 3622 mW, ours CPU 1310 mW + GPU 1065 mW).
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const int frames = bench::defaultFrames();
    const EdgeDeviceModel model;

    (void)std::printf("Fig. 8b: energy per frame (scale=%.2f, "
                "frames=%d, device=%s)\n\n",
                scale, frames, model.spec().name.c_str());
    (void)std::printf("%-13s %-15s %13s %14s\n", "Video", "Design",
                "energy [J]", "avg power [W]");
    bench::printRule(60);

    double tmc13 = 0.0, cwipc = 0.0, intra = 0.0, v1 = 0.0,
           v2 = 0.0;
    int videos = 0;
    for (const VideoSpec &spec : paperVideoSpecs(scale)) {
        for (const CodecConfig &config : allPaperConfigs()) {
            const bench::VideoRunResult r =
                bench::runVideo(spec, config, frames, model);
            (void)std::printf("%-13s %-15s %13.3f %14.2f\n",
                        r.video.c_str(), r.config.c_str(),
                        r.enc_energy_j,
                        r.enc_model_s > 0.0
                            ? r.enc_energy_j / r.enc_model_s
                            : 0.0);
            if (r.config == "TMC13") tmc13 += r.enc_energy_j;
            else if (r.config == "CWIPC") cwipc += r.enc_energy_j;
            else if (r.config == "Intra-Only")
                intra += r.enc_energy_j;
            else if (r.config == "Intra-Inter-V1")
                v1 += r.enc_energy_j;
            else if (r.config == "Intra-Inter-V2")
                v2 += r.enc_energy_j;
        }
        bench::printRule(60);
        ++videos;
    }
    if (videos > 0 && tmc13 > 0.0 && cwipc > 0.0) {
        (void)std::printf("\nEnergy savings (mean over %d videos):\n",
                    videos);
        (void)std::printf("  Intra-Only vs TMC13 : %5.1f%%  (paper: "
                    "96.6%%)\n",
                    100.0 * (1.0 - intra / tmc13));
        (void)std::printf("  V1 vs CWIPC         : %5.1f%%  (paper: "
                    "~97%%)\n",
                    100.0 * (1.0 - v1 / cwipc));
        (void)std::printf("  V2 vs CWIPC         : %5.1f%%  (paper: "
                    "~97%%)\n",
                    100.0 * (1.0 - v2 / cwipc));
    }
    return 0;
}
