/**
 * @file
 * Reproduces paper Fig. 9: energy breakdown of the inter-frame
 * attribute compression (Loot video, V1).
 *
 * Paper shares: 2-norm distance 51% (Diff_Squared 35% +
 * Squared_Sum 16%), address generation for delta stores 32%,
 * everything else 17%.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[2], scale);  // Loot
    const auto &frames = bench::framesFor(spec, 2);

    const EdgeDeviceModel model;
    VideoEncoder encoder(makeIntraInterV1Config());
    auto i_frame = encoder.encode(frames[0]);
    if (!i_frame) {
        (void)std::fprintf(stderr, "I-frame encode failed\n");
        return 1;
    }
    auto p_frame = encoder.encode(frames[1]);
    if (!p_frame) {
        (void)std::fprintf(stderr, "P-frame encode failed\n");
        return 1;
    }

    // Aggregate kernel energies of the inter-frame attribute
    // stages (everything that is not geometry).
    const PipelineTiming timing = model.evaluate(p_frame->profile);
    std::map<std::string, double> kernel_energy;
    double total = 0.0;
    for (const StageTiming &stage : timing.stages) {
        if (stage.name.rfind("geom.", 0) == 0)
            continue;
        for (const KernelTiming &kernel : stage.kernels) {
            kernel_energy[kernel.name] += kernel.joules;
            total += kernel.joules;
        }
    }

    // Map kernels onto the paper's Fig. 9 categories.
    const auto category = [](const std::string &name) {
        if (name == "bm.diff_squared")
            return "Diff_Squared (2-norm)";
        if (name == "bm.squared_sum")
            return "Squared_Sum (2-norm)";
        if (name == "bm.address_gen" ||
            name == "attr.seg_addressgen")
            return "Address generation";
        return "Others (sort/segment/pack/reuse)";
    };
    std::map<std::string, double> buckets;
    for (const auto &[name, joules] : kernel_energy)
        buckets[category(name)] += joules;

    (void)std::printf("Fig. 9: energy breakdown of inter-frame "
                "attribute compression\n");
    (void)std::printf("video=%s (P frame), scale=%.2f, total=%.3f J\n\n",
                spec.name.c_str(), scale, total);
    (void)std::printf("%-36s %10s %8s %16s\n", "Category", "energy [J]",
                "share", "paper share");
    bench::printRule(76);
    const std::map<std::string, const char *> paper = {
        {"Diff_Squared (2-norm)", "35%"},
        {"Squared_Sum (2-norm)", "16%"},
        {"Address generation", "32%"},
        {"Others (sort/segment/pack/reuse)", "17%"},
    };
    for (const auto &[name, joules] : buckets) {
        const auto it = paper.find(name);
        (void)std::printf("%-36s %10.4f %7.1f%% %16s\n", name.c_str(),
                    joules, 100.0 * joules / total,
                    it != paper.end() ? it->second : "-");
    }
    bench::printRule(76);
    (void)std::printf("\nPer-kernel detail:\n");
    for (const auto &[name, joules] : kernel_energy) {
        (void)std::printf("  %-28s %10.4f J (%5.1f%%)\n", name.c_str(),
                    joules, 100.0 * joules / total);
    }
    return 0;
}
