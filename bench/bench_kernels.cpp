/**
 * @file
 * Host-native microbenchmarks (google-benchmark) of the codec
 * kernels. Unlike the fig* drivers (which report modelled Jetson
 * numbers), these measure real wall-clock on the build host and
 * demonstrate the *algorithmic* speedups natively: point-by-point
 * octree insertion vs Morton-parallel construction, RAHT vs the
 * segment Base+Delta codec, and the cost of entropy coding.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <set>
#include <vector>

#include "edgepcc/attr/raht.h"
#include "edgepcc/attr/segment_codec.h"
#include "edgepcc/common/rng.h"
#include "edgepcc/interframe/block_matcher.h"
#include "edgepcc/morton/morton.h"
#include "edgepcc/morton/morton_order.h"
#include "edgepcc/octree/geometry_codec.h"
#include "edgepcc/octree/parallel_builder.h"
#include "edgepcc/octree/sequential_builder.h"
#include "edgepcc/parallel/radix_sort.h"

namespace {

using namespace edgepcc;

/** Surface-like cloud reused across benchmarks. */
const VoxelCloud &
benchCloud(std::size_t n)
{
    static std::map<std::size_t, VoxelCloud> cache;
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    Rng rng(4242);
    VoxelCloud cloud(10);
    std::set<std::uint64_t> used;
    while (cloud.size() < n) {
        const auto x =
            static_cast<std::uint32_t>(rng.bounded(1024));
        const auto y =
            static_cast<std::uint32_t>(rng.bounded(1024));
        const std::uint32_t z = (x * 3 + y * 2) % 1024;
        if (!used.insert(mortonEncode(x, y, z)).second)
            continue;
        cloud.add(static_cast<std::uint16_t>(x),
                  static_cast<std::uint16_t>(y),
                  static_cast<std::uint16_t>(z),
                  static_cast<std::uint8_t>(60 + x * 120 / 1024),
                  static_cast<std::uint8_t>(70 + y * 110 / 1024),
                  static_cast<std::uint8_t>(50 + z * 90 / 1024));
    }
    return cache.emplace(n, std::move(cloud)).first->second;
}

const VoxelCloud &
sortedBenchCloud(std::size_t n)
{
    static std::map<std::size_t, VoxelCloud> cache;
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    const VoxelCloud &cloud = benchCloud(n);
    const MortonOrder order = computeMortonOrder(cloud);
    return cache.emplace(n, applyOrder(cloud, order))
        .first->second;
}

void
BM_MortonEncode(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &cloud = benchCloud(n);
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < n; ++i) {
            acc ^= mortonEncode(cloud.x()[i], cloud.y()[i],
                                cloud.z()[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MortonEncode)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_RadixSortPairs(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<KeyIndex> base(n);
    for (std::uint32_t i = 0; i < n; ++i)
        base[i] = {rng() & ((1ull << 30) - 1), i};
    for (auto _ : state) {
        std::vector<KeyIndex> pairs = base;
        radixSortPairs(pairs, 30);
        benchmark::DoNotOptimize(pairs.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_OctreeSequentialBuild(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &cloud = benchCloud(n);
    for (auto _ : state) {
        const PointerOctree tree = buildSequentialOctree(cloud);
        benchmark::DoNotOptimize(tree.numNodes());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OctreeSequentialBuild)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_OctreeParallelBuild(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &cloud = benchCloud(n);
    const MortonOrder order = computeMortonOrder(cloud);
    for (auto _ : state) {
        auto tree = buildParallelOctree(order.codes, 10);
        benchmark::DoNotOptimize(tree->numNodes());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OctreeParallelBuild)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_GeometryEncodeProposed(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &cloud = benchCloud(n);
    GeometryConfig config;
    for (auto _ : state) {
        auto encoded = encodeGeometry(cloud, config);
        benchmark::DoNotOptimize(encoded->payload.size());
    }
}
BENCHMARK(BM_GeometryEncodeProposed)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_GeometryEncodeBaseline(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &cloud = benchCloud(n);
    GeometryConfig config;
    config.builder = GeometryConfig::Builder::kSequential;
    config.entropy_coding = true;
    for (auto _ : state) {
        auto encoded = encodeGeometry(cloud, config);
        benchmark::DoNotOptimize(encoded->payload.size());
    }
}
BENCHMARK(BM_GeometryEncodeBaseline)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_AttrRaht(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &sorted = sortedBenchCloud(n);
    for (auto _ : state) {
        auto payload = encodeRaht(sorted, RahtConfig{});
        benchmark::DoNotOptimize(payload->size());
    }
}
BENCHMARK(BM_AttrRaht)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_AttrSegment(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &sorted = sortedBenchCloud(n);
    AttrChannels channels;
    for (auto &channel : channels)
        channel.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        channels[0][i] = sorted.r()[i];
        channels[1][i] = sorted.g()[i];
        channels[2][i] = sorted.b()[i];
    }
    for (auto _ : state) {
        auto payload =
            encodeSegmentAttr(channels, SegmentCodecConfig{});
        benchmark::DoNotOptimize(payload->size());
    }
}
BENCHMARK(BM_AttrSegment)->Arg(1 << 16)->Unit(
    benchmark::kMillisecond);

void
BM_BlockMatch(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const VoxelCloud &sorted = sortedBenchCloud(n);
    BlockMatchConfig config;
    for (auto _ : state) {
        auto encoded = encodeInterAttr(sorted, sorted, config);
        benchmark::DoNotOptimize(encoded->payload.size());
    }
}
BENCHMARK(BM_BlockMatch)->Arg(1 << 15)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
