/**
 * @file
 * Ablation of the segment-count design point (paper Sec. VI-B,
 * footnote 7: 30000 intra blocks / 50000 inter blocks were chosen
 * by profiling for a balanced size/quality point).
 *
 * Sweeps the intra segment count: fewer segments -> larger
 * per-block attribute ranges (more residual bits, worse size);
 * more segments -> more per-block headers. A sweet spot appears
 * around one block per ~20-30 points, matching the paper's choice.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace edgepcc;
    const double scale = bench::defaultScale();
    const EdgeDeviceModel model;
    const VideoSpec spec =
        makeVideoSpec(paperCatalogue()[0], scale);  // Redandblack
    const std::size_t points =
        bench::framesFor(spec, 1)[0].size();

    (void)std::printf("Ablation: intra segment count "
                "(video=%s, points=%zu)\n\n",
                spec.name.c_str(), points);
    (void)std::printf("%12s %12s %12s %14s %12s\n", "segments",
                "pts/block", "attr [MB]", "attr [ms]",
                "aPSNR [dB]");
    bench::printRule(68);

    for (const double per_block : {6.0, 12.0, 24.0, 48.0, 96.0,
                                   192.0}) {
        CodecConfig config = makeIntraOnlyConfig();
        config.name = "sweep";
        config.segment.num_segments = static_cast<std::uint32_t>(
            static_cast<double>(points) / per_block);
        const bench::VideoRunResult r =
            bench::runVideo(spec, config, 1, model);
        (void)std::printf("%12u %12.0f %12.4f %14.1f %12.1f\n",
                    config.segment.num_segments, per_block,
                    r.attr_mb, r.enc_attr_model_s * 1e3,
                    r.attr_psnr_db);
    }
    bench::printRule(68);
    (void)std::printf("\nPaper design point: 30000 blocks per ~727k-pt "
                "frame (~24 pts/block) balances\ncompressed size "
                "against quality (Sec. VI-B fn. 7).\n");
    return 0;
}
