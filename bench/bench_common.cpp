#include "bench_common.h"

#include <cmath>
#include <limits>
#include <cstdio>
#include <map>

#include "edgepcc/common/timer.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"

namespace edgepcc::bench {

double
defaultScale()
{
    return workloadScaleFromEnv(0.12);
}

int
defaultFrames()
{
    return framesFromEnv(3);
}

const std::vector<VoxelCloud> &
framesFor(const VideoSpec &spec, int num_frames)
{
    static std::map<std::pair<std::string, int>,
                    std::vector<VoxelCloud>>
        cache;
    const auto key = std::make_pair(
        spec.name + "#" + std::to_string(spec.target_points),
        num_frames);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    SyntheticHumanVideo video(spec);
    std::vector<VoxelCloud> frames;
    frames.reserve(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
        frames.push_back(video.frame(f));
    return cache.emplace(key, std::move(frames)).first->second;
}

VideoRunResult
runVideo(const VideoSpec &spec, const CodecConfig &config,
         int num_frames, const EdgeDeviceModel &model)
{
    VideoRunResult result;
    result.video = spec.name;
    result.config = config.name;
    result.frames = num_frames;

    const std::vector<VoxelCloud> &frames =
        framesFor(spec, num_frames);
    VideoEncoder encoder(config);
    VideoDecoder decoder;

    for (int f = 0; f < num_frames; ++f) {
        const VoxelCloud &frame = frames[static_cast<std::size_t>(f)];

        WallTimer enc_timer;
        auto encoded = encoder.encode(frame);
        const double enc_host = enc_timer.seconds();
        if (!encoded) {
            (void)std::fprintf(stderr, "encode failed (%s/%s): %s\n",
                         spec.name.c_str(), config.name.c_str(),
                         encoded.status().toString().c_str());
            return result;
        }

        WallTimer dec_timer;
        auto decoded = decoder.decode(encoded->bitstream);
        const double dec_host = dec_timer.seconds();
        if (!decoded) {
            (void)std::fprintf(stderr, "decode failed (%s/%s): %s\n",
                         spec.name.c_str(), config.name.c_str(),
                         decoded.status().toString().c_str());
            return result;
        }

        const PipelineTiming enc_timing =
            model.evaluate(encoded->profile);
        const PipelineTiming dec_timing =
            model.evaluate(decoded->profile);

        result.enc_model_s += enc_timing.modelSeconds();
        result.enc_geom_model_s +=
            enc_timing.modelSecondsWithPrefix("geom.");
        result.enc_attr_model_s +=
            enc_timing.modelSeconds() -
            enc_timing.modelSecondsWithPrefix("geom.");
        result.dec_model_s += dec_timing.modelSeconds();
        result.enc_host_s += enc_host;
        result.dec_host_s += dec_host;
        result.enc_energy_j += enc_timing.joules();

        result.raw_mb += static_cast<double>(
                             encoded->stats.raw_bytes) /
                         1e6;
        result.compressed_mb +=
            static_cast<double>(encoded->stats.total_bytes) / 1e6;
        result.geometry_mb +=
            static_cast<double>(encoded->stats.geometry_bytes) /
            1e6;
        result.attr_mb +=
            static_cast<double>(encoded->stats.attr_bytes) / 1e6;

        // Accumulate MSE (not PSNR) so multi-frame averages are
        // well-defined even when single frames are lossless.
        const AttrQuality attr =
            attributePsnr(frame, decoded->cloud);
        const GeometryQuality geom =
            geometryPsnrD1(frame, decoded->cloud);
        result.attr_psnr_db += attr.mse;   // repurposed: MSE sum
        result.geom_psnr_db += geom.mse;   // converted below

        if (encoded->stats.type == Frame::Type::kPredicted) {
            ++result.p_frames;
            if (config.inter_mode == InterMode::kBlockMatch) {
                result.reuse_fraction +=
                    encoded->stats.block_match.reuseFraction();
            } else if (config.inter_mode ==
                       InterMode::kMacroBlock) {
                const auto &mb = encoded->stats.macro_block;
                result.reuse_fraction +=
                    mb.p_blocks > 0
                        ? static_cast<double>(mb.reused_blocks) /
                              static_cast<double>(mb.p_blocks)
                        : 0.0;
            }
        }
    }

    const double inv =
        1.0 / static_cast<double>(std::max(1, num_frames));
    result.enc_model_s *= inv;
    result.enc_geom_model_s *= inv;
    result.enc_attr_model_s *= inv;
    result.dec_model_s *= inv;
    result.enc_host_s *= inv;
    result.dec_host_s *= inv;
    result.enc_energy_j *= inv;
    result.raw_mb *= inv;
    result.compressed_mb *= inv;
    result.geometry_mb *= inv;
    result.attr_mb *= inv;
    const double attr_mse = result.attr_psnr_db * inv;
    const double geom_mse = result.geom_psnr_db * inv;
    result.attr_psnr_db = printablePsnr(
        attr_mse > 0.0
            ? 10.0 * std::log10(255.0 * 255.0 / attr_mse)
            : std::numeric_limits<double>::infinity());
    const double geom_peak = 1023.0;
    result.geom_psnr_db = printablePsnr(
        geom_mse > 0.0
            ? 10.0 * std::log10(geom_peak * geom_peak / geom_mse)
            : std::numeric_limits<double>::infinity());
    if (result.p_frames > 0) {
        result.reuse_fraction /=
            static_cast<double>(result.p_frames);
    }
    return result;
}

double
printablePsnr(double psnr)
{
    return std::isfinite(psnr) ? psnr : 99.9;
}

void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

}  // namespace edgepcc::bench
