# Sanitizer configuration for the EdgePCC build.
#
# Usage: -DEDGEPCC_SANITIZE="address;undefined" (or "thread", or
# "memory" with a clang toolchain). The list is forwarded to
# -fsanitize= on every target through the `edgepcc_sanitizers`
# interface target, which edgepcc_add_module() and the test/tool/
# bench helpers all link. Mixing thread with address is rejected by
# the compilers themselves, so no extra validation is done here.
#
# The sanitizer builds also define EDGEPCC_DCHECK_ENABLED so
# EDGEPCC_DCHECK invariants abort loudly (see
# include/edgepcc/common/check.h).

set(EDGEPCC_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizer list (address;undefined | thread | memory | leak)")

add_library(edgepcc_sanitizers INTERFACE)

if(EDGEPCC_SANITIZE)
    if("memory" IN_LIST EDGEPCC_SANITIZE AND
       NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
        message(FATAL_ERROR
            "EDGEPCC_SANITIZE=memory requires a clang toolchain "
            "(MemorySanitizer is not implemented in GCC)")
    endif()

    string(REPLACE ";" "," _edgepcc_san_flags "${EDGEPCC_SANITIZE}")
    target_compile_options(edgepcc_sanitizers INTERFACE
        -fsanitize=${_edgepcc_san_flags}
        -fno-omit-frame-pointer
        -fno-sanitize-recover=all
        -g)
    if("memory" IN_LIST EDGEPCC_SANITIZE)
        # Best-effort MSan (see docs/STATIC_ANALYSIS.md): without an
        # MSan-instrumented libc++ the standard library is a
        # false-positive source, so the preset is for targeted runs,
        # not the CI gate. Origin tracking makes those reports
        # actionable.
        target_compile_options(edgepcc_sanitizers INTERFACE
            -fsanitize-memory-track-origins=2)
    endif()
    target_link_options(edgepcc_sanitizers INTERFACE
        -fsanitize=${_edgepcc_san_flags})
    target_compile_definitions(edgepcc_sanitizers INTERFACE
        EDGEPCC_DCHECK_ENABLED=1)
    message(STATUS "EdgePCC sanitizers enabled: ${EDGEPCC_SANITIZE}")
endif()
