/**
 * @file
 * Quality/ratio tuning scenario: sweeps the inter-frame
 * direct-reuse threshold (the paper's Fig. 10b knob) and the
 * attribute quantization step, printing the trade-off so an
 * application can pick its operating point (e.g. bandwidth-capped
 * virtual tourism vs quality-sensitive telemedicine).
 *
 * Usage: quality_tuner [points]
 */

#include <cstdio>
#include <cstdlib>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/platform/device_model.h"

namespace {

using namespace edgepcc;

struct SweepPoint {
    double threshold;
    std::uint32_t quant_step;
};

}  // namespace

int
main(int argc, char **argv)
{
    const std::size_t points =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                 : 60000;
    VideoSpec spec;
    spec.name = "tuner";
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    const VoxelCloud frame0 = video.frame(0);
    const VoxelCloud frame1 = video.frame(1);
    const VoxelCloud frame2 = video.frame(2);
    const EdgeDeviceModel model;

    (void)std::printf("Quality tuner: IPP group over ~%zu points\n\n",
                points);
    (void)std::printf("%10s %7s %10s %10s %10s %9s\n", "threshold",
                "qstep", "ratio", "PSNR [dB]", "enc [ms]",
                "reuse%");

    for (const SweepPoint point :
         {SweepPoint{4.0, 2}, SweepPoint{15.0, 4},
          SweepPoint{60.0, 4}, SweepPoint{240.0, 6},
          SweepPoint{960.0, 8}}) {
        CodecConfig config = makeIntraInterV1Config();
        config.block_match.reuse_threshold = point.threshold;
        config.segment.quant_step = point.quant_step;
        config.block_match.delta_codec = config.segment;

        VideoEncoder encoder(config);
        VideoDecoder decoder;
        double bytes = 0.0, raw = 0.0, psnr = 0.0, enc_ms = 0.0;
        double reuse = 0.0;
        int p_frames = 0;
        for (const VoxelCloud *frame :
             {&frame0, &frame1, &frame2}) {
            auto encoded = encoder.encode(*frame);
            if (!encoded) {
                (void)std::fprintf(
                    stderr, "encode failed: %s\n",
                    encoded.status().toString().c_str());
                return 1;
            }
            auto decoded = decoder.decode(encoded->bitstream);
            if (!decoded) {
                (void)std::fprintf(
                    stderr, "decode failed: %s\n",
                    decoded.status().toString().c_str());
                return 1;
            }
            bytes += static_cast<double>(
                encoded->stats.total_bytes);
            raw +=
                static_cast<double>(encoded->stats.raw_bytes);
            psnr += attributePsnr(*frame, decoded->cloud).psnr;
            enc_ms += model.evaluate(encoded->profile)
                          .modelSeconds() *
                      1e3;
            if (encoded->stats.type ==
                Frame::Type::kPredicted) {
                reuse +=
                    encoded->stats.block_match.reuseFraction();
                ++p_frames;
            }
        }
        (void)std::printf("%10.0f %7u %10.2f %10.1f %10.1f %8.0f%%\n",
                    point.threshold, point.quant_step,
                    raw / bytes, psnr / 3.0, enc_ms / 3.0,
                    p_frames > 0 ? 100.0 * reuse / p_frames
                                 : 0.0);
    }
    (void)std::printf("\nPick small thresholds/qsteps for quality "
                "(telemedicine) and large ones for\nbandwidth "
                "(virtual tourism); the paper ships V1 "
                "(threshold 300 per ~20-pt block)\nand V2 "
                "(1200) as the two presets.\n");
    return 0;
}
