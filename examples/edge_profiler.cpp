/**
 * @file
 * Edge-deployment what-if study: runs one frame through every
 * paper design and prints the modelled latency/energy on the
 * Jetson Xavier's 15 W and 10 W compute modes, stage by stage —
 * the workflow an engineer would use to decide whether a codec
 * configuration fits a device's power budget.
 *
 * Usage: edge_profiler [points]
 */

#include <cstdio>
#include <cstdlib>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/platform/device_model.h"

int
main(int argc, char **argv)
{
    using namespace edgepcc;
    const std::size_t points =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                 : 90000;

    VideoSpec spec;
    spec.name = "profiler";
    spec.target_points = points;
    SyntheticHumanVideo video(spec);
    const VoxelCloud frame = video.frame(0);

    const EdgeDeviceModel devices[] = {
        EdgeDeviceModel(DeviceSpec::jetsonXavier15W()),
        EdgeDeviceModel(DeviceSpec::jetsonXavier10W()),
    };

    for (const CodecConfig &config :
         {makeTmc13LikeConfig(), makeIntraOnlyConfig()}) {
        VideoEncoder encoder(config);
        auto encoded = encoder.encode(frame);
        if (!encoded) {
            (void)std::fprintf(stderr, "encode failed: %s\n",
                         encoded.status().toString().c_str());
            return 1;
        }
        (void)std::printf("=== %s (%zu points) ===\n",
                    config.name.c_str(), frame.size());
        for (const EdgeDeviceModel &device : devices) {
            const PipelineTiming timing =
                device.evaluate(encoded->profile);
            (void)std::printf("%s: %.1f ms, %.3f J\n",
                        device.spec().name.c_str(),
                        timing.modelSeconds() * 1e3,
                        timing.joules());
            for (const StageTiming &stage : timing.stages) {
                (void)std::printf("    %-22s %9.2f ms %9.4f J\n",
                            stage.name.c_str(),
                            stage.model_seconds * 1e3,
                            stage.joules);
            }
        }
        (void)std::printf("\n");
    }
    (void)std::printf("A smartphone budget check: the proposed design "
                "draws ~4 W average on the\n15 W Xavier — below "
                "the ~10 W peak discharge of a modern phone "
                "(paper Sec. VI-C).\n");
    return 0;
}
