/**
 * @file
 * Telepresence streaming scenario (the paper's motivating
 * application): encode a moving-person PC video as an IPP stream
 * with the combined intra+inter design, tracking per-frame
 * bitrate, quality and the modelled edge-device budget against
 * the 100 ms real-time bar.
 *
 * Usage: telepresence_stream [frames] [points]
 */

#include <cstdio>
#include <cstdlib>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/platform/device_model.h"

int
main(int argc, char **argv)
{
    using namespace edgepcc;
    const int frames =
        argc > 1 ? std::atoi(argv[1]) : 9;  // three IPP groups
    const std::size_t points =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
                 : 80000;

    VideoSpec spec;
    spec.name = "telepresence";
    spec.target_points = points;
    spec.motion_amplitude = 0.3;
    SyntheticHumanVideo video(spec);

    VideoEncoder encoder(makeIntraInterV1Config());
    VideoDecoder decoder;
    const EdgeDeviceModel model;

    (void)std::printf("Streaming %d frames (~%zu pts each) with "
                "Intra-Inter-V1 on %s\n\n",
                frames, points, model.spec().name.c_str());
    (void)std::printf("%5s %5s %10s %10s %10s %10s %8s\n", "frame",
                "type", "kbits", "enc [ms]", "dec [ms]",
                "PSNR [dB]", "reuse%");
    double total_bits = 0.0, total_enc = 0.0;
    int over_budget = 0;

    for (int f = 0; f < frames; ++f) {
        const VoxelCloud frame = video.frame(f);
        auto encoded = encoder.encode(frame);
        if (!encoded) {
            (void)std::fprintf(stderr, "encode failed at frame %d: %s\n",
                         f, encoded.status().toString().c_str());
            return 1;
        }
        auto decoded = decoder.decode(encoded->bitstream);
        if (!decoded) {
            (void)std::fprintf(stderr, "decode failed at frame %d: %s\n",
                         f, decoded.status().toString().c_str());
            return 1;
        }
        const PipelineTiming enc_t =
            model.evaluate(encoded->profile);
        const PipelineTiming dec_t =
            model.evaluate(decoded->profile);
        const AttrQuality quality =
            attributePsnr(frame, decoded->cloud);

        const bool is_p =
            encoded->stats.type == Frame::Type::kPredicted;
        (void)std::printf("%5d %5s %10.0f %10.1f %10.1f %10.1f %7.0f%%\n",
                    f, is_p ? "P" : "I",
                    static_cast<double>(
                        encoded->stats.total_bytes) *
                        8.0 / 1e3,
                    enc_t.modelSeconds() * 1e3,
                    dec_t.modelSeconds() * 1e3, quality.psnr,
                    100.0 *
                        encoded->stats.block_match
                            .reuseFraction());
        total_bits +=
            static_cast<double>(encoded->stats.total_bytes) * 8.0;
        total_enc += enc_t.modelSeconds();
        if (enc_t.modelSeconds() > 0.1)
            ++over_budget;
    }

    (void)std::printf("\nstream: %.2f Mbit over %d frames "
                "(%.2f Mbit/s at 30 fps)\n",
                total_bits / 1e6, frames,
                total_bits / 1e6 / frames * 30.0);
    (void)std::printf("mean encode %.1f ms/frame; %d/%d frames over "
                "the 100 ms real-time bar\n",
                total_enc / frames * 1e3, over_budget, frames);
    return 0;
}
