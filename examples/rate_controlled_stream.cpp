/**
 * @file
 * Bandwidth-budgeted streaming: drives the codec with the
 * ReuseRateController so P-frame sizes converge to a bitrate
 * target by moving the paper's direct-reuse threshold knob
 * (Sec. VI-E) automatically.
 *
 * Usage: rate_controlled_stream [target_kbit_per_frame] [frames]
 */

#include <cstdio>
#include <cstdlib>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/stream/rate_controller.h"

int
main(int argc, char **argv)
{
    using namespace edgepcc;
    const double target_kbit =
        argc > 1 ? std::atof(argv[1]) : 300.0;
    const int frames = argc > 2 ? std::atoi(argv[2]) : 12;

    VideoSpec spec;
    spec.name = "rate-controlled";
    spec.target_points = 70000;
    SyntheticHumanVideo video(spec);

    CodecConfig codec = makeIntraInterV1Config();
    RateControllerConfig rc;
    rc.target_bytes_per_frame =
        static_cast<std::uint64_t>(target_kbit * 1000.0 / 8.0);
    rc.gain = 0.7;
    ReuseRateController controller(rc);

    (void)std::printf("Target: %.0f kbit/frame (%.2f Mbit/s at 30 fps), "
                "%d frames of ~%zu points\n\n",
                target_kbit, target_kbit * 30.0 / 1e3, frames,
                spec.target_points);
    (void)std::printf("%5s %5s %10s %11s %10s %10s\n", "frame", "type",
                "kbit", "threshold", "reuse [%]", "PSNR [dB]");

    VideoDecoder decoder;
    // The encoder picks up the controller's threshold at every GOP
    // boundary (mid-GOP changes would desynchronize nothing, but
    // GOP-aligned updates keep the quality steady within a group).
    VideoEncoder encoder(codec);
    for (int f = 0; f < frames; ++f) {
        if (f % codec.gop_size == 0) {
            codec.block_match.reuse_threshold =
                controller.threshold();
            encoder = VideoEncoder(codec);
        }
        const VoxelCloud frame = video.frame(f);
        auto encoded = encoder.encode(frame);
        if (!encoded) {
            (void)std::fprintf(stderr, "encode failed: %s\n",
                         encoded.status().toString().c_str());
            return 1;
        }
        auto decoded = decoder.decode(encoded->bitstream);
        if (!decoded) {
            (void)std::fprintf(stderr, "decode failed: %s\n",
                         decoded.status().toString().c_str());
            return 1;
        }
        controller.onFrame(encoded->stats.type,
                           encoded->stats.total_bytes);
        (void)std::printf(
            "%5d %5s %10.0f %11.1f %10.0f %10.1f\n", f,
            encoded->stats.type == Frame::Type::kPredicted ? "P"
                                                           : "I",
            static_cast<double>(encoded->stats.total_bytes) *
                8.0 / 1e3,
            codec.block_match.reuse_threshold,
            100.0 * encoded->stats.block_match.reuseFraction(),
            attributePsnr(frame, decoded->cloud).psnr);
    }
    (void)std::printf("\nThe controller trades PSNR for bitrate by "
                "raising the reuse threshold until\nP frames fit "
                "the budget (I frames are bounded by the intra "
                "codec).\n");
    return 0;
}
