/**
 * @file
 * EdgePCC quickstart: compress and decompress one point-cloud
 * frame with the proposed Morton-parallel codec, then report
 * sizes, quality and the modelled edge-device latency.
 *
 * Usage: quickstart [points]
 */

#include <cstdio>
#include <cstdlib>

#include "edgepcc/core/video_codec.h"
#include "edgepcc/dataset/synthetic_human.h"
#include "edgepcc/metrics/quality.h"
#include "edgepcc/platform/device_model.h"

int
main(int argc, char **argv)
{
    using namespace edgepcc;

    // 1. Get a frame. Real applications load a PLY (see
    //    readPlyVoxels in edgepcc/dataset/ply_io.h); here we
    //    synthesize a voxelized human.
    VideoSpec spec;
    spec.name = "quickstart";
    spec.target_points =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                 : 100000;
    SyntheticHumanVideo video(spec);
    const VoxelCloud frame = video.frame(0);
    (void)std::printf("input: %zu points on a %u^3 grid (%.2f MB raw)\n",
                frame.size(), frame.gridSize(),
                static_cast<double>(frame.rawBytes()) / 1e6);

    // 2. Encode with the paper's Intra-Only design: parallel
    //    Morton octree geometry + segment Base+Delta attributes.
    VideoEncoder encoder(makeIntraOnlyConfig());
    auto encoded = encoder.encode(frame);
    if (!encoded) {
        (void)std::fprintf(stderr, "encode failed: %s\n",
                     encoded.status().toString().c_str());
        return 1;
    }
    (void)std::printf("compressed: %.3f MB (%.1fx, geometry %.3f MB + "
                "attributes %.3f MB)\n",
                static_cast<double>(encoded->stats.total_bytes) /
                    1e6,
                encoded->stats.compressionRatio(),
                static_cast<double>(
                    encoded->stats.geometry_bytes) /
                    1e6,
                static_cast<double>(encoded->stats.attr_bytes) /
                    1e6);

    // 3. Decode and measure quality.
    VideoDecoder decoder;
    auto decoded = decoder.decode(encoded->bitstream);
    if (!decoded) {
        (void)std::fprintf(stderr, "decode failed: %s\n",
                     decoded.status().toString().c_str());
        return 1;
    }
    const AttrQuality attr = attributePsnr(frame, decoded->cloud);
    const GeometryQuality geom =
        geometryPsnrD1(frame, decoded->cloud);
    (void)std::printf("quality: attribute PSNR %.1f dB, geometry PSNR "
                "%.1f dB\n",
                attr.psnr, geom.psnr);

    // 4. What would this cost on the paper's edge board?
    const EdgeDeviceModel model;  // Jetson AGX Xavier, 15 W
    const PipelineTiming timing = model.evaluate(encoded->profile);
    (void)std::printf("modelled %s encode: %.1f ms (%.1f geometry + "
                "%.1f attributes), %.3f J\n",
                model.spec().name.c_str(),
                timing.modelSeconds() * 1e3,
                timing.modelSecondsWithPrefix("geom.") * 1e3,
                (timing.modelSeconds() -
                 timing.modelSecondsWithPrefix("geom.")) *
                    1e3,
                timing.joules());
    return 0;
}
