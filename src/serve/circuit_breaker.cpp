#include "edgepcc/serve/circuit_breaker.h"

#include <utility>

#include "edgepcc/common/trace.h"

namespace edgepcc {
namespace serve {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::kClosed:
        return "closed";
      case BreakerState::kOpen:
        return "open";
      case BreakerState::kHalfOpen:
        return "half-open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(std::move(config))
{
}

bool
CircuitBreaker::allowRequest(double now_s)
{
    if (!config_.enabled)
        return true;
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kOpen:
        if (now_s >= open_until_s_) {
            state_ = BreakerState::kHalfOpen;
            return true;
        }
        return false;
      case BreakerState::kHalfOpen:
        /* The probe is outstanding; one at a time. */
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    consecutive_failures_ = 0;
    open_streak_ = 0;
    if (state_ == BreakerState::kHalfOpen)
        state_ = BreakerState::kClosed;
}

void
CircuitBreaker::onFailure(double now_s)
{
    if (!config_.enabled)
        return;
    ++consecutive_failures_;
    if (state_ == BreakerState::kHalfOpen) {
        /* The probe faulted: straight back to quarantine at the
         * next backoff step. */
        tripLocked(now_s);
        return;
    }
    if (state_ == BreakerState::kClosed &&
        consecutive_failures_ >= config_.failure_threshold)
        tripLocked(now_s);
}

void
CircuitBreaker::tripLocked(double now_s)
{
    ScopedTrace trace("serve.breaker_trip");
    ++open_streak_;
    ++trips_;
    state_ = BreakerState::kOpen;
    open_until_s_ = now_s + config_.reprobe.backoffFor(open_streak_);
}

}  // namespace serve
}  // namespace edgepcc
