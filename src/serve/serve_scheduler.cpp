#include "edgepcc/serve/serve_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>

#include "edgepcc/common/trace.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace serve {

namespace {

/** Arrival tolerance: frame f "has arrived" at T when
 *  offset + f/fps <= T + kArrivalEps (matches StreamSession). */
constexpr double kArrivalEps = 1e-9;

/** Folded into a tenant's stream key on failover: the forced
 *  keyframe makes the restored stream's bytes diverge from any
 *  uninterrupted stream, so its cache lineage must diverge too. */
constexpr std::uint64_t kFailoverSalt = 0xfa110f3f5a17ull;

}  // namespace

const char *
deadlineClassName(DeadlineClass deadline_class)
{
    switch (deadline_class) {
      case DeadlineClass::kInteractive:
        return "interactive";
      case DeadlineClass::kStandard:
        return "standard";
      case DeadlineClass::kBulk:
        return "bulk";
    }
    return "unknown";
}

double
deadlineClassSlack(DeadlineClass deadline_class)
{
    switch (deadline_class) {
      case DeadlineClass::kInteractive:
        return 1.0;
      case DeadlineClass::kStandard:
        return 2.0;
      case DeadlineClass::kBulk:
        return 4.0;
    }
    return 2.0;
}

const char *
serveOutcomeName(ServeOutcome outcome)
{
    switch (outcome) {
      case ServeOutcome::kEncoded:
        return "encoded";
      case ServeOutcome::kCacheHit:
        return "cache-hit";
      case ServeOutcome::kDropped:
        return "dropped";
      case ServeOutcome::kFaulted:
        return "faulted";
      case ServeOutcome::kQuarantined:
        return "quarantined";
      case ServeOutcome::kShed:
        return "shed";
    }
    return "unknown";
}

const char *
rejectionReasonName(RejectionReason reason)
{
    switch (reason) {
      case RejectionReason::kNone:
        return "";
      case RejectionReason::kAdmissionCap:
        return "admission-cap";
      case RejectionReason::kExceedsDeviceCapacity:
        return "exceeds-device-capacity";
      case RejectionReason::kFailoverShed:
        return "failover-shed";
    }
    return "unknown";
}

double
FleetStats::utilization() const
{
    return makespan_s > 0.0 ? device_busy_s / makespan_s : 0.0;
}

double
FleetStats::sessionsPerDevice() const
{
    const double util = utilization();
    return util > 0.0 ? static_cast<double>(admitted) / util : 0.0;
}

double
jainFairnessIndex(const std::vector<double> &shares)
{
    if (shares.empty())
        return 1.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : shares) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0)
        return 1.0;
    return (sum * sum) /
           (static_cast<double>(shares.size()) * sum_sq);
}

std::string
traceString(const ServeReport &report)
{
    std::string out;
    for (const ServeTraceEntry &entry : report.trace) {
        if (!out.empty())
            out += ' ';
        out += entry.tenant;
        out += std::to_string(entry.frame_id);
        if (entry.outcome == ServeOutcome::kCacheHit)
            out += '*';
        if (entry.outcome == ServeOutcome::kDropped)
            out += '-';
        if (entry.outcome == ServeOutcome::kFaulted)
            out += '~';
        if (entry.outcome == ServeOutcome::kQuarantined)
            out += '^';
        if (entry.outcome == ServeOutcome::kShed)
            out += '#';
        if (entry.deadline_missed)
            out += '!';
    }
    return out;
}

std::string
recoveryTraceString(const ServeReport &report)
{
    std::string out;
    for (const FailoverRecord &record : report.failovers) {
        if (!out.empty())
            out += "; ";
        out += "crash r" + std::to_string(record.replica) + " @" +
               std::to_string(std::llround(record.at_s * 1e6)) +
               "us:";
        for (const FailoverMove &move : record.moves) {
            out += ' ' + move.tenant + "->";
            if (move.to_replica < 0) {
                out += "shed";
            } else {
                out += 'r' + std::to_string(move.to_replica);
                if (move.restored_from_checkpoint)
                    out += "+ckpt";
            }
        }
    }
    return out;
}

// -----------------------------------------------------------------
// ServeScheduler
// -----------------------------------------------------------------

namespace {

/** A tenant's latest checkpoint: everything failover needs to
 *  resume the stream on another replica. */
struct TenantCheckpoint {
    VideoEncoder::StateSnapshot state;
    std::uint64_t stream_key = 0;
    std::uint32_t served = 0;  ///< frames served when taken
};

/** Scheduler-internal per-tenant state. */
struct TenantState {
    std::size_t input_index = 0;
    const TenantSpec *spec = nullptr;
    TenantReport *report = nullptr;

    VideoEncoder encoder;
    std::size_t next_frame = 0;
    bool done = false;

    double deficit_s = 0.0;
    double quantum_s = 0.0;  ///< config quantum * weight
    double budget_s = 0.0;   ///< per-frame completion budget
    std::uint64_t stream_key = 0;

    int replica = 0;
    double estimated_utilization = 0.0;
    /** Failover gap: invisible to the new replica's scheduler until
     *  its clock reaches the crash time (causality). */
    double resume_at_s = 0.0;
    /** Crash time awaiting this tenant's first post-failover
     *  completion (MTTR sample); < 0 when not recovering. */
    double recovering_since_s = -1.0;

    CircuitBreaker breaker;
    std::optional<TenantCheckpoint> checkpoint;

    TenantState(const TenantSpec &tenant_spec,
                const CircuitBreakerConfig &breaker_config)
        : spec(&tenant_spec), encoder(tenant_spec.codec),
          next_frame(0), breaker(breaker_config)
    {
    }

    double
    arrivalOf(std::size_t frame) const
    {
        return spec->arrival_offset_s +
               static_cast<double>(frame) / spec->fps;
    }

    /** Arrived-unserved frame count at virtual time `now_s`. */
    std::size_t
    backlogAt(double now_s) const
    {
        if (done || next_frame >= spec->frames.size())
            return 0;
        const double since =
            now_s - spec->arrival_offset_s + kArrivalEps;
        if (since < 0.0)
            return 0;
        std::size_t last = static_cast<std::size_t>(
            since * spec->fps);
        last = std::min(last, spec->frames.size() - 1);
        return last >= next_frame ? last - next_frame + 1 : 0;
    }

    bool
    poisoned(std::uint32_t frame_id) const
    {
        for (std::uint32_t fault : spec->fault_frames) {
            if (fault == frame_id)
                return true;
        }
        return false;
    }
};

/** One device replica: its own virtual clock, DRR cursor and
 *  tenant placements. */
struct ReplicaState {
    int index = 0;
    double clock_s = 0.0;
    std::size_t cursor = 0;
    std::vector<TenantState *> tenants;
    std::size_t unfinished = 0;
    double admitted_utilization = 0.0;
    bool crashed = false;
    /** When a crashed replica rejoins (empty); +inf = permanent. */
    double revive_at_s = std::numeric_limits<double>::infinity();
};

/** One co-scheduled frame (at most one per tenant per batch). */
struct BatchItem {
    TenantState *tenant = nullptr;
    std::uint32_t frame_id = 0;
    std::uint64_t stream_key = 0;
    std::shared_ptr<const CacheEntry> hit;

    /** Dispatch faulted (oom window / poisoned frame): the frame
     *  never reaches the encoder. */
    bool faulted = false;
    Status fault_status;

    // Filled by the encode task, read after the batch barrier.
    Status status;  ///< default-constructed = OK
    EncodedFrame encoded;
    VideoEncoder::StateSnapshot state_after;
    bool have_snapshot = false;
};

/** Per-batch completion latch (the scheduler may not use
 *  ThreadPool::wait(): it would also wait on unrelated work). */
class BatchSync
{
  public:
    void
    add(std::size_t count)
    {
        MutexLock lock(mutex_);
        pending_ += count;
    }

    void
    finishOne()
    {
        MutexLock lock(mutex_);
        if (--pending_ == 0)
            done_.notifyAll();
    }

    /** Blocks until the batch drains, helping run queued tasks so a
     *  zero/busy-worker pool still makes progress. */
    void
    waitAll(ThreadPool &pool)
    {
        for (;;) {
            {
                MutexLock lock(mutex_);
                if (pending_ == 0)
                    return;
            }
            if (pool.tryRunOne())
                continue;
            MutexLock lock(mutex_);
            while (pending_ > 0)
                done_.wait(mutex_);
            return;
        }
    }

  private:
    Mutex mutex_;
    CondVar done_;
    std::size_t pending_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

/** Admission / failover priority: deadline class, then arrival
 *  offset, then input order. */
bool
admissionBefore(const TenantSpec &a, std::size_t ia,
                const TenantSpec &b, std::size_t ib)
{
    if (a.deadline_class != b.deadline_class)
        return a.deadline_class < b.deadline_class;
    if (a.arrival_offset_s != b.arrival_offset_s)
        return a.arrival_offset_s < b.arrival_offset_s;
    return ia < ib;
}

}  // namespace

ServeScheduler::ServeScheduler(ServeConfig config,
                               std::vector<TenantSpec> tenants)
    : config_(std::move(config)), tenants_(std::move(tenants))
{
}

Expected<ServeReport>
ServeScheduler::run()
{
    ScopedTrace trace("serve.run");

    if (tenants_.empty())
        return invalidArgument("ServeScheduler::run: no tenants");
    if (config_.quantum_s <= 0.0)
        return invalidArgument(
            "ServeScheduler::run: quantum_s must be > 0");
    if (config_.replicas < 1)
        return invalidArgument(
            "ServeScheduler::run: replicas must be >= 1");
    if (config_.checkpoint_interval_frames < 0 ||
        config_.checkpoint_cost_s < 0.0)
        return invalidArgument(
            "ServeScheduler::run: checkpoint interval/cost must "
            "be >= 0");
    for (const DeviceFaultEvent &event : config_.faults.events) {
        if (event.replica < 0 || event.replica >= config_.replicas)
            return invalidArgument(
                "ServeScheduler::run: fault event names replica " +
                std::to_string(event.replica) + " but the fleet has " +
                std::to_string(config_.replicas) + " replicas");
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const TenantSpec &spec = tenants_[i];
        if (spec.name.empty())
            return invalidArgument(
                "ServeScheduler::run: tenant without a name");
        if (spec.frames.empty())
            return invalidArgument("ServeScheduler::run: tenant '" +
                                   spec.name + "' has no frames");
        if (spec.fps <= 0.0 || spec.weight <= 0.0)
            return invalidArgument("ServeScheduler::run: tenant '" +
                                   spec.name +
                                   "' needs fps > 0 and weight > 0");
        for (std::size_t j = 0; j < i; ++j) {
            if (tenants_[j].name == spec.name)
                return invalidArgument(
                    "ServeScheduler::run: duplicate tenant name '" +
                    spec.name + "'");
        }
    }

    ServeReport report;
    report.tenants.resize(tenants_.size());
    report.fleet.sessions = tenants_.size();
    report.fleet.replicas =
        static_cast<std::size_t>(config_.replicas);

    const EdgeDeviceModel device_model(config_.device);
    // The shared per-tenant latency hook only reads the load spec
    // and the budget source; serve always charges modelled seconds.
    OverloadConfig latency_config;
    latency_config.load = config_.load;
    latency_config.budget_source = OverloadBudgetSource::kModelled;

    DeviceFaultInjector injector(config_.faults);

    // ---------------- Admission control -------------------------
    // Probe-encode each tenant's first frame to estimate its share
    // of a replica, then admit in deadline-class priority order
    // (earlier arrivals first within a class), placing each tenant
    // on the least-loaded replica that still fits under the
    // per-replica utilization cap. The probe uses a scratch
    // encoder, so the real per-tenant encoder state is untouched.
    {
        ScopedTrace admission_trace("serve.admission");
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const TenantSpec &spec = tenants_[i];
            TenantReport &tenant_report = report.tenants[i];
            tenant_report.name = spec.name;
            tenant_report.deadline_class = spec.deadline_class;
            tenant_report.weight = spec.weight;

            VideoEncoder probe(spec.codec);
            auto probed = probe.encode(spec.frames.front());
            if (!probed)
                return Status(probed.status().code(),
                              "serve: tenant '" + spec.name +
                                  "' frame 0 probe: " +
                                  probed.status().message());
            const PipelineTiming timing =
                device_model.evaluate(probed->profile);
            tenant_report.estimated_utilization =
                timing.modelSeconds() * spec.fps;
        }
    }

    std::vector<std::size_t> admission_order(tenants_.size());
    std::iota(admission_order.begin(), admission_order.end(),
              std::size_t{0});
    std::stable_sort(
        admission_order.begin(), admission_order.end(),
        [this](std::size_t a, std::size_t b) {
            return admissionBefore(tenants_[a], a, tenants_[b], b);
        });

    std::vector<ReplicaState> replicas(
        static_cast<std::size_t>(config_.replicas));
    for (std::size_t r = 0; r < replicas.size(); ++r)
        replicas[r].index = static_cast<int>(r);

    const double cap = config_.admission_utilization_cap;
    std::vector<int> placement(tenants_.size(), -1);
    for (std::size_t index : admission_order) {
        TenantReport &tenant_report = report.tenants[index];
        const double util = tenant_report.estimated_utilization;
        if (util > cap * (1.0 + kArrivalEps)) {
            tenant_report.rejection_reason =
                RejectionReason::kExceedsDeviceCapacity;
            continue;
        }
        int best = -1;
        double best_util = 0.0;
        for (const ReplicaState &replica : replicas) {
            if (replica.admitted_utilization + util >
                cap * (1.0 + kArrivalEps))
                continue;
            if (best < 0 ||
                replica.admitted_utilization < best_util) {
                best = replica.index;
                best_util = replica.admitted_utilization;
            }
        }
        if (best < 0) {
            tenant_report.rejection_reason =
                RejectionReason::kAdmissionCap;
            continue;
        }
        tenant_report.admitted = true;
        tenant_report.replica = best;
        placement[index] = best;
        replicas[static_cast<std::size_t>(best)]
            .admitted_utilization += util;
    }

    // ---------------- Scheduler state ---------------------------
    std::vector<TenantState> states;
    states.reserve(tenants_.size());
    for (std::size_t index : admission_order) {
        if (!report.tenants[index].admitted)
            continue;
        states.emplace_back(tenants_[index], config_.breaker);
        TenantState &state = states.back();
        state.input_index = index;
        state.report = &report.tenants[index];
        state.quantum_s =
            config_.quantum_s * tenants_[index].weight;
        state.budget_s =
            deadlineClassSlack(tenants_[index].deadline_class) /
            tenants_[index].fps;
        state.stream_key =
            codecConfigDigest(tenants_[index].codec);
        state.replica = placement[index];
        state.estimated_utilization =
            report.tenants[index].estimated_utilization;
        state.report->stats.frames = tenants_[index].frames.size();
        state.report->stats.deadline_s = state.budget_s;
    }
    report.fleet.admitted = states.size();
    report.fleet.rejected = tenants_.size() - states.size();

    for (TenantState &state : states) {
        ReplicaState &replica =
            replicas[static_cast<std::size_t>(state.replica)];
        replica.tenants.push_back(&state);
        ++replica.unfinished;
    }

    ReferenceCache cache(config_.cache_capacity);
    ThreadPool &pool = ThreadPool::global();
    const int batch_max = std::max(config_.batch_max, 1);
    const std::size_t window_base = 1;  // the frame being encoded

    std::size_t unfinished = states.size();
    std::vector<double> recovery_samples;

    const auto finishIfDone = [&](TenantState &state) {
        if (!state.done &&
            state.next_frame >= state.spec->frames.size()) {
            state.done = true;
            --unfinished;
            --replicas[static_cast<std::size_t>(state.replica)]
                  .unfinished;
        }
    };

    const auto dropStale = [&](TenantState &state, double now_s) {
        // Oldest-drop backpressure, the StreamSession rule lifted
        // fleet-wide: keep the newest queue_capacity + 1 arrived
        // frames, shed the rest without encoding them. Frames shed
        // while the tenant's breaker is open count as quarantined.
        if (now_s + kArrivalEps < state.resume_at_s)
            return;  // failover gap: frozen until the crash time
        const std::size_t window =
            static_cast<std::size_t>(
                std::max(state.spec->queue_capacity, 0)) +
            window_base;
        std::size_t backlog = state.backlogAt(now_s);
        while (backlog > window) {
            const auto frame_id =
                static_cast<std::uint32_t>(state.next_frame);
            const bool quarantined =
                state.breaker.state() == BreakerState::kOpen;
            ServedFrame record;
            record.frame_id = frame_id;
            record.outcome = quarantined
                                 ? ServeOutcome::kQuarantined
                                 : ServeOutcome::kDropped;
            record.arrival_s = state.arrivalOf(state.next_frame);
            record.start_s = now_s;
            record.completion_s = now_s;
            if (quarantined) {
                ++state.report->stats.quarantined;
                ++report.recovery.quarantined_frames;
            } else {
                ++state.report->stats.dropped;
            }
            ServeTraceEntry entry;
            entry.tenant = state.spec->name;
            entry.frame_id = frame_id;
            entry.outcome = record.outcome;
            entry.replica = state.replica;
            report.trace.push_back(std::move(entry));
            state.report->frames.push_back(std::move(record));
            ++state.next_frame;
            --backlog;
        }
        finishIfDone(state);
    };

    // Crash failover: every tenant on the dead replica is
    // re-admitted to the survivors in deadline-class priority
    // order — interactive first, bulk last, so when capacity no
    // longer fits it is the bulk tenants that are shed. Moved
    // tenants restore from their latest checkpoint (cold reset
    // when none) and resume with a forced keyframe, so the stream
    // stays decodable; their stream key is re-anchored so the
    // cache never serves pre-crash lineage bytes.
    const auto handleCrash = [&](ReplicaState &down, double at_s,
                                 const DeviceFaultEvent &event) {
        ++report.recovery.crashes;
        FailoverRecord record;
        record.replica = down.index;
        record.at_s = at_s;

        std::vector<TenantState *> victims;
        for (TenantState *state : down.tenants) {
            if (!state->done)
                victims.push_back(state);
        }
        down.tenants.clear();
        down.cursor = 0;
        down.unfinished = 0;
        down.admitted_utilization = 0.0;
        down.crashed = true;
        down.revive_at_s =
            event.duration_s > 0.0
                ? at_s + event.duration_s
                : std::numeric_limits<double>::infinity();

        std::stable_sort(
            victims.begin(), victims.end(),
            [](const TenantState *a, const TenantState *b) {
                return admissionBefore(*a->spec, a->input_index,
                                       *b->spec, b->input_index);
            });

        for (TenantState *victim : victims) {
            FailoverMove move;
            move.tenant = victim->spec->name;
            move.from_replica = down.index;
            move.resume_frame =
                static_cast<std::uint32_t>(victim->next_frame);

            int best = -1;
            double best_util = 0.0;
            for (ReplicaState &replica : replicas) {
                if (replica.index == down.index)
                    continue;
                if (replica.crashed) {
                    if (replica.revive_at_s <=
                        at_s + kArrivalEps) {
                        replica.crashed = false;
                        replica.clock_s = std::max(
                            replica.clock_s, replica.revive_at_s);
                    } else {
                        continue;
                    }
                }
                if (replica.admitted_utilization +
                        victim->estimated_utilization >
                    cap * (1.0 + kArrivalEps))
                    continue;
                if (best < 0 ||
                    replica.admitted_utilization < best_util) {
                    best = replica.index;
                    best_util = replica.admitted_utilization;
                }
            }

            if (best < 0) {
                // Nowhere left to run: shed the remaining frames,
                // accounted one by one — degraded, never corrupt.
                victim->report->rejection_reason =
                    RejectionReason::kFailoverShed;
                while (victim->next_frame <
                       victim->spec->frames.size()) {
                    const auto frame_id = static_cast<std::uint32_t>(
                        victim->next_frame);
                    ServedFrame shed;
                    shed.frame_id = frame_id;
                    shed.outcome = ServeOutcome::kShed;
                    shed.arrival_s =
                        victim->arrivalOf(victim->next_frame);
                    shed.start_s = at_s;
                    shed.completion_s = at_s;
                    ++victim->report->stats.shed;
                    ServeTraceEntry entry;
                    entry.tenant = victim->spec->name;
                    entry.frame_id = frame_id;
                    entry.outcome = ServeOutcome::kShed;
                    entry.replica = down.index;
                    report.trace.push_back(std::move(entry));
                    victim->report->frames.push_back(
                        std::move(shed));
                    ++victim->next_frame;
                }
                victim->done = true;
                --unfinished;
                ++report.recovery.tenants_shed;
                record.moves.push_back(std::move(move));
                continue;
            }

            ReplicaState &target =
                replicas[static_cast<std::size_t>(best)];
            target.tenants.push_back(victim);
            ++target.unfinished;
            target.admitted_utilization +=
                victim->estimated_utilization;
            victim->replica = best;
            victim->report->replica = best;

            if (victim->checkpoint.has_value()) {
                victim->encoder.restoreState(
                    victim->checkpoint->state);
                victim->stream_key = chainStreamKey(
                    victim->checkpoint->stream_key, kFailoverSalt);
                move.restored_from_checkpoint = true;
                move.checkpoint_frames = victim->checkpoint->served;
            } else {
                victim->encoder.reset();
                victim->stream_key = chainStreamKey(
                    codecConfigDigest(victim->spec->codec),
                    kFailoverSalt);
            }
            victim->encoder.forceKeyframe();
            victim->deficit_s = 0.0;
            victim->resume_at_s = at_s;
            victim->recovering_since_s = at_s;
            ++report.recovery.failovers;
            move.to_replica = best;
            record.moves.push_back(std::move(move));
        }
        report.failovers.push_back(std::move(record));
    };

    // ---------------- DRR round loop ----------------------------
    // Replicas take rounds in virtual-clock order (lowest clock
    // first, ties by index), which makes the fleet-wide trace a
    // pure function of the inputs.
    while (unfinished > 0) {
        ReplicaState *chosen = nullptr;
        for (ReplicaState &replica : replicas) {
            if (replica.crashed || replica.unfinished == 0)
                continue;
            if (chosen == nullptr ||
                replica.clock_s < chosen->clock_s)
                chosen = &replica;
        }
        if (chosen == nullptr)
            break;  // unreachable: unfinished tenants live somewhere
        ReplicaState &rep = *chosen;
        double now_s = rep.clock_s;
        ++report.fleet.rounds;

        // Fault boundary: pending stalls jump the clock, then a due
        // crash takes the whole replica down.
        const double stall_s =
            injector.consumeStall(rep.index, now_s);
        if (stall_s > 0.0)
            now_s += stall_s;
        const int crash_index =
            injector.consumeCrash(rep.index, now_s);
        if (crash_index >= 0) {
            rep.clock_s = now_s;
            handleCrash(rep, now_s,
                        injector.event(
                            static_cast<std::size_t>(crash_index)));
            continue;
        }

        for (TenantState *state : rep.tenants)
            dropStale(*state, now_s);
        rep.clock_s = now_s;
        if (unfinished == 0)
            break;
        if (rep.unfinished == 0)
            continue;

        // Select up to batch_max backlogged tenants, one frame
        // each, starting at the round-robin cursor (which carries
        // across rounds so a cut batch resumes where it stopped).
        std::vector<BatchItem> batch;
        bool any_backlog = false;
        std::size_t examined = 0;
        std::size_t index = rep.cursor;
        for (; examined < rep.tenants.size();
             ++examined, ++index) {
            TenantState &state =
                *rep.tenants[index % rep.tenants.size()];
            if (state.done)
                continue;
            if (now_s + kArrivalEps < state.resume_at_s)
                continue;  // failover gap: not yet visible here
            if (state.backlogAt(now_s) == 0) {
                // Idle tenants forfeit their deficit: DRR's
                // classic no-banking-while-empty rule.
                state.deficit_s = 0.0;
                continue;
            }
            state.deficit_s =
                std::min(state.deficit_s + state.quantum_s,
                         state.quantum_s);
            state.report->stats.max_deficit_s =
                std::max(state.report->stats.max_deficit_s,
                         state.deficit_s);
            if (state.deficit_s <= 0.0) {
                // Still repaying an overdraft: a free re-round
                // makes progress, so count the backlog.
                any_backlog = true;
                continue;
            }
            if (!state.breaker.allowRequest(now_s)) {
                // Quarantined: re-rounding cannot help; the clock
                // must reach the re-probe time (empty-batch jump).
                continue;
            }
            BatchItem item;
            item.tenant = &state;
            item.frame_id =
                static_cast<std::uint32_t>(state.next_frame);
            item.faulted =
                injector.memoryExhausted(rep.index, now_s) ||
                state.poisoned(item.frame_id);
            if (item.faulted) {
                // The frame never reaches the encoder, so neither
                // the stream key nor the cache may see it.
                item.fault_status = resourceExhausted(
                    "serve: tenant '" + state.spec->name +
                    "' frame " + std::to_string(item.frame_id) +
                    ": " +
                    (state.poisoned(item.frame_id)
                         ? "poisoned input frame"
                         : "replica " + std::to_string(rep.index) +
                               " memory exhausted"));
            } else {
                state.stream_key = chainStreamKey(
                    state.stream_key,
                    cloudDigest(
                        state.spec->frames[state.next_frame]));
                item.stream_key = state.stream_key;
                if (config_.cache_enabled)
                    item.hit = cache.find(item.stream_key);
            }
            ++state.next_frame;
            batch.push_back(std::move(item));
            if (batch.size() >=
                static_cast<std::size_t>(batch_max)) {
                ++examined;
                ++index;
                break;
            }
        }
        rep.cursor = index % rep.tenants.size();

        if (batch.empty()) {
            if (any_backlog)
                continue;  // all in overdraft: grant another round
            // Nothing dispatchable now: jump to the next event on
            // this replica — an arrival, a failover resume point,
            // or a breaker re-probe.
            double next_event = -1.0;
            for (const TenantState *sp : rep.tenants) {
                const TenantState &state = *sp;
                if (state.done)
                    continue;
                double event_s;
                if (now_s + kArrivalEps < state.resume_at_s) {
                    event_s = std::max(
                        state.resume_at_s,
                        state.arrivalOf(state.next_frame));
                } else if (state.backlogAt(now_s) > 0) {
                    event_s = state.breaker.openUntil();
                } else {
                    event_s = state.arrivalOf(state.next_frame);
                }
                if (next_event < 0.0 || event_s < next_event)
                    next_event = event_s;
            }
            now_s = std::max(now_s, next_event);
            rep.clock_s = now_s;
            continue;
        }

        // Encode the batch: tenants run concurrently on the shared
        // pool (interactive at high priority), cache hits only
        // restore encoder state. Every tenant appears at most once
        // per batch, so tasks never share an encoder. Faulted
        // dispatches never touch their encoder at all.
        {
            ScopedTrace batch_trace("serve.batch");
            BatchSync sync;
            std::size_t tasks = 0;
            for (const BatchItem &item : batch) {
                if (!item.faulted)
                    ++tasks;
            }
            sync.add(tasks);
            const bool want_snapshot = config_.cache_enabled;
            for (BatchItem &item : batch) {
                if (item.faulted)
                    continue;
                const auto task = [&item, want_snapshot, &sync] {
                    TenantState &state = *item.tenant;
                    if (item.hit) {
                        state.encoder.restoreState(
                            item.hit->state_after);
                    } else {
                        auto encoded = state.encoder.encode(
                            state.spec->frames[item.frame_id]);
                        if (encoded.hasValue()) {
                            item.encoded = std::move(*encoded);
                            if (want_snapshot) {
                                item.state_after =
                                    state.encoder.snapshotState();
                                item.have_snapshot = true;
                            }
                        } else {
                            item.status = encoded.status();
                        }
                    }
                    sync.finishOne();
                };
                const TaskPriority priority =
                    item.tenant->spec->deadline_class ==
                            DeadlineClass::kInteractive
                        ? TaskPriority::kHigh
                        : TaskPriority::kNormal;
                pool.submit(task, priority);
            }
            sync.waitAll(pool);
        }
        for (const BatchItem &item : batch) {
            if (!item.status.isOk())
                return Status(
                    item.status.code(),
                    "serve: tenant '" + item.tenant->spec->name +
                        "' frame " +
                        std::to_string(item.frame_id) + ": " +
                        item.status.message());
        }

        // Settle in selection order: each modelled replica executes
        // its batch serially, so completion times (and the trace)
        // are deterministic.
        ++report.fleet.batches;
        report.fleet.batched_frames += batch.size();
        const double batch_start_s = now_s;
        now_s += config_.batch_overhead_s;
        report.fleet.device_busy_s += config_.batch_overhead_s;
        for (BatchItem &item : batch) {
            TenantState &state = *item.tenant;
            TenantStats &stats = state.report->stats;

            ServedFrame record;
            record.frame_id = item.frame_id;
            record.arrival_s = state.arrivalOf(item.frame_id);
            record.start_s = batch_start_s;

            if (item.faulted) {
                // The dispatch aborted: no device seconds charged,
                // the breaker hears about it, and the record keeps
                // the attributable status.
                record.outcome = ServeOutcome::kFaulted;
                record.completion_s = now_s;
                record.fault_status = std::move(item.fault_status);
                ++stats.faulted;
                ++report.recovery.faulted_frames;
                state.breaker.onFailure(now_s);
                ServeTraceEntry entry;
                entry.tenant = state.spec->name;
                entry.frame_id = record.frame_id;
                entry.outcome = ServeOutcome::kFaulted;
                entry.replica = rep.index;
                report.trace.push_back(std::move(entry));
                state.report->frames.push_back(std::move(record));
                finishIfDone(state);
                continue;
            }

            double cost_s = 0.0;
            if (item.hit) {
                record.outcome = ServeOutcome::kCacheHit;
                cost_s = config_.cache_hit_cost_s;
                cache.recordSavings(
                    std::max(item.hit->device_cost_s - cost_s,
                             0.0));
                record.bitstream = item.hit->bitstream;
                record.stats = item.hit->stats;
                ++stats.cache_hits;
            } else {
                record.outcome = ServeOutcome::kEncoded;
                const PipelineTiming timing =
                    device_model.evaluate(item.encoded.profile);
                cost_s = effectiveEncodeLatency(timing,
                                                latency_config,
                                                item.frame_id)
                             .total_s;
                const double throttle =
                    injector.costMultiplier(rep.index, now_s);
                if (throttle != 1.0)
                    cost_s *= throttle;
                record.bitstream =
                    std::move(item.encoded.bitstream);
                record.stats = item.encoded.stats;
                ++stats.encoded;
            }

            now_s += cost_s;
            record.cost_s = cost_s;
            record.completion_s = now_s;
            const double latency_s =
                record.completion_s - record.arrival_s;
            record.deadline_missed =
                state.budget_s > 0.0 &&
                latency_s > state.budget_s * (1.0 + kArrivalEps);

            state.deficit_s -= cost_s;
            stats.min_deficit_s =
                std::min(stats.min_deficit_s, state.deficit_s);
            stats.max_frame_cost_s =
                std::max(stats.max_frame_cost_s, cost_s);
            stats.device_s += cost_s;
            stats.latency_s.push_back(latency_s);
            ++stats.served;
            if (record.deadline_missed)
                ++stats.deadline_misses;
            report.fleet.device_busy_s += cost_s;

            state.breaker.onSuccess();
            if (state.recovering_since_s >= 0.0) {
                recovery_samples.push_back(
                    record.completion_s -
                    state.recovering_since_s);
                state.recovering_since_s = -1.0;
            }

            if (!item.hit && config_.cache_enabled &&
                item.have_snapshot) {
                CacheEntry entry;
                entry.bitstream = record.bitstream;
                entry.stats = record.stats;
                entry.state_after = std::move(item.state_after);
                entry.device_cost_s = cost_s;
                cache.insert(item.stream_key, std::move(entry));
            }

            if (config_.checkpoint_interval_frames > 0 &&
                stats.served %
                        static_cast<std::size_t>(
                            config_.checkpoint_interval_frames) ==
                    0) {
                // Snapshot after this frame: failover restores here
                // and resumes with a forced keyframe. Charged like
                // batch overhead (clock + fleet, not the tenant).
                TenantCheckpoint checkpoint;
                checkpoint.state = state.encoder.snapshotState();
                checkpoint.stream_key = state.stream_key;
                checkpoint.served =
                    static_cast<std::uint32_t>(state.next_frame);
                state.checkpoint = std::move(checkpoint);
                now_s += config_.checkpoint_cost_s;
                report.fleet.device_busy_s +=
                    config_.checkpoint_cost_s;
                ++stats.checkpoints;
                ++report.recovery.checkpoints;
            }

            ServeTraceEntry entry;
            entry.tenant = state.spec->name;
            entry.frame_id = record.frame_id;
            entry.outcome = record.outcome;
            entry.deadline_missed = record.deadline_missed;
            entry.replica = rep.index;
            report.trace.push_back(std::move(entry));

            state.report->frames.push_back(std::move(record));
            finishIfDone(state);
        }
        rep.clock_s = now_s;
    }

    for (const ReplicaState &replica : replicas)
        report.fleet.makespan_s =
            std::max(report.fleet.makespan_s, replica.clock_s);
    report.cache = cache.stats();

    for (const TenantState &state : states)
        report.recovery.breaker_trips += state.breaker.trips();
    if (!recovery_samples.empty()) {
        double sum = 0.0;
        for (double sample : recovery_samples) {
            sum += sample;
            report.recovery.worst_recovery_s = std::max(
                report.recovery.worst_recovery_s, sample);
        }
        report.recovery.mttr_s =
            sum / static_cast<double>(recovery_samples.size());
    }

    std::vector<double> shares;
    shares.reserve(states.size());
    for (const TenantState &state : states)
        shares.push_back(state.report->stats.device_s /
                         state.spec->weight);
    report.fairness_index = jainFairnessIndex(shares);

    // Served/dropped frames were appended as scheduled; per-tenant
    // frame order is already monotonic by construction.
    return report;
}

}  // namespace serve
}  // namespace edgepcc
