#include "edgepcc/serve/serve_scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "edgepcc/common/trace.h"
#include "edgepcc/parallel/thread_pool.h"

namespace edgepcc {
namespace serve {

namespace {

/** Arrival tolerance: frame f "has arrived" at T when
 *  offset + f/fps <= T + kArrivalEps (matches StreamSession). */
constexpr double kArrivalEps = 1e-9;

}  // namespace

const char *
deadlineClassName(DeadlineClass deadline_class)
{
    switch (deadline_class) {
      case DeadlineClass::kInteractive:
        return "interactive";
      case DeadlineClass::kStandard:
        return "standard";
      case DeadlineClass::kBulk:
        return "bulk";
    }
    return "unknown";
}

double
deadlineClassSlack(DeadlineClass deadline_class)
{
    switch (deadline_class) {
      case DeadlineClass::kInteractive:
        return 1.0;
      case DeadlineClass::kStandard:
        return 2.0;
      case DeadlineClass::kBulk:
        return 4.0;
    }
    return 2.0;
}

const char *
serveOutcomeName(ServeOutcome outcome)
{
    switch (outcome) {
      case ServeOutcome::kEncoded:
        return "encoded";
      case ServeOutcome::kCacheHit:
        return "cache-hit";
      case ServeOutcome::kDropped:
        return "dropped";
    }
    return "unknown";
}

double
FleetStats::utilization() const
{
    return makespan_s > 0.0 ? device_busy_s / makespan_s : 0.0;
}

double
FleetStats::sessionsPerDevice() const
{
    const double util = utilization();
    return util > 0.0 ? static_cast<double>(admitted) / util : 0.0;
}

double
jainFairnessIndex(const std::vector<double> &shares)
{
    if (shares.empty())
        return 1.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : shares) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0)
        return 1.0;
    return (sum * sum) /
           (static_cast<double>(shares.size()) * sum_sq);
}

std::string
traceString(const ServeReport &report)
{
    std::string out;
    for (const ServeTraceEntry &entry : report.trace) {
        if (!out.empty())
            out += ' ';
        out += entry.tenant;
        out += std::to_string(entry.frame_id);
        if (entry.outcome == ServeOutcome::kCacheHit)
            out += '*';
        if (entry.outcome == ServeOutcome::kDropped)
            out += '-';
        if (entry.deadline_missed)
            out += '!';
    }
    return out;
}

// -----------------------------------------------------------------
// ServeScheduler
// -----------------------------------------------------------------

namespace {

/** Scheduler-internal per-tenant state. */
struct TenantState {
    std::size_t input_index = 0;
    const TenantSpec *spec = nullptr;
    TenantReport *report = nullptr;

    VideoEncoder encoder;
    std::size_t next_frame = 0;
    bool done = false;

    double deficit_s = 0.0;
    double quantum_s = 0.0;  ///< config quantum * weight
    double budget_s = 0.0;   ///< per-frame completion budget
    std::uint64_t stream_key = 0;

    explicit TenantState(const TenantSpec &tenant_spec)
        : spec(&tenant_spec), encoder(tenant_spec.codec),
          next_frame(0)
    {
    }

    double
    arrivalOf(std::size_t frame) const
    {
        return spec->arrival_offset_s +
               static_cast<double>(frame) / spec->fps;
    }

    /** Arrived-unserved frame count at virtual time `now_s`. */
    std::size_t
    backlogAt(double now_s) const
    {
        if (done || next_frame >= spec->frames.size())
            return 0;
        const double since =
            now_s - spec->arrival_offset_s + kArrivalEps;
        if (since < 0.0)
            return 0;
        std::size_t last = static_cast<std::size_t>(
            since * spec->fps);
        last = std::min(last, spec->frames.size() - 1);
        return last >= next_frame ? last - next_frame + 1 : 0;
    }
};

/** One co-scheduled frame (at most one per tenant per batch). */
struct BatchItem {
    TenantState *tenant = nullptr;
    std::uint32_t frame_id = 0;
    std::uint64_t stream_key = 0;
    std::shared_ptr<const CacheEntry> hit;

    // Filled by the encode task, read after the batch barrier.
    Status status;  ///< default-constructed = OK
    EncodedFrame encoded;
    VideoEncoder::StateSnapshot state_after;
    bool have_snapshot = false;
};

/** Per-batch completion latch (the scheduler may not use
 *  ThreadPool::wait(): it would also wait on unrelated work). */
class BatchSync
{
  public:
    void
    add(std::size_t count)
    {
        MutexLock lock(mutex_);
        pending_ += count;
    }

    void
    finishOne()
    {
        MutexLock lock(mutex_);
        if (--pending_ == 0)
            done_.notifyAll();
    }

    /** Blocks until the batch drains, helping run queued tasks so a
     *  zero/busy-worker pool still makes progress. */
    void
    waitAll(ThreadPool &pool)
    {
        for (;;) {
            {
                MutexLock lock(mutex_);
                if (pending_ == 0)
                    return;
            }
            if (pool.tryRunOne())
                continue;
            MutexLock lock(mutex_);
            while (pending_ > 0)
                done_.wait(mutex_);
            return;
        }
    }

  private:
    Mutex mutex_;
    CondVar done_;
    std::size_t pending_ EDGEPCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

ServeScheduler::ServeScheduler(ServeConfig config,
                               std::vector<TenantSpec> tenants)
    : config_(std::move(config)), tenants_(std::move(tenants))
{
}

Expected<ServeReport>
ServeScheduler::run()
{
    ScopedTrace trace("serve.run");

    if (tenants_.empty())
        return invalidArgument("ServeScheduler::run: no tenants");
    if (config_.quantum_s <= 0.0)
        return invalidArgument(
            "ServeScheduler::run: quantum_s must be > 0");
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const TenantSpec &spec = tenants_[i];
        if (spec.name.empty())
            return invalidArgument(
                "ServeScheduler::run: tenant without a name");
        if (spec.frames.empty())
            return invalidArgument("ServeScheduler::run: tenant '" +
                                   spec.name + "' has no frames");
        if (spec.fps <= 0.0 || spec.weight <= 0.0)
            return invalidArgument("ServeScheduler::run: tenant '" +
                                   spec.name +
                                   "' needs fps > 0 and weight > 0");
        for (std::size_t j = 0; j < i; ++j) {
            if (tenants_[j].name == spec.name)
                return invalidArgument(
                    "ServeScheduler::run: duplicate tenant name '" +
                    spec.name + "'");
        }
    }

    ServeReport report;
    report.tenants.resize(tenants_.size());
    report.fleet.sessions = tenants_.size();

    const EdgeDeviceModel device_model(config_.device);
    // The shared per-tenant latency hook only reads the load spec
    // and the budget source; serve always charges modelled seconds.
    OverloadConfig latency_config;
    latency_config.load = config_.load;
    latency_config.budget_source = OverloadBudgetSource::kModelled;

    // ---------------- Admission control -------------------------
    // Probe-encode each tenant's first frame to estimate its share
    // of the device, then admit in deadline-class priority order
    // (earlier arrivals first within a class) until the utilization
    // cap is reached. The probe uses a scratch encoder, so the real
    // per-tenant encoder state is untouched.
    {
        ScopedTrace admission_trace("serve.admission");
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const TenantSpec &spec = tenants_[i];
            TenantReport &tenant_report = report.tenants[i];
            tenant_report.name = spec.name;
            tenant_report.deadline_class = spec.deadline_class;
            tenant_report.weight = spec.weight;

            VideoEncoder probe(spec.codec);
            auto probed = probe.encode(spec.frames.front());
            if (!probed)
                return probed.status();
            const PipelineTiming timing =
                device_model.evaluate(probed->profile);
            tenant_report.estimated_utilization =
                timing.modelSeconds() * spec.fps;
        }
    }

    std::vector<std::size_t> admission_order(tenants_.size());
    std::iota(admission_order.begin(), admission_order.end(),
              std::size_t{0});
    std::stable_sort(
        admission_order.begin(), admission_order.end(),
        [this](std::size_t a, std::size_t b) {
            const TenantSpec &ta = tenants_[a];
            const TenantSpec &tb = tenants_[b];
            if (ta.deadline_class != tb.deadline_class)
                return ta.deadline_class < tb.deadline_class;
            if (ta.arrival_offset_s != tb.arrival_offset_s)
                return ta.arrival_offset_s < tb.arrival_offset_s;
            return a < b;
        });

    const double cap = config_.admission_utilization_cap;
    double admitted_utilization = 0.0;
    for (std::size_t index : admission_order) {
        TenantReport &tenant_report = report.tenants[index];
        const double util = tenant_report.estimated_utilization;
        if (util > cap * (1.0 + kArrivalEps)) {
            tenant_report.rejection_reason =
                "exceeds-device-capacity";
        } else if (admitted_utilization + util >
                   cap * (1.0 + kArrivalEps)) {
            tenant_report.rejection_reason = "admission-cap";
        } else {
            tenant_report.admitted = true;
            admitted_utilization += util;
        }
    }

    // ---------------- Scheduler state ---------------------------
    std::vector<TenantState> states;
    states.reserve(tenants_.size());
    for (std::size_t index : admission_order) {
        if (!report.tenants[index].admitted)
            continue;
        states.emplace_back(tenants_[index]);
        TenantState &state = states.back();
        state.input_index = index;
        state.report = &report.tenants[index];
        state.quantum_s =
            config_.quantum_s * tenants_[index].weight;
        state.budget_s =
            deadlineClassSlack(tenants_[index].deadline_class) /
            tenants_[index].fps;
        state.stream_key =
            codecConfigDigest(tenants_[index].codec);
        state.report->stats.frames = tenants_[index].frames.size();
        state.report->stats.deadline_s = state.budget_s;
    }
    report.fleet.admitted = states.size();
    report.fleet.rejected = tenants_.size() - states.size();

    ReferenceCache cache(config_.cache_capacity);
    ThreadPool &pool = ThreadPool::global();
    const int batch_max = std::max(config_.batch_max, 1);
    const std::size_t window_base = 1;  // the frame being encoded

    std::size_t unfinished = states.size();
    double now_s = 0.0;
    std::size_t cursor = 0;

    const auto finishIfDone = [&](TenantState &state) {
        if (!state.done &&
            state.next_frame >= state.spec->frames.size()) {
            state.done = true;
            --unfinished;
        }
    };

    const auto dropStale = [&](TenantState &state) {
        // Oldest-drop backpressure, the StreamSession rule lifted
        // fleet-wide: keep the newest queue_capacity + 1 arrived
        // frames, shed the rest without encoding them.
        const std::size_t window =
            static_cast<std::size_t>(
                std::max(state.spec->queue_capacity, 0)) +
            window_base;
        std::size_t backlog = state.backlogAt(now_s);
        while (backlog > window) {
            const auto frame_id =
                static_cast<std::uint32_t>(state.next_frame);
            ServedFrame record;
            record.frame_id = frame_id;
            record.outcome = ServeOutcome::kDropped;
            record.arrival_s = state.arrivalOf(state.next_frame);
            record.start_s = now_s;
            record.completion_s = now_s;
            state.report->frames.push_back(std::move(record));
            ++state.report->stats.dropped;
            ServeTraceEntry entry;
            entry.tenant = state.spec->name;
            entry.frame_id = frame_id;
            entry.outcome = ServeOutcome::kDropped;
            report.trace.push_back(std::move(entry));
            ++state.next_frame;
            --backlog;
        }
        finishIfDone(state);
    };

    // ---------------- DRR round loop ----------------------------
    while (unfinished > 0) {
        ++report.fleet.rounds;

        for (TenantState &state : states)
            dropStale(state);
        if (unfinished == 0)
            break;

        // Select up to batch_max backlogged tenants, one frame
        // each, starting at the round-robin cursor (which carries
        // across rounds so a cut batch resumes where it stopped).
        std::vector<BatchItem> batch;
        bool any_backlog = false;
        std::size_t examined = 0;
        std::size_t index = cursor;
        for (; examined < states.size(); ++examined, ++index) {
            TenantState &state = states[index % states.size()];
            if (state.done)
                continue;
            if (state.backlogAt(now_s) == 0) {
                // Idle tenants forfeit their deficit: DRR's
                // classic no-banking-while-empty rule.
                state.deficit_s = 0.0;
                continue;
            }
            any_backlog = true;
            state.deficit_s =
                std::min(state.deficit_s + state.quantum_s,
                         state.quantum_s);
            state.report->stats.max_deficit_s =
                std::max(state.report->stats.max_deficit_s,
                         state.deficit_s);
            if (state.deficit_s <= 0.0)
                continue;  // still repaying an overdraft
            BatchItem item;
            item.tenant = &state;
            item.frame_id =
                static_cast<std::uint32_t>(state.next_frame);
            state.stream_key = chainStreamKey(
                state.stream_key,
                cloudDigest(state.spec->frames[state.next_frame]));
            item.stream_key = state.stream_key;
            if (config_.cache_enabled)
                item.hit = cache.find(item.stream_key);
            ++state.next_frame;
            batch.push_back(std::move(item));
            if (batch.size() >=
                static_cast<std::size_t>(batch_max)) {
                ++examined;
                ++index;
                break;
            }
        }
        cursor = index % states.size();

        if (batch.empty()) {
            if (any_backlog)
                continue;  // all in overdraft: grant another round
            // Nothing has arrived yet: jump to the next arrival.
            double next_arrival = -1.0;
            for (const TenantState &state : states) {
                if (state.done)
                    continue;
                const double arrival =
                    state.arrivalOf(state.next_frame);
                if (next_arrival < 0.0 || arrival < next_arrival)
                    next_arrival = arrival;
            }
            now_s = std::max(now_s, next_arrival);
            continue;
        }

        // Encode the batch: tenants run concurrently on the shared
        // pool (interactive at high priority), cache hits only
        // restore encoder state. Every tenant appears at most once
        // per batch, so tasks never share an encoder.
        {
            ScopedTrace batch_trace("serve.batch");
            BatchSync sync;
            sync.add(batch.size());
            const bool want_snapshot = config_.cache_enabled;
            for (BatchItem &item : batch) {
                const auto task = [&item, want_snapshot, &sync] {
                    TenantState &state = *item.tenant;
                    if (item.hit) {
                        state.encoder.restoreState(
                            item.hit->state_after);
                    } else {
                        auto encoded = state.encoder.encode(
                            state.spec->frames[item.frame_id]);
                        if (encoded.hasValue()) {
                            item.encoded = std::move(*encoded);
                            if (want_snapshot) {
                                item.state_after =
                                    state.encoder.snapshotState();
                                item.have_snapshot = true;
                            }
                        } else {
                            item.status = encoded.status();
                        }
                    }
                    sync.finishOne();
                };
                const TaskPriority priority =
                    item.tenant->spec->deadline_class ==
                            DeadlineClass::kInteractive
                        ? TaskPriority::kHigh
                        : TaskPriority::kNormal;
                pool.submit(task, priority);
            }
            sync.waitAll(pool);
        }
        for (const BatchItem &item : batch) {
            if (!item.status.isOk())
                return item.status;
        }

        // Settle in selection order: the single modelled device
        // executes the batch serially, so completion times (and the
        // trace) are deterministic.
        ++report.fleet.batches;
        report.fleet.batched_frames += batch.size();
        const double batch_start_s = now_s;
        now_s += config_.batch_overhead_s;
        report.fleet.device_busy_s += config_.batch_overhead_s;
        for (BatchItem &item : batch) {
            TenantState &state = *item.tenant;
            TenantStats &stats = state.report->stats;

            ServedFrame record;
            record.frame_id = item.frame_id;
            record.arrival_s = state.arrivalOf(item.frame_id);
            record.start_s = batch_start_s;

            double cost_s = 0.0;
            if (item.hit) {
                record.outcome = ServeOutcome::kCacheHit;
                cost_s = config_.cache_hit_cost_s;
                cache.recordSavings(
                    std::max(item.hit->device_cost_s - cost_s,
                             0.0));
                record.bitstream = item.hit->bitstream;
                record.stats = item.hit->stats;
                ++stats.cache_hits;
            } else {
                record.outcome = ServeOutcome::kEncoded;
                const PipelineTiming timing =
                    device_model.evaluate(item.encoded.profile);
                cost_s = effectiveEncodeLatency(timing,
                                                latency_config,
                                                item.frame_id)
                             .total_s;
                record.bitstream =
                    std::move(item.encoded.bitstream);
                record.stats = item.encoded.stats;
                ++stats.encoded;
            }

            now_s += cost_s;
            record.cost_s = cost_s;
            record.completion_s = now_s;
            const double latency_s =
                record.completion_s - record.arrival_s;
            record.deadline_missed =
                state.budget_s > 0.0 &&
                latency_s > state.budget_s * (1.0 + kArrivalEps);

            state.deficit_s -= cost_s;
            stats.min_deficit_s =
                std::min(stats.min_deficit_s, state.deficit_s);
            stats.max_frame_cost_s =
                std::max(stats.max_frame_cost_s, cost_s);
            stats.device_s += cost_s;
            stats.latency_s.push_back(latency_s);
            ++stats.served;
            if (record.deadline_missed)
                ++stats.deadline_misses;
            report.fleet.device_busy_s += cost_s;

            if (!item.hit && config_.cache_enabled &&
                item.have_snapshot) {
                CacheEntry entry;
                entry.bitstream = record.bitstream;
                entry.stats = record.stats;
                entry.state_after = std::move(item.state_after);
                entry.device_cost_s = cost_s;
                cache.insert(item.stream_key, std::move(entry));
            }

            ServeTraceEntry entry;
            entry.tenant = state.spec->name;
            entry.frame_id = record.frame_id;
            entry.outcome = record.outcome;
            entry.deadline_missed = record.deadline_missed;
            report.trace.push_back(std::move(entry));

            state.report->frames.push_back(std::move(record));
            finishIfDone(state);
        }
    }

    report.fleet.makespan_s = now_s;
    report.cache = cache.stats();

    std::vector<double> shares;
    shares.reserve(states.size());
    for (const TenantState &state : states)
        shares.push_back(state.report->stats.device_s /
                         state.spec->weight);
    report.fairness_index = jainFairnessIndex(shares);

    // Served/dropped frames were appended as scheduled; per-tenant
    // frame order is already monotonic by construction.
    return report;
}

}  // namespace serve
}  // namespace edgepcc
