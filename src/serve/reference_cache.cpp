#include "edgepcc/serve/reference_cache.h"

#include <type_traits>
#include <utility>

#include "edgepcc/common/trace.h"

namespace edgepcc {
namespace serve {

// -----------------------------------------------------------------
// Hashing
// -----------------------------------------------------------------

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

template <typename T>
std::uint64_t
hashVector(const std::vector<T> &values, std::uint64_t hash)
{
    const std::uint64_t count = values.size();
    hash = fnv1a64(&count, sizeof(count), hash);
    if (!values.empty())
        hash = fnv1a64(values.data(), values.size() * sizeof(T),
                       hash);
    return hash;
}

std::uint64_t
hashPod(const void *data, std::size_t bytes, std::uint64_t hash)
{
    return fnv1a64(data, bytes, hash);
}

template <typename T>
std::uint64_t
hashValue(const T &value, std::uint64_t hash)
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "hashValue needs a trivially copyable type");
    return hashPod(&value, sizeof(value), hash);
}

}  // namespace

std::uint64_t
cloudDigest(const VoxelCloud &cloud)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = hashValue(cloud.gridBits(), hash);
    hash = hashVector(cloud.x(), hash);
    hash = hashVector(cloud.y(), hash);
    hash = hashVector(cloud.z(), hash);
    hash = hashVector(cloud.r(), hash);
    hash = hashVector(cloud.g(), hash);
    hash = hashVector(cloud.b(), hash);
    return hash;
}

std::uint64_t
codecConfigDigest(const CodecConfig &config)
{
    // Every field that can change an emitted byte participates.
    // Structs are hashed field by field (never as raw memory) so
    // padding bytes cannot poison the digest.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a64(config.name.data(), config.name.size(), hash);
    hash = hashValue(config.attr_mode, hash);
    hash = hashValue(config.inter_mode, hash);
    hash = hashValue(config.gop_size, hash);

    hash = hashValue(config.geometry.builder, hash);
    hash = hashValue(config.geometry.entropy_coding, hash);
    hash = hashValue(config.geometry.contextual_entropy, hash);
    hash = hashValue(config.geometry.tight_bbox, hash);

    hash = hashValue(config.raht.qstep, hash);
    hash = hashValue(config.predicting.qstep, hash);
    hash = hashValue(config.predicting.lod_levels, hash);
    hash = hashValue(config.predicting.num_neighbors, hash);

    const auto hashSegment = [&hash](const SegmentCodecConfig &seg) {
        hash = hashValue(seg.num_segments, hash);
        hash = hashValue(seg.quant_step, hash);
        hash = hashValue(seg.two_layer, hash);
    };
    hashSegment(config.segment);

    hash = hashValue(config.block_match.num_blocks, hash);
    hash = hashValue(config.block_match.candidate_window, hash);
    hash = hashValue(config.block_match.reuse_threshold, hash);
    hashSegment(config.block_match.delta_codec);

    hash = hashValue(config.macro_block.mb_bits, hash);
    hash = hashValue(config.macro_block.icp_iterations, hash);
    hash = hashValue(config.macro_block.reuse_threshold, hash);
    hash = hashValue(config.macro_block.num_threads, hash);
    return hash;
}

std::uint64_t
chainStreamKey(std::uint64_t key, std::uint64_t frame_digest)
{
    std::uint64_t hash = key;
    hash = hashValue(frame_digest, hash);
    return hash;
}

// -----------------------------------------------------------------
// ReferenceCache
// -----------------------------------------------------------------

ReferenceCache::ReferenceCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
ReferenceCache::touchLocked(std::uint64_t key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
}

std::shared_ptr<const CacheEntry>
ReferenceCache::find(std::uint64_t key)
{
    ScopedTrace trace("serve.cache_find");
    MutexLock lock(mutex_);
    ++stats_.lookups;
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    touchLocked(key);
    return it->second.entry;
}

void
ReferenceCache::insert(std::uint64_t key, CacheEntry entry)
{
    MutexLock lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Deterministic duplicate: two tenants encoded the same
        // content in one batch. The entries are byte-identical by
        // construction; keep the first, refresh recency.
        touchLocked(key);
        return;
    }
    while (map_.size() >= capacity_) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        ++stats_.evictions;
    }
    lru_.push_front(key);
    Slot slot;
    slot.lru_pos = lru_.begin();
    slot.entry =
        std::make_shared<const CacheEntry>(std::move(entry));
    map_.emplace(key, std::move(slot));
    ++stats_.insertions;
    stats_.entries = map_.size();
}

void
ReferenceCache::recordSavings(double device_s)
{
    MutexLock lock(mutex_);
    stats_.saved_device_s += device_s;
}

CacheStats
ReferenceCache::stats() const
{
    MutexLock lock(mutex_);
    CacheStats out = stats_;
    out.entries = map_.size();
    return out;
}

}  // namespace serve
}  // namespace edgepcc
