#include "edgepcc/serve/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "edgepcc/common/trace.h"

namespace edgepcc {
namespace serve {

namespace {

/** Window membership with the same epsilon convention as frame
 *  arrivals (serve_scheduler.cpp). */
constexpr double kFaultEps = 1e-9;

bool
inWindow(const DeviceFaultEvent &event, double now_s)
{
    return now_s + kFaultEps >= event.at_s &&
           now_s < event.at_s + event.duration_s - kFaultEps;
}

Status
parseError(const std::string &detail)
{
    return invalidArgument("DeviceFaultSpec::parse: " + detail);
}

}  // namespace

const char *
deviceFaultKindName(DeviceFaultKind kind)
{
    switch (kind) {
      case DeviceFaultKind::kTransientStall:
        return "stall";
      case DeviceFaultKind::kThermalThrottle:
        return "throttle";
      case DeviceFaultKind::kMemoryExhaustion:
        return "oom";
      case DeviceFaultKind::kCrash:
        return "crash";
    }
    return "unknown";
}

DeviceFaultSpec
DeviceFaultSpec::none()
{
    return DeviceFaultSpec{};
}

DeviceFaultSpec
DeviceFaultSpec::crashSecondary()
{
    DeviceFaultSpec spec;
    DeviceFaultEvent crash;
    crash.kind = DeviceFaultKind::kCrash;
    crash.replica = 1;
    crash.at_s = 0.060;
    crash.duration_s = 0.0;
    spec.events.push_back(crash);
    return spec;
}

DeviceFaultSpec
DeviceFaultSpec::thermalBrownout()
{
    DeviceFaultSpec spec;
    DeviceFaultEvent throttle;
    throttle.kind = DeviceFaultKind::kThermalThrottle;
    throttle.replica = 0;
    throttle.at_s = 0.040;
    throttle.duration_s = 0.100;
    throttle.derate = 2.5;
    spec.events.push_back(throttle);
    return spec;
}

Expected<DeviceFaultSpec>
DeviceFaultSpec::parse(const std::string &text)
{
    if (text.empty() || text == "none")
        return DeviceFaultSpec::none();
    if (text == "crash-secondary")
        return DeviceFaultSpec::crashSecondary();
    if (text == "thermal-brownout")
        return DeviceFaultSpec::thermalBrownout();

    DeviceFaultSpec spec;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t semi = text.find(';', pos);
        if (semi == std::string::npos)
            semi = text.size();
        const std::string event_text = text.substr(pos, semi - pos);
        pos = semi + 1;
        if (event_text.empty())
            return parseError("empty event");

        DeviceFaultEvent event;
        bool have_kind = false;
        std::size_t field_pos = 0;
        while (field_pos <= event_text.size()) {
            std::size_t comma = event_text.find(',', field_pos);
            if (comma == std::string::npos)
                comma = event_text.size();
            const std::string pair =
                event_text.substr(field_pos, comma - field_pos);
            field_pos = comma + 1;
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos)
                return parseError("expected key=value, got '" +
                                  pair + "'");
            const std::string key = pair.substr(0, eq);
            const std::string value = pair.substr(eq + 1);
            if (key == "kind") {
                have_kind = true;
                if (value == "stall") {
                    event.kind = DeviceFaultKind::kTransientStall;
                } else if (value == "throttle") {
                    event.kind = DeviceFaultKind::kThermalThrottle;
                } else if (value == "oom") {
                    event.kind = DeviceFaultKind::kMemoryExhaustion;
                } else if (value == "crash") {
                    event.kind = DeviceFaultKind::kCrash;
                } else {
                    return parseError("unknown kind '" + value +
                                      "'");
                }
                continue;
            }
            char *end = nullptr;
            const double num = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                return parseError("bad number in '" + pair + "'");
            if (key == "replica") {
                event.replica = static_cast<int>(num);
            } else if (key == "at-ms") {
                event.at_s = num / 1e3;
            } else if (key == "dur-ms") {
                event.duration_s = num / 1e3;
            } else if (key == "derate") {
                event.derate = num;
            } else {
                return parseError("unknown key '" + key + "'");
            }
            if (field_pos > event_text.size())
                break;
        }
        if (!have_kind)
            return parseError("event without kind= in '" +
                              event_text + "'");
        if (event.replica < 0 || event.at_s < 0.0 ||
            event.duration_s < 0.0 || event.derate <= 0.0)
            return parseError(
                "replica/at-ms/dur-ms must be >= 0 and derate > 0");
        if ((event.kind == DeviceFaultKind::kThermalThrottle ||
             event.kind == DeviceFaultKind::kMemoryExhaustion ||
             event.kind == DeviceFaultKind::kTransientStall) &&
            event.duration_s <= 0.0)
            return parseError(
                std::string(deviceFaultKindName(event.kind)) +
                " needs dur-ms > 0");
        spec.events.push_back(event);
        if (pos > text.size())
            break;
    }
    return spec;
}

std::string
DeviceFaultSpec::toString() const
{
    if (isIdle())
        return "none";
    std::string out;
    char buffer[160];
    for (const DeviceFaultEvent &event : events) {
        if (!out.empty())
            out += ';';
        (void)std::snprintf(
            buffer, sizeof buffer,
            "kind=%s,replica=%d,at-ms=%g,dur-ms=%g",
            deviceFaultKindName(event.kind), event.replica,
            event.at_s * 1e3, event.duration_s * 1e3);
        out += buffer;
        if (event.kind == DeviceFaultKind::kThermalThrottle) {
            (void)std::snprintf(buffer, sizeof buffer, ",derate=%g",
                                event.derate);
            out += buffer;
        }
    }
    return out;
}

DeviceFaultInjector::DeviceFaultInjector(DeviceFaultSpec spec)
    : spec_(std::move(spec)), consumed_(spec_.events.size(), false)
{
}

double
DeviceFaultInjector::costMultiplier(int replica, double now_s) const
{
    double factor = 1.0;
    for (const DeviceFaultEvent &event : spec_.events) {
        if (event.kind == DeviceFaultKind::kThermalThrottle &&
            event.replica == replica && inWindow(event, now_s))
            factor *= event.derate;
    }
    return factor;
}

bool
DeviceFaultInjector::memoryExhausted(int replica,
                                     double now_s) const
{
    for (const DeviceFaultEvent &event : spec_.events) {
        if (event.kind == DeviceFaultKind::kMemoryExhaustion &&
            event.replica == replica && inWindow(event, now_s))
            return true;
    }
    return false;
}

double
DeviceFaultInjector::consumeStall(int replica, double now_s)
{
    double total = 0.0;
    for (std::size_t i = 0; i < spec_.events.size(); ++i) {
        const DeviceFaultEvent &event = spec_.events[i];
        if (consumed_[i] ||
            event.kind != DeviceFaultKind::kTransientStall ||
            event.replica != replica ||
            event.at_s > now_s + kFaultEps)
            continue;
        consumed_[i] = true;
        total += event.duration_s;
    }
    return total;
}

int
DeviceFaultInjector::consumeCrash(int replica, double now_s)
{
    for (std::size_t i = 0; i < spec_.events.size(); ++i) {
        const DeviceFaultEvent &event = spec_.events[i];
        if (consumed_[i] || event.kind != DeviceFaultKind::kCrash ||
            event.replica != replica ||
            event.at_s > now_s + kFaultEps)
            continue;
        consumed_[i] = true;
        ScopedTrace trace("serve.fault_crash");
        return static_cast<int>(i);
    }
    return -1;
}

}  // namespace serve
}  // namespace edgepcc
